//! The full reliability story, end to end: a switch dies, the service
//! processor localizes it from probe outcomes, configures the detour
//! facility, and application messages (segmented and reassembled by the
//! NIA) flow again — deadlock-free.
//!
//! ```text
//! cargo run --release --example reliability_loop
//! ```

use sr2201::fault::diagnosis::diagnose_all_pairs;
use sr2201::nia::{reassemble, segment, Message, NiaConfig};
use sr2201::prelude::*;
use std::sync::Arc;

fn main() {
    let net = Arc::new(MdCrossbar::build(Shape::new(&[8, 8]).unwrap()));
    let shape = net.shape().clone();

    // 1. A router dies somewhere in the machine.
    let truth = FaultSet::single(FaultSite::Router(shape.index_of(Coord::new(&[3, 2]))));
    println!("ground truth: {}", truth.sites().next().unwrap());

    // 2. The service processor probes all pairs and diagnoses.
    let diagnosis = diagnose_all_pairs(&net, &truth);
    println!(
        "diagnosis from {} failed probes: {:?} (unique: {})",
        diagnosis.failed_probes,
        diagnosis.candidates,
        diagnosis.is_unique()
    );
    let believed = FaultSet::single(diagnosis.candidates[0]);

    // 3. Configure the facility: fault registers at the neighbors, S-XB and
    //    D-XB relocated off the faulty coordinate, D-XB = S-XB.
    let scheme = Sr2201Routing::new(net.clone(), &believed).unwrap();
    println!(
        "reconfigured: S-XB = D-XB = {} (deadlock-free: {})",
        scheme.config().sxb(),
        scheme.config().deadlock_free()
    );

    // 4. Applications resume: the NIA segments messages into packets and
    //    reassembles them at the receivers.
    let messages = vec![
        Message {
            src: 0,
            dst: 27,
            bytes: 4096,
            at: 0,
        },
        Message {
            src: 63,
            dst: 1,
            bytes: 2048,
            at: 5,
        },
        Message {
            src: 17,
            dst: 45,
            bytes: 8192,
            at: 10,
        },
    ];
    let (specs, map) = segment(&shape, &messages, NiaConfig::default());
    println!(
        "\nNIA: {} messages -> {} packets",
        messages.len(),
        specs.len()
    );
    let mut sim = Simulator::new(net.graph().clone(), Arc::new(scheme), SimConfig::default());
    for &s in &specs {
        sim.schedule(s);
    }
    // A broadcast rides along, proving the combined traffic stays live.
    sim.schedule(InjectSpec {
        src_pe: 5,
        header: Header::broadcast_request(shape.coord_of(5)),
        flits: 8,
        inject_at: 3,
    });
    let result = sim.run();
    println!(
        "simulation: {:?} in {} cycles",
        result.outcome, result.stats.cycles
    );
    for m in reassemble(
        &sr2201::sim::SimResult {
            outcome: result.outcome.clone(),
            stats: result.stats.clone(),
            packets: result.packets[..specs.len()].to_vec(),
            route_names: result.route_names.clone(),
            diagnostics: result.diagnostics.clone(),
            profile: None,
        },
        &map,
    ) {
        println!(
            "  message {} ({} packets): completed at cycle {:?}, in order: {}",
            m.message, m.packets, m.completed_at, m.complete_in_order
        );
    }
}
