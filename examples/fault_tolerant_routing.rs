//! The paper's core result, end to end: a faulty router, the hardware
//! detour facility, and why the D-XB must be the S-XB (Figs. 7-10).
//!
//! ```text
//! cargo run --release --example fault_tolerant_routing
//! ```

use sr2201::prelude::*;
use sr2201::routing::trace_unicast;
use std::sync::Arc;

fn main() {
    let net = Arc::new(MdCrossbar::build(Shape::fig2()));
    let shape = net.shape().clone();

    // Break the router of PE (1,0) — the paper's Fig. 8 scenario.
    let faulty = shape.index_of(Coord::new(&[1, 0]));
    let faults = FaultSet::single(FaultSite::Router(faulty));
    println!("fault: router of PE{faulty} at (1,0)");

    // The service processor selects the configuration: note the S-XB moves
    // off the faulty row and the D-XB equals it (the deadlock-free choice).
    let scheme = Sr2201Routing::new(net.clone(), &faults).unwrap();
    let cfg = scheme.config();
    println!(
        "configuration: dimension order {:?}, S-XB = {}, D-XB = {} (deadlock-free: {})",
        cfg.order(),
        cfg.sxb(),
        cfg.dxb(),
        cfg.deadlock_free()
    );

    // The Fig. 8 detour route.
    let header = Header::unicast(Coord::new(&[0, 0]), Coord::new(&[1, 1]));
    let trace = trace_unicast(&scheme, net.graph(), header, 0).unwrap();
    println!("\ndetour route (0,0) -> (1,1):\n  {}", trace.pretty());

    // Every usable pair is still delivered.
    let mut delivered = 0;
    let mut detoured = 0;
    let mut pairs = 0;
    for src in 0..shape.num_pes() {
        for dst in 0..shape.num_pes() {
            if src == dst || !faults.pe_usable(src) || !faults.pe_usable(dst) {
                continue;
            }
            pairs += 1;
            let h = Header::unicast(shape.coord_of(src), shape.coord_of(dst));
            if let Ok(t) = trace_unicast(&scheme, net.graph(), h, src) {
                delivered += 1;
                if t.used_detour() {
                    detoured += 1;
                }
            }
        }
    }
    println!("\nall-pairs: {delivered}/{pairs} delivered, {detoured} via detour");

    // Figs. 9 vs 10 in the cycle-level simulator: the same broadcast +
    // detoured unicast, with the D-XB separated (deadlock) and unified
    // (completion).
    for separate in [true, false] {
        let mut cfg = RoutingConfig::for_faults(&shape, &faults).unwrap();
        if separate {
            cfg = cfg.with_separate_dxb(&faults);
        }
        let label = if separate {
            "fig9 (D-XB != S-XB)"
        } else {
            "fig10 (D-XB = S-XB)"
        };
        let mut outcome = None;
        // The cyclic wait needs the two packets to overlap just so; sweep
        // the unicast's injection offset until something interesting shows.
        for offset in 10..38u64 {
            let scheme = Arc::new(Sr2201Routing::with_config(
                net.clone(),
                cfg.clone(),
                &faults,
            ));
            let mut sim = Simulator::new(
                net.graph().clone(),
                scheme,
                SimConfig {
                    arb_seed: 1,
                    ..SimConfig::default()
                },
            );
            sim.schedule(InjectSpec {
                src_pe: 9,
                header: Header::broadcast_request(shape.coord_of(9)),
                flits: 24,
                inject_at: 0,
            });
            sim.schedule(InjectSpec {
                src_pe: 0,
                header: Header::unicast(Coord::new(&[0, 0]), Coord::new(&[1, 1])),
                flits: 24,
                inject_at: offset,
            });
            let r = sim.run();
            if let SimOutcome::Deadlock(info) = &r.outcome {
                outcome = Some(format!("DEADLOCK at offset {offset}:\n{info}"));
                break;
            }
        }
        println!(
            "\n{label}: {}",
            outcome.unwrap_or("all offsets completed deadlock-free".to_string())
        );
    }
}
