//! Latency attribution walkthrough: where do the cycles of a detoured
//! packet actually go?
//!
//! 1. The fig9 detour race on the paper's 4x3 shape with router (1,0)
//!    faulty, run once with an [`AttributionObserver`] attached — prints
//!    the full report: per-phase totals (injection queueing, S-XB
//!    serialization, blocked time split by holder class, RC=3 detour
//!    transfer vs. base transfer), the blame tables ranking channels and
//!    crossbars by blocked cycles caused, and the critical wait-for chain
//!    ending at the last delivery. Every packet's phases sum to its
//!    engine-reported latency exactly.
//! 2. The same sweep fault-free vs. faulty through the campaign runner,
//!    compared with [`diff_attribution`] — the machine-checkable version
//!    of "the fault's latency went into detours and blocking".
//!
//! ```text
//! cargo run --release --example attribution_report
//! ```

use sr2201::campaign::{
    detour_stress_for, diff_attribution, run_campaign_with, ObsOptions, Scenario,
    DEFAULT_DIFF_THRESHOLD,
};
use sr2201::obs::AttributionObserver;
use sr2201::prelude::*;
use std::sync::Arc;

fn main() {
    let shape = Shape::fig2();
    let faulty_router = FaultSite::Router(shape.index_of(Coord::new(&[1, 0])));

    // --- Part 1: one instrumented run, full attribution report ----------
    println!("=== fig9 detour race on 4x3, router (1,0) faulty: full attribution ===\n");
    let scenario = Scenario::new(vec![4, 3], "sr2201", detour_stress_for(&shape, 24, 10), 0)
        .with_faults([faulty_router]);
    let faults = scenario.fault_set().unwrap();
    let net = Arc::new(MdCrossbar::build(shape.clone()));
    let scheme = Arc::new(Sr2201Routing::new(net.clone(), &faults).unwrap());

    let mut sim = Simulator::new(net.graph().clone(), scheme, scenario.sim_config());
    let (obs, attribution) = AttributionObserver::new(net.graph().clone());
    sim.set_observer(Box::new(obs));
    for &spec in &scenario.specs(&shape, &faults) {
        sim.schedule(spec);
    }
    let result = sim.run();
    let report = attribution.report(&result);
    assert!(report.conserved, "phases must sum to latency exactly");
    print!("{}", report.render());

    // --- Part 2: fault-free vs. faulty, attributed and diffed -----------
    println!("\n=== campaign diff: the same sweep without vs. with the fault ===\n");
    let sweep = |faulty: bool| {
        let scenarios: Vec<Scenario> = (0..4)
            .map(|seed| {
                let s = Scenario::new(
                    vec![4, 3],
                    "sr2201",
                    detour_stress_for(&shape, 24, 10 + seed * 7),
                    seed,
                );
                if faulty {
                    s.with_faults([faulty_router])
                } else {
                    s
                }
            })
            .collect();
        run_campaign_with(
            scenarios,
            &ObsOptions {
                attribution: true,
                ..ObsOptions::default()
            },
        )
    };
    let clean = sweep(false);
    let broken = sweep(true);
    let diff = diff_attribution(
        &clean.to_jsonl(),
        &broken.to_jsonl(),
        DEFAULT_DIFF_THRESHOLD,
    )
    .unwrap();
    print!("{}", diff.render());
    println!(
        "\nflagged phase shifts: {} (expect detour/blocked shares up, base transfer down)",
        diff.flagged
    );
}
