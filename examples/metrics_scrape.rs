//! Production telemetry, live: boots the real `campaign serve --tcp`
//! binary with a Prometheus endpoint (`--metrics-addr`), drives a short
//! session over TCP (a run, a duplicate that must hit the cache, and a
//! `metrics` snapshot), scrapes the endpoint over raw HTTP mid-session,
//! and prints the series the session just produced.
//!
//! ```text
//! make metrics-serve-demo        # builds the binary, then runs this
//! ```
//!
//! Set `CAMPAIGN_BIN` to point at a different `campaign` binary.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};

const SPEC: &str = r#"{"cmd":"spec","id":ID,"spec":"seed 1\nflits 2\nphase 0..200 uniform rate=0.03\nhorizon 600","shape":[4,3],"seed":1}"#;

fn campaign_bin() -> std::path::PathBuf {
    if let Ok(p) = std::env::var("CAMPAIGN_BIN") {
        return p.into();
    }
    // target/<profile>/examples/metrics_scrape -> target/<profile>/campaign
    let me = std::env::current_exe().expect("current_exe");
    let dir = me
        .parent()
        .and_then(|p| p.parent())
        .expect("examples dir has a parent");
    dir.join("campaign")
}

fn main() -> std::io::Result<()> {
    let bin = campaign_bin();
    if !bin.exists() {
        eprintln!(
            "error: {} not built — run `make metrics-serve-demo` (or `cargo build --release -p mdx-serve`) first",
            bin.display()
        );
        std::process::exit(1);
    }

    // 1. The resident service, exactly as an operator would start it:
    //    ephemeral ports for both the protocol socket and the endpoint.
    let mut child = Command::new(&bin)
        .args([
            "serve",
            "--tcp",
            "127.0.0.1:0",
            "--windows",
            "100",
            "--metrics-addr",
            "127.0.0.1:0",
        ])
        .stderr(Stdio::piped())
        .stdout(Stdio::null())
        .spawn()?;

    // Both banners carry the ephemeral ports.
    let mut stderr = BufReader::new(child.stderr.take().expect("piped stderr"));
    let (mut addr, mut maddr) = (None, None);
    let mut banner = String::new();
    while addr.is_none() || maddr.is_none() {
        banner.clear();
        if stderr.read_line(&mut banner)? == 0 {
            let _ = child.kill();
            panic!("campaign serve exited before announcing its ports");
        }
        print!("  {banner}");
        if let Some(rest) = banner.strip_prefix("campaign serve: listening on ") {
            addr = rest.split_whitespace().next().map(str::to_owned);
        }
        if let Some(rest) = banner.strip_prefix("campaign serve: metrics on ") {
            maddr = rest.split_whitespace().next().map(str::to_owned);
        }
    }
    let (addr, maddr) = (addr.unwrap(), maddr.unwrap());

    // 2. A session: one fresh run, one duplicate (cache hit), one
    //    registry snapshot via the `metrics` verb.
    let sock = TcpStream::connect(&addr)?;
    let mut reader = BufReader::new(sock.try_clone()?);
    let mut sock = sock;
    let mut line = String::new();
    println!("\n-- session on {addr} --");
    for id in ["1", "2"] {
        writeln!(sock, "{}", SPEC.replace("ID", id))?;
        line.clear();
        reader.read_line(&mut line)?;
        println!("  row {id}: {}", excerpt(&line, 120));
    }
    writeln!(sock, r#"{{"cmd":"metrics","id":3}}"#)?;
    line.clear();
    reader.read_line(&mut line)?;
    println!(
        "  metrics verb: {} bytes of JSON snapshot",
        line.trim().len()
    );

    // 3. The live scrape: one HTTP GET against the endpoint while the
    //    service is still up — what Prometheus would do on its interval.
    let mut http = TcpStream::connect(&maddr)?;
    http.write_all(b"GET /metrics HTTP/1.1\r\nHost: demo\r\nConnection: close\r\n\r\n")?;
    let mut response = String::new();
    http.read_to_string(&mut response)?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or(&response);
    println!(
        "\n-- scrape of http://{maddr}/metrics ({} bytes) --",
        body.len()
    );
    let interesting = [
        "mdx_serve_requests_total",
        "mdx_serve_request_seconds_sum",
        "mdx_serve_request_seconds_count",
        "mdx_serve_cache_hits_total",
        "mdx_serve_cache_misses_total",
        "mdx_engine_cycles_total",
        "mdx_engine_idle_tick_fraction",
        "mdx_engine_cycles_per_sec",
    ];
    for l in body.lines() {
        if interesting.iter().any(|p| l.starts_with(p)) {
            println!("  {l}");
        }
    }
    assert!(
        body.contains("mdx_serve_cache_hits_total 1"),
        "the duplicate run's cache hit should be visible on the endpoint"
    );

    // 4. Clean shutdown through the protocol.
    writeln!(sock, r#"{{"cmd":"shutdown","id":4}}"#)?;
    line.clear();
    reader.read_line(&mut line)?;
    let status = child.wait()?;
    println!("\nserver exited: {status}");
    Ok(())
}

/// First `n` characters of a response line, for display.
fn excerpt(line: &str, n: usize) -> String {
    let line = line.trim();
    match line.char_indices().nth(n) {
        Some((i, _)) => format!("{}…", &line[..i]),
        None => line.to_string(),
    }
}
