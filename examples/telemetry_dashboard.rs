//! Telemetry dashboard: every observer in `mdx-obs` on two paper scenarios.
//!
//! 1. Fig. 10 mixed traffic (unicasts + serialized broadcasts) under the
//!    paper's scheme, with the metrics observer, the stall probe, and the
//!    Chrome/Perfetto trace recorder all attached through one
//!    [`FanoutObserver`] — prints the channel/crossbar heatmap showing the
//!    S-XB as the hottest X crossbar.
//! 2. The Fig. 5 naive broadcast storm with the stall probe attached —
//!    prints the wait-chain timeline *growing* probe over probe until the
//!    watchdog confirms the deadlock.
//!
//! ```text
//! cargo run --release --example telemetry_dashboard [trace-out.json]
//! ```
//!
//! With a path argument the Fig. 10 run's trace is written there; open it
//! at <https://ui.perfetto.dev> (or chrome://tracing) to see per-packet
//! switch-residency slices, blocked episodes, and the S-XB gather queue.

use sr2201::obs::{FanoutObserver, MetricsObserver, StallProbe, TraceRecorder};
use sr2201::prelude::*;
use sr2201::workloads::{mixed_schedule, OpenLoop, TrafficPattern};
use std::sync::Arc;

fn main() {
    let trace_out = std::env::args().nth(1);
    let net = Arc::new(MdCrossbar::build(Shape::fig2()));
    let shape = net.shape().clone();

    // --- Part 1: instrumented Fig. 10 mixed traffic ---------------------
    println!("=== Fig. 10 mixed traffic on 4x3, fully instrumented ===\n");
    let scheme = Arc::new(Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap());
    let sxb = scheme.config().sxb().to_string();
    let dxb = scheme.config().dxb().to_string();

    let mut sim = Simulator::new(net.graph().clone(), scheme, SimConfig::default());
    let (metrics_obs, metrics) = MetricsObserver::new(net.graph().clone());
    let (trace_obs, trace) = TraceRecorder::new(net.graph());
    let (probe_obs, probe) = StallProbe::new(32);
    sim.set_observer(Box::new(
        FanoutObserver::new()
            .with(Box::new(metrics_obs))
            .with(Box::new(trace_obs))
            .with(Box::new(probe_obs)),
    ));

    let specs = mixed_schedule(
        &shape,
        TrafficPattern::UniformRandom,
        OpenLoop {
            rate: 0.02,
            packet_flits: 12,
            window: 200,
            seed: 7,
        },
        0.004,
        &FaultSet::none(),
    );
    for &spec in &specs {
        sim.schedule(spec);
    }
    let result = sim.run();
    println!(
        "{} packets, outcome {:?}, {} cycles, {} flit-hops\n",
        specs.len(),
        result.outcome,
        result.stats.cycles,
        result.stats.flit_hops
    );

    let report = metrics.report(result.stats.cycles);
    print!("{}", report.heatmap(Some(&sxb), Some(&dxb)));
    println!(
        "\nstall probe: {} samples, peak wait chain {}, peak blocked wait {} cycles",
        probe.report().samples.len(),
        probe.report().peak_chain(),
        probe.report().peak_wait()
    );

    if let Some(path) = trace_out {
        let doc = trace.render(result.stats.cycles);
        match std::fs::write(&path, &doc) {
            Ok(()) => println!(
                "wrote {} trace events to {path} (open at https://ui.perfetto.dev)",
                trace.len()
            ),
            Err(e) => eprintln!("cannot write {path}: {e}"),
        }
    } else {
        println!(
            "trace recorder captured {} events (pass a path to write the Perfetto JSON)",
            trace.len()
        );
    }

    // --- Part 2: the stall probe watching a broadcast storm deadlock ----
    println!("\n=== Fig. 5 naive broadcast storm: the stall probe's early warning ===\n");
    let sources = [0usize, 4, 8];
    for seed in 0..64u64 {
        let naive = Arc::new(NaiveBroadcast::new(net.clone()));
        let mut sim = Simulator::new(
            net.graph().clone(),
            naive,
            SimConfig {
                arb_seed: seed,
                ..SimConfig::default()
            },
        );
        let (probe_obs, probe) = StallProbe::new(64);
        sim.set_observer(Box::new(probe_obs));
        for &src in &sources {
            let c = shape.coord_of(src);
            sim.schedule(InjectSpec {
                src_pe: src,
                header: Header {
                    rc: RouteChange::Broadcast,
                    dest: c,
                    src: c,
                },
                flits: 16,
                inject_at: 0,
            });
        }
        if !sim.run().outcome.is_deadlock() {
            continue;
        }
        let report = probe.report();
        println!("broadcasts from PEs {sources:?} with arbitration seed {seed}:");
        if let Some(w) = report.warning() {
            println!("early warning: {w}");
        }
        print!("{}", report.timeline());
        return;
    }
    println!("no arbitration seed in 0..64 deadlocked the storm (unexpected)");
}
