//! Campaign to minimal witness: sweep the deadlock-prone D-XB != S-XB
//! variant (paper Fig. 9) with the campaign runner, take the first deadlock
//! it finds, and delta-debug it down to the smallest scenario that still
//! closes the cyclic wait. Every intermediate artifact is a printable
//! `MDX1.` token, replayable with `campaign replay <token>`.
//!
//! ```text
//! cargo run --release --example campaign_witness
//! ```

use sr2201::campaign::{enumerate_scenarios, run_campaign, shrink, CampaignConfig, WorkloadKind};

fn main() {
    // A small grid: the broken variant only, every single fault, the
    // Fig. 9 detour-stress workload, 16 seeds.
    let cfg = CampaignConfig {
        schemes: vec!["separate-dxb".to_string()],
        max_faults: 1,
        seeds: 16,
        workloads: vec![WorkloadKind::Detour],
        ..CampaignConfig::default()
    };
    let scenarios = enumerate_scenarios(&cfg).expect("4x3 is a valid shape");
    println!(
        "sweeping {} scenarios of the D-XB != S-XB variant...",
        scenarios.len()
    );
    let result = run_campaign(scenarios);
    print!("{}", result.summary());

    let witness = match result.deadlocks().next() {
        Some(w) => w,
        None => {
            println!("no deadlock found — widen the sweep");
            return;
        }
    };
    println!("\nfirst deadlock: {}", witness.scenario);
    println!("token: {}\n", witness.token);

    let report = shrink(&witness.scenario).expect("witness deadlocks");
    println!(
        "shrunk in {} runs: {} -> {} packets, {} -> {} flits",
        report.runs, report.packets.0, report.packets.1, report.flits.0, report.flits.1
    );
    for step in &report.steps {
        println!("  - {step}");
    }
    println!("\nminimal witness: {}", report.minimized);
    println!("cyclic wait at cycle {}:", report.deadlock.detected_at);
    for e in &report.deadlock.cycle {
        println!(
            "  {} waits for {} held by {}",
            e.waiter, e.channel, e.holder
        );
    }
    println!("\nminimized token:\n{}", report.token);
}
