//! Quickstart: build the paper's Fig. 2 network, route packets, run a
//! hardware broadcast, and simulate it all at cycle level.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sr2201::prelude::*;
use std::sync::Arc;

fn main() {
    // The paper's running example: a 4x3 two-dimensional crossbar (Fig. 2).
    let net = Arc::new(MdCrossbar::build(Shape::fig2()));
    let shape = net.shape().clone();
    println!(
        "network: {} PEs, {} crossbars, {} directed channels",
        shape.num_pes(),
        net.num_xbars(),
        net.graph().num_channels()
    );

    // Fault-free dimension-order (X-Y) routing.
    let scheme = Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap();
    let header = Header::unicast(Coord::new(&[0, 0]), Coord::new(&[3, 2]));
    let trace = sr2201::routing::trace_unicast(&scheme, net.graph(), header, 0).unwrap();
    println!("\nX-Y route (0,0) -> (3,2):\n  {}", trace.pretty());

    // A hardware broadcast: RC=1 request to the S-XB, serialized fan-out.
    let bc = sr2201::routing::trace_broadcast(&scheme, net.graph(), 3, shape.coord_of(3)).unwrap();
    println!(
        "\nbroadcast from PE3: gathered at {} and delivered to {} PEs",
        scheme.config().sxb(),
        bc.delivered.len()
    );

    // Cycle-level simulation: mixed unicast + broadcast traffic.
    let mut sim = Simulator::new(net.graph().clone(), Arc::new(scheme), SimConfig::default());
    for src in 0..shape.num_pes() {
        let dst = (src * 5 + 2) % shape.num_pes();
        if dst != src {
            sim.schedule(InjectSpec {
                src_pe: src,
                header: Header::unicast(shape.coord_of(src), shape.coord_of(dst)),
                flits: 8,
                inject_at: (src % 4) as u64,
            });
        }
    }
    sim.schedule(InjectSpec {
        src_pe: 7,
        header: Header::broadcast_request(shape.coord_of(7)),
        flits: 8,
        inject_at: 2,
    });
    let result = sim.run();
    println!(
        "\nsimulation: {:?} after {} cycles, {} packets delivered, mean latency {:.1} cycles",
        result.outcome,
        result.stats.cycles,
        result.stats.delivered,
        result.stats.mean_latency()
    );
}
