//! Topology explorer: build an arbitrary multi-dimensional crossbar and
//! print its structural properties and remapping behavior next to mesh,
//! torus and hypercube equivalents (paper Sec. 3.1).
//!
//! ```text
//! cargo run --release --example topology_explorer -- 8 8
//! cargo run --release --example topology_explorer -- 16 16 8
//! ```

use sr2201::topology::mesh::{DirectNetwork, Wrap};
use sr2201::topology::{embed, metrics, MdCrossbar, Shape};

fn main() {
    let dims: Vec<u16> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("dimension extents must be integers"))
        .collect();
    let dims = if dims.is_empty() { vec![8, 8] } else { dims };
    let shape = Shape::new(&dims).expect("valid shape");
    let n = shape.num_pes();
    println!("shape {dims:?}: {n} PEs\n");

    let print = |m: metrics::TopologyMetrics| {
        println!(
            "  {:24} ports/router {:2}  switches {:5}  channels {:6}  diameter {} xbar-hops / {} channel-hops",
            m.name, m.router_ports, m.num_switches, m.num_channels,
            m.diameter_xbar_hops, m.diameter_channel_hops,
        );
    };
    let net = MdCrossbar::build(shape.clone());
    print(metrics::md_crossbar_metrics(&net));
    print(metrics::direct_network_metrics(&DirectNetwork::build(
        shape.clone(),
        Wrap::Mesh,
    )));
    print(metrics::direct_network_metrics(&DirectNetwork::build(
        shape.clone(),
        Wrap::Torus,
    )));
    if n.is_power_of_two() && n > 1 {
        print(metrics::direct_network_metrics(
            &DirectNetwork::hypercube(n).expect("power of two"),
        ));
    }

    // Conflict-free remapping of classic program topologies (Sec. 3.1).
    println!("\nremapping conflicts under dimension-order routing:");
    let mut schedules: Vec<(&str, Vec<embed::Phase>)> = vec![
        ("ring shifts", embed::ring_phases(n)),
        ("mesh neighbor exchange", embed::mesh_phases(&shape)),
    ];
    if shape.extents().iter().all(|e| e.is_power_of_two()) {
        schedules.push(("hypercube exchange", embed::hypercube_phases(&shape)));
    }
    for (name, phases) in schedules {
        let conflicts: usize = phases
            .iter()
            .map(|p| embed::phase_conflicts_mdx(&net, p))
            .sum();
        println!("  {name:24} {} phases, {conflicts} conflicts", phases.len());
    }
}
