//! Broadcast storm: why the SR2201 serializes broadcasts through the S-XB
//! (Figs. 5-6). Fires many simultaneous broadcasts first through the naive
//! all-ports fan-out (deadlock) and then through the serialized scheme
//! (completion), printing the observed cyclic wait.
//!
//! ```text
//! cargo run --release --example broadcast_storm [num_broadcasts]
//! ```

use sr2201::prelude::*;
use std::sync::Arc;

fn main() {
    let k: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let net = Arc::new(MdCrossbar::build(Shape::fig2()));
    let shape = net.shape().clone();
    let sources: Vec<usize> = (0..k).map(|i| (i * 5) % shape.num_pes()).collect();
    println!("{k} simultaneous broadcasts from PEs {sources:?} on a 4x3 crossbar\n");

    // Naive: every broadcast fans straight out (paper Fig. 5).
    let naive = Arc::new(NaiveBroadcast::new(net.clone()));
    let mut sim = Simulator::new(net.graph().clone(), naive, SimConfig::default());
    for &src in &sources {
        let c = shape.coord_of(src);
        sim.schedule(InjectSpec {
            src_pe: src,
            header: Header {
                rc: RouteChange::Broadcast,
                dest: c,
                src: c,
            },
            flits: 16,
            inject_at: 0,
        });
    }
    match sim.run().outcome {
        SimOutcome::Deadlock(info) => {
            println!("naive broadcast: {info}");
        }
        other => println!("naive broadcast: {other:?} (try more broadcasts or another seed)"),
    }

    // Serialized: requests gather at the S-XB and fan out one at a time
    // (paper Fig. 6).
    let scheme = Arc::new(Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap());
    println!("\nS-XB scheme (serializing at {}):", scheme.config().sxb());
    let mut sim = Simulator::new(net.graph().clone(), scheme, SimConfig::default());
    for &src in &sources {
        sim.schedule(InjectSpec {
            src_pe: src,
            header: Header::broadcast_request(shape.coord_of(src)),
            flits: 16,
            inject_at: 0,
        });
    }
    let r = sim.run();
    println!("  outcome: {:?} in {} cycles", r.outcome, r.stats.cycles);
    for p in &r.packets {
        println!(
            "  {}: delivered to {} PEs, finished at cycle {:?}",
            p.id,
            p.deliveries.len(),
            p.finished_at
        );
    }
}
