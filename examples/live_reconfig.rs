//! Live reconfiguration, end to end: a crossbar dies *while packets fly*,
//! the service processor drains the machine, reprograms the fault
//! registers, and traffic resumes under the new routing function — with
//! the transition itself checked for mixed-epoch deadlock.
//!
//! The same fault timeline (inject `X1-XB` line 2 at cycle 40, repair it
//! at cycle 400) runs under all three recovery policies so their victim
//! accounting can be compared side by side.
//!
//! ```text
//! cargo run --release --example live_reconfig
//! ```

use sr2201::prelude::*;
use sr2201::reconfig::run_reconfig;
use std::sync::Arc;

fn main() {
    let net = Arc::new(MdCrossbar::build(Shape::new(&[4, 4]).unwrap()));
    let shape = net.shape().clone();
    let n = shape.num_pes();

    // A rolling all-to-some workload: PE i sends 16 flits to PE (i+5)%n at
    // cycle 4i, so plenty of packets are mid-flight when the fault lands.
    let specs: Vec<InjectSpec> = (0..n)
        .map(|i| InjectSpec {
            src_pe: i,
            header: Header::unicast(shape.coord_of(i), shape.coord_of((i + 5) % n)),
            flits: 16,
            inject_at: 4 * i as u64,
        })
        .collect();

    // The timeline: the dim-1 crossbar on line 2 dies at cycle 40 and is
    // repaired (hot-swapped) at cycle 400. Each event triggers one full
    // quiesce/drain/reprogram/resume epoch.
    let site = FaultSite::Xbar(XbarRef { dim: 1, line: 2 });
    let timeline = FaultTimeline::new().inject(site, 40).repair(site, 400);

    for policy in [
        RecoveryPolicy::Drop,
        RecoveryPolicy::Reinject,
        RecoveryPolicy::Reroute,
    ] {
        let spec = ReconfigSpec::new(timeline.clone()).with_policy(policy);
        let outcome = run_reconfig(
            net.clone(),
            "sr2201",
            &FaultSet::none(),
            &specs,
            SimConfig::default(),
            &spec,
            None,
        )
        .expect("the sr2201 scheme reconfigures around a single crossbar fault");

        println!("=== policy: {policy} ===");
        println!(
            "outcome {:?} after {} cycles, {}/{} packets delivered",
            outcome.result.outcome, outcome.result.stats.cycles, outcome.result.stats.delivered, n
        );
        print!("{}", outcome.report.render());
        assert!(
            outcome.report.transition_safe(),
            "a mixed-epoch wait cycle would be a transition deadlock"
        );
        println!();
    }

    println!("all three policies crossed both epochs with no mixed-epoch wait cycle");
}
