//! Property-based cross-crate invariants: for randomized shapes, faults and
//! traffic, the paper's scheme always delivers, never duplicates, never
//! deadlocks, and the simulator conserves packets.

use proptest::prelude::*;
use sr2201::prelude::*;
use sr2201::routing::{trace_broadcast, trace_unicast};
use sr2201::sim::PacketOutcome;
use std::sync::Arc;

/// Arbitrary small 2D/3D shapes with extents >= 2 (the facility's
/// requirement for clearing a fault).
fn shapes() -> impl Strategy<Value = Shape> {
    proptest::collection::vec(2u16..5, 2..=3).prop_map(|dims| Shape::new(&dims).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Unicast delivery + detour-serialization invariant under any single
    /// fault and any pair.
    #[test]
    fn unicast_always_delivered(shape in shapes(), fault_pick in any::<u64>(),
                                src_pick in any::<u64>(), dst_pick in any::<u64>()) {
        let net = Arc::new(MdCrossbar::build(shape.clone()));
        let sites = enumerate_single_faults(&net);
        let site = sites[(fault_pick as usize) % sites.len()];
        let faults = FaultSet::single(site);
        let scheme = Sr2201Routing::new(net.clone(), &faults).unwrap();
        let n = shape.num_pes();
        let src = (src_pick as usize) % n;
        let dst = (dst_pick as usize) % n;
        prop_assume!(src != dst && faults.pe_usable(src) && faults.pe_usable(dst));
        let h = Header::unicast(shape.coord_of(src), shape.coord_of(dst));
        let t = trace_unicast(&scheme, net.graph(), h, src).unwrap();
        prop_assert_eq!(t.steps.last().unwrap().node, Node::Pe(dst));
        // Detours always pass the D-XB (= S-XB): the serialization property.
        if t.used_detour() {
            let dxb = Node::Xbar(scheme.config().dxb());
            prop_assert!(t.nodes().any(|nd| nd == dxb));
        }
        // The faulty switch never appears on any route.
        prop_assert!(t.nodes().all(|nd| nd != site.node()));
    }

    /// Broadcast coverage invariant: exactly the usable PEs, exactly once.
    #[test]
    fn broadcast_exact_coverage(shape in shapes(), fault_pick in any::<u64>(),
                                src_pick in any::<u64>()) {
        let net = Arc::new(MdCrossbar::build(shape.clone()));
        let sites = enumerate_single_faults(&net);
        let site = sites[(fault_pick as usize) % sites.len()];
        let faults = FaultSet::single(site);
        let scheme = Sr2201Routing::new(net.clone(), &faults).unwrap();
        let n = shape.num_pes();
        let src = (src_pick as usize) % n;
        prop_assume!(faults.pe_usable(src));
        let t = trace_broadcast(&scheme, net.graph(), src, shape.coord_of(src)).unwrap();
        let mut got = t.delivered.clone();
        got.sort_unstable();
        let expect: Vec<usize> = (0..n).filter(|&p| faults.pe_usable(p)).collect();
        prop_assert_eq!(got, expect);
        prop_assert!(t.duplicates.is_empty());
    }

    /// Simulator conservation: every scheduled packet reaches a terminal
    /// state, and the run never deadlocks under the paper's scheme.
    #[test]
    fn sim_conserves_packets(shape in shapes(), seed in any::<u64>(), rate_pct in 1u32..5) {
        let net = Arc::new(MdCrossbar::build(shape.clone()));
        let faults = FaultSet::none();
        let scheme = Arc::new(Sr2201Routing::new(net.clone(), &faults).unwrap());
        let specs = sr2201::workloads::mixed_schedule(
            &shape,
            sr2201::workloads::TrafficPattern::UniformRandom,
            sr2201::workloads::OpenLoop {
                rate: rate_pct as f64 / 100.0,
                packet_flits: 6,
                window: 60,
                seed,
            },
            0.004,
            &faults,
        );
        let mut sim = Simulator::new(net.graph().clone(), scheme, SimConfig {
            arb_seed: seed,
            ..SimConfig::default()
        });
        for &s in &specs {
            sim.schedule(s);
        }
        let r = sim.run();
        prop_assert_eq!(&r.outcome, &SimOutcome::Completed);
        prop_assert_eq!(r.packets.len(), specs.len());
        for p in &r.packets {
            prop_assert_eq!(&p.outcome, &PacketOutcome::Delivered);
            prop_assert!(p.finished_at.unwrap() >= p.injected_at);
        }
        // Latency statistics are internally consistent.
        let sum: u64 = r.packets.iter().filter_map(|p| p.latency()).sum();
        prop_assert_eq!(sum, r.stats.latency_sum);
    }

    /// Determinism: identical inputs give identical results.
    #[test]
    fn sim_is_deterministic(seed in any::<u64>()) {
        let shape = Shape::fig2();
        let net = Arc::new(MdCrossbar::build(shape.clone()));
        let mk = || {
            let scheme = Arc::new(Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap());
            let mut sim = Simulator::new(net.graph().clone(), scheme, SimConfig {
                arb_seed: seed,
                ..SimConfig::default()
            });
            for src in 0..12usize {
                sim.schedule(InjectSpec {
                    src_pe: src,
                    header: Header::unicast(shape.coord_of(src), shape.coord_of((src + 5) % 12)),
                    flits: 5,
                    inject_at: (src % 3) as u64,
                });
            }
            sim.run()
        };
        let (a, b) = (mk(), mk());
        prop_assert_eq!(a.stats, b.stats);
        prop_assert_eq!(a.packets, b.packets);
    }
}
