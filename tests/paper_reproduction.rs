//! Cross-crate integration tests asserting the paper's headline results
//! end-to-end: topology claims, broadcast serialization, fault-tolerant
//! delivery, and the deadlock dichotomy of Figs. 9/10.

use sr2201::deadlock::verify_scheme;
use sr2201::deadlock::waitgraph::TrafficFamily;
use sr2201::prelude::*;
use sr2201::routing::{trace_broadcast, trace_unicast};
use sr2201::topology::metrics;
use std::sync::Arc;

#[test]
fn headline_port_count_claim() {
    // Sec. 3.1: d+1 router ports vs log2(n)+1 for a hypercube at 2048 PEs.
    assert_eq!(metrics::md_crossbar_router_ports(&Shape::sr2201_full()), 4);
    assert_eq!(metrics::hypercube_router_ports(2048), 12);
}

#[test]
fn headline_two_hop_diameter() {
    // "Any two PEs on a d-dimensional crossbar network can communicate with
    // a maximum of d hops on d crossbars."
    let net = Arc::new(MdCrossbar::build(Shape::new(&[8, 8]).unwrap()));
    let scheme = Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap();
    let shape = net.shape();
    for (src, dst) in [(0usize, 63usize), (7, 56), (12, 51)] {
        let h = Header::unicast(shape.coord_of(src), shape.coord_of(dst));
        let t = trace_unicast(&scheme, net.graph(), h, src).unwrap();
        assert!(t.xbar_hops() <= 2);
    }
}

#[test]
fn headline_broadcast_serializes_and_covers() {
    let net = Arc::new(MdCrossbar::build(Shape::fig2()));
    let shape = net.shape().clone();
    let scheme = Arc::new(Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap());
    let mut sim = Simulator::new(net.graph().clone(), scheme, SimConfig::default());
    for src in [0usize, 5, 10] {
        sim.schedule(InjectSpec {
            src_pe: src,
            header: Header::broadcast_request(shape.coord_of(src)),
            flits: 16,
            inject_at: 0,
        });
    }
    let r = sim.run();
    assert_eq!(r.outcome, SimOutcome::Completed);
    // Strict serialization: completion times are strictly ordered and
    // separated by at least the packet length.
    let mut finishes: Vec<u64> = r.packets.iter().map(|p| p.finished_at.unwrap()).collect();
    finishes.sort_unstable();
    for w in finishes.windows(2) {
        assert!(w[1] >= w[0] + 16, "{finishes:?}");
    }
    for p in &r.packets {
        assert_eq!(p.deliveries.len(), 12);
    }
}

#[test]
fn headline_single_fault_full_delivery_8x8() {
    // Sampled single faults on 8x8: every usable pair delivered, broadcasts
    // cover all survivors (the fig8 experiment does the exhaustive sweep).
    let net = Arc::new(MdCrossbar::build(Shape::new(&[8, 8]).unwrap()));
    let shape = net.shape().clone();
    let n = shape.num_pes();
    let sites = [
        FaultSite::Router(27),
        FaultSite::Xbar(XbarRef { dim: 0, line: 3 }),
        FaultSite::Xbar(XbarRef { dim: 1, line: 6 }),
        FaultSite::Pe(0),
    ];
    for site in sites {
        let faults = FaultSet::single(site);
        let s = Sr2201Routing::new(net.clone(), &faults).unwrap();
        for src in (0..n).step_by(5) {
            if !faults.pe_usable(src) {
                continue;
            }
            let bt = trace_broadcast(&s, net.graph(), src, shape.coord_of(src)).unwrap();
            assert_eq!(
                bt.delivered.len(),
                (0..n).filter(|&p| faults.pe_usable(p)).count(),
                "{site}"
            );
            for dst in 0..n {
                if src == dst || !faults.pe_usable(dst) {
                    continue;
                }
                let h = Header::unicast(shape.coord_of(src), shape.coord_of(dst));
                let t = trace_unicast(&s, net.graph(), h, src)
                    .unwrap_or_else(|e| panic!("{site}: {src}->{dst}: {e}"));
                assert_eq!(t.steps.last().unwrap().node, Node::Pe(dst));
            }
        }
    }
}

#[test]
fn headline_fig9_fig10_dichotomy() {
    // The paper's central claim, checked both statically and dynamically.
    let net = Arc::new(MdCrossbar::build(Shape::fig2()));
    let shape = net.shape().clone();
    let faults = FaultSet::single(FaultSite::Router(shape.index_of(Coord::new(&[1, 0]))));

    // Static: D-XB = S-XB acyclic; D-XB != S-XB cyclic.
    let good = Sr2201Routing::new(net.clone(), &faults).unwrap();
    assert!(good.config().deadlock_free());
    let verdict = verify_scheme(&net, &good, &faults, TrafficFamily::all());
    assert!(verdict.report.deadlock_free());

    let bad_cfg = RoutingConfig::for_faults(&shape, &faults)
        .unwrap()
        .with_separate_dxb(&faults);
    let bad = Sr2201Routing::with_config(net.clone(), bad_cfg.clone(), &faults);
    let verdict = verify_scheme(&net, &bad, &faults, TrafficFamily::all());
    assert!(!verdict.report.deadlock_free());

    // Dynamic: sweep injection offsets; the bad variant deadlocks somewhere,
    // the good one never does.
    let mut bad_deadlocked = false;
    for offset in 10..38u64 {
        for (separate, cfg) in [
            (true, bad_cfg.clone()),
            (false, RoutingConfig::for_faults(&shape, &faults).unwrap()),
        ] {
            let scheme = Arc::new(Sr2201Routing::with_config(net.clone(), cfg, &faults));
            let mut sim = Simulator::new(
                net.graph().clone(),
                scheme,
                SimConfig {
                    arb_seed: 1,
                    ..SimConfig::default()
                },
            );
            sim.schedule(InjectSpec {
                src_pe: 9,
                header: Header::broadcast_request(shape.coord_of(9)),
                flits: 24,
                inject_at: 0,
            });
            sim.schedule(InjectSpec {
                src_pe: 0,
                header: Header::unicast(Coord::new(&[0, 0]), Coord::new(&[1, 1])),
                flits: 24,
                inject_at: offset,
            });
            match sim.run().outcome {
                SimOutcome::Deadlock(_) => {
                    assert!(separate, "paper scheme deadlocked at offset {offset}");
                    bad_deadlocked = true;
                }
                SimOutcome::Completed => {}
                other => panic!("{other:?}"),
            }
        }
    }
    assert!(bad_deadlocked, "fig9 variant never deadlocked");
}

#[test]
fn headline_uniform_latency_beats_mesh() {
    // Sec. 3.1's performance claim at a moderate load.
    use sr2201::baselines::DirectDor;
    use sr2201::topology::mesh::{DirectNetwork, Wrap};
    use sr2201::workloads::{unicast_schedule, OpenLoop, TrafficPattern};
    let shape = Shape::new(&[8, 8]).unwrap();
    let specs = unicast_schedule(
        &shape,
        TrafficPattern::UniformRandom,
        OpenLoop {
            rate: 0.03,
            packet_flits: 8,
            window: 200,
            seed: 7,
        },
        &FaultSet::none(),
    );
    let run = |graph: &sr2201::topology::NetworkGraph, scheme: Arc<dyn sr2201::routing::Scheme>| {
        let mut sim = Simulator::new(graph.clone(), scheme, SimConfig::default());
        for &s in &specs {
            sim.schedule(s);
        }
        let r = sim.run();
        assert_eq!(r.outcome, SimOutcome::Completed);
        r.stats.mean_latency()
    };
    let mdx = Arc::new(MdCrossbar::build(shape.clone()));
    let mdx_lat = run(
        mdx.graph(),
        Arc::new(Sr2201Routing::new(mdx.clone(), &FaultSet::none()).unwrap()),
    );
    let mesh = Arc::new(DirectNetwork::build(shape, Wrap::Mesh));
    let mesh_lat = run(mesh.graph(), Arc::new(DirectDor::new(mesh.clone())));
    assert!(
        mdx_lat < mesh_lat,
        "md-crossbar {mdx_lat} !< mesh {mesh_lat}"
    );
}

#[test]
fn headline_full_scale_machine() {
    // Sec. 2: 2048 PEs with broadcast, unicast and a fault, deadlock-free.
    let net = Arc::new(MdCrossbar::build(Shape::sr2201_full()));
    let shape = net.shape().clone();
    let faults = FaultSet::single(FaultSite::Router(1000));
    let scheme = Arc::new(Sr2201Routing::new(net.clone(), &faults).unwrap());
    let mut sim = Simulator::new(net.graph().clone(), scheme, SimConfig::default());
    for src in (0..2048usize).step_by(17) {
        let dst = (src * 31 + 5) % 2048;
        if src != dst && faults.pe_usable(src) && faults.pe_usable(dst) {
            sim.schedule(InjectSpec {
                src_pe: src,
                header: Header::unicast(shape.coord_of(src), shape.coord_of(dst)),
                flits: 8,
                inject_at: (src % 7) as u64,
            });
        }
    }
    sim.schedule(InjectSpec {
        src_pe: 3,
        header: Header::broadcast_request(shape.coord_of(3)),
        flits: 8,
        inject_at: 2,
    });
    let r = sim.run();
    assert_eq!(r.outcome, SimOutcome::Completed);
    let bc = r.packets.last().unwrap();
    assert_eq!(bc.deliveries.len(), 2047); // everyone but the dead PE
}

#[test]
fn extension_o1turn_relieves_transpose_under_contention() {
    // The O1TURN extension (two orders, one lane each) must beat plain
    // dimension order on a transpose burst and still deliver everything.
    use sr2201::routing::O1TurnRouting;
    use sr2201::workloads::{permutation_schedule, TrafficPattern};
    let shape = Shape::new(&[8, 8]).unwrap();
    let net = Arc::new(MdCrossbar::build(shape.clone()));
    // Four back-to-back transpose waves.
    let mut specs = Vec::new();
    for wave in 0..4u64 {
        specs.extend(permutation_schedule(
            &shape,
            TrafficPattern::Transpose,
            8,
            wave * 4,
            1,
            &FaultSet::none(),
        ));
    }
    let run = |scheme: Arc<dyn sr2201::routing::Scheme>| {
        let mut sim = Simulator::new(net.graph().clone(), scheme, SimConfig::default());
        for &s in &specs {
            sim.schedule(s);
        }
        let r = sim.run();
        assert_eq!(r.outcome, SimOutcome::Completed);
        assert_eq!(r.stats.delivered, specs.len());
        r.stats.mean_latency()
    };
    let dor = run(Arc::new(
        Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap(),
    ));
    let o1 = run(Arc::new(O1TurnRouting::new(net.clone(), 7)));
    assert!(o1 < dor, "o1turn {o1} !< dimension-order {dor}");
}

#[test]
fn extension_vc_torus_baseline_is_deadlock_free_on_tornado() {
    // Tornado traffic maximizes wrap usage; the dateline discipline keeps
    // the torus baseline live where plain DOR wedges.
    use sr2201::baselines::DirectDor;
    use sr2201::topology::mesh::{DirectNetwork, Wrap};
    use sr2201::workloads::{permutation_schedule, TrafficPattern};
    let shape = Shape::new(&[8, 8]).unwrap();
    let torus = Arc::new(DirectNetwork::build(shape.clone(), Wrap::Torus));
    let mut specs = Vec::new();
    for wave in 0..3u64 {
        specs.extend(permutation_schedule(
            &shape,
            TrafficPattern::Tornado,
            12,
            wave * 2,
            1,
            &FaultSet::none(),
        ));
    }
    let s = Arc::new(DirectDor::with_dateline_vcs(torus.clone()));
    let mut sim = Simulator::new(torus.graph().clone(), s, SimConfig::default());
    for &sp in &specs {
        sim.schedule(sp);
    }
    let r = sim.run();
    assert_eq!(r.outcome, SimOutcome::Completed);
    assert_eq!(r.stats.delivered, specs.len());
}

#[test]
fn static_traces_match_simulated_routes() {
    // Two independent machineries compute routes: the contention-free
    // walker (used by the analyses) and the cycle-level engine (with
    // record_routes). For uncontended packets they must agree switch for
    // switch, under faults included.
    let net = Arc::new(MdCrossbar::build(Shape::new(&[5, 4]).unwrap()));
    let shape = net.shape().clone();
    let n = shape.num_pes();
    for faults in [
        FaultSet::none(),
        FaultSet::single(FaultSite::Router(7)),
        FaultSet::single(FaultSite::Xbar(XbarRef { dim: 1, line: 2 })),
    ] {
        let scheme = Arc::new(Sr2201Routing::new(net.clone(), &faults).unwrap());
        for src in 0..n {
            for dst in 0..n {
                if src == dst || !faults.pe_usable(src) || !faults.pe_usable(dst) {
                    continue;
                }
                let h = Header::unicast(shape.coord_of(src), shape.coord_of(dst));
                let expected: Vec<String> = trace_unicast(&*scheme, net.graph(), h, src)
                    .unwrap()
                    .nodes()
                    .map(|nd| nd.to_string())
                    .collect();
                let mut sim = Simulator::new(
                    net.graph().clone(),
                    scheme.clone(),
                    SimConfig {
                        record_routes: true,
                        ..SimConfig::default()
                    },
                );
                sim.schedule(InjectSpec {
                    src_pe: src,
                    header: h,
                    flits: 3,
                    inject_at: 0,
                });
                let r = sim.run();
                assert_eq!(r.outcome, SimOutcome::Completed);
                let simulated: Vec<String> = r
                    .route_of(PacketId(0))
                    .into_iter()
                    .map(|(nd, _)| nd)
                    .collect();
                assert_eq!(simulated, expected, "{src}->{dst} under {faults:?}");
            }
        }
    }
}

#[test]
fn flit_hops_equal_sum_of_path_lengths() {
    // Conservation: with uncontended unicasts, total flit-hops equals
    // sum over packets of (channels on path) x flits.
    let net = Arc::new(MdCrossbar::build(Shape::fig2()));
    let shape = net.shape().clone();
    let scheme = Arc::new(Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap());
    let mut sim = Simulator::new(net.graph().clone(), scheme.clone(), SimConfig::default());
    let mut expected = 0u64;
    let flits = 4u64;
    for (i, (src, dst)) in [(0usize, 11usize), (5, 2), (7, 7), (3, 8)]
        .iter()
        .enumerate()
    {
        let h = Header::unicast(shape.coord_of(*src), shape.coord_of(*dst));
        let t = trace_unicast(&*scheme, net.graph(), h, *src).unwrap();
        expected += (t.steps.len() as u64 - 1) * flits;
        sim.schedule(InjectSpec {
            src_pe: *src,
            header: h,
            flits: flits as usize,
            inject_at: (i * 40) as u64, // spaced out: zero contention
        });
    }
    let r = sim.run();
    assert_eq!(r.outcome, SimOutcome::Completed);
    assert_eq!(r.stats.flit_hops, expected);
}
