//! Cross-crate integration tests for the campaign subsystem: token
//! replayability, the headline zero-deadlock / deadlock-prone split, and
//! witness shrinking.

use sr2201::campaign::{
    enumerate_scenarios, run_campaign, run_scenario, shrink, CampaignConfig, Scenario, Workload,
    WorkloadKind,
};
use sr2201::fault::FaultSite;
use sr2201::topology::{Coord, Shape};

fn storm(scheme: &str, seed: u64) -> Scenario {
    Scenario::new(
        vec![4, 3],
        scheme,
        Workload::BroadcastStorm {
            sources: vec![0, 4, 8, 3, 7, 11],
            flits: 16,
        },
        seed,
    )
}

#[test]
fn tokens_roundtrip_through_reports() {
    let s = storm("sr2201", 3);
    let report = run_scenario(&s).unwrap();
    let decoded = Scenario::from_token(&report.token).unwrap();
    assert_eq!(decoded, s);
}

#[test]
fn replay_is_bit_identical() {
    // Same token -> same digest, across workload kinds and schemes.
    let shape = Shape::fig2();
    let faulty = shape.index_of(Coord::new(&[1, 0]));
    let scenarios = [
        storm("sr2201", 1),
        storm("naive-broadcast", 2),
        Scenario::new(
            vec![4, 3],
            "separate-dxb",
            sr2201::campaign::detour_stress_for(&shape, 24, 20),
            5,
        )
        .with_faults([FaultSite::Router(faulty)]),
    ];
    for s in scenarios {
        let a = run_scenario(&s).unwrap();
        let b = run_scenario(&Scenario::from_token(&a.token).unwrap()).unwrap();
        assert_eq!(a.digest, b.digest, "replay diverged for {s}");
        assert_eq!(a.outcome, b.outcome);
    }
}

#[test]
fn paper_scheme_never_deadlocks_in_single_fault_sweep() {
    let cfg = CampaignConfig {
        schemes: vec!["sr2201".to_string()],
        max_faults: 1,
        seeds: 4,
        ..CampaignConfig::default()
    };
    let result = run_campaign(enumerate_scenarios(&cfg).unwrap());
    assert!(!result.reports.is_empty());
    assert_eq!(result.deadlocks().count(), 0, "paper scheme deadlocked");
    // Everything either completed or was skipped as unconfigurable —
    // nothing hit the cycle limit.
    assert!(result.reports.iter().all(|r| r.outcome == "completed"));
}

#[test]
fn broken_variants_each_deadlock() {
    for scheme in ["naive-broadcast", "separate-dxb"] {
        // 16 seeds: the detour workload's injection offset rides on the
        // seed, and the Fig. 9 race needs offsets around 20 (seed 10+).
        let cfg = CampaignConfig {
            schemes: vec![scheme.to_string()],
            max_faults: 1,
            seeds: 16,
            workloads: vec![WorkloadKind::Storm, WorkloadKind::Detour],
            ..CampaignConfig::default()
        };
        let result = run_campaign(enumerate_scenarios(&cfg).unwrap());
        assert!(
            result.deadlocks().count() >= 1,
            "{scheme} never deadlocked in the sweep"
        );
        // Every deadlock row carries its wait-for cycle.
        for r in result.deadlocks() {
            let info = r.deadlock.as_ref().expect("deadlock row has cycle info");
            assert!(!info.cycle.is_empty());
        }
    }
}

#[test]
fn shrunk_witness_is_smaller_and_still_deadlocks() {
    let s = storm("naive-broadcast", 0);
    let report = shrink(&s).unwrap();
    assert!(report.strictly_smaller(), "no reduction: {report:?}");
    let replayed = run_scenario(&Scenario::from_token(&report.token).unwrap()).unwrap();
    assert!(
        replayed.is_deadlock(),
        "minimized witness no longer deadlocks"
    );
}
