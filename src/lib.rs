//! # sr2201 — deadlock-free fault-tolerant routing in the multi-dimensional crossbar
//!
//! A from-scratch Rust reproduction of *"Deadlock-free Fault-tolerant
//! Routing in the Multi-dimensional Crossbar Network and Its Implementation
//! for the Hitachi SR2201"* (Yasuda et al., IPPS 1997): the SR2201's
//! hyper-crossbar interconnect, its RC-bit routing protocol, the S-XB
//! serialized hardware broadcast, the hardware detour path selection
//! facility, and the paper's deadlock-freedom result (D-XB = S-XB) — plus a
//! cycle-level cut-through simulator, a static wait-graph deadlock
//! analyzer, the baselines the paper compares against, and an experiment
//! harness regenerating every figure-level result.
//!
//! This crate is an umbrella: it re-exports the workspace crates under
//! stable module names and hosts the runnable examples and the cross-crate
//! integration tests.
//!
//! ## Quick start
//!
//! ```
//! use sr2201::prelude::*;
//! use std::sync::Arc;
//!
//! // The paper's Fig. 2 network: a 4x3 two-dimensional crossbar.
//! let net = Arc::new(MdCrossbar::build(Shape::fig2()));
//!
//! // The deadlock-free fault-tolerant scheme with a faulty router at (1,0).
//! let shape = net.shape().clone();
//! let faults = FaultSet::single(FaultSite::Router(shape.index_of(Coord::new(&[1, 0]))));
//! let scheme = Sr2201Routing::new(net.clone(), &faults).unwrap();
//!
//! // Route around the fault: the packet detours through the D-XB (= S-XB).
//! let header = Header::unicast(Coord::new(&[0, 0]), Coord::new(&[1, 1]));
//! let trace = trace_unicast(&scheme, net.graph(), header, 0).unwrap();
//! assert!(trace.used_detour());
//! println!("{}", trace.pretty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Network topologies: the multi-dimensional crossbar and comparison
/// networks (re-export of `mdx-topology`).
pub mod topology {
    pub use mdx_topology::*;
}

/// Fault model and per-switch fault registers (re-export of `mdx-fault`).
pub mod fault {
    pub use mdx_fault::*;
}

/// The paper's routing schemes (re-export of `mdx-core`).
pub mod routing {
    pub use mdx_core::*;
}

/// The cycle-level cut-through simulator (re-export of `mdx-sim`).
pub mod sim {
    pub use mdx_sim::*;
}

/// Network interface adapter model: messages, segmentation, reassembly
/// (re-export of `mdx-nia`).
pub mod nia {
    pub use mdx_nia::*;
}

/// Static wait-graph deadlock analysis (re-export of `mdx-deadlock`).
pub mod deadlock {
    pub use mdx_deadlock::*;
}

/// Traffic generation (re-export of `mdx-workloads`).
pub mod workloads {
    pub use mdx_workloads::*;
}

/// Telemetry observers: channel metrics, Perfetto traces, stall probes
/// (re-export of `mdx-obs`).
pub mod obs {
    pub use mdx_obs::*;
}

/// Baseline networks and fault-handling strategies (re-export of
/// `mdx-baselines`).
pub mod baselines {
    pub use mdx_baselines::*;
}

/// Live reconfiguration: runtime fault events, the epoch-based
/// drain/reprogram/resume protocol, and transition deadlock safety
/// (re-export of `mdx-reconfig`).
pub mod reconfig {
    pub use mdx_reconfig::*;
}

/// Replayable experiment campaigns: scenario tokens, the parallel campaign
/// runner, and the deadlock-witness shrinker (re-export of `mdx-campaign`).
pub mod campaign {
    pub use mdx_campaign::*;
}

/// SLO engine: declarative objectives, multi-window burn-rate evaluation,
/// deterministic health reports and alert logs (re-export of
/// `mdx-health`).
pub mod health {
    pub use mdx_health::*;
}

/// The most commonly used items in one import.
pub mod prelude {
    pub use mdx_campaign::{run_scenario, Scenario, Workload};
    pub use mdx_core::{
        trace_broadcast, trace_unicast, Header, NaiveBroadcast, Packet, RouteChange, RoutingConfig,
        Scheme, Sr2201Routing,
    };
    pub use mdx_fault::{
        enumerate_single_faults, FaultEvent, FaultEventKind, FaultRegisters, FaultSet, FaultSite,
        FaultTimeline,
    };
    pub use mdx_reconfig::{run_reconfig, ReconfigReport, ReconfigSpec, RecoveryPolicy};
    pub use mdx_sim::{InjectSpec, PacketId, SimConfig, SimObserver, SimOutcome, Simulator};
    pub use mdx_topology::{Coord, MdCrossbar, Node, Shape, XbarRef};
}
