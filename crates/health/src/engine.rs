//! The burn-rate evaluator.
//!
//! [`HealthEngine`] holds one ring of violation samples per objective and
//! reduces each [`SignalFrame`](crate::SignalFrame) it observes into a
//! [`HealthReport`]. The evaluation is the SRE multi-window burn-rate
//! scheme, on logical ticks instead of wall clock so replays are
//! byte-identical:
//!
//! - every tick, each objective's signal is compared against its
//!   threshold; the boolean lands in a ring capped at the spec's slow
//!   window;
//! - `burn = violating fraction over the window / error budget` — burn
//!   1.0 means the budget is being consumed exactly at the tolerated
//!   rate, burn 20 means twenty times too fast;
//! - **breach** requires the fast *and* slow windows to both exceed their
//!   thresholds (fast alone is noise, slow alone is stale history);
//!   exactly one of them — or an instantaneous `warn=` crossing — is a
//!   **warn**; otherwise **pass**.
//!
//! Status *transitions* emit [`Alert`]s, which serialize one-per-line
//! into the JSONL alert log. A tick with a missing signal records no
//! sample for that objective (explicitly "no observation", never a free
//! pass that ages violations out).

use crate::frame::SignalFrame;
use crate::spec::SloSpec;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Overall or per-objective verdict, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Status {
    /// Within budget.
    Pass,
    /// One burn window over threshold, or an instantaneous warn crossing.
    Warn,
    /// Both burn windows over threshold.
    Breach,
}

// Hand-rolled so the JSON form is the same lowercase word the verdict
// stamp and alert log use ("pass"/"warn"/"breach"), not a variant name.
impl Serialize for Status {
    fn to_value(&self) -> serde_json::Value {
        serde_json::Value::Str(self.as_str().to_string())
    }
}

impl Deserialize for Status {
    fn from_value(v: &serde_json::Value) -> Result<Status, serde::de::Error> {
        match v {
            serde_json::Value::Str(s) => match s.as_str() {
                "pass" => Ok(Status::Pass),
                "warn" => Ok(Status::Warn),
                "breach" => Ok(Status::Breach),
                other => Err(serde::de::Error::custom(format!(
                    "unknown status `{other}`"
                ))),
            },
            _ => Err(serde::de::Error::expected("a status string")),
        }
    }
}

impl Status {
    /// Lowercase name, as rendered in verdicts and alerts.
    pub fn as_str(&self) -> &'static str {
        match self {
            Status::Pass => "pass",
            Status::Warn => "warn",
            Status::Breach => "breach",
        }
    }

    /// The `health_status` gauge encoding: pass=0, warn=1, breach=2.
    pub fn gauge_value(&self) -> f64 {
        match self {
            Status::Pass => 0.0,
            Status::Warn => 1.0,
            Status::Breach => 2.0,
        }
    }
}

/// One objective's slice of a [`HealthReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveReport {
    /// The objective's id (from the spec).
    pub id: String,
    /// The signal it watches.
    pub signal: String,
    /// The signal's value this tick (absent if the frame lacked it).
    pub value: Option<f64>,
    /// Whether this tick's value violated the threshold.
    pub violating: bool,
    /// Burn rate over the fast window.
    pub fast_burn: f64,
    /// Burn rate over the slow window.
    pub slow_burn: f64,
    /// Fraction of the slow-window error budget still unspent, in [0, 1].
    pub budget_remaining: f64,
    /// The objective's verdict.
    pub status: Status,
}

/// A status transition, one JSONL line in the alert log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// Logical tick the transition happened on.
    pub tick: u64,
    /// The objective that transitioned.
    pub objective: String,
    /// Status before.
    pub from: Status,
    /// Status after.
    pub to: Status,
    /// The signal value that tipped it (absent if the signal was missing).
    pub value: Option<f64>,
    /// Fast-window burn at the transition.
    pub fast_burn: f64,
    /// Slow-window burn at the transition.
    pub slow_burn: f64,
}

/// One tick's full verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// Logical tick this report evaluates.
    pub tick: u64,
    /// Worst per-objective status.
    pub status: Status,
    /// Per-objective detail, in spec order.
    pub objectives: Vec<ObjectiveReport>,
    /// Status transitions fired by this tick, in spec order.
    pub alerts: Vec<Alert>,
}

struct ObjectiveState {
    history: VecDeque<bool>,
    status: Status,
}

/// The stateful evaluator; one per SLO spec.
pub struct HealthEngine {
    spec: SloSpec,
    states: Vec<ObjectiveState>,
    tick: u64,
}

fn burn_over(history: &VecDeque<bool>, window: usize, budget: f64) -> f64 {
    let n = history.len().min(window);
    if n == 0 {
        return 0.0;
    }
    let violations = history.iter().rev().take(n).filter(|v| **v).count();
    (violations as f64 / n as f64) / budget
}

impl HealthEngine {
    /// A fresh engine for `spec` (all objectives passing, tick 0 next).
    pub fn new(spec: SloSpec) -> HealthEngine {
        let states = spec
            .objectives
            .iter()
            .map(|_| ObjectiveState {
                history: VecDeque::new(),
                status: Status::Pass,
            })
            .collect();
        HealthEngine {
            spec,
            states,
            tick: 0,
        }
    }

    /// The spec this engine evaluates.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// Evaluates one frame, advancing the logical tick. The frame's own
    /// `tick` is ignored; the engine's monotonic counter is authoritative
    /// (what makes replays deterministic regardless of caller clocks).
    pub fn observe(&mut self, frame: &SignalFrame) -> HealthReport {
        let tick = self.tick;
        self.tick += 1;
        let mut objectives = Vec::with_capacity(self.spec.objectives.len());
        let mut alerts = Vec::new();
        for (o, st) in self.spec.objectives.iter().zip(self.states.iter_mut()) {
            let value = frame.get(&o.signal);
            let mut violating = false;
            let mut warn_instant = false;
            if let Some(v) = value {
                violating = o.violates(v);
                warn_instant = o.warns(v);
                if st.history.len() == self.spec.slow_window {
                    st.history.pop_front();
                }
                st.history.push_back(violating);
            }
            let fast_burn = burn_over(&st.history, self.spec.fast_window, o.budget);
            let slow_burn = burn_over(&st.history, self.spec.slow_window, o.budget);
            let slow_n = st.history.len().min(self.spec.slow_window);
            let spent = st.history.iter().rev().take(slow_n).filter(|v| **v).count() as f64
                / (o.budget * self.spec.slow_window as f64);
            let budget_remaining = (1.0 - spent).clamp(0.0, 1.0);
            let fast_hot = fast_burn >= self.spec.fast_burn;
            let slow_hot = slow_burn >= self.spec.slow_burn;
            let status = if fast_hot && slow_hot {
                Status::Breach
            } else if fast_hot || slow_hot || warn_instant {
                Status::Warn
            } else {
                Status::Pass
            };
            if status != st.status {
                alerts.push(Alert {
                    tick,
                    objective: o.id.clone(),
                    from: st.status,
                    to: status,
                    value,
                    fast_burn,
                    slow_burn,
                });
                st.status = status;
            }
            objectives.push(ObjectiveReport {
                id: o.id.clone(),
                signal: o.signal.clone(),
                value,
                violating,
                fast_burn,
                slow_burn,
                budget_remaining,
                status,
            });
        }
        let status = objectives
            .iter()
            .map(|o| o.status)
            .max()
            .unwrap_or(Status::Pass);
        HealthReport {
            tick,
            status,
            objectives,
            alerts,
        }
    }
}

/// An instantaneous (single-sample) verdict for one row or cell: breach
/// on violation, warn on a `warn=` crossing, pass otherwise — no burn
/// windows involved. Returns the overall status plus the violated or
/// warning objectives in spec order.
pub fn evaluate_frame(spec: &SloSpec, frame: &SignalFrame) -> (Status, Vec<ObjectiveReport>) {
    let mut worst = Status::Pass;
    let mut notes = Vec::new();
    for o in &spec.objectives {
        let value = frame.get(&o.signal);
        let (violating, warning) = match value {
            Some(v) => (o.violates(v), o.warns(v)),
            None => (false, false),
        };
        let status = if violating {
            Status::Breach
        } else if warning {
            Status::Warn
        } else {
            Status::Pass
        };
        worst = worst.max(status);
        if status != Status::Pass {
            notes.push(ObjectiveReport {
                id: o.id.clone(),
                signal: o.signal.clone(),
                value,
                violating,
                fast_burn: 0.0,
                slow_burn: 0.0,
                budget_remaining: if violating { 0.0 } else { 1.0 },
                status,
            });
        }
    }
    (worst, notes)
}

/// Renders an instantaneous verdict as the JSON value embedded in
/// `campaign run --slo` / `campaign tournament --slo` output rows:
/// `{"status": "...", "violations": [{"objective", "signal", "value",
/// "threshold", "severity"}]}`.
pub fn verdict_value(spec: &SloSpec, frame: &SignalFrame) -> serde_json::Value {
    use serde_json::Value;
    let (status, notes) = evaluate_frame(spec, frame);
    let violations: Vec<Value> = notes
        .iter()
        .map(|n| {
            let o = spec
                .objectives
                .iter()
                .find(|o| o.id == n.id)
                .expect("note ids come from the spec");
            Value::Map(vec![
                ("objective".to_string(), Value::Str(n.id.clone())),
                ("signal".to_string(), Value::Str(n.signal.clone())),
                (
                    "value".to_string(),
                    n.value.map(Value::F64).unwrap_or(Value::Null),
                ),
                ("threshold".to_string(), Value::F64(o.threshold)),
                (
                    "direction".to_string(),
                    Value::Str(o.direction.as_str().to_string()),
                ),
                (
                    "severity".to_string(),
                    Value::Str(n.status.as_str().to_string()),
                ),
            ])
        })
        .collect();
    Value::Map(vec![
        (
            "status".to_string(),
            Value::Str(status.as_str().to_string()),
        ),
        ("violations".to_string(), Value::Seq(violations)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(text: &str) -> SloSpec {
        SloSpec::parse(text).unwrap()
    }

    fn frame(pairs: &[(&str, f64)]) -> SignalFrame {
        let mut f = SignalFrame::new(0);
        for (k, v) in pairs {
            f.set(*k, *v);
        }
        f
    }

    #[test]
    fn sustained_violation_walks_pass_warn_breach() {
        let s = spec(
            "window fast=2 slow=4\nburn fast=2.0 slow=1.0\n\
             objective lat latency ceiling 100 budget=0.5\n",
        );
        let mut e = HealthEngine::new(s);
        let ok = frame(&[("latency", 50.0)]);
        let hot = frame(&[("latency", 500.0)]);
        let r = e.observe(&ok);
        assert_eq!(r.status, Status::Pass);
        assert!(r.alerts.is_empty());
        // One violation: fast burn = (1/2)/0.5 = 1.0 (< 2.0, cool), slow
        // burn = (1/2)/0.5 = 1.0 over the 2 samples seen (hot) -> exactly
        // one window hot is a warn.
        let r = e.observe(&hot);
        assert_eq!(r.objectives[0].fast_burn, 1.0);
        assert_eq!(r.objectives[0].slow_burn, 1.0);
        assert_eq!(r.status, Status::Warn);
        assert_eq!(r.alerts.len(), 1);
        assert_eq!(r.alerts[0].from, Status::Pass);
        assert_eq!(r.alerts[0].to, Status::Warn);
        // A second violation heats the fast window too: breach.
        let r = e.observe(&hot);
        assert_eq!(r.objectives[0].fast_burn, 2.0);
        assert!(r.objectives[0].slow_burn >= 1.0);
        assert_eq!(r.status, Status::Breach);
        assert_eq!(r.alerts[0].to, Status::Breach);
        // Recovery: clean ticks cool the fast window first, then the slow
        // window ages the violations out entirely.
        let r = e.observe(&ok);
        assert!(r.status < Status::Breach);
        for _ in 0..4 {
            e.observe(&ok);
        }
        assert_eq!(e.observe(&ok).status, Status::Pass);
    }

    #[test]
    fn breach_requires_both_windows() {
        let s = spec(
            "window fast=1 slow=10\nburn fast=1.0 slow=1.0\n\
             objective lat latency ceiling 100 budget=0.2\n",
        );
        let mut e = HealthEngine::new(s);
        for _ in 0..9 {
            assert_eq!(e.observe(&frame(&[("latency", 10.0)])).status, Status::Pass);
        }
        // First violation: fast window (1 tick) is fully hot, the slow
        // window has 1/10 violating = budget exactly -> slow is hot too at
        // burn 0.5? no: (1/10)/0.2 = 0.5 < 1.0 -> warn only.
        let r = e.observe(&frame(&[("latency", 900.0)]));
        assert_eq!(r.objectives[0].fast_burn, 5.0);
        assert_eq!(r.objectives[0].slow_burn, 0.5);
        assert_eq!(r.status, Status::Warn);
    }

    #[test]
    fn missing_signal_records_no_sample() {
        let s = spec("window fast=2 slow=4\nobjective lat latency ceiling 100\n");
        let mut e = HealthEngine::new(s);
        e.observe(&frame(&[("latency", 500.0)]));
        // Three frames without the signal: history must not grow, the old
        // violation must not age out.
        for _ in 0..3 {
            let r = e.observe(&frame(&[]));
            assert_eq!(r.objectives[0].value, None);
            assert!(r.objectives[0].fast_burn > 0.0);
        }
    }

    #[test]
    fn warn_threshold_fires_instantly() {
        let s = spec("objective lat latency ceiling 100 warn=80\n");
        let mut e = HealthEngine::new(s);
        let r = e.observe(&frame(&[("latency", 90.0)]));
        assert_eq!(r.status, Status::Warn);
        assert!(!r.objectives[0].violating);
        let (st, notes) = evaluate_frame(e.spec(), &frame(&[("latency", 90.0)]));
        assert_eq!(st, Status::Warn);
        assert_eq!(notes.len(), 1);
    }

    #[test]
    fn reports_and_alerts_replay_byte_identically() {
        let text = "window fast=2 slow=6\n\
                    objective lat latency ceiling 100 budget=0.2\n\
                    objective del delivery floor 0.9\n";
        let run = || {
            let mut e = HealthEngine::new(spec(text));
            let mut reports = String::new();
            let mut alerts = String::new();
            for i in 0..12u64 {
                let lat = if i % 3 == 0 { 400.0 } else { 40.0 };
                let del = if i > 8 { 0.5 } else { 0.99 };
                let r = e.observe(&frame(&[("latency", lat), ("delivery", del)]));
                reports.push_str(&serde_json::to_string(&r).unwrap());
                reports.push('\n');
                for a in &r.alerts {
                    alerts.push_str(&serde_json::to_string(a).unwrap());
                    alerts.push('\n');
                }
            }
            (reports, alerts)
        };
        let (r1, a1) = run();
        let (r2, a2) = run();
        assert_eq!(r1, r2);
        assert_eq!(a1, a2);
        assert!(!a1.is_empty());
        // Alert lines round-trip through the shim parser.
        let first: Alert = serde_json::from_str(a1.lines().next().unwrap()).unwrap();
        assert_eq!(first.objective, "lat");
    }

    #[test]
    fn budget_remaining_drains_and_clamps() {
        let s = spec("window fast=2 slow=4\nobjective lat latency ceiling 100 budget=0.25\n");
        let mut e = HealthEngine::new(s);
        let r = e.observe(&frame(&[("latency", 900.0)]));
        // 1 violation / (0.25 * 4) = full budget spent.
        assert_eq!(r.objectives[0].budget_remaining, 0.0);
        let mut e2 = HealthEngine::new(spec(
            "window fast=2 slow=4\nobjective lat latency ceiling 100 budget=0.5\n",
        ));
        let r = e2.observe(&frame(&[("latency", 10.0)]));
        assert_eq!(r.objectives[0].budget_remaining, 1.0);
    }

    #[test]
    fn instantaneous_verdict_names_the_violated_objective() {
        let s =
            spec("objective no-deadlock deadlock ceiling 0\nobjective del delivery floor 0.9\n");
        let v = verdict_value(&s, &frame(&[("deadlock", 1.0), ("delivery", 0.99)]));
        let json = serde_json::to_string(&v).unwrap();
        assert!(json.contains("\"status\":\"breach\""), "{json}");
        assert!(json.contains("\"objective\":\"no-deadlock\""), "{json}");
        assert!(!json.contains("\"objective\":\"del\""), "{json}");
        let v = verdict_value(&s, &frame(&[("deadlock", 0.0), ("delivery", 0.99)]));
        assert!(serde_json::to_string(&v)
            .unwrap()
            .contains("\"status\":\"pass\""));
    }
}
