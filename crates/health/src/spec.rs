//! Declarative SLO specifications.
//!
//! A spec is a line-oriented text file, one directive per line, `#`
//! comments and blank lines ignored:
//!
//! ```text
//! # Serve-mode SLOs for the storm demo.
//! window fast=5 slow=20
//! burn fast=2.0 slow=1.0
//! objective lat-p99    latency_p99    ceiling 500   budget=0.05 warn=400
//! objective no-deadlock deadlock_rate ceiling 0.01  budget=0.01
//! objective delivery   delivery_ratio floor  0.95
//! ```
//!
//! Every `objective` names a signal (a key looked up in the
//! [`crate::SignalFrame`] under evaluation), a direction (`ceiling` means
//! the signal must stay at or below the threshold, `floor` at or above),
//! the threshold itself, and optionally an error budget (`budget=F`, the
//! tolerated violating fraction of evaluation ticks; default
//! [`DEFAULT_BUDGET`]) and an instantaneous warning threshold (`warn=V`).
//! Parsing is strict: unknown directives, malformed numbers, and duplicate
//! objective ids are errors carrying the 1-based line number.

use serde::{Deserialize, Serialize};

/// Default error budget: tolerated violating fraction of ticks.
pub const DEFAULT_BUDGET: f64 = 0.05;

/// Default fast (short) burn-rate window, in evaluation ticks.
pub const DEFAULT_FAST_WINDOW: usize = 5;

/// Default slow (long) burn-rate window, in evaluation ticks.
pub const DEFAULT_SLOW_WINDOW: usize = 20;

/// Default fast-window burn-rate threshold.
pub const DEFAULT_FAST_BURN: f64 = 2.0;

/// Default slow-window burn-rate threshold.
pub const DEFAULT_SLOW_BURN: f64 = 1.0;

/// Which side of the threshold is healthy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// The signal must stay at or below the threshold.
    Ceiling,
    /// The signal must stay at or above the threshold.
    Floor,
}

impl Direction {
    /// Short lowercase name (as written in spec files).
    pub fn as_str(&self) -> &'static str {
        match self {
            Direction::Ceiling => "ceiling",
            Direction::Floor => "floor",
        }
    }
}

/// One declarative objective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Objective {
    /// Stable identifier (named in alerts and verdicts).
    pub id: String,
    /// Signal key looked up in the evaluated [`crate::SignalFrame`].
    pub signal: String,
    /// Healthy side of the threshold.
    pub direction: Direction,
    /// The threshold itself.
    pub threshold: f64,
    /// Error budget: tolerated violating fraction of evaluation ticks.
    pub budget: f64,
    /// Optional instantaneous warning threshold (same direction).
    pub warn: Option<f64>,
}

impl Objective {
    /// Whether `value` violates the objective's threshold.
    pub fn violates(&self, value: f64) -> bool {
        match self.direction {
            Direction::Ceiling => value > self.threshold,
            Direction::Floor => value < self.threshold,
        }
    }

    /// Whether `value` crosses the instantaneous warning threshold.
    pub fn warns(&self, value: f64) -> bool {
        match (self.warn, self.direction) {
            (Some(w), Direction::Ceiling) => value > w,
            (Some(w), Direction::Floor) => value < w,
            (None, _) => false,
        }
    }
}

/// A parsed SLO specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloSpec {
    /// The objectives, in file order (evaluation and alert order).
    pub objectives: Vec<Objective>,
    /// Fast burn-rate window, in evaluation ticks.
    pub fast_window: usize,
    /// Slow burn-rate window, in evaluation ticks.
    pub slow_window: usize,
    /// Fast-window burn threshold (breach requires both).
    pub fast_burn: f64,
    /// Slow-window burn threshold (breach requires both).
    pub slow_burn: f64,
}

impl Default for SloSpec {
    fn default() -> Self {
        SloSpec {
            objectives: Vec::new(),
            fast_window: DEFAULT_FAST_WINDOW,
            slow_window: DEFAULT_SLOW_WINDOW,
            fast_burn: DEFAULT_FAST_BURN,
            slow_burn: DEFAULT_SLOW_BURN,
        }
    }
}

/// A parse failure, carrying the 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError {
    /// 1-based line the error was found on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "slo spec line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SpecError {}

fn err(line: usize, message: impl Into<String>) -> SpecError {
    SpecError {
        line,
        message: message.into(),
    }
}

fn parse_num(line: usize, what: &str, tok: &str) -> Result<f64, SpecError> {
    tok.parse::<f64>()
        .map_err(|_| err(line, format!("{what} is not a number: {tok:?}")))
        .and_then(|v| {
            if v.is_finite() {
                Ok(v)
            } else {
                Err(err(line, format!("{what} must be finite: {tok:?}")))
            }
        })
}

impl SloSpec {
    /// Parses the line-oriented spec format described in the module docs.
    pub fn parse(text: &str) -> Result<SloSpec, SpecError> {
        let mut spec = SloSpec::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let body = raw.split('#').next().unwrap_or("").trim();
            if body.is_empty() {
                continue;
            }
            let toks: Vec<&str> = body.split_whitespace().collect();
            match toks[0] {
                "window" => {
                    for t in &toks[1..] {
                        if let Some(v) = t.strip_prefix("fast=") {
                            let n = parse_num(line, "fast window", v)?;
                            if n < 1.0 || n.fract() != 0.0 {
                                return Err(err(line, "fast window must be a positive integer"));
                            }
                            spec.fast_window = n as usize;
                        } else if let Some(v) = t.strip_prefix("slow=") {
                            let n = parse_num(line, "slow window", v)?;
                            if n < 1.0 || n.fract() != 0.0 {
                                return Err(err(line, "slow window must be a positive integer"));
                            }
                            spec.slow_window = n as usize;
                        } else {
                            return Err(err(line, format!("unknown window option {t:?}")));
                        }
                    }
                }
                "burn" => {
                    for t in &toks[1..] {
                        if let Some(v) = t.strip_prefix("fast=") {
                            spec.fast_burn = parse_num(line, "fast burn", v)?;
                        } else if let Some(v) = t.strip_prefix("slow=") {
                            spec.slow_burn = parse_num(line, "slow burn", v)?;
                        } else {
                            return Err(err(line, format!("unknown burn option {t:?}")));
                        }
                    }
                }
                "objective" => {
                    if toks.len() < 5 {
                        return Err(err(
                            line,
                            "objective needs: objective <id> <signal> ceiling|floor <threshold>",
                        ));
                    }
                    let id = toks[1].to_string();
                    if spec.objectives.iter().any(|o| o.id == id) {
                        return Err(err(line, format!("duplicate objective id {id:?}")));
                    }
                    let signal = toks[2].to_string();
                    let direction = match toks[3] {
                        "ceiling" => Direction::Ceiling,
                        "floor" => Direction::Floor,
                        other => {
                            return Err(err(
                                line,
                                format!("direction must be ceiling or floor, got {other:?}"),
                            ))
                        }
                    };
                    let threshold = parse_num(line, "threshold", toks[4])?;
                    let mut budget = DEFAULT_BUDGET;
                    let mut warn = None;
                    for t in &toks[5..] {
                        if let Some(v) = t.strip_prefix("budget=") {
                            budget = parse_num(line, "budget", v)?;
                            if !(budget > 0.0 && budget <= 1.0) {
                                return Err(err(line, "budget must be in (0, 1]"));
                            }
                        } else if let Some(v) = t.strip_prefix("warn=") {
                            warn = Some(parse_num(line, "warn threshold", v)?);
                        } else {
                            return Err(err(line, format!("unknown objective option {t:?}")));
                        }
                    }
                    spec.objectives.push(Objective {
                        id,
                        signal,
                        direction,
                        threshold,
                        budget,
                        warn,
                    });
                }
                other => return Err(err(line, format!("unknown directive {other:?}"))),
            }
        }
        if spec.fast_window > spec.slow_window {
            return Err(err(
                text.lines().count(),
                "fast window must not exceed slow window",
            ));
        }
        if spec.objectives.is_empty() {
            return Err(err(text.lines().count().max(1), "spec has no objectives"));
        }
        Ok(spec)
    }

    /// Reads and parses a spec file.
    pub fn load(path: &std::path::Path) -> Result<SloSpec, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        SloSpec::parse(&text).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_spec_with_comments_and_options() {
        let spec = SloSpec::parse(
            "# serve SLOs\n\
             window fast=3 slow=12   # ticks\n\
             burn fast=1.5 slow=0.9\n\
             objective lat-p99 latency_p99 ceiling 500 budget=0.1 warn=400\n\
             \n\
             objective delivery delivery_ratio floor 0.95\n",
        )
        .unwrap();
        assert_eq!(spec.fast_window, 3);
        assert_eq!(spec.slow_window, 12);
        assert_eq!(spec.fast_burn, 1.5);
        assert_eq!(spec.slow_burn, 0.9);
        assert_eq!(spec.objectives.len(), 2);
        let o = &spec.objectives[0];
        assert_eq!(o.id, "lat-p99");
        assert_eq!(o.direction, Direction::Ceiling);
        assert_eq!(o.budget, 0.1);
        assert_eq!(o.warn, Some(400.0));
        assert!(o.violates(501.0));
        assert!(!o.violates(500.0));
        assert!(o.warns(450.0));
        assert!(!o.warns(399.0));
        let d = &spec.objectives[1];
        assert_eq!(d.budget, DEFAULT_BUDGET);
        assert!(d.violates(0.94));
        assert!(!d.violates(0.95));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = SloSpec::parse("window fast=3\nobjective a b sideways 1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("ceiling or floor"), "{e}");
        let e = SloSpec::parse("objective a sig ceiling nope\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = SloSpec::parse("frobnicate\n").unwrap_err();
        assert!(e.to_string().contains("unknown directive"), "{e}");
    }

    #[test]
    fn rejects_duplicates_empty_and_inverted_windows() {
        let dup = "objective a s ceiling 1\nobjective a s ceiling 2\n";
        assert!(SloSpec::parse(dup)
            .unwrap_err()
            .to_string()
            .contains("duplicate"));
        assert!(SloSpec::parse("# nothing\n")
            .unwrap_err()
            .to_string()
            .contains("no objectives"));
        let inv = "window fast=30 slow=10\nobjective a s ceiling 1\n";
        assert!(SloSpec::parse(inv)
            .unwrap_err()
            .to_string()
            .contains("must not exceed"));
        let bad_budget = "objective a s ceiling 1 budget=0\n";
        assert!(SloSpec::parse(bad_budget)
            .unwrap_err()
            .to_string()
            .contains("budget"));
    }
}
