//! # mdx-health — the SLO engine
//!
//! PRs 2–8 gave the SR2201 stack its raw signals: a metrics registry
//! with Prometheus exposition, request spans, windowed stream telemetry,
//! latency attribution. This crate is the layer that *consumes* them and
//! renders a verdict, the way the paper's operators judged the real
//! machine: is the network still serving its users within budget?
//!
//! Three pieces:
//!
//! - [`SloSpec`] ([`spec`]) — declarative objectives parsed from a
//!   line-oriented file: latency percentile ceilings, deadlock budgets,
//!   delivery-ratio floors, backlog and saturation limits — anything
//!   expressible as `signal (ceiling|floor) threshold` with an error
//!   budget.
//! - [`SignalFrame`] ([`frame`]) — one evaluation tick of telemetry,
//!   flattened from `mdx-metrics` snapshots, `mdx-obs` window reports, or
//!   hand-set row statistics into a sorted finite `name -> f64` map.
//! - [`HealthEngine`] ([`engine`]) — SRE-style multi-window burn-rate
//!   evaluation over logical ticks, producing deterministic
//!   [`HealthReport`]s and transition [`Alert`]s (the JSONL alert log).
//!
//! Determinism is the design constraint throughout: no wall clock, no
//! randomness, ordered maps, spec-ordered evaluation — the same token or
//! stream spec evaluated twice under the same SLO file produces
//! byte-identical verdicts and alert logs, so health reports are
//! replayable evidence, not ephemeral monitoring state.
//!
//! ```
//! use mdx_health::{HealthEngine, SignalFrame, SloSpec, Status};
//!
//! let spec = SloSpec::parse(
//!     "window fast=2 slow=6\n\
//!      objective no-deadlock deadlock_rate ceiling 0.01 budget=0.05\n",
//! )
//! .unwrap();
//! let mut engine = HealthEngine::new(spec);
//! let mut calm = SignalFrame::new(0);
//! calm.set("deadlock_rate", 0.0);
//! assert_eq!(engine.observe(&calm).status, Status::Pass);
//! let mut storm = SignalFrame::new(1);
//! storm.set("deadlock_rate", 1.0);
//! let report = engine.observe(&storm);
//! assert_eq!(report.status, Status::Breach);
//! assert_eq!(report.alerts[0].objective, "no-deadlock");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod frame;
pub mod spec;

pub use engine::{
    evaluate_frame, verdict_value, Alert, HealthEngine, HealthReport, ObjectiveReport, Status,
};
pub use frame::{histogram_quantile, SignalFrame};
pub use spec::{
    Direction, Objective, SloSpec, SpecError, DEFAULT_BUDGET, DEFAULT_FAST_BURN,
    DEFAULT_FAST_WINDOW, DEFAULT_SLOW_BURN, DEFAULT_SLOW_WINDOW,
};
