//! Signal frames: the flat `name -> value` view the engine evaluates.
//!
//! A [`SignalFrame`] is one evaluation tick's worth of telemetry, reduced
//! to a sorted map of finite `f64` signals. Adapters flatten the stack's
//! native telemetry shapes into frames:
//!
//! - [`SignalFrame::from_snapshot`] — an `mdx-metrics` [`Snapshot`]:
//!   counters sum across series, gauges take the series value, histograms
//!   expand into `_p50`/`_p95`/`_p99`/`_count`/`_sum`/`_mean` estimates;
//!   labeled series additionally appear under Prometheus-selector keys
//!   (`name{verb="run"}`).
//! - [`SignalFrame::from_window_report`] — an `mdx-obs` [`WindowReport`]:
//!   delivery ratio, backlog, saturation flag, latency totals.
//!
//! Frames are ordered (BTreeMap) and reject non-finite values, so the
//! same inputs always produce the same frame — the determinism the
//! replayable health reports lean on.

use mdx_metrics::{SampleValue, Snapshot};
use mdx_obs::WindowReport;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One evaluation tick's worth of telemetry, flattened.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SignalFrame {
    /// Logical evaluation tick (monotonic; wall-clock-free).
    pub tick: u64,
    /// Signal values, sorted by name. Only finite values are stored.
    pub signals: BTreeMap<String, f64>,
}

/// Estimates quantile `q` from cumulative-ready histogram buckets: the
/// upper bound of the bucket the quantile falls in (the overflow bucket
/// reports the largest finite bound — a floor, not an invention).
pub fn histogram_quantile(bounds: &[f64], buckets: &[u64], q: f64) -> Option<f64> {
    let total: u64 = buckets.iter().sum();
    if total == 0 || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let rank = (q * total as f64).ceil().max(1.0) as u64;
    let mut cum = 0u64;
    for (i, b) in buckets.iter().enumerate() {
        cum += b;
        if cum >= rank {
            return match bounds.get(i) {
                Some(bound) => Some(*bound),
                None => bounds.last().copied(), // overflow bucket
            };
        }
    }
    bounds.last().copied()
}

impl SignalFrame {
    /// An empty frame at the given tick.
    pub fn new(tick: u64) -> SignalFrame {
        SignalFrame {
            tick,
            signals: BTreeMap::new(),
        }
    }

    /// Sets a signal; non-finite values are dropped (a missing signal is
    /// explicit "no observation", NaN smuggled into JSON is not).
    pub fn set(&mut self, name: impl Into<String>, value: f64) -> &mut Self {
        if value.is_finite() {
            self.signals.insert(name.into(), value);
        }
        self
    }

    /// Looks a signal up.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.signals.get(name).copied()
    }

    /// Copies every signal of `other` into this frame (later wins).
    pub fn merge(&mut self, other: &SignalFrame) -> &mut Self {
        for (k, v) in &other.signals {
            self.signals.insert(k.clone(), *v);
        }
        self
    }

    /// Flattens a metrics registry snapshot (see module docs for the
    /// naming scheme).
    pub fn from_snapshot(tick: u64, snap: &Snapshot) -> SignalFrame {
        let mut f = SignalFrame::new(tick);
        for fam in &snap.families {
            let mut counter_sum = 0u64;
            let mut saw_counter = false;
            // Family-level histogram aggregate: series with matching
            // bounds sum elementwise, so a labeled latency family still
            // yields one bare `name_p99` signal.
            let mut agg: Option<(Vec<f64>, Vec<u64>, u64, f64)> = None;
            for s in &fam.series {
                let sel = selector(&fam.name, &s.labels);
                match &s.value {
                    SampleValue::Counter(v) => {
                        saw_counter = true;
                        counter_sum += v;
                        f.set(sel, *v as f64);
                    }
                    SampleValue::Gauge(v) => {
                        f.set(sel, *v);
                        // Unlabeled gauge: `sel` already is the bare name.
                        if !s.labels.is_empty() {
                            f.set(fam.name.clone(), *v);
                        }
                    }
                    SampleValue::Histogram {
                        bounds,
                        buckets,
                        count,
                        sum,
                        ..
                    } => {
                        for (suffix, q) in [("_p50", 0.50), ("_p95", 0.95), ("_p99", 0.99)] {
                            if let Some(v) = histogram_quantile(bounds, buckets, q) {
                                f.set(format!("{sel}{suffix}"), v);
                            }
                        }
                        f.set(format!("{sel}_count"), *count as f64);
                        f.set(format!("{sel}_sum"), *sum);
                        if *count > 0 {
                            f.set(format!("{sel}_mean"), *sum / *count as f64);
                        }
                        match &mut agg {
                            None => {
                                agg = Some((bounds.clone(), buckets.clone(), *count, *sum));
                            }
                            Some((ab, abk, ac, asum)) if *ab == *bounds => {
                                for (t, b) in abk.iter_mut().zip(buckets) {
                                    *t += b;
                                }
                                *ac += count;
                                *asum += sum;
                            }
                            Some(_) => {} // mismatched bounds: skip
                        }
                    }
                }
            }
            if saw_counter {
                f.set(fam.name.clone(), counter_sum as f64);
            }
            if let Some((bounds, buckets, count, sum)) = agg {
                let labeled = fam
                    .series
                    .first()
                    .map(|s| !s.labels.is_empty())
                    .unwrap_or(false);
                // Unlabeled single-series histograms already wrote these
                // keys; only labeled families need the aggregate view.
                if labeled {
                    for (suffix, q) in [("_p50", 0.50), ("_p95", 0.95), ("_p99", 0.99)] {
                        if let Some(v) = histogram_quantile(&bounds, &buckets, q) {
                            f.set(format!("{}{suffix}", fam.name), v);
                        }
                    }
                    f.set(format!("{}_count", fam.name), count as f64);
                    f.set(format!("{}_sum", fam.name), sum);
                    if count > 0 {
                        f.set(format!("{}_mean", fam.name), sum / count as f64);
                    }
                }
            }
        }
        f
    }

    /// Flattens a windowed stream report.
    pub fn from_window_report(tick: u64, rep: &WindowReport) -> SignalFrame {
        let mut f = SignalFrame::new(tick);
        f.set("delivery_ratio", rep.delivery_ratio());
        f.set("injected", rep.totals.injected as f64);
        f.set("finished", rep.totals.finished as f64);
        f.set("latency_max", rep.totals.latency_max as f64);
        f.set("mean_latency", rep.totals.mean_latency()); // NaN dropped
        f.set(
            "saturated",
            if rep.saturated_at.is_some() { 1.0 } else { 0.0 },
        );
        f.set("dropped_windows", rep.dropped_windows as f64);
        let peak = rep.windows.iter().map(|w| w.backlog).max().unwrap_or(0);
        f.set("peak_backlog", peak as f64);
        if let Some(last) = rep.windows.last() {
            f.set("backlog", last.backlog as f64);
            f.set("window_delivery_fraction", last.delivery_fraction());
        }
        f
    }
}

fn selector(name: &str, labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{name}{{{}}}", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdx_metrics::Registry;
    use mdx_obs::{WindowRow, WindowTotals};

    #[test]
    fn quantile_estimator_picks_bucket_upper_bounds() {
        let bounds = [1.0, 10.0, 100.0];
        let buckets = [5, 3, 1, 1]; // +overflow
        assert_eq!(histogram_quantile(&bounds, &buckets, 0.5), Some(1.0));
        assert_eq!(histogram_quantile(&bounds, &buckets, 0.8), Some(10.0));
        assert_eq!(histogram_quantile(&bounds, &buckets, 0.9), Some(100.0));
        // Overflow bucket floors at the largest finite bound.
        assert_eq!(histogram_quantile(&bounds, &buckets, 1.0), Some(100.0));
        assert_eq!(histogram_quantile(&bounds, &[0, 0, 0, 0], 0.5), None);
    }

    #[test]
    fn snapshot_flattens_counters_gauges_and_histograms() {
        let reg = Registry::new();
        reg.counter_with("mdx_req_total", "reqs", &[("verb", "run")])
            .add(3);
        reg.counter_with("mdx_req_total", "reqs", &[("verb", "stats")])
            .inc();
        reg.gauge("mdx_idle", "idle").set(0.25);
        let h = reg.histogram("mdx_lat", "lat", &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(5.0);
        h.observe(50.0);
        let f = SignalFrame::from_snapshot(7, &reg.snapshot());
        assert_eq!(f.tick, 7);
        assert_eq!(f.get("mdx_req_total"), Some(4.0));
        assert_eq!(f.get("mdx_req_total{verb=\"run\"}"), Some(3.0));
        assert_eq!(f.get("mdx_idle"), Some(0.25));
        assert_eq!(f.get("mdx_lat_p50"), Some(10.0));
        assert_eq!(f.get("mdx_lat_p99"), Some(10.0)); // overflow floors
        assert_eq!(f.get("mdx_lat_count"), Some(4.0));
    }

    #[test]
    fn labeled_histogram_family_aggregates_across_series() {
        let reg = Registry::new();
        let run = reg.histogram_with("mdx_req_s", "lat", &[1.0, 10.0], &[("verb", "run")]);
        let stats = reg.histogram_with("mdx_req_s", "lat", &[1.0, 10.0], &[("verb", "stats")]);
        for _ in 0..9 {
            run.observe(0.5);
        }
        stats.observe(5.0);
        let f = SignalFrame::from_snapshot(0, &reg.snapshot());
        // Per-series quantiles and the family-level aggregate both exist.
        assert_eq!(f.get("mdx_req_s{verb=\"run\"}_p99"), Some(1.0));
        assert_eq!(f.get("mdx_req_s_count"), Some(10.0));
        assert_eq!(f.get("mdx_req_s_p50"), Some(1.0));
        assert_eq!(f.get("mdx_req_s_p99"), Some(10.0));
    }

    #[test]
    fn window_report_flattens_without_nans() {
        let rep = WindowReport {
            window: 10,
            windows: vec![WindowRow {
                start: 0,
                injected: 4,
                finished: 2,
                latency_sum: 10,
                backlog: 2,
            }],
            dropped_windows: 0,
            totals: WindowTotals {
                injected: 4,
                finished: 2,
                latency_sum: 10,
                latency_max: 7,
            },
            saturated_at: None,
        };
        let f = SignalFrame::from_window_report(1, &rep);
        assert_eq!(f.get("delivery_ratio"), Some(0.5));
        assert_eq!(f.get("peak_backlog"), Some(2.0));
        assert_eq!(f.get("saturated"), Some(0.0));
        // A report with zero finishes drops the NaN mean rather than
        // storing it.
        let empty = WindowReport {
            totals: WindowTotals::default(),
            windows: vec![],
            ..rep
        };
        let f = SignalFrame::from_window_report(2, &empty);
        assert_eq!(f.get("mean_latency"), None);
        assert_eq!(f.get("delivery_ratio"), Some(1.0));
    }

    #[test]
    fn frames_are_deterministic_and_ordered() {
        let mut a = SignalFrame::new(0);
        a.set("z", 1.0).set("a", 2.0).set("bad", f64::NAN);
        let mut b = SignalFrame::new(0);
        b.set("a", 2.0).set("z", 1.0);
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        assert_eq!(a.get("bad"), None);
    }
}
