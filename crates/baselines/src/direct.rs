//! Dimension-order routing on direct (mesh/torus) networks.

use mdx_core::{Action, Branch, DropReason, Header, RouteChange, Scheme};
use mdx_topology::mesh::{DirectNetwork, Wrap};
use mdx_topology::{Coord, Node};
use std::sync::Arc;

/// Dimension-order (e-cube) routing over a [`DirectNetwork`].
///
/// Mesh: always deadlock-free (the classic result). Torus: takes the
/// shorter way around each ring. Without virtual channels the wrap links
/// close dependency cycles, so that baseline can deadlock under load —
/// exactly why the T3D needed virtual channels; enable
/// [`DirectDor::with_dateline_vcs`] for the classic two-lane dateline
/// scheme (Dally-Seitz): packets travel each ring on lane 0 and switch to
/// lane 1 after crossing the wrap link, breaking the ring's cycle. The
/// paper's crossbar-per-line topology needs neither.
#[derive(Debug, Clone)]
pub struct DirectDor {
    net: Arc<DirectNetwork>,
    dateline_vcs: bool,
}

impl DirectDor {
    /// Builds the scheme (single lane).
    pub fn new(net: Arc<DirectNetwork>) -> DirectDor {
        DirectDor {
            net,
            dateline_vcs: false,
        }
    }

    /// Builds the scheme with the two-lane dateline discipline
    /// (deadlock-free on a torus).
    pub fn with_dateline_vcs(net: Arc<DirectNetwork>) -> DirectDor {
        DirectDor {
            net,
            dateline_vcs: true,
        }
    }

    /// The network routed on.
    pub fn network(&self) -> &DirectNetwork {
        &self.net
    }

    /// Next coordinate plus the virtual lane of the link toward it.
    ///
    /// Lane discipline: within each unidirectional ring, the packet entered
    /// the ring at its *source* coordinate of that dimension (dimension
    /// order guarantees this); it rides lane 0 until it takes the wrap link
    /// and lane 1 afterwards — so the dependency chain around the ring
    /// never closes on one lane.
    fn next_hop(&self, c: Coord, src: Coord, dest: Coord) -> Option<(Coord, u8)> {
        let shape = self.net.shape();
        for dim in 0..shape.d() {
            if c.get(dim) == dest.get(dim) {
                continue;
            }
            let e = shape.extent(dim) as i32;
            let fwd = (dest.get(dim) as i32 - c.get(dim) as i32).rem_euclid(e);
            let positive = match self.net.wrap() {
                Wrap::Mesh => dest.get(dim) > c.get(dim),
                Wrap::Torus => fwd <= e - fwd,
            };
            let next = self.net.neighbor(c, dim, positive)?;
            let vc = if !self.dateline_vcs || self.net.wrap() == Wrap::Mesh {
                0
            } else {
                let entry = src.get(dim);
                let p = c.get(dim);
                // Has the packet wrapped already, or is this step the wrap?
                let crossed = if positive {
                    p < entry || next.get(dim) < p
                } else {
                    p > entry || next.get(dim) > p
                };
                u8::from(crossed)
            };
            return Some((next, vc));
        }
        None
    }
}

impl Scheme for DirectDor {
    fn name(&self) -> String {
        let kind = match self.net.wrap() {
            Wrap::Mesh => "mesh",
            Wrap::Torus => "torus",
        };
        if self.dateline_vcs {
            format!("{kind} dimension-order + dateline VCs")
        } else {
            format!("{kind} dimension-order")
        }
    }

    fn max_vcs(&self) -> u8 {
        if self.dateline_vcs {
            2
        } else {
            1
        }
    }

    fn decide(&self, at: Node, came_from: Option<Node>, header: &Header) -> Action {
        if header.rc != RouteChange::Normal {
            return Action::Drop(DropReason::ProtocolViolation);
        }
        match at {
            Node::Pe(p) => match came_from {
                None => Action::Forward(vec![Branch {
                    to: Node::Router(p),
                    header: *header,
                    vc: 0,
                }]),
                Some(Node::Router(_)) => Action::Deliver,
                Some(_) => Action::Drop(DropReason::ProtocolViolation),
            },
            Node::Router(r) => {
                let c = self.net.shape().coord_of(r);
                match self.next_hop(c, header.src, header.dest) {
                    None => Action::Forward(vec![Branch {
                        to: Node::Pe(r),
                        header: *header,
                        vc: 0,
                    }]),
                    Some((nc, vc)) => Action::Forward(vec![Branch {
                        to: Node::Router(self.net.shape().index_of(nc)),
                        header: *header,
                        vc,
                    }]),
                }
            }
            Node::Xbar(_) => Action::Drop(DropReason::ProtocolViolation),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdx_core::trace::trace_unicast;
    use mdx_sim::{InjectSpec, SimConfig, SimOutcome, Simulator};
    use mdx_topology::Shape;

    fn mesh(w: u16, h: u16) -> Arc<DirectNetwork> {
        Arc::new(DirectNetwork::build(
            Shape::new(&[w, h]).unwrap(),
            Wrap::Mesh,
        ))
    }

    fn torus(w: u16, h: u16) -> Arc<DirectNetwork> {
        Arc::new(DirectNetwork::build(
            Shape::new(&[w, h]).unwrap(),
            Wrap::Torus,
        ))
    }

    #[test]
    fn mesh_routes_all_pairs() {
        let net = mesh(4, 3);
        let s = DirectDor::new(net.clone());
        let shape = net.shape();
        for src in 0..12 {
            for dst in 0..12 {
                let h = Header::unicast(shape.coord_of(src), shape.coord_of(dst));
                let t = trace_unicast(&s, net.graph(), h, src).unwrap();
                assert_eq!(t.steps.last().unwrap().node, Node::Pe(dst));
                // Hop count = Manhattan distance + 2 PE links.
                let dist = net.distance(shape.coord_of(src), shape.coord_of(dst));
                assert_eq!(t.steps.len(), dist + 3);
            }
        }
    }

    #[test]
    fn torus_takes_short_way() {
        let net = torus(4, 3);
        let s = DirectDor::new(net.clone());
        let shape = net.shape();
        let h = Header::unicast(shape.coord_of(0), shape.coord_of(3));
        let t = trace_unicast(&s, net.graph(), h, 0).unwrap();
        // One wrap hop instead of three forward hops.
        assert_eq!(t.steps.len(), 1 + 3);
    }

    #[test]
    fn mesh_simulation_uniform_load_completes() {
        let net = mesh(4, 4);
        let s = Arc::new(DirectDor::new(net.clone()));
        let mut sim = Simulator::new(net.graph().clone(), s, SimConfig::default());
        let shape = net.shape();
        for src in 0..16usize {
            let dst = (src * 5 + 3) % 16;
            if dst != src {
                sim.schedule(InjectSpec {
                    src_pe: src,
                    header: Header::unicast(shape.coord_of(src), shape.coord_of(dst)),
                    flits: 6,
                    inject_at: (src % 4) as u64,
                });
            }
        }
        let r = sim.run();
        assert_eq!(r.outcome, SimOutcome::Completed);
    }

    #[test]
    fn dateline_vc_assignment() {
        // 5-node ring, src 1 -> dest 4 the short way is backwards (1 -> 0 ->
        // wrap -> 4): lane 0 before the wrap, lane 1 on and after it.
        let net = Arc::new(DirectNetwork::build(
            Shape::new(&[5, 1]).unwrap(),
            Wrap::Torus,
        ));
        let s = DirectDor::with_dateline_vcs(net);
        let src = Coord::new(&[1, 0]);
        let dest = Coord::new(&[4, 0]);
        let (n1, v1) = s.next_hop(src, src, dest).unwrap();
        assert_eq!((n1.get(0), v1), (0, 0));
        let (n2, v2) = s.next_hop(n1, src, dest).unwrap();
        assert_eq!((n2.get(0), v2), (4, 1)); // the wrap step rides lane 1
    }

    #[test]
    fn torus_without_vcs_deadlocks_but_dateline_vcs_do_not() {
        // Heavy wrap-crossing traffic on an 8x8 torus: every PE sends
        // halfway around both rings. Plain shortest-way DOR closes ring
        // dependency cycles; the dateline discipline breaks them.
        let net = torus(8, 8);
        let shape = net.shape().clone();
        let schedule = |sim: &mut Simulator| {
            for src in 0..shape.num_pes() {
                let c = shape.coord_of(src);
                let dst = Coord::new(&[(c.get(0) + 4) % 8, (c.get(1) + 4) % 8]);
                sim.schedule(InjectSpec {
                    src_pe: src,
                    header: Header::unicast(c, dst),
                    flits: 12,
                    inject_at: (src % 3) as u64,
                });
            }
        };
        let mut plain_deadlocks = 0;
        for seed in 0..8u64 {
            let s = Arc::new(DirectDor::new(net.clone()));
            let mut sim = Simulator::new(
                net.graph().clone(),
                s,
                SimConfig {
                    arb_seed: seed,
                    ..SimConfig::default()
                },
            );
            schedule(&mut sim);
            if matches!(sim.run().outcome, SimOutcome::Deadlock(_)) {
                plain_deadlocks += 1;
            }
            // Same workload with dateline VCs always completes.
            let s = Arc::new(DirectDor::with_dateline_vcs(net.clone()));
            let mut sim = Simulator::new(
                net.graph().clone(),
                s,
                SimConfig {
                    arb_seed: seed,
                    ..SimConfig::default()
                },
            );
            schedule(&mut sim);
            let r = sim.run();
            assert_eq!(r.outcome, SimOutcome::Completed, "seed {seed}");
            assert_eq!(r.stats.delivered, shape.num_pes());
        }
        assert!(
            plain_deadlocks > 0,
            "plain torus DOR never deadlocked on wrap-heavy traffic"
        );
    }

    #[test]
    fn vc_torus_delivers_all_pairs_under_load() {
        let net = torus(4, 4);
        let shape = net.shape().clone();
        let s = Arc::new(DirectDor::with_dateline_vcs(net.clone()));
        let mut sim = Simulator::new(net.graph().clone(), s, SimConfig::default());
        let mut count = 0;
        for src in 0..16usize {
            for dst in 0..16usize {
                if src != dst && (src + dst) % 3 == 0 {
                    sim.schedule(InjectSpec {
                        src_pe: src,
                        header: Header::unicast(shape.coord_of(src), shape.coord_of(dst)),
                        flits: 8,
                        inject_at: (src % 5) as u64,
                    });
                    count += 1;
                }
            }
        }
        let r = sim.run();
        assert_eq!(r.outcome, SimOutcome::Completed);
        assert_eq!(r.stats.delivered, count);
    }

    #[test]
    fn broadcast_header_is_rejected() {
        let net = mesh(4, 3);
        let s = DirectDor::new(net);
        let h = Header::broadcast_request(Coord::new(&[0, 0]));
        assert_eq!(
            s.decide(Node::Pe(0), None, &h),
            Action::Drop(DropReason::ProtocolViolation)
        );
    }
}
