//! CRAY-T3D-style routing-table fault tolerance on the MD crossbar.
//!
//! Sec. 1 of the paper: *"When a part of the network is faulty, the routing
//! information in the look-up table of each node is rewritten so that no
//! packet would pass the faulty point."* This baseline reproduces that
//! strategy on the same multi-dimensional crossbar so the comparison
//! isolates the fault-handling mechanism: a service processor computes
//! shortest surviving next-hops for every (switch, destination) pair and
//! the switches follow the table blindly.
//!
//! Contrast with the paper's facility: the table costs O(switches x PEs)
//! state and a global rewrite on every fault, and the rerouted turns are no
//! longer dimension-ordered, so the deadlock-freedom of X-Y routing is
//! forfeited (the experiments probe for this in the simulator).

use mdx_core::{Action, Branch, DropReason, Header, RouteChange, Scheme};
use mdx_fault::FaultSet;
use mdx_topology::{MdCrossbar, Node, NodeId};
use std::collections::VecDeque;
use std::sync::Arc;

/// Per-(switch, destination) next-hop table routing.
#[derive(Debug, Clone)]
pub struct TableRouting {
    net: Arc<MdCrossbar>,
    /// `table[node.0 as usize][dest_pe]` = next node, or `None` when the
    /// destination is unreachable from that switch.
    table: Vec<Vec<Option<NodeId>>>,
}

impl TableRouting {
    /// Computes the table for `faults` by reverse BFS from every
    /// destination PE over the surviving switches (deterministic: channel
    /// order breaks ties, so all paths are shortest).
    pub fn new(net: Arc<MdCrossbar>, faults: &FaultSet) -> TableRouting {
        let g = net.graph();
        let n_pes = net.shape().num_pes();
        let mut table = vec![vec![None; n_pes]; g.num_nodes()];
        #[allow(clippy::needless_range_loop)] // dst indexes rows of `table` too
        for dst in 0..n_pes {
            if !faults.pe_usable(dst) {
                continue;
            }
            // BFS from the destination PE following channels backwards;
            // next[v] = the neighbor of v one step closer to dst.
            let target = net.pe(dst);
            let mut dist = vec![u32::MAX; g.num_nodes()];
            let mut q = VecDeque::new();
            dist[target.0 as usize] = 0;
            q.push_back(target);
            while let Some(u) = q.pop_front() {
                for &ch in g.incoming(u) {
                    let v = g.channel(ch).src;
                    if faults.disables(g.node(v)) {
                        continue;
                    }
                    if dist[v.0 as usize] == u32::MAX {
                        dist[v.0 as usize] = dist[u.0 as usize] + 1;
                        table[v.0 as usize][dst] = Some(u);
                        q.push_back(v);
                    }
                }
            }
        }
        TableRouting { net, table }
    }

    /// The network routed on.
    pub fn network(&self) -> &MdCrossbar {
        &self.net
    }

    /// Total table entries — the paper's hardware-cost contrast with the
    /// few-bits-per-switch fault registers.
    pub fn table_entries(&self) -> usize {
        self.table.iter().map(|row| row.len()).sum()
    }
}

impl Scheme for TableRouting {
    fn name(&self) -> String {
        "t3d-style table rerouting".to_string()
    }

    fn decide(&self, at: Node, came_from: Option<Node>, header: &Header) -> Action {
        if header.rc != RouteChange::Normal {
            return Action::Drop(DropReason::ProtocolViolation);
        }
        let g = self.net.graph();
        let Some(at_id) = g.id_of(at) else {
            return Action::Drop(DropReason::ProtocolViolation);
        };
        let dst = self.net.shape().index_of(header.dest);
        if at == Node::Pe(dst) {
            return match came_from {
                None => Action::Deliver, // self-send
                Some(_) => Action::Deliver,
            };
        }
        match self.table[at_id.0 as usize][dst] {
            Some(next) => Action::Forward(vec![Branch {
                to: g.node(next),
                header: *header,
                vc: 0,
            }]),
            None => Action::Drop(DropReason::DestinationFaulty),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdx_core::trace::trace_unicast;
    use mdx_fault::{enumerate_single_faults, FaultSite};
    use mdx_topology::{Coord, Shape};

    fn net() -> Arc<MdCrossbar> {
        Arc::new(MdCrossbar::build(Shape::fig2()))
    }

    #[test]
    fn fault_free_table_is_shortest_path() {
        let n = net();
        let t = TableRouting::new(n.clone(), &FaultSet::none());
        let shape = n.shape();
        for src in 0..12 {
            for dst in 0..12 {
                let h = Header::unicast(shape.coord_of(src), shape.coord_of(dst));
                let tr = trace_unicast(&t, n.graph(), h, src).unwrap();
                assert_eq!(tr.steps.last().unwrap().node, Node::Pe(dst));
                // Shortest: 2 crossbar traversals max.
                assert!(tr.xbar_hops() <= 2);
            }
        }
    }

    #[test]
    fn reroutes_around_every_single_fault() {
        let n = net();
        let shape = n.shape().clone();
        for site in enumerate_single_faults(&n) {
            let faults = FaultSet::single(site);
            let t = TableRouting::new(n.clone(), &faults);
            for src in 0..12 {
                for dst in 0..12 {
                    if src == dst || !faults.pe_usable(src) || !faults.pe_usable(dst) {
                        continue;
                    }
                    let h = Header::unicast(shape.coord_of(src), shape.coord_of(dst));
                    let tr = trace_unicast(&t, n.graph(), h, src)
                        .unwrap_or_else(|e| panic!("{site}: {src}->{dst}: {e}"));
                    assert_eq!(tr.steps.last().unwrap().node, Node::Pe(dst));
                    // The faulty switch never appears on the route.
                    assert!(tr.nodes().all(|nd| nd != site.node()), "{site}");
                }
            }
        }
    }

    #[test]
    fn unreachable_destination_is_dropped() {
        let n = net();
        let faults = FaultSet::single(FaultSite::Router(5));
        let t = TableRouting::new(n.clone(), &faults);
        let shape = n.shape();
        let h = Header::unicast(shape.coord_of(0), shape.coord_of(5));
        match trace_unicast(&t, n.graph(), h, 0) {
            Err(mdx_core::TraceError::Dropped(DropReason::DestinationFaulty)) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn table_cost_scales_with_network() {
        let n = net();
        let t = TableRouting::new(n.clone(), &FaultSet::none());
        // 31 switches x 12 destinations.
        assert_eq!(t.table_entries(), 31 * 12);
        let _ = Coord::ORIGIN;
    }
}
