//! Software-mediated baselines.
//!
//! * [`sp2_software_schedule`] — IBM-SP2-style degradation: once a switch is
//!   faulty, *"all data transmission must be controlled by the software"*
//!   (paper Sec. 1). We model the software path as a fixed per-packet
//!   protocol-stack overhead on injection plus a per-source serialization
//!   (the CPU sends one packet at a time), applied to an existing schedule.
//! * [`software_tree_broadcast`] — the broadcast machines without hardware
//!   support run: a binomial tree of unicasts, each round launched only
//!   when its parent's packet has fully arrived. Latency is measured by
//!   chaining cycle-level simulations round by round, so contention inside
//!   each round is fully modeled.

use mdx_core::{Header, Scheme};
use mdx_sim::{InjectSpec, SimConfig, SimOutcome, Simulator};
use mdx_topology::{NetworkGraph, Shape};
use std::sync::Arc;

/// Per-packet software protocol overhead, in cycles. The SP2's software
/// path cost on the order of tens of microseconds against a ~1 us hardware
/// network; with our unit link time, 40 cycles per packet is a conservative
/// stand-in (the experiments sweep it).
pub const DEFAULT_SOFTWARE_OVERHEAD: u64 = 40;

/// Applies the software-transmission model to a schedule: each packet's
/// injection is delayed by `overhead` cycles of protocol processing, and
/// packets from the same source are serialized `overhead` cycles apart
/// (the CPU handles one send at a time).
pub fn sp2_software_schedule(specs: &[InjectSpec], overhead: u64) -> Vec<InjectSpec> {
    // Output position i corresponds to input position i (callers match
    // per-packet results back to the original requests), so transform in
    // place rather than regrouping.
    let mut by_source: std::collections::HashMap<usize, Vec<usize>> =
        std::collections::HashMap::new();
    for (i, s) in specs.iter().enumerate() {
        by_source.entry(s.src_pe).or_default().push(i);
    }
    let mut out = specs.to_vec();
    for (_, mut idxs) in by_source {
        // Serve each source's sends in request order (stable on ties).
        idxs.sort_by_key(|&i| (specs[i].inject_at, i));
        let mut cpu_free_at = 0u64;
        for i in idxs {
            let start = specs[i].inject_at.max(cpu_free_at) + overhead;
            out[i].inject_at = start;
            cpu_free_at = start;
        }
    }
    out
}

/// Result of a software tree broadcast measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeBroadcastResult {
    /// Cycle at which the last PE received the payload.
    pub completion: u64,
    /// Number of sequential rounds (log2 of the PE count, rounded up).
    pub rounds: usize,
    /// Total unicast packets sent.
    pub messages: usize,
}

/// Measures a binomial-tree software broadcast from `src` under `scheme`:
/// in round `r`, every PE that already holds the payload forwards it to its
/// partner `2^r` away (in PE-index space). Each round is simulated with all
/// of its sends concurrent; the next round starts when the slowest arrival
/// of the current round lands, plus `per_hop_software` cycles of software
/// handling at the receiving CPU.
pub fn software_tree_broadcast(
    graph: &NetworkGraph,
    scheme: Arc<dyn Scheme>,
    shape: &Shape,
    src: usize,
    flits: usize,
    per_hop_software: u64,
    simcfg: SimConfig,
) -> TreeBroadcastResult {
    let n = shape.num_pes();
    let mut holders: Vec<(usize, u64)> = vec![(src, 0)]; // (pe, ready time)
    let mut rounds = 0usize;
    let mut messages = 0usize;
    let mut span = 1usize;
    while span < n {
        // This round: each holder sends to holder_index + span (relative to
        // src, wrapping over the index space) if that PE lacks the payload.
        let mut sim = Simulator::new(graph.clone(), scheme.clone(), simcfg);
        let mut sends: Vec<(usize, usize, u64)> = Vec::new(); // (src, dst, t)
        for &(pe, ready) in &holders {
            let rel = (pe + n - src) % n;
            if rel < span {
                let dst = (pe + span) % n;
                let dst_rel = (dst + n - src) % n;
                if dst_rel >= span && dst_rel < 2 * span && dst != pe {
                    sends.push((pe, dst, ready + per_hop_software));
                }
            }
        }
        if sends.is_empty() {
            span *= 2;
            continue;
        }
        for &(s, d, t) in &sends {
            sim.schedule(InjectSpec {
                src_pe: s,
                header: Header::unicast(shape.coord_of(s), shape.coord_of(d)),
                flits,
                inject_at: t,
            });
        }
        let r = sim.run();
        assert_eq!(
            r.outcome,
            SimOutcome::Completed,
            "software broadcast round must complete"
        );
        for (i, &(_, d, _)) in sends.iter().enumerate() {
            let finished = r.packets[i].finished_at.expect("round packet finished");
            holders.push((d, finished));
        }
        messages += sends.len();
        rounds += 1;
        span *= 2;
    }
    let completion = holders.iter().map(|&(_, t)| t).max().unwrap_or(0);
    TreeBroadcastResult {
        completion,
        rounds,
        messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdx_core::Sr2201Routing;
    use mdx_fault::FaultSet;
    use mdx_topology::{Coord, MdCrossbar};

    #[test]
    fn sp2_schedule_adds_overhead_and_serializes() {
        let h = Header::unicast(Coord::new(&[0, 0]), Coord::new(&[1, 0]));
        let specs = vec![
            InjectSpec {
                src_pe: 0,
                header: h,
                flits: 4,
                inject_at: 0,
            },
            InjectSpec {
                src_pe: 0,
                header: h,
                flits: 4,
                inject_at: 0,
            },
            InjectSpec {
                src_pe: 1,
                header: h,
                flits: 4,
                inject_at: 5,
            },
        ];
        let out = sp2_software_schedule(&specs, 40);
        assert_eq!(out.len(), 3);
        // Positions are preserved: out[i] is specs[i] with a new time.
        assert_eq!(out[0].inject_at, 40);
        assert_eq!(out[1].inject_at, 80);
        assert_eq!(out[2].inject_at, 45);
        for (a, b) in specs.iter().zip(&out) {
            assert_eq!(a.src_pe, b.src_pe);
            assert_eq!(a.flits, b.flits);
        }
    }

    #[test]
    fn tree_broadcast_reaches_everyone() {
        let net = Arc::new(MdCrossbar::build(Shape::fig2()));
        let scheme: Arc<dyn Scheme> =
            Arc::new(Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap());
        let r = software_tree_broadcast(
            net.graph(),
            scheme,
            net.shape(),
            3,
            4,
            10,
            SimConfig::default(),
        );
        // 12 PEs: 4 rounds (span 1,2,4,8), 11 messages.
        assert_eq!(r.rounds, 4);
        assert_eq!(r.messages, 11);
        assert!(r.completion > 0);
    }

    #[test]
    fn tree_broadcast_slower_than_rounds_times_hop() {
        let net = Arc::new(MdCrossbar::build(Shape::fig2()));
        let scheme: Arc<dyn Scheme> =
            Arc::new(Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap());
        let sw = software_tree_broadcast(
            net.graph(),
            scheme,
            net.shape(),
            0,
            4,
            10,
            SimConfig::default(),
        );
        // Lower bound: rounds * software overhead.
        assert!(sw.completion >= 4 * 10);
    }
}
