//! # mdx-baselines
//!
//! The comparison systems the paper measures itself against:
//!
//! * [`DirectDor`] — dimension-order routing on 2D/3D mesh and torus direct
//!   networks (the CRAY-T3D-class topology of Sec. 1 and the mesh/torus the
//!   Sec. 3.1 conflict claims are made against). The torus variant routes
//!   the short way around; without virtual channels that is famously
//!   deadlock-prone under wrap-heavy traffic, which the experiments surface
//!   honestly rather than hide.
//! * [`TableRouting`] — CRAY-T3D-style fault tolerance: a centrally
//!   rewritten per-(switch, destination) next-hop table routes every packet
//!   around the faulty component on shortest surviving paths. Delivery is
//!   restored, but the table is quadratic state and the resulting turns are
//!   not dimension-ordered, so deadlock freedom is no longer guaranteed —
//!   the contrast the SR2201's few-bits-per-switch detour facility is
//!   designed around.
//! * [`software`] — IBM-SP2-style software-mediated transmission (per-packet
//!   software overhead once the network is degraded) and the software
//!   binomial-tree broadcast that machines without hardware broadcast use
//!   (CM-5/AP1000 style, Sec. 4's alternatives).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod direct;
pub mod software;
pub mod table;

pub use direct::DirectDor;
pub use table::TableRouting;
