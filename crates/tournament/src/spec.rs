//! The tournament specification: a small line grammar describing a
//! scheme × topology × fault-class × workload grid.
//!
//! Like [`mdx_workloads::StreamSpec`], a spec is plain text — one
//! directive per line, `#` comments — so tournaments live in files,
//! shell heredocs, and serve-protocol requests without an extra schema:
//!
//! ```text
//! # the default grid, spelled out
//! scheme all
//! topology mdx:4x3 hyperx:3x3 fullmesh:6 hypercube:2x2x2
//! faults none router
//! workload mixed rate=0.02 flits=12 window=200 bc=0.002
//! seeds 2
//! max-cycles 20000
//! ```
//!
//! Every directive is optional; [`TournamentSpec::parse`] fills the
//! defaults above (plus the engine's default buffer depth) so the empty
//! string is already a runnable tournament.

use mdx_campaign::Workload;
use mdx_core::registry::SCHEME_IDS;
use mdx_sim::SimConfig;
use mdx_topology::TOPOLOGY_IDS;
use mdx_workloads::TrafficPattern;
use serde::{Deserialize, Serialize};

/// A fault class: one canonical representative fault set per topology,
/// so cells stay comparable across schemes without enumerating every
/// site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultClass {
    /// Fault-free.
    None,
    /// One router down (the machine's middle router).
    Router,
    /// One crossbar down (dimension 0, line 0) — only exists on `mdx`.
    Xbar,
}

impl FaultClass {
    /// Stable table label.
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::None => "none",
            FaultClass::Router => "router",
            FaultClass::Xbar => "xbar",
        }
    }

    fn parse(s: &str) -> Option<FaultClass> {
        match s {
            "none" => Some(FaultClass::None),
            "router" => Some(FaultClass::Router),
            "xbar" => Some(FaultClass::Xbar),
            _ => None,
        }
    }
}

/// A workload template: shape-independent parameters, materialized into a
/// concrete [`Workload`] per topology cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadTemplate {
    /// Open-loop mixed traffic (Fig. 10 recipe).
    Mixed {
        /// Per-PE-per-cycle unicast injection probability.
        rate: f64,
        /// Packet length in flits.
        flits: usize,
        /// Injection window in cycles.
        window: u64,
        /// Per-PE-per-cycle broadcast-request probability.
        bc: f64,
    },
    /// Simultaneous broadcast storm (Fig. 5 recipe) from four PEs spread
    /// across the machine.
    Storm {
        /// Packet length in flits.
        flits: usize,
    },
}

impl WorkloadTemplate {
    /// Stable table label ([`Workload::kind`] of the materialized form).
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadTemplate::Mixed { .. } => "mixed",
            WorkloadTemplate::Storm { .. } => "storm",
        }
    }

    /// Materializes the template for a machine with `num_pes` PEs.
    pub fn workload(&self, num_pes: usize) -> Workload {
        match *self {
            WorkloadTemplate::Mixed {
                rate,
                flits,
                window,
                bc,
            } => Workload::Mixed {
                pattern: TrafficPattern::UniformRandom,
                rate,
                packet_flits: flits,
                window,
                broadcast_rate: bc,
            },
            WorkloadTemplate::Storm { flits } => {
                let k = 4.min(num_pes);
                Workload::BroadcastStorm {
                    sources: (0..k).map(|i| i * num_pes / k).collect(),
                    flits,
                }
            }
        }
    }
}

/// A parse failure, with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line of the offending directive.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl SpecError {
    fn new(line: usize, message: impl Into<String>) -> SpecError {
        SpecError {
            line,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SpecError {}

/// The full grid description: every combination of the listed axes is one
/// tournament cell (compatibility permitting — see
/// [`crate::run_tournament`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TournamentSpec {
    /// Scheme ids to pit against each other.
    pub schemes: Vec<String>,
    /// `(topology id, shape extents)` pairs.
    pub topologies: Vec<(String, Vec<u16>)>,
    /// Fault classes to sweep.
    pub faults: Vec<FaultClass>,
    /// Workload templates to sweep.
    pub workloads: Vec<WorkloadTemplate>,
    /// Seeds per cell (scenarios with seeds `0..seeds`).
    pub seeds: u64,
    /// Engine cycle limit per run.
    pub max_cycles: u64,
    /// Engine buffer depth per lane.
    pub buffer_flits: usize,
}

impl Default for TournamentSpec {
    fn default() -> TournamentSpec {
        TournamentSpec {
            schemes: SCHEME_IDS.iter().map(|s| s.to_string()).collect(),
            topologies: vec![
                ("mdx".to_string(), vec![4, 3]),
                ("hyperx".to_string(), vec![3, 3]),
                ("fullmesh".to_string(), vec![6]),
                ("hypercube".to_string(), vec![2, 2, 2]),
            ],
            faults: vec![FaultClass::None, FaultClass::Router],
            workloads: vec![WorkloadTemplate::Mixed {
                rate: 0.02,
                flits: 12,
                window: 200,
                bc: 0.002,
            }],
            seeds: 2,
            max_cycles: 20_000,
            buffer_flits: SimConfig::default().buffer_flits,
        }
    }
}

fn parse_shape(tok: &str) -> Option<Vec<u16>> {
    let extents: Option<Vec<u16>> = tok.split('x').map(|p| p.parse().ok()).collect();
    extents.filter(|e| !e.is_empty() && e.iter().all(|&x| x >= 1))
}

fn kv<'a>(tok: &'a str, key: &str) -> Option<&'a str> {
    tok.strip_prefix(key)?.strip_prefix('=')
}

impl TournamentSpec {
    /// Parses the line grammar; unknown directives, scheme ids, topology
    /// ids, or malformed values are errors with their line number.
    pub fn parse(text: &str) -> Result<TournamentSpec, SpecError> {
        let mut spec = TournamentSpec::default();
        let mut workloads: Vec<WorkloadTemplate> = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let ln = i + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let toks: Vec<&str> = line.split_whitespace().collect();
            match toks[0] {
                "scheme" => {
                    if toks.len() < 2 {
                        return Err(SpecError::new(ln, "expected: scheme all | scheme ID..."));
                    }
                    if toks[1..] == ["all"] {
                        spec.schemes = SCHEME_IDS.iter().map(|s| s.to_string()).collect();
                    } else {
                        for &id in &toks[1..] {
                            if !SCHEME_IDS.contains(&id) {
                                return Err(SpecError::new(
                                    ln,
                                    format!(
                                        "unknown scheme '{id}' (known: {})",
                                        SCHEME_IDS.join(", ")
                                    ),
                                ));
                            }
                        }
                        spec.schemes = toks[1..].iter().map(|s| s.to_string()).collect();
                    }
                }
                "topology" => {
                    if toks.len() < 2 {
                        return Err(SpecError::new(ln, "expected: topology KIND:AxBxC..."));
                    }
                    let mut tps = Vec::new();
                    for &tok in &toks[1..] {
                        let Some((kind, shape)) = tok.split_once(':') else {
                            return Err(SpecError::new(
                                ln,
                                format!("'{tok}' is not KIND:SHAPE (e.g. mdx:4x3)"),
                            ));
                        };
                        if !TOPOLOGY_IDS.contains(&kind) {
                            return Err(SpecError::new(
                                ln,
                                format!(
                                    "unknown topology '{kind}' (known: {})",
                                    TOPOLOGY_IDS.join(", ")
                                ),
                            ));
                        }
                        let Some(extents) = parse_shape(shape) else {
                            return Err(SpecError::new(
                                ln,
                                format!("'{shape}' is not a shape (e.g. 4x3)"),
                            ));
                        };
                        tps.push((kind.to_string(), extents));
                    }
                    spec.topologies = tps;
                }
                "faults" => {
                    if toks.len() < 2 {
                        return Err(SpecError::new(ln, "expected: faults CLASS..."));
                    }
                    let mut classes = Vec::new();
                    for &tok in &toks[1..] {
                        let Some(c) = FaultClass::parse(tok) else {
                            return Err(SpecError::new(
                                ln,
                                format!("unknown fault class '{tok}' (none, router, xbar)"),
                            ));
                        };
                        classes.push(c);
                    }
                    spec.faults = classes;
                }
                "workload" => {
                    if toks.len() < 2 {
                        return Err(SpecError::new(
                            ln,
                            "expected: workload mixed|storm [k=v...]",
                        ));
                    }
                    let mut w = match toks[1] {
                        "mixed" => WorkloadTemplate::Mixed {
                            rate: 0.02,
                            flits: 12,
                            window: 200,
                            bc: 0.002,
                        },
                        "storm" => WorkloadTemplate::Storm { flits: 16 },
                        other => {
                            return Err(SpecError::new(
                                ln,
                                format!("unknown workload '{other}' (mixed, storm)"),
                            ))
                        }
                    };
                    for &tok in &toks[2..] {
                        let applied = match &mut w {
                            WorkloadTemplate::Mixed {
                                rate,
                                flits,
                                window,
                                bc,
                            } => {
                                if let Some(v) = kv(tok, "rate") {
                                    v.parse().map(|x| *rate = x).is_ok()
                                } else if let Some(v) = kv(tok, "flits") {
                                    v.parse().map(|x| *flits = x).is_ok()
                                } else if let Some(v) = kv(tok, "window") {
                                    v.parse().map(|x| *window = x).is_ok()
                                } else if let Some(v) = kv(tok, "bc") {
                                    v.parse().map(|x| *bc = x).is_ok()
                                } else {
                                    false
                                }
                            }
                            WorkloadTemplate::Storm { flits } => {
                                if let Some(v) = kv(tok, "flits") {
                                    v.parse().map(|x| *flits = x).is_ok()
                                } else {
                                    false
                                }
                            }
                        };
                        if !applied {
                            return Err(SpecError::new(
                                ln,
                                format!("bad workload parameter '{tok}'"),
                            ));
                        }
                    }
                    workloads.push(w);
                }
                "seeds" => {
                    let [_, v] = toks.as_slice() else {
                        return Err(SpecError::new(ln, "expected: seeds N"));
                    };
                    spec.seeds =
                        v.parse().ok().filter(|&n| n >= 1).ok_or_else(|| {
                            SpecError::new(ln, "seeds must be a positive integer")
                        })?;
                }
                "max-cycles" => {
                    let [_, v] = toks.as_slice() else {
                        return Err(SpecError::new(ln, "expected: max-cycles N"));
                    };
                    spec.max_cycles = v
                        .parse()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| SpecError::new(ln, "max-cycles must be positive"))?;
                }
                "buffer-flits" => {
                    let [_, v] = toks.as_slice() else {
                        return Err(SpecError::new(ln, "expected: buffer-flits N"));
                    };
                    spec.buffer_flits = v
                        .parse()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| SpecError::new(ln, "buffer-flits must be positive"))?;
                }
                other => {
                    return Err(SpecError::new(
                        ln,
                        format!(
                            "unknown directive '{other}' (scheme, topology, faults, workload, \
                             seeds, max-cycles, buffer-flits)"
                        ),
                    ));
                }
            }
        }
        if !workloads.is_empty() {
            spec.workloads = workloads;
        }
        Ok(spec)
    }

    /// Cells the grid expands to (before compatibility skips).
    pub fn num_cells(&self) -> usize {
        self.schemes.len() * self.topologies.len() * self.faults.len() * self.workloads.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_is_the_default_grid() {
        let spec = TournamentSpec::parse("").unwrap();
        assert_eq!(spec, TournamentSpec::default());
        assert_eq!(spec.schemes.len(), SCHEME_IDS.len());
        assert_eq!(spec.num_cells(), SCHEME_IDS.len() * 4 * 2);
    }

    #[test]
    fn full_spec_parses() {
        let spec = TournamentSpec::parse(
            "# a small grid\n\
             scheme sr2201 hyperx-ft\n\
             topology mdx:4x3 hyperx:3x3\n\
             faults none router xbar\n\
             workload mixed rate=0.05 flits=8 window=100 bc=0.0\n\
             workload storm flits=24\n\
             seeds 3\n\
             max-cycles 5000\n\
             buffer-flits 4\n",
        )
        .unwrap();
        assert_eq!(spec.schemes, vec!["sr2201", "hyperx-ft"]);
        assert_eq!(spec.topologies[1], ("hyperx".to_string(), vec![3, 3]));
        assert_eq!(spec.faults.len(), 3);
        assert_eq!(
            spec.workloads[0],
            WorkloadTemplate::Mixed {
                rate: 0.05,
                flits: 8,
                window: 100,
                bc: 0.0
            }
        );
        assert_eq!(spec.workloads[1], WorkloadTemplate::Storm { flits: 24 });
        assert_eq!(spec.seeds, 3);
        assert_eq!(spec.max_cycles, 5000);
        assert_eq!(spec.buffer_flits, 4);
        assert_eq!(spec.num_cells(), 2 * 2 * 3 * 2);
    }

    #[test]
    fn scheme_errors_list_the_registry() {
        let err = TournamentSpec::parse("scheme donut").unwrap_err();
        assert_eq!(err.line, 1);
        for id in SCHEME_IDS {
            assert!(err.message.contains(id), "{err}");
        }
    }

    #[test]
    fn bad_lines_are_rejected_with_line_numbers() {
        for (text, line) in [
            ("topology torus:4x3", 1),
            ("topology mdx-4x3", 1),
            ("faults cosmic-ray", 1),
            ("seeds 0", 1),
            ("workload mixed rate=sideways", 1),
            ("scheme all\nwat 3", 2),
        ] {
            let err = TournamentSpec::parse(text).unwrap_err();
            assert_eq!(err.line, line, "{text}: {err}");
        }
    }

    #[test]
    fn storm_materializes_spread_sources() {
        let w = WorkloadTemplate::Storm { flits: 16 }.workload(12);
        match w {
            Workload::BroadcastStorm { sources, flits } => {
                assert_eq!(sources, vec![0, 3, 6, 9]);
                assert_eq!(flits, 16);
            }
            other => panic!("unexpected workload {other:?}"),
        }
    }

    #[test]
    fn spec_roundtrips_through_serde() {
        let spec = TournamentSpec::parse("faults none router xbar\nseeds 5").unwrap();
        let json = serde_json::to_string(&spec).unwrap();
        let back: TournamentSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }
}
