//! # mdx-tournament
//!
//! Cross-scheme tournaments over the routing-scheme zoo.
//!
//! The campaign crate answers "how does *this* scheme behave over a fault
//! grid?"; this crate answers "how do the schemes compare?" — including
//! schemes that live on different topologies. A [`TournamentSpec`] (a
//! small line grammar, [`TournamentSpec::parse`]) names the axes:
//!
//! * **schemes** — any subset of [`mdx_core::registry::SCHEME_IDS`];
//! * **topologies** — `(kind, shape)` pairs over
//!   [`mdx_topology::TOPOLOGY_IDS`];
//! * **fault classes** — canonical representative fault sets
//!   ([`FaultClass`]), not exhaustive site enumeration, so cells stay
//!   comparable across machines;
//! * **workloads** — shape-independent templates
//!   ([`WorkloadTemplate`]) materialized per topology.
//!
//! [`run_tournament`] expands the full cross product, pre-skips
//! impossible combinations (a scheme on the wrong topology, crossbar
//! faults off the crossbar machine) with explicit reasons, runs every
//! surviving cell through [`mdx_campaign::run_campaign_with`] with
//! latency pools and attribution attached, and reduces each cell to one
//! [`TournamentCell`] row: deadlock rate, throughput, pooled
//! p50/p95/p99, blocked/detour latency shares, and — for any cell that
//! deadlocked — a shrunken replayable witness from the existing
//! minimizer. The whole table is deterministic: same spec, same bytes.
//!
//! ```
//! use mdx_tournament::{run_tournament, TournamentSpec};
//!
//! let spec = TournamentSpec::parse(
//!     "scheme sr2201 naive-broadcast\n\
//!      topology mdx:3x3\n\
//!      faults none\n\
//!      workload storm flits=16\n\
//!      seeds 1\n\
//!      max-cycles 4000\n",
//! )
//! .unwrap();
//! let table = run_tournament(&spec);
//! assert_eq!(table.cells.len(), 2);
//! // The paper's scheme survives the storm; the unserialized one
//! // deadlocks and ships a minimized witness.
//! assert!(table.cells.iter().any(|c| c.deadlocks > 0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod run;
pub mod spec;

pub use run::{run_tournament, CellWitness, TournamentCell, TournamentResult};
pub use spec::{FaultClass, SpecError, TournamentSpec, WorkloadTemplate};
