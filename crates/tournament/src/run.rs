//! Grid expansion, execution, and reduction to the tournament table.

use crate::spec::{FaultClass, TournamentSpec, WorkloadTemplate};
use mdx_campaign::{run_campaign_with, shrink, ObsOptions, Scenario, ScenarioReport};
use mdx_core::registry::required_topology;
use mdx_fault::FaultSite;
use mdx_sim::SortedLatencies;
use mdx_topology::{Shape, XbarRef};
use serde::{Deserialize, Serialize};

/// A shrunken deadlock witness attached to a deadlocking cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellWitness {
    /// Token of the run the witness was shrunk from.
    pub from_token: String,
    /// Replay token of the minimized deadlock.
    pub token: String,
    /// Packets in the minimized scenario.
    pub packets: usize,
    /// Fault sites in the minimized scenario.
    pub faults: usize,
    /// Length of the minimized cyclic wait.
    pub cycle_len: usize,
}

/// One cell of the tournament table: a (scheme, topology, fault class,
/// workload) combination reduced over its seed pool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TournamentCell {
    /// Scheme id.
    pub scheme: String,
    /// Topology id.
    pub topology: String,
    /// Shape extents.
    pub shape: Vec<u16>,
    /// Fault class label.
    pub faults: String,
    /// Workload label.
    pub workload: String,
    /// `ok` for executed cells, `skip` for incompatible combinations.
    pub status: String,
    /// Why a `skip` cell did not run.
    pub skip_reason: Option<String>,
    /// Runs executed (seeds).
    pub runs: usize,
    /// Runs that deadlocked.
    pub deadlocks: usize,
    /// `deadlocks / runs` (0 for skipped cells).
    pub deadlock_rate: f64,
    /// Packets delivered across all runs.
    pub delivered: usize,
    /// Packets offered across all runs.
    pub offered: usize,
    /// Simulated cycles summed over all runs — the throughput denominator.
    pub cycles: u64,
    /// Delivered packets per 1000 simulated cycles, pooled over runs.
    pub throughput: f64,
    /// Pooled delivered-latency percentiles (cycles).
    pub p50: Option<u64>,
    /// Pooled 95th percentile.
    pub p95: Option<u64>,
    /// Pooled 99th percentile.
    pub p99: Option<u64>,
    /// Share of total delivered latency spent blocked behind other
    /// traffic (`blocked_* phases / latency_total`).
    pub blocked_share: f64,
    /// Share of total delivered latency spent in detour transfer.
    pub detour_share: f64,
    /// Shrunken witness of the first deadlock, when the cell deadlocked.
    pub witness: Option<CellWitness>,
}

impl TournamentCell {
    fn skip(
        scheme: &str,
        topology: &str,
        shape: &[u16],
        faults: FaultClass,
        workload: &WorkloadTemplate,
        reason: String,
    ) -> TournamentCell {
        TournamentCell {
            scheme: scheme.to_string(),
            topology: topology.to_string(),
            shape: shape.to_vec(),
            faults: faults.label().to_string(),
            workload: workload.label().to_string(),
            status: "skip".to_string(),
            skip_reason: Some(reason),
            runs: 0,
            deadlocks: 0,
            deadlock_rate: 0.0,
            delivered: 0,
            offered: 0,
            cycles: 0,
            throughput: 0.0,
            p50: None,
            p95: None,
            p99: None,
            blocked_share: 0.0,
            detour_share: 0.0,
            witness: None,
        }
    }
}

/// The finished tournament: one cell per grid combination, in
/// deterministic enumeration order (scheme-major, then topology, fault
/// class, workload).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TournamentResult {
    /// The grid that ran.
    pub spec: TournamentSpec,
    /// All cells, including skips.
    pub cells: Vec<TournamentCell>,
}

impl TournamentResult {
    /// Executed (non-skip) cells.
    pub fn ok_cells(&self) -> impl Iterator<Item = &TournamentCell> {
        self.cells.iter().filter(|c| c.status == "ok")
    }

    /// Serializes every cell as JSON Lines — the artifact format; two
    /// tournaments over the same spec produce byte-identical documents.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for c in &self.cells {
            out.push_str(&serde_json::to_string(c).expect("cell serializes"));
            out.push('\n');
        }
        out
    }

    /// Renders the human-readable table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<16} {:<13} {:<7} {:<6} {:>5} {:>8} {:>8} {:>6} {:>6} {:>6} {:>7} {:>7}\n",
            "scheme",
            "topology",
            "faults",
            "load",
            "runs",
            "deadlock",
            "thruput",
            "p50",
            "p95",
            "p99",
            "blkd%",
            "detr%"
        ));
        for c in &self.cells {
            let topo = format!(
                "{}:{}",
                c.topology,
                c.shape
                    .iter()
                    .map(u16::to_string)
                    .collect::<Vec<_>>()
                    .join("x")
            );
            if c.status != "ok" {
                out.push_str(&format!(
                    "{:<16} {:<13} {:<7} {:<6} {:>5} -- skip: {}\n",
                    c.scheme,
                    topo,
                    c.faults,
                    c.workload,
                    "-",
                    c.skip_reason.as_deref().unwrap_or("?")
                ));
                continue;
            }
            let pct = |v: Option<u64>| v.map_or("-".to_string(), |x| x.to_string());
            out.push_str(&format!(
                "{:<16} {:<13} {:<7} {:<6} {:>5} {:>8} {:>8.2} {:>6} {:>6} {:>6} {:>6.1}% {:>6.1}%\n",
                c.scheme,
                topo,
                c.faults,
                c.workload,
                c.runs,
                format!("{}/{}", c.deadlocks, c.runs),
                c.throughput,
                pct(c.p50),
                pct(c.p95),
                pct(c.p99),
                c.blocked_share * 100.0,
                c.detour_share * 100.0,
            ));
            if let Some(w) = &c.witness {
                out.push_str(&format!(
                    "    witness: {} packets, {} faults, cycle len {}  {}\n",
                    w.packets, w.faults, w.cycle_len, w.token
                ));
            }
        }
        let skips = self.cells.iter().filter(|c| c.status != "ok").count();
        out.push_str(&format!(
            "{} cells ({} run, {} skipped)\n",
            self.cells.len(),
            self.cells.len() - skips,
            skips
        ));
        out
    }
}

/// The canonical fault sites of a class on a machine, or a skip reason.
fn class_sites(class: FaultClass, topology: &str, shape: &Shape) -> Result<Vec<FaultSite>, String> {
    match class {
        FaultClass::None => Ok(Vec::new()),
        FaultClass::Router => Ok(vec![FaultSite::Router(shape.num_pes() / 2)]),
        FaultClass::Xbar if topology == "mdx" => {
            Ok(vec![FaultSite::Xbar(XbarRef { dim: 0, line: 0 })])
        }
        FaultClass::Xbar => Err(format!("crossbar faults do not exist on '{topology}'")),
    }
}

/// Runs the full grid and reduces it to the tournament table.
///
/// Cells whose combination cannot exist — a scheme on the wrong topology,
/// crossbar faults off the crossbar machine — are *skip* rows with their
/// reason, so the table always has `spec.num_cells()` rows and replays
/// deterministically. Each executed cell runs `seeds` scenarios through
/// the campaign runner with latency pools and attribution attached;
/// deadlocking cells additionally carry a shrunken witness minimized from
/// the first deadlocked seed.
pub fn run_tournament(spec: &TournamentSpec) -> TournamentResult {
    let opts = ObsOptions {
        attribution: true,
        latencies: true,
        ..ObsOptions::default()
    };
    let mut cells = Vec::with_capacity(spec.num_cells());
    for scheme in &spec.schemes {
        for (topology, extents) in &spec.topologies {
            for &class in &spec.faults {
                for template in &spec.workloads {
                    cells.push(run_cell(
                        spec, &opts, scheme, topology, extents, class, template,
                    ));
                }
            }
        }
    }
    TournamentResult {
        spec: spec.clone(),
        cells,
    }
}

#[allow(clippy::too_many_arguments)]
fn run_cell(
    spec: &TournamentSpec,
    opts: &ObsOptions,
    scheme: &str,
    topology: &str,
    extents: &[u16],
    class: FaultClass,
    template: &WorkloadTemplate,
) -> TournamentCell {
    let skip =
        |reason: String| TournamentCell::skip(scheme, topology, extents, class, template, reason);
    if let Some(req) = required_topology(scheme) {
        if req != topology {
            return skip(format!("'{scheme}' requires the '{req}' topology"));
        }
    }
    let shape = match Shape::new(extents) {
        Ok(s) => s,
        Err(e) => return skip(format!("bad shape: {e}")),
    };
    let sites = match class_sites(class, topology, &shape) {
        Ok(s) => s,
        Err(reason) => return skip(reason),
    };

    let scenarios: Vec<Scenario> = (0..spec.seeds)
        .map(|seed| {
            let mut s = Scenario::new(
                extents.to_vec(),
                scheme,
                template.workload(shape.num_pes()),
                seed,
            )
            .with_topology(topology)
            .with_faults(sites.iter().copied());
            s.max_cycles = spec.max_cycles;
            s.buffer_flits = spec.buffer_flits;
            s
        })
        .collect();
    // A topology that rejects the shape (e.g. hypercube extents != 2)
    // surfaces on the first scenario; report it as the cell's skip.
    if let Err(e) = scenarios[0].network() {
        return skip(e.to_string());
    }
    let result = run_campaign_with(scenarios, opts);
    if let Some((s, reason)) = result.skipped.first() {
        if result.reports.is_empty() {
            return skip(format!("{reason} ({s})"));
        }
    }
    reduce_cell(scheme, topology, extents, class, template, &result.reports)
}

fn reduce_cell(
    scheme: &str,
    topology: &str,
    extents: &[u16],
    class: FaultClass,
    template: &WorkloadTemplate,
    rows: &[ScenarioReport],
) -> TournamentCell {
    let runs = rows.len();
    let deadlocks = rows.iter().filter(|r| r.is_deadlock()).count();
    let delivered: usize = rows.iter().map(|r| r.stats.delivered).sum();
    let offered: usize = rows.iter().map(|r| r.offered).sum();
    let cycles: u64 = rows.iter().map(|r| r.stats.cycles).sum();

    let pool = SortedLatencies::from_unsorted(
        rows.iter()
            .filter_map(|r| r.latencies.as_deref())
            .flatten()
            .copied()
            .collect(),
    );

    let mut latency_total = 0u64;
    let mut blocked = 0u64;
    let mut detour = 0u64;
    for r in rows {
        if let Some(a) = &r.attribution {
            latency_total += a.latency_total;
            blocked += a.blocked_normal + a.blocked_gather + a.blocked_detour;
            detour += a.detour_transfer;
        }
    }
    let share = |part: u64| {
        if latency_total == 0 {
            0.0
        } else {
            part as f64 / latency_total as f64
        }
    };

    // Shrink the first deadlocked seed into the cell's witness. Shrinking
    // re-runs the engine, so failures (a deadlock that evaporates under
    // reduction never does by construction, but be safe) just leave the
    // cell witness-less rather than failing the tournament.
    let witness = rows.iter().find(|r| r.is_deadlock()).and_then(|r| {
        shrink(&r.scenario).ok().map(|rep| CellWitness {
            from_token: r.token.clone(),
            token: rep.token.clone(),
            packets: rep.packets.1,
            faults: rep.faults.1,
            cycle_len: rep.deadlock.cycle.len(),
        })
    });

    TournamentCell {
        scheme: scheme.to_string(),
        topology: topology.to_string(),
        shape: extents.to_vec(),
        faults: class.label().to_string(),
        workload: template.label().to_string(),
        status: "ok".to_string(),
        skip_reason: None,
        runs,
        deadlocks,
        deadlock_rate: if runs == 0 {
            0.0
        } else {
            deadlocks as f64 / runs as f64
        },
        delivered,
        offered,
        cycles,
        throughput: if cycles == 0 {
            0.0
        } else {
            delivered as f64 * 1000.0 / cycles as f64
        },
        p50: pool.percentile(50),
        p95: pool.percentile(95),
        p99: pool.percentile(99),
        blocked_share: share(blocked),
        detour_share: share(detour),
        witness,
    }
}
