//! End-to-end tournament runs: determinism, compatibility skips,
//! deadlock witnesses, and attribution shares.

use mdx_campaign::{run_scenario, Scenario};
use mdx_tournament::{run_tournament, TournamentSpec};

fn small_zoo_spec() -> TournamentSpec {
    TournamentSpec::parse(
        "scheme sr2201 naive-broadcast hyperx-ft fullmesh-vcfree hypercube-avoid\n\
         topology mdx:3x3 hyperx:3x3 fullmesh:6 hypercube:2x2x2\n\
         faults none router\n\
         workload mixed rate=0.05 flits=8 window=100 bc=0.004\n\
         seeds 1\n\
         max-cycles 6000\n",
    )
    .unwrap()
}

#[test]
fn tournament_replays_byte_identically() {
    let spec = small_zoo_spec();
    let a = run_tournament(&spec);
    let b = run_tournament(&spec);
    assert_eq!(a.to_jsonl(), b.to_jsonl(), "same spec, same bytes");
    assert_eq!(a.cells.len(), spec.num_cells());
}

#[test]
fn incompatible_cells_are_explicit_skips() {
    let spec = TournamentSpec::parse(
        "scheme sr2201 hyperx-ft\n\
         topology mdx:3x3 hyperx:3x3\n\
         faults none xbar\n\
         seeds 1\n\
         max-cycles 2000\n",
    )
    .unwrap();
    let t = run_tournament(&spec);
    // hyperx-ft on mdx (and sr2201 on hyperx) must be skips naming the
    // required topology; xbar faults off-mdx must be skips too.
    let cell = |scheme: &str, topo: &str, faults: &str| {
        t.cells
            .iter()
            .find(|c| c.scheme == scheme && c.topology == topo && c.faults == faults)
            .unwrap()
    };
    let wrong_topo = cell("hyperx-ft", "mdx", "none");
    assert_eq!(wrong_topo.status, "skip");
    assert!(
        wrong_topo
            .skip_reason
            .as_deref()
            .unwrap()
            .contains("hyperx"),
        "{:?}",
        wrong_topo.skip_reason
    );
    assert_eq!(cell("sr2201", "hyperx", "none").status, "skip");
    let xbar_off_mdx = cell("hyperx-ft", "hyperx", "xbar");
    assert_eq!(xbar_off_mdx.status, "skip");
    assert!(
        xbar_off_mdx
            .skip_reason
            .as_deref()
            .unwrap()
            .contains("crossbar"),
        "{:?}",
        xbar_off_mdx.skip_reason
    );
    // The compatible corners actually ran.
    assert_eq!(cell("sr2201", "mdx", "none").status, "ok");
    assert_eq!(cell("sr2201", "mdx", "xbar").status, "ok");
    assert_eq!(cell("hyperx-ft", "hyperx", "none").status, "ok");
}

#[test]
fn deadlock_cells_carry_replayable_witnesses() {
    // Unserialized broadcast under a storm is the paper's Fig. 5
    // deadlock; its cell must report it and ship a shrunken witness.
    let spec = TournamentSpec::parse(
        "scheme sr2201 naive-broadcast\n\
         topology mdx:3x3\n\
         faults none\n\
         workload storm flits=16\n\
         seeds 1\n\
         max-cycles 4000\n",
    )
    .unwrap();
    let t = run_tournament(&spec);
    let naive = t
        .cells
        .iter()
        .find(|c| c.scheme == "naive-broadcast")
        .unwrap();
    assert!(naive.deadlock_rate > 0.0, "{naive:?}");
    let w = naive.witness.as_ref().expect("deadlock cell has a witness");
    assert!(w.cycle_len >= 2);
    let replay = run_scenario(&Scenario::from_token(&w.token).unwrap()).unwrap();
    assert_eq!(replay.outcome, "deadlock", "witness must replay");

    // The paper's scheme survives the same storm.
    let sr = t.cells.iter().find(|c| c.scheme == "sr2201").unwrap();
    assert_eq!(sr.deadlocks, 0, "{sr:?}");
    assert!(sr.witness.is_none());

    // The rendered table carries both rows and the witness line.
    let table = t.render();
    assert!(table.contains("naive-broadcast"), "{table}");
    assert!(table.contains("witness:"), "{table}");
}

#[test]
fn executed_cells_have_sane_reductions() {
    let t = run_tournament(&small_zoo_spec());
    let mut ran = 0;
    for c in t.ok_cells() {
        ran += 1;
        assert_eq!(c.runs, 1, "{c:?}");
        assert!((0.0..=1.0).contains(&c.deadlock_rate));
        assert!((0.0..=1.0).contains(&c.blocked_share), "{c:?}");
        assert!((0.0..=1.0).contains(&c.detour_share), "{c:?}");
        // Blocked and detour-transfer are disjoint phases of the same
        // conserved latency decomposition.
        assert!(c.blocked_share + c.detour_share <= 1.0 + 1e-9, "{c:?}");
        if c.delivered > 0 {
            assert!(c.throughput > 0.0, "{c:?}");
            let (p50, p95, p99) = (c.p50.unwrap(), c.p95.unwrap(), c.p99.unwrap());
            assert!(p50 <= p95 && p95 <= p99, "{c:?}");
        }
    }
    // Every scheme's home-topology cells ran: 5 schemes x 2 fault
    // classes (sr2201 and naive-broadcast share mdx).
    assert_eq!(ran, 10, "{}", t.render());

    // The multi-VC comparator ran under the per-lane channel model and
    // made progress on its own substrate.
    let hx = t
        .ok_cells()
        .find(|c| c.scheme == "hyperx-ft" && c.faults == "router")
        .expect("hyperx-ft router cell runs");
    assert!(hx.delivered > 0, "{hx:?}");
    assert_eq!(hx.deadlocks, 0, "{hx:?}");
}
