//! Acceptance tests for the telemetry layer on real paper scenarios.
//!
//! - An instrumented Fig. 10 run (mixed unicast + serialized broadcast
//!   traffic) must show the S-XB's output utilization strictly dominating
//!   every other X-dimension crossbar — the serialization point is, by
//!   construction, the broadcast hot spot.
//! - A naive-broadcast storm (Fig. 5) must show the stall probe's wait
//!   chain *growing* before the watchdog confirms the deadlock — the
//!   near-deadlock early warning the probe exists for.

use mdx_core::{NaiveBroadcast, RouteChange, Scheme, Sr2201Routing};
use mdx_fault::FaultSet;
use mdx_obs::{
    FanoutObserver, FlightRecorder, MetricsObserver, PostmortemReport, StallProbe, TraceDoc,
    TraceRecorder, DEFAULT_FLIGHT_CAPACITY,
};
use mdx_sim::{EventCounts, InjectSpec, SimConfig, SimOutcome, Simulator};
use mdx_topology::{MdCrossbar, Node, Shape};
use mdx_workloads::{mixed_schedule, OpenLoop, TrafficPattern};
use std::sync::Arc;

fn fig2_net() -> Arc<MdCrossbar> {
    Arc::new(MdCrossbar::build(Shape::fig2()))
}

/// Fig. 10 mixed traffic (unicasts + serialized broadcast requests).
fn fig10_specs(net: &MdCrossbar, seed: u64) -> Vec<InjectSpec> {
    mixed_schedule(
        net.shape(),
        TrafficPattern::UniformRandom,
        OpenLoop {
            rate: 0.02,
            packet_flits: 12,
            window: 200,
            seed,
        },
        0.004,
        &FaultSet::none(),
    )
}

#[test]
fn fig10_sxb_utilization_dominates_other_x_crossbars() {
    let net = fig2_net();
    let scheme = Arc::new(Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap());
    let sxb = scheme.config().sxb();
    assert_eq!(sxb.dim, 0, "the S-XB is an X-dimension crossbar");

    let mut sim = Simulator::new(net.graph().clone(), scheme, SimConfig::default());
    let (obs, metrics) = MetricsObserver::new(net.graph().clone());
    sim.set_observer(Box::new(obs));
    let specs = fig10_specs(&net, 7);
    assert!(
        specs
            .iter()
            .any(|s| s.header.rc == RouteChange::BroadcastRequest),
        "fig10 traffic must include broadcasts"
    );
    for &spec in &specs {
        sim.schedule(spec);
    }
    let result = sim.run();
    assert_eq!(result.outcome, SimOutcome::Completed);

    let report = metrics.report(result.stats.cycles);
    // Observer flit accounting agrees with the engine's own counters.
    assert_eq!(report.total_flits, result.stats.flit_hops);

    let sxb_name = Node::Xbar(sxb).to_string();
    let sxb_util = report
        .xbar(&sxb_name)
        .expect("S-XB row present in metrics")
        .utilization;
    assert!(sxb_util > 0.0);
    let mut others = 0;
    for x in report.crossbars.iter().filter(|x| x.dim == 0) {
        if x.name == sxb_name {
            continue;
        }
        others += 1;
        assert!(
            sxb_util > x.utilization,
            "S-XB {sxb_name} ({sxb_util:.4}) must strictly dominate {} ({:.4})",
            x.name,
            x.utilization
        );
    }
    assert!(others >= 2, "4x3 has at least two non-S-XB X crossbars");
    // Broadcasts actually serialized: the gather queue saw traffic.
    assert!(report.gather_peak >= 1);
}

#[test]
fn naive_broadcast_storm_wait_chain_grows_before_watchdog_fires() {
    let net = fig2_net();
    let shape = net.shape().clone();
    let sources = [0usize, 4, 8];

    // The Fig. 5 outcome is arbitration-order sensitive; scan seeds for a
    // deadlocking run, as the fig5 bench does.
    for seed in 0..64u64 {
        let scheme = Arc::new(NaiveBroadcast::new(net.clone()));
        let mut sim = Simulator::new(
            net.graph().clone(),
            scheme,
            SimConfig {
                arb_seed: seed,
                ..SimConfig::default()
            },
        );
        let (probe, stall) = StallProbe::new(64);
        sim.set_observer(Box::new(probe));
        for &src in &sources {
            let c = shape.coord_of(src);
            sim.schedule(InjectSpec {
                src_pe: src,
                header: mdx_core::Header {
                    rc: RouteChange::Broadcast,
                    dest: c,
                    src: c,
                },
                flits: 16,
                inject_at: 0,
            });
        }
        let result = sim.run();
        if !result.outcome.is_deadlock() {
            continue;
        }

        let report = stall.report();
        assert!(
            report.deadlock_at.is_some(),
            "probe saw the watchdog's verdict"
        );
        // The chain grew probe over probe before the watchdog fired: there
        // is a strictly increasing adjacent pair in the series.
        let series = report.chain_series();
        assert!(
            series.windows(2).any(|w| w[1] > w[0]),
            "wait chain never grew: {series:?}"
        );
        // And the cyclic wait was visible to the probe before confirmation.
        assert!(report.saw_cycle(), "probe never saw the cycle");
        assert!(report.peak_chain() >= 3, "fig5 cycles involve >= 3 packets");
        assert!(report.warning().is_some());
        let tl = report.timeline();
        assert!(tl.contains("<< CYCLE"));
        assert!(tl.contains("DEADLOCK confirmed"));
        return;
    }
    panic!("no seed in 0..64 deadlocked the naive broadcast storm");
}

#[test]
fn naive_broadcast_postmortem_matches_watchdog_witness() {
    let net = fig2_net();
    let shape = net.shape().clone();
    let sources = [0usize, 4, 8];

    for seed in 0..64u64 {
        let scheme = Arc::new(NaiveBroadcast::new(net.clone()));
        let vcs = scheme.max_vcs().max(1) as usize;
        let mut sim = Simulator::new(
            net.graph().clone(),
            scheme,
            SimConfig {
                arb_seed: seed,
                ..SimConfig::default()
            },
        );
        let (rec, flight) = FlightRecorder::new(net.graph().clone(), vcs, DEFAULT_FLIGHT_CAPACITY);
        sim.set_observer(Box::new(rec));
        for &src in &sources {
            let c = shape.coord_of(src);
            sim.schedule(InjectSpec {
                src_pe: src,
                header: mdx_core::Header {
                    rc: RouteChange::Broadcast,
                    dest: c,
                    src: c,
                },
                flits: 16,
                inject_at: 0,
            });
        }
        let result = sim.run();
        let SimOutcome::Deadlock(info) = &result.outcome else {
            continue;
        };

        let pm = flight
            .postmortem(&result.outcome, &result.diagnostics)
            .expect("failed runs always yield a post-mortem");
        assert_eq!(pm.outcome, "deadlock");
        assert_eq!(pm.failed_at, info.detected_at);
        assert_eq!(pm.classification, "fig5-naive-broadcast");

        // The reconstructed cycle is the watchdog's witness: same channels,
        // same edge order up to rotation.
        let got: Vec<(u32, u32, &str)> = pm
            .cycle
            .iter()
            .map(|e| (e.waiter.0, e.holder.0, e.channel.as_str()))
            .collect();
        let want: Vec<(u32, u32, &str)> = info
            .cycle
            .iter()
            .map(|e| (e.waiter.0, e.holder.0, e.channel.as_str()))
            .collect();
        assert!(!want.is_empty(), "deadlock witness carries a cycle");
        assert_eq!(got.len(), want.len());
        let matches_rotated =
            (0..want.len()).any(|r| (0..want.len()).all(|i| got[i] == want[(i + r) % want.len()]));
        assert!(
            matches_rotated,
            "reconstructed cycle {got:?} differs from witness {want:?}"
        );

        // Every edge carries the RC state of both packets — all
        // mid-broadcast (RC=2) in the Fig. 5 storm — and every cycle packet
        // has a dossier naming it.
        assert!(pm
            .cycle
            .iter()
            .all(|e| e.waiter_rc == RouteChange::Broadcast.bits()
                && e.holder_rc == RouteChange::Broadcast.bits()));
        for e in &pm.cycle {
            let dossier = pm
                .packets
                .iter()
                .find(|p| p.packet == e.waiter)
                .expect("every cycle packet gets forensics");
            assert_eq!(dossier.rc_name, "broadcast");
            assert!(!dossier.last_hops.is_empty(), "ring kept recent hops");
            assert!(!dossier.waiting_on.is_empty());
        }

        // Rendered report names the signature and the RC states; JSON
        // round-trips through the strict typed schema.
        let text = pm.render();
        assert!(text.contains("fig5-naive-broadcast"));
        assert!(text.contains("[RC=2 broadcast]"));
        assert!(text.contains("last hops:"));
        assert!(text.contains("S-XB gather queue"));
        let back: PostmortemReport = serde_json::from_str(&pm.to_json()).unwrap();
        assert_eq!(back, pm);
        return;
    }
    panic!("no seed in 0..64 deadlocked the naive broadcast storm");
}

#[test]
fn all_three_observers_compose_via_fanout() {
    let net = fig2_net();
    let scheme = Arc::new(Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap());
    let mut sim = Simulator::new(net.graph().clone(), scheme, SimConfig::default());

    let (metrics_obs, metrics) = MetricsObserver::new(net.graph().clone());
    let (trace_obs, trace) = TraceRecorder::new(net.graph());
    let (probe, stall) = StallProbe::new(32);
    sim.set_observer(Box::new(
        FanoutObserver::new()
            .with(Box::new(metrics_obs))
            .with(Box::new(trace_obs))
            .with(Box::new(probe))
            .with(Box::new(EventCounts::default())),
    ));

    for &spec in &fig10_specs(&net, 3) {
        sim.schedule(spec);
    }
    let result = sim.run();
    assert_eq!(result.outcome, SimOutcome::Completed);

    let m = metrics.report(result.stats.cycles);
    assert_eq!(m.total_flits, result.stats.flit_hops);
    assert!(!m.heatmap(None, None).is_empty());

    let doc = trace.render(result.stats.cycles);
    assert!(doc.contains("S-XB gather depth") || m.gather_peak == 0);
    // The full rendered trace passes the strict deny-unknown-fields schema.
    let parsed = TraceDoc::parse(&doc).expect("trace passes the strict schema");
    assert!(!parsed.trace_events.is_empty());
    assert!(parsed.events("X").count() > 0);

    let s = stall.report();
    assert_eq!(s.interval, 32);
    assert!(s.deadlock_at.is_none());
    assert!(!s.samples.is_empty());
}
