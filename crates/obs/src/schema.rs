//! A strict schema for the Chrome-trace JSON the
//! [`TraceRecorder`](crate::trace::TraceRecorder) emits.
//!
//! The trace renderer builds its JSON by string formatting (one
//! pre-serialized event per line, zero intermediate allocation), so
//! nothing in the type system keeps its output well-formed. This module is
//! the counterweight: typed mirror structs with **hand-written,
//! deny-unknown-fields deserialization** — every map key must be a known
//! field, every `ph` must be a known phase, and each phase's required
//! fields must be present. Tests parse rendered traces through
//! [`TraceDoc::parse`] instead of spot-checking a loose
//! [`serde::value::Value`], so a renamed, retyped, or accidentally added
//! key fails loudly.
//!
//! (The workspace serde shim's *derived* `Deserialize` ignores unknown
//! keys by design, which is exactly wrong for a schema test — hence the
//! manual impls.)

use serde::de::{field, Deserialize, Error};
use serde::value::Value;

/// Map-entry lookup for optional JSON keys: absent and `null` both read as
/// `None`.
fn opt<T: Deserialize>(entries: &[(String, Value)], name: &str) -> Result<Option<T>, Error> {
    match entries.iter().find(|(k, _)| k == name) {
        None => Ok(None),
        Some((_, Value::Null)) => Ok(None),
        Some((_, v)) => T::from_value(v).map(Some),
    }
}

/// Errors on any map key outside `allowed` — the deny-unknown-fields
/// backbone of every impl in this module.
fn deny_unknown(entries: &[(String, Value)], what: &str, allowed: &[&str]) -> Result<(), Error> {
    for (k, _) in entries {
        if !allowed.contains(&k.as_str()) {
            return Err(Error::custom(format!("unknown {what} field `{k}`")));
        }
    }
    Ok(())
}

/// The `args` object of a trace event. Exactly the keys the two renderers
/// (the hop-level [`crate::TraceRecorder`] and the span exporter
/// [`crate::spans_to_perfetto`]) ever write; anything else is a schema
/// break.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceArgs {
    /// Metadata name (`process_name` / `thread_name` events).
    pub name: Option<String>,
    /// Holder label on blocked-slice events (e.g. `pkt3`).
    pub holder: Option<String>,
    /// Flit counter value.
    pub flits: Option<u64>,
    /// Gather-queue depth counter value.
    pub depth: Option<u64>,
    /// Trace id on root request/row span slices.
    pub trace: Option<String>,
    /// `MDX1.` scenario token on engine-run span slices.
    pub token: Option<String>,
}

impl Deserialize for TraceArgs {
    fn from_value(v: &Value) -> Result<TraceArgs, Error> {
        let entries = v.as_map().ok_or_else(|| Error::expected("args map"))?;
        deny_unknown(
            entries,
            "args",
            &["name", "holder", "flits", "depth", "trace", "token"],
        )?;
        Ok(TraceArgs {
            name: opt(entries, "name")?,
            holder: opt(entries, "holder")?,
            flits: opt(entries, "flits")?,
            depth: opt(entries, "depth")?,
            trace: opt(entries, "trace")?,
            token: opt(entries, "token")?,
        })
    }
}

/// One Chrome-trace event, restricted to the four phases the renderer
/// emits: complete slices (`X`), instants (`i`), counters (`C`), and
/// name metadata (`M`).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name.
    pub name: String,
    /// Phase code (`X`, `i`, `C`, or `M`).
    pub ph: String,
    /// Process id (track group).
    pub pid: u64,
    /// Thread id (track) — absent only on `process_name` metadata.
    pub tid: Option<u64>,
    /// Timestamp (µs in trace units; simulation cycles here).
    pub ts: Option<u64>,
    /// Slice duration (`X` only).
    pub dur: Option<u64>,
    /// Instant scope (`i` only; the renderer always writes `t`).
    pub s: Option<String>,
    /// Event arguments.
    pub args: Option<TraceArgs>,
}

impl Deserialize for TraceEvent {
    fn from_value(v: &Value) -> Result<TraceEvent, Error> {
        let entries = v.as_map().ok_or_else(|| Error::expected("event map"))?;
        deny_unknown(
            entries,
            "event",
            &["name", "ph", "pid", "tid", "ts", "dur", "s", "args"],
        )?;
        let ev = TraceEvent {
            name: String::from_value(field(entries, "name")?)?,
            ph: String::from_value(field(entries, "ph")?)?,
            pid: u64::from_value(field(entries, "pid")?)?,
            tid: opt(entries, "tid")?,
            ts: opt(entries, "ts")?,
            dur: opt(entries, "dur")?,
            s: opt(entries, "s")?,
            args: opt(entries, "args")?,
        };
        ev.validate()?;
        Ok(ev)
    }
}

impl TraceEvent {
    /// Phase-specific field requirements: each `ph` has a fixed shape and
    /// anything looser is a renderer regression.
    fn validate(&self) -> Result<(), Error> {
        let need = |cond: bool, what: &str| {
            if cond {
                Ok(())
            } else {
                Err(Error::custom(format!(
                    "`{}` event `{}` {what}",
                    self.ph, self.name
                )))
            }
        };
        match self.ph.as_str() {
            "X" => {
                need(self.tid.is_some(), "missing tid")?;
                need(self.ts.is_some(), "missing ts")?;
                need(self.dur.is_some(), "missing dur")?;
                need(self.s.is_none(), "carries an instant scope")
            }
            "i" => {
                need(self.tid.is_some(), "missing tid")?;
                need(self.ts.is_some(), "missing ts")?;
                need(self.s.as_deref() == Some("t"), "missing thread scope `t`")?;
                need(self.dur.is_none(), "carries a duration")
            }
            "C" => {
                need(self.tid.is_some(), "missing tid")?;
                need(self.ts.is_some(), "missing ts")?;
                let counters = self
                    .args
                    .as_ref()
                    .map(|a| usize::from(a.flits.is_some()) + usize::from(a.depth.is_some()))
                    .unwrap_or(0);
                need(counters == 1, "needs exactly one counter value")
            }
            "M" => {
                need(self.ts.is_none(), "carries a timestamp")?;
                need(
                    self.args.as_ref().is_some_and(|a| a.name.is_some()),
                    "missing args.name",
                )
            }
            other => Err(Error::custom(format!("unknown phase `{other}`"))),
        }
    }
}

/// The whole trace document: `traceEvents` plus `displayTimeUnit`, nothing
/// else.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDoc {
    /// All events, in emission order.
    pub trace_events: Vec<TraceEvent>,
    /// Viewer display unit (the renderer writes `ms`).
    pub display_time_unit: String,
}

impl Deserialize for TraceDoc {
    fn from_value(v: &Value) -> Result<TraceDoc, Error> {
        let entries = v
            .as_map()
            .ok_or_else(|| Error::expected("trace document"))?;
        deny_unknown(entries, "document", &["traceEvents", "displayTimeUnit"])?;
        Ok(TraceDoc {
            trace_events: Vec::from_value(field(entries, "traceEvents")?)?,
            display_time_unit: String::from_value(field(entries, "displayTimeUnit")?)?,
        })
    }
}

impl TraceDoc {
    /// Parses and validates rendered trace JSON.
    pub fn parse(json: &str) -> Result<TraceDoc, Error> {
        serde_json::from_str(json).map_err(|e| Error::custom(e.to_string()))
    }

    /// Events with phase `ph`.
    pub fn events<'a>(&'a self, ph: &'a str) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.trace_events.iter().filter(move |e| e.ph == ph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_the_renderer_shapes() {
        let doc = TraceDoc::parse(
            r#"{"traceEvents":[
                {"name":"process_name","ph":"M","pid":1,"args":{"name":"packets"}},
                {"name":"thread_name","ph":"M","pid":1,"tid":3,"args":{"name":"pkt3"}},
                {"name":"R0 -> X0-XB","ph":"X","pid":1,"tid":0,"ts":2,"dur":5},
                {"name":"blocked","ph":"X","pid":1,"tid":0,"ts":2,"dur":5,"args":{"holder":"pkt1"}},
                {"name":"rc 1 -> 2","ph":"i","pid":1,"tid":0,"ts":4,"s":"t"},
                {"name":"gather depth","ph":"C","pid":9,"tid":0,"ts":4,"args":{"depth":2}}
            ],"displayTimeUnit":"ms"}"#,
        )
        .expect("well-formed trace parses");
        assert_eq!(doc.trace_events.len(), 6);
        assert_eq!(doc.display_time_unit, "ms");
        assert_eq!(doc.events("M").count(), 2);
        assert_eq!(doc.events("X").count(), 2);
    }

    #[test]
    fn rejects_unknown_keys_and_malformed_phases() {
        // Unknown top-level key.
        assert!(TraceDoc::parse(r#"{"traceEvents":[],"displayTimeUnit":"ms","extra":1}"#).is_err());
        // Unknown event key.
        assert!(TraceDoc::parse(
            r#"{"traceEvents":[{"name":"x","ph":"M","pid":1,"bogus":1,"args":{"name":"y"}}],"displayTimeUnit":"ms"}"#
        )
        .is_err());
        // Unknown args key.
        assert!(TraceDoc::parse(
            r#"{"traceEvents":[{"name":"x","ph":"M","pid":1,"args":{"names":"y"}}],"displayTimeUnit":"ms"}"#
        )
        .is_err());
        // Slice without duration.
        assert!(TraceDoc::parse(
            r#"{"traceEvents":[{"name":"x","ph":"X","pid":1,"tid":0,"ts":1}],"displayTimeUnit":"ms"}"#
        )
        .is_err());
        // Unknown phase.
        assert!(TraceDoc::parse(
            r#"{"traceEvents":[{"name":"x","ph":"B","pid":1,"tid":0,"ts":1}],"displayTimeUnit":"ms"}"#
        )
        .is_err());
        // Counter with no counter value.
        assert!(TraceDoc::parse(
            r#"{"traceEvents":[{"name":"x","ph":"C","pid":1,"tid":0,"ts":1,"args":{}}],"displayTimeUnit":"ms"}"#
        )
        .is_err());
        // Missing displayTimeUnit.
        assert!(TraceDoc::parse(r#"{"traceEvents":[]}"#).is_err());
    }
}
