//! Request-scoped distributed-style tracing: a dependency-light span
//! model, an in-process collector with head sampling, and two exporters
//! (Perfetto `trace_event` JSON validated by [`crate::TraceDoc`], and a
//! JSONL span log).
//!
//! A [`Span`] is one timed region: trace id, span id, optional parent,
//! name, `[start, end]` in one of two time domains ([`SpanUnit::Micros`]
//! for wall-clock regions, [`SpanUnit::Cycles`] for simulation-time
//! regions), and free-form key/value attributes. Spans for one request
//! accumulate in a request-local [`TraceBuilder`] — the hot path touches
//! no shared state — and the finished trace is offered to a process-wide
//! [`SpanCollector`] in a single short critical section.
//!
//! Two design rules keep this honest in a serving hot path:
//!
//! - **The disabled path costs nothing.** A service without a collector
//!   never builds a span; the `spans_detached` row in the
//!   `engine_observer_overhead` bench pins this against the bare engine.
//! - **Head sampling decides early, abnormal outcomes always keep.** The
//!   keep/drop decision for a trace is taken when the request *starts*
//!   (deterministic 1-in-N counter, no RNG), but a trace whose outcome is
//!   abnormal (error, deadlock, cycle-limit) is kept regardless — tail
//!   forensics must not depend on the sampling dice.
//!
//! Timestamps are offsets from the collector owner's epoch (service
//! start), so spans from concurrent requests share one timeline. The two
//! units never mix inside one nesting check: wall-µs spans tile the
//! request timeline, cycle spans form their own subtree under the engine
//! run (pid 2 in the Perfetto export).

use serde::de::{field, Deserialize, Error};
use serde::ser::Serialize;
use serde::value::Value;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The time domain a span's `[start, end]` offsets live in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanUnit {
    /// Wall-clock microseconds since the collector owner's epoch.
    Micros,
    /// Simulation cycles since the engine run's cycle 0.
    Cycles,
}

impl SpanUnit {
    /// Wire name (`us` / `cycles`).
    pub fn as_str(self) -> &'static str {
        match self {
            SpanUnit::Micros => "us",
            SpanUnit::Cycles => "cycles",
        }
    }

    /// Parses a wire name back into a unit.
    pub fn parse(s: &str) -> Option<SpanUnit> {
        match s {
            "us" => Some(SpanUnit::Micros),
            "cycles" => Some(SpanUnit::Cycles),
            _ => None,
        }
    }
}

/// One timed region of one request.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Trace id — shared by every span of one request.
    pub trace: String,
    /// Span id, unique within the trace.
    pub id: u64,
    /// Parent span id; `None` marks a root.
    pub parent: Option<u64>,
    /// Region name (`request`, `queue`, `run`, `epoch 1`, ...).
    pub name: String,
    /// Region start, in `unit` offsets.
    pub start: u64,
    /// Region end, in `unit` offsets (`end >= start`).
    pub end: u64,
    /// Time domain of `start`/`end`.
    pub unit: SpanUnit,
    /// Free-form key/value attributes (`token`, `digest`, `tier`, ...).
    pub attrs: Vec<(String, String)>,
}

impl Span {
    /// Region length in `unit` ticks.
    pub fn duration(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// The value of attribute `key`, when present.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

impl Serialize for Span {
    fn to_value(&self) -> Value {
        let mut m: Vec<(String, Value)> = vec![
            ("trace".into(), Value::Str(self.trace.clone())),
            ("span".into(), Value::U64(self.id)),
        ];
        if let Some(p) = self.parent {
            m.push(("parent".into(), Value::U64(p)));
        }
        m.push(("name".into(), Value::Str(self.name.clone())));
        m.push(("start".into(), Value::U64(self.start)));
        m.push(("end".into(), Value::U64(self.end)));
        m.push(("unit".into(), Value::Str(self.unit.as_str().into())));
        if !self.attrs.is_empty() {
            m.push((
                "attrs".into(),
                Value::Map(
                    self.attrs
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                        .collect(),
                ),
            ));
        }
        Value::Map(m)
    }
}

impl Deserialize for Span {
    fn from_value(v: &Value) -> Result<Span, Error> {
        let entries = v.as_map().ok_or_else(|| Error::expected("span map"))?;
        let unit_name = String::from_value(field(entries, "unit")?)?;
        let unit = SpanUnit::parse(&unit_name)
            .ok_or_else(|| Error::custom(format!("unknown span unit `{unit_name}`")))?;
        let parent = match entries.iter().find(|(k, _)| k == "parent") {
            Some((_, pv)) => Some(u64::from_value(pv)?),
            None => None,
        };
        let attrs = match entries.iter().find(|(k, _)| k == "attrs") {
            Some((_, av)) => av
                .as_map()
                .ok_or_else(|| Error::expected("attrs map"))?
                .iter()
                .map(|(k, val)| {
                    val.as_str()
                        .map(|s| (k.clone(), s.to_string()))
                        .ok_or_else(|| Error::expected("string attr value"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
        };
        let span = Span {
            trace: String::from_value(field(entries, "trace")?)?,
            id: u64::from_value(field(entries, "span")?)?,
            parent,
            name: String::from_value(field(entries, "name")?)?,
            start: u64::from_value(field(entries, "start")?)?,
            end: u64::from_value(field(entries, "end")?)?,
            unit,
            attrs,
        };
        if span.end < span.start {
            return Err(Error::custom(format!(
                "span `{}` ends before it starts",
                span.name
            )));
        }
        Ok(span)
    }
}

/// Request-local span accumulator. One builder per in-flight request; no
/// locks, no shared state — the finished `Vec<Span>` is handed to the
/// [`SpanCollector`] in one call.
#[derive(Debug)]
pub struct TraceBuilder {
    trace: String,
    next_id: u64,
    spans: Vec<Span>,
}

impl TraceBuilder {
    /// A builder for trace `trace` (client-supplied or collector-minted).
    pub fn new(trace: impl Into<String>) -> TraceBuilder {
        TraceBuilder {
            trace: trace.into(),
            next_id: 1,
            spans: Vec::new(),
        }
    }

    /// The trace id every span of this builder carries.
    pub fn trace_id(&self) -> &str {
        &self.trace
    }

    /// Appends a span and returns its id (usable as a later `parent`).
    /// `end < start` is clamped to a zero-length span at `start`.
    pub fn add(
        &mut self,
        parent: Option<u64>,
        name: &str,
        start: u64,
        end: u64,
        unit: SpanUnit,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.spans.push(Span {
            trace: self.trace.clone(),
            id,
            parent,
            name: name.to_string(),
            start,
            end: end.max(start),
            unit,
            attrs: Vec::new(),
        });
        id
    }

    /// Attaches `key=value` to span `id` (no-op for an unknown id).
    pub fn attr(&mut self, id: u64, key: &str, value: impl Into<String>) {
        if let Some(s) = self.spans.iter_mut().find(|s| s.id == id) {
            s.attrs.push((key.to_string(), value.into()));
        }
    }

    /// Moves span `id`'s end (clamped to its start; no-op for unknown id).
    pub fn set_end(&mut self, id: u64, end: u64) {
        if let Some(s) = self.spans.iter_mut().find(|s| s.id == id) {
            s.end = end.max(s.start);
        }
    }

    /// Spans recorded so far.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Finishes the trace, yielding its spans in creation order.
    pub fn finish(self) -> Vec<Span> {
        self.spans
    }
}

/// Default bound on resident kept traces (FIFO eviction past this).
pub const DEFAULT_TRACE_CAPACITY: usize = 256;

/// Collector counters: one snapshot of the offer/keep/drop ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanStats {
    /// Traces finished while the collector was attached (kept + sampled out).
    pub offered: u64,
    /// Traces kept (head-sampled in, or abnormal-outcome override).
    pub kept: u64,
    /// Traces dropped by head sampling.
    pub sampled_out: u64,
    /// Kept traces later evicted from the resident ring (still in the log).
    pub evicted: u64,
}

/// Process-wide sink for finished traces: head-sampling decisions, a
/// bounded resident ring (for the `spans` protocol verb and the Perfetto
/// export), and an optional append-only JSONL log.
///
/// Writers never contend beyond one short `Mutex` append per *finished
/// trace* — span recording itself happens in the request-local
/// [`TraceBuilder`]. All counters are relaxed atomics.
#[derive(Debug)]
pub struct SpanCollector {
    /// Keep 1 trace in `keep_per` (0 = head-sample everything out).
    keep_per: u64,
    sample_seq: AtomicU64,
    id_seq: AtomicU64,
    salt: u64,
    offered: AtomicU64,
    kept: AtomicU64,
    sampled_out: AtomicU64,
    evicted: AtomicU64,
    capacity: usize,
    traces: Mutex<VecDeque<Vec<Span>>>,
    log: Option<Mutex<std::io::BufWriter<std::fs::File>>>,
}

impl SpanCollector {
    /// A collector keeping `rate` of head-sampled traces (clamped to
    /// `[0, 1]`; `1.0` keeps everything, `0.0` keeps only abnormal
    /// outcomes). The resident ring holds [`DEFAULT_TRACE_CAPACITY`]
    /// traces.
    pub fn new(rate: f64) -> SpanCollector {
        let keep_per = if rate >= 1.0 {
            1
        } else if rate <= 0.0 {
            0
        } else {
            (1.0 / rate).round().max(1.0) as u64
        };
        SpanCollector {
            keep_per,
            sample_seq: AtomicU64::new(0),
            id_seq: AtomicU64::new(0),
            // Distinguishes trace ids across collector instances (e.g.
            // server restarts feeding one log) without any RNG dependency.
            salt: std::process::id() as u64,
            offered: AtomicU64::new(0),
            kept: AtomicU64::new(0),
            sampled_out: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            capacity: DEFAULT_TRACE_CAPACITY,
            traces: Mutex::new(VecDeque::new()),
            log: None,
        }
    }

    /// Caps the resident ring at `capacity` traces (builder style).
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> SpanCollector {
        self.capacity = capacity.max(1);
        self
    }

    /// Adds an append-only JSONL span log at `path` (one span per line;
    /// kept traces only).
    pub fn with_log(mut self, path: &std::path::Path) -> std::io::Result<SpanCollector> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let file = std::fs::File::create(path)?;
        self.log = Some(Mutex::new(std::io::BufWriter::new(file)));
        Ok(self)
    }

    /// Mints a fresh trace id for a request that didn't supply one.
    /// Deterministic per collector (sequence FNV-mixed with a per-process
    /// salt), formatted as 16 hex digits.
    pub fn next_trace_id(&self) -> String {
        let seq = self.id_seq.fetch_add(1, Ordering::Relaxed);
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.salt;
        for b in seq.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{h:016x}")
    }

    /// The head-sampling decision for a new trace: deterministic 1-in-N
    /// on a shared counter (no RNG, so a replayed session samples the
    /// same requests). Call once per request, at its start.
    pub fn head_sample(&self) -> bool {
        if self.keep_per == 0 {
            return false;
        }
        self.sample_seq
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(self.keep_per)
    }

    /// Keeps a finished trace: appended to the JSONL log (when one is
    /// attached) and to the resident ring (FIFO eviction past capacity).
    /// The caller has already combined [`Self::head_sample`] with its
    /// always-keep-on-abnormal-outcome override.
    pub fn offer(&self, spans: Vec<Span>) {
        if spans.is_empty() {
            return;
        }
        self.offered.fetch_add(1, Ordering::Relaxed);
        self.kept.fetch_add(1, Ordering::Relaxed);
        if let Some(log) = &self.log {
            let mut w = log.lock().expect("span log lock");
            for s in &spans {
                // Log failures degrade silently: tracing must never take
                // the service down.
                let _ = writeln!(w, "{}", serde_json::to_string(s).expect("span serializes"));
            }
            let _ = w.flush();
        }
        let mut ring = self.traces.lock().expect("span ring lock");
        ring.push_back(spans);
        while ring.len() > self.capacity {
            ring.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a finished trace that head sampling dropped (ledger only).
    pub fn drop_unsampled(&self) {
        self.offered.fetch_add(1, Ordering::Relaxed);
        self.sampled_out.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the offer/keep/drop ledger.
    pub fn stats(&self) -> SpanStats {
        SpanStats {
            offered: self.offered.load(Ordering::Relaxed),
            kept: self.kept.load(Ordering::Relaxed),
            sampled_out: self.sampled_out.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
        }
    }

    /// Clones the resident kept traces, oldest first.
    pub fn kept_traces(&self) -> Vec<Vec<Span>> {
        self.traces
            .lock()
            .expect("span ring lock")
            .iter()
            .cloned()
            .collect()
    }

    /// Renders the resident traces as Perfetto `trace_event` JSON (see
    /// [`spans_to_perfetto`]).
    pub fn to_perfetto(&self) -> String {
        spans_to_perfetto(&self.kept_traces())
    }

    /// The ledger plus one summary line per resident trace — the payload
    /// of the `spans` protocol verb.
    pub fn to_value(&self) -> Value {
        let stats = self.stats();
        let traces = self.kept_traces();
        let rows: Vec<Value> = traces
            .iter()
            .filter_map(|t| {
                let root = t.iter().find(|s| s.parent.is_none())?;
                let mut m: Vec<(String, Value)> = vec![
                    ("trace".into(), Value::Str(root.trace.clone())),
                    ("name".into(), Value::Str(root.name.clone())),
                    ("duration_us".into(), Value::U64(root.duration())),
                    ("spans".into(), Value::U64(t.len() as u64)),
                ];
                if let Some(tok) = t.iter().find_map(|s| s.attr("token")) {
                    m.push(("token".into(), Value::Str(tok.to_string())));
                }
                Some(Value::Map(m))
            })
            .collect();
        Value::Map(vec![
            ("offered".into(), Value::U64(stats.offered)),
            ("kept".into(), Value::U64(stats.kept)),
            ("sampled_out".into(), Value::U64(stats.sampled_out)),
            ("evicted".into(), Value::U64(stats.evicted)),
            ("resident".into(), Value::U64(traces.len() as u64)),
            ("traces".into(), Value::Seq(rows)),
        ])
    }
}

/// Parses a JSONL span log (one span per line; blank lines skipped).
pub fn parse_span_log(text: &str) -> Result<Vec<Span>, Error> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(|l| serde_json::from_str::<Span>(l).map_err(|e| Error::custom(e.to_string())))
        .collect()
}

/// Groups a flat span list back into whole traces, preserving first-seen
/// trace order and per-trace span order.
pub fn group_traces(spans: Vec<Span>) -> Vec<Vec<Span>> {
    let mut order: Vec<String> = Vec::new();
    let mut by_trace: Vec<Vec<Span>> = Vec::new();
    for s in spans {
        match order.iter().position(|t| *t == s.trace) {
            Some(i) => by_trace[i].push(s),
            None => {
                order.push(s.trace.clone());
                by_trace.push(vec![s]);
            }
        }
    }
    by_trace
}

/// Renders traces as Perfetto `trace_event` JSON: every span an `X`
/// slice, wall-µs spans on pid 1 and cycle spans on pid 2 (the two time
/// domains must not share a track), one tid per trace with `thread_name`
/// metadata naming the trace id. Root spans carry their trace id (and
/// `token` attribute, when tagged) in `args`. The output parses under the
/// strict [`crate::TraceDoc`] schema.
pub fn spans_to_perfetto(traces: &[Vec<Span>]) -> String {
    const PID_WALL: u64 = 1;
    const PID_CYCLES: u64 = 2;
    let mut events: Vec<Value> = Vec::new();
    let meta = |name: &str, pid: u64, tid: Option<u64>| {
        let mut m: Vec<(String, Value)> = vec![
            (
                "name".into(),
                Value::Str(if tid.is_some() {
                    "thread_name".into()
                } else {
                    "process_name".into()
                }),
            ),
            ("ph".into(), Value::Str("M".into())),
            ("pid".into(), Value::U64(pid)),
        ];
        if let Some(t) = tid {
            m.push(("tid".into(), Value::U64(t)));
        }
        m.push((
            "args".into(),
            Value::Map(vec![("name".into(), Value::Str(name.into()))]),
        ));
        Value::Map(m)
    };
    let has_wall = traces
        .iter()
        .any(|t| t.iter().any(|s| s.unit == SpanUnit::Micros));
    let has_cycles = traces
        .iter()
        .any(|t| t.iter().any(|s| s.unit == SpanUnit::Cycles));
    if has_wall {
        events.push(meta("requests (us)", PID_WALL, None));
    }
    if has_cycles {
        events.push(meta("engine (cycles)", PID_CYCLES, None));
    }
    for (i, trace) in traces.iter().enumerate() {
        let tid = i as u64 + 1;
        let Some(first) = trace.first() else { continue };
        if trace.iter().any(|s| s.unit == SpanUnit::Micros) {
            events.push(meta(&first.trace, PID_WALL, Some(tid)));
        }
        if trace.iter().any(|s| s.unit == SpanUnit::Cycles) {
            events.push(meta(&first.trace, PID_CYCLES, Some(tid)));
        }
        for s in trace {
            let pid = match s.unit {
                SpanUnit::Micros => PID_WALL,
                SpanUnit::Cycles => PID_CYCLES,
            };
            let mut m: Vec<(String, Value)> = vec![
                ("name".into(), Value::Str(s.name.clone())),
                ("ph".into(), Value::Str("X".into())),
                ("pid".into(), Value::U64(pid)),
                ("tid".into(), Value::U64(tid)),
                ("ts".into(), Value::U64(s.start)),
                // Perfetto hides zero-length slices; clamp up to 1 tick.
                ("dur".into(), Value::U64(s.duration().max(1))),
            ];
            let mut args: Vec<(String, Value)> = Vec::new();
            if s.parent.is_none() {
                args.push(("trace".into(), Value::Str(s.trace.clone())));
            }
            if let Some(tok) = s.attr("token") {
                args.push(("token".into(), Value::Str(tok.to_string())));
            }
            if !args.is_empty() {
                m.push(("args".into(), Value::Map(args)));
            }
            events.push(Value::Map(m));
        }
    }
    let doc = Value::Map(vec![
        ("traceEvents".into(), Value::Seq(events)),
        ("displayTimeUnit".into(), Value::Str("ms".into())),
    ]);
    serde_json::to_string(&doc).expect("perfetto doc serializes")
}

/// Per-name aggregate in a span-log summary.
#[derive(Debug, Clone, PartialEq)]
pub struct NameStat {
    /// Span name.
    pub name: String,
    /// Time domain the spans of this name live in.
    pub unit: SpanUnit,
    /// Number of spans.
    pub count: usize,
    /// Summed duration.
    pub total: u64,
    /// Longest single span.
    pub max: u64,
}

/// One of the top-k slowest root requests in a span-log summary.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowTrace {
    /// Trace id.
    pub trace: String,
    /// Root span name.
    pub name: String,
    /// Root duration (wall µs).
    pub duration: u64,
    /// Scenario token tagged anywhere in the trace, when present.
    pub token: Option<String>,
    /// Direct wall-µs children of the root, in timeline order:
    /// `(name, duration)` — the request's critical-path breakdown.
    pub breakdown: Vec<(String, u64)>,
}

/// Aggregated view of a span log: per-name critical-path totals plus the
/// top-k slowest exemplar traces.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSummary {
    /// Whole traces in the log.
    pub traces: usize,
    /// Total spans in the log.
    pub spans: usize,
    /// Per-name aggregates, wall-µs names first, by total descending.
    pub by_name: Vec<NameStat>,
    /// The slowest root requests, slowest first.
    pub slowest: Vec<SlowTrace>,
}

/// Summarizes a flat span list (as parsed from a JSONL log): per-name
/// totals and the `top_k` slowest wall-clock roots with their child
/// breakdowns.
pub fn summarize_spans(spans: &[Span], top_k: usize) -> SpanSummary {
    let mut by_name: Vec<NameStat> = Vec::new();
    for s in spans {
        match by_name
            .iter_mut()
            .find(|n| n.name == s.name && n.unit == s.unit)
        {
            Some(n) => {
                n.count += 1;
                n.total += s.duration();
                n.max = n.max.max(s.duration());
            }
            None => by_name.push(NameStat {
                name: s.name.clone(),
                unit: s.unit,
                count: 1,
                total: s.duration(),
                max: s.duration(),
            }),
        }
    }
    by_name.sort_by(|a, b| {
        (a.unit == SpanUnit::Cycles)
            .cmp(&(b.unit == SpanUnit::Cycles))
            .then(b.total.cmp(&a.total))
    });

    let traces = group_traces(spans.to_vec());
    let mut slowest: Vec<SlowTrace> = traces
        .iter()
        .filter_map(|t| {
            let root = t
                .iter()
                .find(|s| s.parent.is_none() && s.unit == SpanUnit::Micros)?;
            let breakdown: Vec<(String, u64)> = t
                .iter()
                .filter(|s| s.parent == Some(root.id) && s.unit == SpanUnit::Micros)
                .map(|s| (s.name.clone(), s.duration()))
                .collect();
            Some(SlowTrace {
                trace: root.trace.clone(),
                name: root.name.clone(),
                duration: root.duration(),
                token: t.iter().find_map(|s| s.attr("token").map(String::from)),
                breakdown,
            })
        })
        .collect();
    slowest.sort_by_key(|t| std::cmp::Reverse(t.duration));
    slowest.truncate(top_k);

    SpanSummary {
        traces: traces.len(),
        spans: spans.len(),
        by_name,
        slowest,
    }
}

impl SpanSummary {
    /// Renders the summary as the `campaign spans` table: per-name
    /// breakdown with share-of-root for wall-µs names, then the top-k
    /// slowest exemplar traces with their child decomposition.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "span log: {} trace(s), {} span(s)\n\n",
            self.traces, self.spans
        ));
        let root_total = self.wall_root_total();
        out.push_str(&format!(
            "{:<24} {:>8} {:>7} {:>14} {:>12} {:>7}\n",
            "name", "unit", "count", "total", "max", "share"
        ));
        for n in &self.by_name {
            let share = if n.unit == SpanUnit::Micros && root_total > 0 {
                format!("{:.1}%", 100.0 * n.total as f64 / root_total as f64)
            } else {
                "-".to_string()
            };
            out.push_str(&format!(
                "{:<24} {:>8} {:>7} {:>14} {:>12} {:>7}\n",
                n.name,
                n.unit.as_str(),
                n.count,
                n.total,
                n.max,
                share
            ));
        }
        if !self.slowest.is_empty() {
            out.push_str(&format!("\nslowest {} trace(s):\n", self.slowest.len()));
            for (i, t) in self.slowest.iter().enumerate() {
                out.push_str(&format!(
                    "{:>3}. {}  {} = {} us",
                    i + 1,
                    t.trace,
                    t.name,
                    t.duration
                ));
                if let Some(tok) = &t.token {
                    out.push_str(&format!("  token={tok}"));
                }
                out.push('\n');
                if !t.breakdown.is_empty() {
                    let parts: Vec<String> = t
                        .breakdown
                        .iter()
                        .map(|(n, d)| format!("{n}={d}us"))
                        .collect();
                    out.push_str(&format!("     {}\n", parts.join(" ")));
                }
            }
        }
        out
    }

    /// Summed duration of all wall-µs root spans (the share denominator).
    fn wall_root_total(&self) -> u64 {
        // Root names are whatever the emitters used (`request`, `row`);
        // the summary recovers the denominator from the slowest list when
        // available, else from the largest wall total — conservative
        // either way.
        self.by_name
            .iter()
            .filter(|n| n.unit == SpanUnit::Micros)
            .filter(|n| n.name == "request" || n.name == "row")
            .map(|n| n.total)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceDoc;

    fn sample_trace(trace: &str, with_cycles: bool) -> Vec<Span> {
        let mut t = TraceBuilder::new(trace);
        let root = t.add(None, "request", 100, 200, SpanUnit::Micros);
        t.add(Some(root), "queue", 100, 110, SpanUnit::Micros);
        t.add(Some(root), "cache", 110, 120, SpanUnit::Micros);
        let run = t.add(Some(root), "run", 120, 190, SpanUnit::Micros);
        t.add(Some(root), "serialize", 190, 200, SpanUnit::Micros);
        t.attr(run, "token", "MDX1.fake");
        if with_cycles {
            let engine = t.add(Some(run), "engine", 0, 500, SpanUnit::Cycles);
            let epoch = t.add(Some(engine), "epoch 1", 40, 90, SpanUnit::Cycles);
            t.add(Some(epoch), "detect", 40, 50, SpanUnit::Cycles);
            t.add(Some(epoch), "drain", 50, 70, SpanUnit::Cycles);
        }
        t.finish()
    }

    #[test]
    fn builder_assigns_ids_and_attrs() {
        let spans = sample_trace("t1", false);
        assert_eq!(spans.len(), 5);
        let root = &spans[0];
        assert_eq!(root.parent, None);
        assert!(spans[1..].iter().all(|s| s.parent == Some(root.id)));
        let run = spans.iter().find(|s| s.name == "run").unwrap();
        assert_eq!(run.attr("token"), Some("MDX1.fake"));
        assert_eq!(run.duration(), 70);
    }

    #[test]
    fn jsonl_round_trips() {
        let spans = sample_trace("t1", true);
        let log: String = spans
            .iter()
            .map(|s| serde_json::to_string(s).unwrap() + "\n")
            .collect();
        let back = parse_span_log(&log).expect("log parses");
        assert_eq!(back, spans);
    }

    #[test]
    fn jsonl_rejects_bad_unit_and_reversed_span() {
        assert!(parse_span_log(
            r#"{"trace":"t","span":1,"name":"x","start":0,"end":1,"unit":"days"}"#
        )
        .is_err());
        assert!(parse_span_log(
            r#"{"trace":"t","span":1,"name":"x","start":5,"end":1,"unit":"us"}"#
        )
        .is_err());
    }

    #[test]
    fn head_sampling_is_deterministic_one_in_n() {
        let c = SpanCollector::new(0.25);
        let kept: Vec<bool> = (0..8).map(|_| c.head_sample()).collect();
        assert_eq!(
            kept,
            vec![true, false, false, false, true, false, false, false]
        );
        assert!(SpanCollector::new(1.0).head_sample());
        assert!(!SpanCollector::new(0.0).head_sample());
    }

    #[test]
    fn collector_ring_caps_and_counts() {
        let c = SpanCollector::new(1.0).with_capacity(2);
        for i in 0..3 {
            c.offer(sample_trace(&format!("t{i}"), false));
        }
        c.drop_unsampled();
        let stats = c.stats();
        assert_eq!(stats.offered, 4);
        assert_eq!(stats.kept, 3);
        assert_eq!(stats.sampled_out, 1);
        assert_eq!(stats.evicted, 1);
        let resident = c.kept_traces();
        assert_eq!(resident.len(), 2);
        assert_eq!(resident[0][0].trace, "t1");
        assert_eq!(resident[1][0].trace, "t2");
    }

    #[test]
    fn minted_trace_ids_are_unique_hex() {
        let c = SpanCollector::new(1.0);
        let a = c.next_trace_id();
        let b = c.next_trace_id();
        assert_ne!(a, b);
        assert_eq!(a.len(), 16);
        assert!(a.chars().all(|ch| ch.is_ascii_hexdigit()));
    }

    #[test]
    fn perfetto_export_passes_the_strict_schema() {
        let traces = vec![sample_trace("t1", true), sample_trace("t2", false)];
        let json = spans_to_perfetto(&traces);
        let doc = TraceDoc::parse(&json).expect("perfetto export validates");
        // Both process tracks named, both traces' threads named.
        assert_eq!(doc.events("M").count(), 2 + 2 + 1);
        // Every span is an X slice.
        let slices: usize = traces.iter().map(Vec::len).sum();
        assert_eq!(doc.events("X").count(), slices);
        // Wall and cycle spans land on separate pids.
        assert!(doc.events("X").any(|e| e.pid == 1));
        assert!(doc.events("X").any(|e| e.pid == 2));
        // Roots carry their trace id in args.
        assert!(doc
            .events("X")
            .filter(|e| e.name == "request")
            .all(|e| e.args.as_ref().is_some_and(|a| a.trace.is_some())));
    }

    #[test]
    fn collector_log_appends_kept_traces() {
        let dir = std::env::temp_dir().join(format!(
            "mdx-span-log-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("spans.jsonl");
        let c = SpanCollector::new(1.0).with_log(&path).expect("log opens");
        c.offer(sample_trace("t1", true));
        c.offer(sample_trace("t2", false));
        let text = std::fs::read_to_string(&path).expect("log readable");
        let spans = parse_span_log(&text).expect("log parses");
        assert_eq!(group_traces(spans).len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn summary_breaks_down_critical_path() {
        let mut all = sample_trace("t1", true);
        all.extend(sample_trace("t2", false));
        let summary = summarize_spans(&all, 1);
        assert_eq!(summary.traces, 2);
        let req = summary
            .by_name
            .iter()
            .find(|n| n.name == "request")
            .unwrap();
        assert_eq!(req.count, 2);
        assert_eq!(req.total, 200);
        // Cycle-domain names sort after wall names.
        let first_cycle = summary
            .by_name
            .iter()
            .position(|n| n.unit == SpanUnit::Cycles)
            .unwrap();
        assert!(summary.by_name[..first_cycle]
            .iter()
            .all(|n| n.unit == SpanUnit::Micros));
        assert_eq!(summary.slowest.len(), 1);
        let slow = &summary.slowest[0];
        assert_eq!(slow.duration, 100);
        assert_eq!(slow.token.as_deref(), Some("MDX1.fake"));
        assert_eq!(
            slow.breakdown,
            vec![
                ("queue".to_string(), 10),
                ("cache".to_string(), 10),
                ("run".to_string(), 70),
                ("serialize".to_string(), 10),
            ]
        );
        let rendered = summary.render();
        assert!(rendered.contains("request"));
        assert!(rendered.contains("token=MDX1.fake"));
    }
}
