//! Chrome `trace_event` / Perfetto JSON export.
//!
//! [`TraceRecorder`] turns one simulation run into a trace openable in
//! [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`. One simulated
//! cycle maps to one microsecond of trace time. The trace carries four
//! process groups:
//!
//! - **pid 1 — packets**: one track per packet; a complete (`"X"`) slice
//!   per switch visit (hop-to-hop residency) with instant markers for RC
//!   rewrites, deliveries, and completion.
//! - **pid 2 — stalls**: one track per packet; a slice per blocked episode,
//!   named after the contended channel, with the holding packet in `args`.
//! - **pid 3 — queues**: a counter track for the S-XB serialization-queue
//!   depth.
//! - **pid 4 — crossbars**: one cumulative-flits counter track per crossbar
//!   switch, so the hot crossbar is visible at a glance.
//!
//! Events are pre-serialized into JSON strings as they happen (the strings
//! involved are switch/packet names — plain ASCII), so rendering the final
//! document is a join.

use mdx_core::RouteChange;
use mdx_sim::{DeadlockInfo, InjectSpec, PacketId, SimObserver};
use mdx_topology::{ChannelId, NetworkGraph, Node};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

const PID_PACKETS: u32 = 1;
const PID_STALLS: u32 = 2;
const PID_QUEUES: u32 = 3;
const PID_XBARS: u32 = 4;

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// A blocked episode's key: (packet, channel, vc lane).
type BlockKey = (u32, u32, u8);
/// A blocked episode's opening: (start cycle, holding packet).
type BlockOpen = (u64, Option<u32>);

struct State {
    chan_desc: Vec<String>,
    chan_src_xbar: Vec<Option<u32>>,
    xbar_names: Vec<String>,
    events: Vec<String>,
    open_hops: HashMap<u32, (String, u64)>,
    open_blocks: HashMap<BlockKey, BlockOpen>,
    xbar_flits: Vec<u64>,
}

impl State {
    fn slice(&mut self, pid: u32, tid: u32, name: &str, start: u64, end: u64, args: &str) {
        let dur = (end.saturating_sub(start)).max(1);
        self.events.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{}{}}}",
            esc(name),
            pid,
            tid,
            start,
            dur,
            args
        ));
    }

    fn instant(&mut self, pid: u32, tid: u32, name: &str, ts: u64) {
        self.events.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"i\",\"pid\":{},\"tid\":{},\"ts\":{},\"s\":\"t\"}}",
            esc(name),
            pid,
            tid,
            ts
        ));
    }

    fn counter(&mut self, pid: u32, name: &str, ts: u64, key: &str, value: u64) {
        self.events.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"C\",\"pid\":{},\"tid\":0,\"ts\":{},\"args\":{{\"{}\":{}}}}}",
            esc(name),
            pid,
            ts,
            key,
            value
        ));
    }

    fn name_meta(&mut self, kind: &str, pid: u32, tid: u32, name: &str) {
        let tid_field = if kind == "thread_name" {
            format!(",\"tid\":{tid}")
        } else {
            String::new()
        };
        self.events.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"M\",\"pid\":{}{},\"args\":{{\"name\":\"{}\"}}}}",
            kind,
            pid,
            tid_field,
            esc(name)
        ));
    }
}

/// The attachable half of the trace instrument; pair with the
/// [`TraceHandle`] returned by [`TraceRecorder::new`].
pub struct TraceRecorder {
    state: Rc<RefCell<State>>,
}

/// The caller-retained half of the trace instrument; renders the collected
/// events to a Chrome `trace_event` JSON document after the run.
#[derive(Clone)]
pub struct TraceHandle {
    state: Rc<RefCell<State>>,
}

impl TraceRecorder {
    /// Creates the recorder/handle pair for a run on `graph`.
    pub fn new(graph: &NetworkGraph) -> (TraceRecorder, TraceHandle) {
        let chan_desc: Vec<String> = graph
            .channel_ids()
            .map(|c| graph.describe_channel(c))
            .collect();
        let mut xbar_names = Vec::new();
        let mut xbar_index: HashMap<Node, u32> = HashMap::new();
        for id in graph.node_ids() {
            let n = graph.node(id);
            if matches!(n, Node::Xbar(_)) {
                xbar_index.insert(n, xbar_names.len() as u32);
                xbar_names.push(n.to_string());
            }
        }
        let chan_src_xbar: Vec<Option<u32>> = graph
            .channel_ids()
            .map(|c| xbar_index.get(&graph.node(graph.channel(c).src)).copied())
            .collect();
        let xbar_count = xbar_names.len();
        let mut state = State {
            chan_desc,
            chan_src_xbar,
            xbar_names,
            events: Vec::new(),
            open_hops: HashMap::new(),
            open_blocks: HashMap::new(),
            xbar_flits: vec![0; xbar_count],
        };
        state.name_meta("process_name", PID_PACKETS, 0, "packets");
        state.name_meta("process_name", PID_STALLS, 0, "stalls");
        state.name_meta("process_name", PID_QUEUES, 0, "queues");
        state.name_meta("process_name", PID_XBARS, 0, "crossbars");
        let state = Rc::new(RefCell::new(state));
        (
            TraceRecorder {
                state: Rc::clone(&state),
            },
            TraceHandle { state },
        )
    }
}

impl SimObserver for TraceRecorder {
    fn on_inject(&mut self, id: PacketId, spec: &InjectSpec, _now: u64) {
        let mut s = self.state.borrow_mut();
        let label = format!("pkt{} (from PE{})", id.0, spec.src_pe);
        s.name_meta("thread_name", PID_PACKETS, id.0, &label);
        s.name_meta("thread_name", PID_STALLS, id.0, &label);
    }

    fn on_hop(&mut self, id: PacketId, at: Node, _in_channel: Option<ChannelId>, now: u64) {
        let mut s = self.state.borrow_mut();
        if let Some((name, start)) = s.open_hops.remove(&id.0) {
            s.slice(PID_PACKETS, id.0, &name, start, now, "");
        }
        s.open_hops.insert(id.0, (at.to_string(), now));
    }

    fn on_rc_change(
        &mut self,
        id: PacketId,
        at: Node,
        from: RouteChange,
        to: RouteChange,
        now: u64,
    ) {
        self.state.borrow_mut().instant(
            PID_PACKETS,
            id.0,
            &format!("RC {from:?} -> {to:?} at {at}"),
            now,
        );
    }

    fn on_blocked(
        &mut self,
        id: PacketId,
        channel: ChannelId,
        vc: u8,
        holder: Option<PacketId>,
        now: u64,
    ) {
        self.state
            .borrow_mut()
            .open_blocks
            .insert((id.0, channel.0, vc), (now, holder.map(|h| h.0)));
    }

    fn on_unblocked(&mut self, id: PacketId, channel: ChannelId, vc: u8, _waited: u64, now: u64) {
        let mut s = self.state.borrow_mut();
        if let Some((start, holder)) = s.open_blocks.remove(&(id.0, channel.0, vc)) {
            let name = format!("blocked: {}", s.chan_desc[channel.idx()]);
            let args = match holder {
                Some(h) => format!(",\"args\":{{\"holder\":\"pkt{h}\"}}"),
                None => String::new(),
            };
            s.slice(PID_STALLS, id.0, &name, start, now, &args);
        }
    }

    fn on_flit(&mut self, channel: ChannelId, _vc: u8, _occupancy: usize, now: u64) {
        let mut s = self.state.borrow_mut();
        if let Some(x) = s.chan_src_xbar[channel.idx()] {
            s.xbar_flits[x as usize] += 1;
            let name = format!("{} flits", s.xbar_names[x as usize]);
            let total = s.xbar_flits[x as usize];
            s.counter(PID_XBARS, &name, now, "flits", total);
        }
    }

    fn on_gather(&mut self, _id: PacketId, depth: usize, now: u64) {
        self.state.borrow_mut().counter(
            PID_QUEUES,
            "S-XB gather depth",
            now,
            "depth",
            depth as u64,
        );
    }

    fn on_emission(&mut self, id: PacketId, depth: usize, now: u64) {
        let mut s = self.state.borrow_mut();
        s.counter(PID_QUEUES, "S-XB gather depth", now, "depth", depth as u64);
        s.instant(PID_PACKETS, id.0, "S-XB emission", now);
    }

    fn on_delivery(&mut self, id: PacketId, pe: usize, now: u64) {
        self.state
            .borrow_mut()
            .instant(PID_PACKETS, id.0, &format!("delivered to PE{pe}"), now);
    }

    fn on_packet_finished(&mut self, id: PacketId, now: u64) {
        let mut s = self.state.borrow_mut();
        if let Some((name, start)) = s.open_hops.remove(&id.0) {
            s.slice(PID_PACKETS, id.0, &name, start, now, "");
        }
        s.instant(PID_PACKETS, id.0, "finished", now);
    }

    fn on_deadlock(&mut self, info: &DeadlockInfo) {
        let mut s = self.state.borrow_mut();
        let packets: Vec<u32> = info.cycle.iter().map(|e| e.waiter.0).collect();
        s.instant(
            PID_PACKETS,
            packets.first().copied().unwrap_or(0),
            &format!("DEADLOCK ({} packets in cycle)", packets.len()),
            info.detected_at,
        );
    }
}

impl TraceHandle {
    /// Number of events recorded so far (open slices not yet counted).
    pub fn len(&self) -> usize {
        self.state.borrow().events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the full trace document. `end` (usually
    /// [`mdx_sim::SimStats::cycles`]) closes any still-open hop and blocked
    /// slices — packets caught in a deadlock show as slices running to the
    /// end of the trace.
    pub fn render(&self, end: u64) -> String {
        let mut s = self.state.borrow_mut();
        let open_hops: Vec<(u32, (String, u64))> = s.open_hops.drain().collect();
        for (pkt, (name, start)) in open_hops {
            s.slice(PID_PACKETS, pkt, &name, start, end, "");
        }
        let open_blocks: Vec<(BlockKey, BlockOpen)> = s.open_blocks.drain().collect();
        for ((pkt, chan, _vc), (start, holder)) in open_blocks {
            let name = format!("blocked: {}", s.chan_desc[chan as usize]);
            let args = match holder {
                Some(h) => format!(",\"args\":{{\"holder\":\"pkt{h}\"}}"),
                None => String::new(),
            };
            s.slice(PID_STALLS, pkt, &name, start, end, &args);
        }
        let mut out = String::from("{\"traceEvents\":[");
        for (i, e) in s.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(e);
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdx_core::Header;
    use mdx_topology::graph::GraphBuilder;
    use mdx_topology::{Coord, XbarRef};

    fn tiny_graph() -> NetworkGraph {
        let mut b = GraphBuilder::new();
        let pe = b.add_node(Node::Pe(0), None);
        let r = b.add_node(Node::Router(0), None);
        let x = b.add_node(Node::Xbar(XbarRef { dim: 0, line: 0 }), None);
        b.add_link(pe, r);
        b.add_link(r, x);
        b.build()
    }

    #[test]
    fn records_slices_counters_and_closes_open_work() {
        let g = tiny_graph();
        let xbar_out = g
            .channel_ids()
            .find(|&c| matches!(g.node(g.channel(c).src), Node::Xbar(_)))
            .unwrap();
        let (mut rec, handle) = TraceRecorder::new(&g);
        let spec = InjectSpec {
            src_pe: 0,
            header: Header::unicast(Coord::ORIGIN, Coord::ORIGIN),
            flits: 2,
            inject_at: 0,
        };
        rec.on_inject(PacketId(0), &spec, 0);
        rec.on_hop(PacketId(0), Node::Pe(0), None, 0);
        rec.on_hop(PacketId(0), Node::Router(0), None, 2);
        rec.on_blocked(PacketId(0), xbar_out, 0, Some(PacketId(1)), 2);
        rec.on_unblocked(PacketId(0), xbar_out, 0, 3, 5);
        rec.on_flit(xbar_out, 0, 1, 6);
        rec.on_gather(PacketId(0), 2, 6);
        // One hop left open on purpose: render() must close it.
        let doc = handle.render(10);
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.trim_end().ends_with("}"));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"ph\":\"C\""));
        assert!(doc.contains("blocked: X0-XB -> R0"));
        assert!(doc.contains("X0-XB flits"));
        assert!(doc.contains("S-XB gather depth"));
        assert!(doc.contains("\"holder\":\"pkt1\""));
        // The still-open Router(0) residency closed at end=10.
        assert!(doc.contains("\"name\":\"R0\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":2,\"dur\":8"));
        // The strict schema accepts every emitted event: named fields only,
        // known phases only, per-phase required fields present.
        let parsed = crate::TraceDoc::parse(&doc).expect("trace passes the strict schema");
        assert_eq!(parsed.display_time_unit, "ms");
        let open_hop = parsed
            .events("X")
            .find(|e| e.name == "R0")
            .expect("closed-out hop slice present");
        assert_eq!((open_hop.ts, open_hop.dur), (Some(2), Some(8)));
        let blocked = parsed
            .events("X")
            .find(|e| e.name.starts_with("blocked"))
            .expect("blocked slice present");
        assert_eq!(
            blocked.args.as_ref().and_then(|a| a.holder.as_deref()),
            Some("pkt1")
        );
        assert!(parsed.events("C").all(|e| e
            .args
            .as_ref()
            .is_some_and(|a| a.flits.is_some() ^ a.depth.is_some())));
    }
}
