//! Windowed (interval) telemetry for unbounded streaming runs.
//!
//! A batch experiment can afford per-packet tables; a resident server
//! feeding an open-loop [`mdx_sim::TrafficSource`] cannot — the run has no
//! natural end, so telemetry must be *windowed*: fixed-width intervals,
//! each reduced to a handful of counters, kept in a capped ring so memory
//! stays bounded no matter how long the run goes.
//!
//! [`WindowObserver`] accumulates, per window of `window` cycles: packets
//! injected, packets finished, mean end-to-end latency of the packets that
//! finished in the window, and the in-flight backlog at the window's
//! close. [`WindowHandle::report`] reduces the ring into a
//! [`WindowReport`] with run totals and open-loop steady-state accounting:
//! the delivered-rate vs offered-rate comparison that pins down the
//! saturation point — the first window of a sustained stretch where the
//! network delivers measurably less than is offered while the backlog
//! keeps growing.

use mdx_sim::{InjectSpec, PacketId, SimObserver};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

/// Default ring capacity: windows kept before the oldest are evicted.
pub const DEFAULT_MAX_WINDOWS: usize = 512;

/// Consecutive qualifying windows before the run counts as saturated.
pub const SATURATION_WINDOWS: usize = 3;

/// A window qualifies for saturation when it finishes less than this
/// fraction of what it injects (while the backlog rises).
pub const SATURATION_DELIVERY_FRACTION: f64 = 0.95;

/// One telemetry interval, reduced to counters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowRow {
    /// First cycle of the window.
    pub start: u64,
    /// Packets injected during the window.
    pub injected: u64,
    /// Packets that finished during the window.
    pub finished: u64,
    /// Sum of end-to-end latencies of the packets that finished here.
    pub latency_sum: u64,
    /// In-flight packets (injected, not yet finished) at the window close.
    pub backlog: u64,
}

impl WindowRow {
    /// Mean latency of the packets that finished in this window.
    pub fn mean_latency(&self) -> f64 {
        if self.finished == 0 {
            f64::NAN
        } else {
            self.latency_sum as f64 / self.finished as f64
        }
    }

    /// Fraction of this window's injections that finished in it.
    ///
    /// An all-idle window (`injected == 0`) offers nothing, so it is
    /// trivially keeping up: the fraction is defined as 1.0, never a
    /// division by zero. A carryover window that finishes more than it
    /// injects (draining a prior backlog) reports a fraction above 1.0.
    pub fn delivery_fraction(&self) -> f64 {
        if self.injected == 0 {
            1.0
        } else {
            self.finished as f64 / self.injected as f64
        }
    }

    /// Net packets this window added to the in-flight backlog
    /// (`injected - finished`), saturating at zero when deliveries outpace
    /// offers — a window draining carryover from earlier windows must not
    /// underflow into a huge positive delta.
    pub fn backlog_delta(&self) -> u64 {
        self.injected.saturating_sub(self.finished)
    }
}

/// Run-level totals, accumulated independently of the ring (evicting old
/// windows never loses them).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct WindowTotals {
    /// Packets injected over the whole run.
    pub injected: u64,
    /// Packets finished over the whole run.
    pub finished: u64,
    /// Sum of all end-to-end latencies.
    pub latency_sum: u64,
    /// Largest end-to-end latency seen.
    pub latency_max: u64,
}

impl WindowTotals {
    /// Mean end-to-end latency over the run.
    pub fn mean_latency(&self) -> f64 {
        if self.finished == 0 {
            f64::NAN
        } else {
            self.latency_sum as f64 / self.finished as f64
        }
    }
}

/// The reduced output of a windowed run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowReport {
    /// Window width in cycles.
    pub window: u64,
    /// The retained windows, oldest first (the ring's contents).
    pub windows: Vec<WindowRow>,
    /// Windows evicted from the ring (the run outlived the cap).
    pub dropped_windows: u64,
    /// Whole-run totals (eviction-proof).
    pub totals: WindowTotals,
    /// Start cycle of the first window of the first sustained saturated
    /// stretch ([`SATURATION_WINDOWS`] consecutive windows finishing less
    /// than [`SATURATION_DELIVERY_FRACTION`] of their injections with a
    /// rising backlog), if the retained windows show one.
    pub saturated_at: Option<u64>,
}

impl WindowReport {
    /// Delivered-rate / offered-rate over the whole run (1.0 = keeping up).
    pub fn delivery_ratio(&self) -> f64 {
        if self.totals.injected == 0 {
            1.0
        } else {
            self.totals.finished as f64 / self.totals.injected as f64
        }
    }

    /// Compact per-window table for terminals.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "window   injected finished  backlog  mean-lat");
        for w in &self.windows {
            let _ = writeln!(
                out,
                "{:>7} {:>9} {:>8} {:>8} {:>9.1}",
                w.start,
                w.injected,
                w.finished,
                w.backlog,
                w.mean_latency()
            );
        }
        if self.dropped_windows > 0 {
            let _ = writeln!(out, "({} older windows evicted)", self.dropped_windows);
        }
        match self.saturated_at {
            Some(at) => {
                let _ = writeln!(out, "saturated from cycle {at}");
            }
            None => {
                let _ = writeln!(out, "no saturation detected");
            }
        }
        out
    }
}

struct State {
    window: u64,
    max_windows: usize,
    ring: VecDeque<WindowRow>,
    dropped: u64,
    totals: WindowTotals,
    /// The window being filled.
    current: WindowRow,
    /// Injection cycle of each in-flight packet (bounded by the network's
    /// in-flight capacity, not the horizon).
    in_flight: HashMap<PacketId, u64>,
}

impl State {
    /// Closes windows until `now` falls inside the current one.
    fn roll_to(&mut self, now: u64) {
        while now >= self.current.start + self.window {
            let backlog = self.in_flight.len() as u64;
            let mut closed = self.current;
            closed.backlog = backlog;
            if self.ring.len() == self.max_windows {
                self.ring.pop_front();
                self.dropped += 1;
            }
            self.ring.push_back(closed);
            self.current = WindowRow {
                start: closed.start + self.window,
                injected: 0,
                finished: 0,
                latency_sum: 0,
                backlog: 0,
            };
        }
    }
}

/// The attachable half of the windowed instrument; build with
/// [`WindowObserver::new`], attach with
/// [`mdx_sim::Simulator::set_observer`] (or a
/// [`crate::FanoutObserver`]), read back through the paired
/// [`WindowHandle`].
pub struct WindowObserver {
    state: Rc<RefCell<State>>,
}

/// The caller-retained half; produces the [`WindowReport`].
#[derive(Clone)]
pub struct WindowHandle {
    state: Rc<RefCell<State>>,
}

impl WindowObserver {
    /// Observer/handle pair with the default ring cap
    /// ([`DEFAULT_MAX_WINDOWS`]).
    ///
    /// # Panics
    /// Panics on a zero window width.
    pub fn new(window: u64) -> (WindowObserver, WindowHandle) {
        WindowObserver::with_capacity(window, DEFAULT_MAX_WINDOWS)
    }

    /// Observer/handle pair keeping at most `max_windows` windows.
    ///
    /// # Panics
    /// Panics on a zero window width or capacity.
    pub fn with_capacity(window: u64, max_windows: usize) -> (WindowObserver, WindowHandle) {
        assert!(window > 0, "window width must be at least one cycle");
        assert!(max_windows > 0, "ring must hold at least one window");
        let state = Rc::new(RefCell::new(State {
            window,
            max_windows,
            ring: VecDeque::new(),
            dropped: 0,
            totals: WindowTotals::default(),
            current: WindowRow {
                start: 0,
                injected: 0,
                finished: 0,
                latency_sum: 0,
                backlog: 0,
            },
            in_flight: HashMap::new(),
        }));
        (
            WindowObserver {
                state: Rc::clone(&state),
            },
            WindowHandle { state },
        )
    }
}

impl SimObserver for WindowObserver {
    fn on_inject(&mut self, id: PacketId, _spec: &InjectSpec, now: u64) {
        let mut s = self.state.borrow_mut();
        s.roll_to(now);
        s.current.injected += 1;
        s.totals.injected += 1;
        s.in_flight.insert(id, now);
    }

    fn on_packet_finished(&mut self, id: PacketId, now: u64) {
        let mut s = self.state.borrow_mut();
        s.roll_to(now);
        // Injection-gated victims can settle without ever injecting; only
        // packets we saw inject count toward latency.
        if let Some(injected_at) = s.in_flight.remove(&id) {
            let lat = now - injected_at;
            s.current.finished += 1;
            s.current.latency_sum += lat;
            s.totals.finished += 1;
            s.totals.latency_sum += lat;
            s.totals.latency_max = s.totals.latency_max.max(lat);
        }
    }
}

impl WindowHandle {
    /// Reduces the accumulated windows into a report. `total_cycles` closes
    /// the in-progress window (pass the run's final cycle count).
    pub fn report(&self, total_cycles: u64) -> WindowReport {
        let s = self.state.borrow();
        // Flush the partial last window if it saw anything.
        let backlog = s.in_flight.len() as u64;
        let mut windows: Vec<WindowRow> = s.ring.iter().copied().collect();
        if s.current.injected > 0 || s.current.finished > 0 || total_cycles > s.current.start {
            let mut last = s.current;
            last.backlog = backlog;
            windows.push(last);
        }
        let report = WindowReport {
            window: s.window,
            dropped_windows: s.dropped,
            totals: s.totals,
            saturated_at: find_saturation(&windows),
            windows,
        };
        drop(s);
        report
    }
}

/// First window of the first [`SATURATION_WINDOWS`]-long stretch where
/// deliveries lag injections and the backlog rises monotonically.
fn find_saturation(windows: &[WindowRow]) -> Option<u64> {
    let mut run_start: Option<usize> = None;
    let mut run_len = 0usize;
    for (i, w) in windows.iter().enumerate() {
        // `delivery_fraction` is division-safe: an all-idle window reports
        // 1.0 (keeping up), so it can never qualify as lagging.
        let lagging = w.delivery_fraction() < SATURATION_DELIVERY_FRACTION;
        let rising = i > 0 && w.backlog > windows[i - 1].backlog;
        if lagging && rising && w.injected > 0 {
            if run_start.is_none() {
                run_start = Some(i);
            }
            run_len += 1;
            if run_len >= SATURATION_WINDOWS {
                return run_start.map(|s| windows[s].start);
            }
        } else {
            run_start = None;
            run_len = 0;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdx_core::Header;
    use mdx_topology::Coord;

    fn spec() -> InjectSpec {
        InjectSpec {
            src_pe: 0,
            header: Header::unicast(Coord::ORIGIN, Coord::ORIGIN.with(0, 1)),
            flits: 4,
            inject_at: 0,
        }
    }

    #[test]
    fn windows_roll_and_accumulate() {
        let (mut obs, handle) = WindowObserver::new(100);
        let s = spec();
        obs.on_inject(PacketId(0), &s, 5);
        obs.on_packet_finished(PacketId(0), 25);
        obs.on_inject(PacketId(1), &s, 150);
        obs.on_inject(PacketId(2), &s, 160);
        obs.on_packet_finished(PacketId(1), 260);
        let r = handle.report(300);
        assert_eq!(r.windows.len(), 3);
        assert_eq!(r.windows[0].injected, 1);
        assert_eq!(r.windows[0].finished, 1);
        assert_eq!(r.windows[0].latency_sum, 20);
        assert_eq!(r.windows[1].injected, 2);
        assert_eq!(r.windows[1].backlog, 2);
        assert_eq!(r.windows[2].finished, 1);
        assert_eq!(r.windows[2].backlog, 1);
        assert_eq!(r.totals.injected, 3);
        assert_eq!(r.totals.finished, 2);
        assert_eq!(r.totals.latency_max, 110);
        assert!(r.saturated_at.is_none());
    }

    #[test]
    fn ring_cap_bounds_memory_but_not_totals() {
        let (mut obs, handle) = WindowObserver::with_capacity(10, 4);
        let s = spec();
        for i in 0..100u64 {
            obs.on_inject(PacketId(i as u32), &s, i * 10);
            obs.on_packet_finished(PacketId(i as u32), i * 10 + 3);
        }
        let r = handle.report(1000);
        assert!(r.windows.len() <= 5); // ring + the flushed partial
        assert!(r.dropped_windows >= 95);
        assert_eq!(r.totals.injected, 100);
        assert_eq!(r.totals.finished, 100);
    }

    #[test]
    fn sustained_lag_with_rising_backlog_is_saturation() {
        let (mut obs, handle) = WindowObserver::new(10);
        let s = spec();
        let mut id = 0u32;
        // Window 0: healthy. Windows 1..=3: inject 4, finish 1 each.
        for w in 0..4u64 {
            let inject = if w == 0 { 2 } else { 4 };
            let finish = if w == 0 { 2 } else { 1 };
            let base = w * 10;
            for k in 0..inject {
                obs.on_inject(PacketId(id + k), &s, base + k as u64);
            }
            for k in 0..finish {
                obs.on_packet_finished(PacketId(id + k), base + 5 + k as u64);
            }
            id += inject;
        }
        let r = handle.report(40);
        assert_eq!(r.saturated_at, Some(10));
        assert!(r.delivery_ratio() < 1.0);
        assert!(r.render().contains("saturated from cycle 10"));
    }

    #[test]
    fn all_idle_windows_never_divide_by_zero_or_saturate() {
        let (mut obs, handle) = WindowObserver::new(10);
        let s = spec();
        // One packet injected at cycle 0; then three fully idle windows
        // (offered == 0) while its backlog sits at 1. A finish event for a
        // packet we never saw inject rolls the clock without counting.
        obs.on_inject(PacketId(0), &s, 0);
        obs.on_packet_finished(PacketId(99), 35);
        let r = handle.report(40);
        assert_eq!(r.windows.len(), 4);
        for w in &r.windows[1..] {
            assert_eq!(w.injected, 0);
            assert!(
                w.delivery_fraction().is_finite(),
                "idle window produced a non-finite delivery fraction"
            );
            assert_eq!(w.delivery_fraction(), 1.0);
        }
        // Idle windows are trivially keeping up: no saturation verdict.
        assert!(r.saturated_at.is_none());
    }

    #[test]
    fn draining_windows_saturate_backlog_delta_at_zero() {
        let (mut obs, handle) = WindowObserver::new(10);
        let s = spec();
        // Window 0 injects 3 and finishes none; window 1 injects 1 but
        // finishes all 4 — deliveries outpace offers across the boundary.
        for k in 0..3u32 {
            obs.on_inject(PacketId(k), &s, k as u64);
        }
        obs.on_inject(PacketId(3), &s, 11);
        for k in 0..4u32 {
            obs.on_packet_finished(PacketId(k), 12 + k as u64);
        }
        let r = handle.report(20);
        assert_eq!(r.windows.len(), 2);
        assert_eq!(r.windows[0].backlog_delta(), 3);
        // finished (4) > injected (1): must clamp to 0, not wrap.
        assert_eq!(r.windows[1].injected, 1);
        assert_eq!(r.windows[1].finished, 4);
        assert_eq!(r.windows[1].backlog_delta(), 0);
        // The drain window's fraction exceeds 1.0 but stays finite.
        assert!(r.windows[1].delivery_fraction() > 1.0);
        assert!(r.windows[1].delivery_fraction().is_finite());
        assert_eq!(r.windows[1].backlog, 0);
        assert!(r.saturated_at.is_none());
    }
}
