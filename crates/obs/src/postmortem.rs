//! Deadlock post-mortems: join the flight-recorder ring with the engine's
//! terminal wait snapshot and deadlock witness into a forensic report.
//!
//! [`FlightHandle::postmortem`] reconstructs the cyclic wait from the
//! terminal snapshot using the *same* depth-first walk the engine's
//! watchdog uses (same adjacency order, same sorted start order), so the
//! reported cycle names exactly the channels of the
//! [`DeadlockInfo`](mdx_sim::DeadlockInfo) witness. Each edge is annotated
//! with both packets' RC state (the paper's Fig. 4 encoding: 0 normal,
//! 1 broadcast request, 2 broadcast, 3 detour), which drives the
//! classification:
//!
//! * every cycle packet mid-broadcast → the **Fig. 5 naive-broadcast
//!   signature** (concurrent unserialized fans acquiring ports
//!   incrementally);
//! * a detoured packet in the cycle → the **Fig. 9 signature** (detour and
//!   broadcast turns crossing on a shared crossbar);
//! * all-normal → a plain unicast ownership cycle.
//!
//! The rendered report is fully deterministic — it contains cycle numbers
//! but no wall-clock timestamps — so identical scenario tokens produce
//! byte-identical post-mortems.

use crate::flight::FlightHandle;
use crate::FlightEventKind;
use mdx_core::RouteChange;
use mdx_sim::{EngineDiagnostic, PacketId, SimOutcome, WaitSnapshot};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Hops of per-packet history shown in a report.
pub const LAST_HOPS: usize = 8;

/// One switch arrival in a packet's recent history.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HopTrace {
    /// The switch reached (engine naming: `PE3`, `R4`, `X0-XB`, ...).
    pub at: String,
    /// Simulation cycle of the arrival.
    pub cycle: u64,
}

/// Forensics for one packet involved in the failure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketForensics {
    /// The packet.
    pub packet: PacketId,
    /// Its RC field at the end of the run (paper Fig. 4 encoding).
    pub rc: u8,
    /// The RC state spelled out (`normal`, `broadcast request`,
    /// `broadcast`, `detour`).
    pub rc_name: String,
    /// Cycle it entered the network.
    pub injected_at: u64,
    /// Its last [`LAST_HOPS`] switch arrivals surviving in the ring,
    /// oldest first.
    pub last_hops: Vec<HopTrace>,
    /// The ports it was still waiting for at the end, with their holders.
    pub waiting_on: Vec<String>,
}

/// One edge of the reconstructed cyclic wait.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleEdge {
    /// The blocked packet.
    pub waiter: PacketId,
    /// The packet owning the wanted port.
    pub holder: PacketId,
    /// The wanted channel, in the engine's naming (matches the
    /// [`mdx_sim::WaitEdge::channel`] strings of the deadlock witness).
    pub channel: String,
    /// The waiter's terminal RC state.
    pub waiter_rc: u8,
    /// The holder's terminal RC state.
    pub holder_rc: u8,
    /// Cycle at which the waiter's want became blocked.
    pub blocked_since: u64,
}

/// The full post-mortem of one failed run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PostmortemReport {
    /// How the run ended: `deadlock`, `stalled`, or `cycle-limit`.
    pub outcome: String,
    /// Cycle at which the run was declared dead.
    pub failed_at: u64,
    /// Failure-signature slug (`fig5-naive-broadcast`,
    /// `fig9-detour-cross`, `unicast-ownership-cycle`, `mixed-rc-cycle`,
    /// `no-cyclic-wait`).
    pub classification: String,
    /// One-sentence reading of the classification.
    pub summary: String,
    /// The cyclic wait, in the watchdog's edge order (empty when the run
    /// ended without one).
    pub cycle: Vec<CycleEdge>,
    /// Forensics for every packet still waiting or holding at the end.
    pub packets: Vec<PacketForensics>,
    /// S-XB gather-queue depth at the moment of failure.
    pub gather_depth: u32,
    /// Peak S-XB gather-queue depth over the run.
    pub gather_peak: u32,
    /// Ungranted port wants in the terminal snapshot.
    pub wait_edges: usize,
    /// Flight-ring capacity.
    pub ring_capacity: usize,
    /// Events offered to the ring over the run.
    pub events_recorded: u64,
    /// Events the ring overwrote (history older than the window).
    pub events_dropped: u64,
    /// Engine bookkeeping anomalies ([`mdx_sim::SimResult::diagnostics`]),
    /// rendered; empty on a healthy engine.
    pub engine_diagnostics: Vec<String>,
}

fn rc_label(bits: u8) -> &'static str {
    match bits {
        0 => "normal",
        1 => "broadcast request",
        2 => "broadcast",
        3 => "detour",
        _ => "unknown",
    }
}

/// Mirrors the engine watchdog's cycle extraction over the terminal wait
/// snapshot: adjacency in snapshot order (holder-less wants skipped),
/// depth-first from packet ids ascending, first back-edge wins. Returns
/// `(snapshot index, holder packet)` pairs in cycle order.
fn reconstruct_cycle(waits: &[WaitSnapshot]) -> Vec<(usize, u32)> {
    let mut adj: HashMap<u32, Vec<(u32, usize)>> = HashMap::new();
    for (i, w) in waits.iter().enumerate() {
        if let Some(h) = w.holder {
            adj.entry(w.waiter.0).or_default().push((h.0, i));
        }
    }
    let mut state: HashMap<u32, u8> = HashMap::new();
    let mut stack: Vec<(u32, usize)> = Vec::new();
    fn dfs(
        u: u32,
        adj: &HashMap<u32, Vec<(u32, usize)>>,
        state: &mut HashMap<u32, u8>,
        stack: &mut Vec<(u32, usize)>,
    ) -> Option<u32> {
        state.insert(u, 1);
        if let Some(next) = adj.get(&u) {
            for &(v, widx) in next {
                match state.get(&v).copied() {
                    Some(1) => {
                        stack.push((u, widx));
                        return Some(v);
                    }
                    Some(_) => {}
                    None => {
                        stack.push((u, widx));
                        if let Some(hit) = dfs(v, adj, state, stack) {
                            return Some(hit);
                        }
                        stack.pop();
                    }
                }
            }
        }
        state.insert(u, 2);
        None
    }
    let mut starts: Vec<u32> = adj.keys().copied().collect();
    starts.sort_unstable();
    for s in starts {
        if state.contains_key(&s) {
            continue;
        }
        stack.clear();
        if let Some(entry) = dfs(s, &adj, &mut state, &mut stack) {
            let pos = stack.iter().position(|&(u, _)| u == entry).unwrap_or(0);
            let edges = &stack[pos..];
            return edges
                .iter()
                .enumerate()
                .map(|(i, &(_, widx))| {
                    let holder = if i + 1 < edges.len() {
                        edges[i + 1].0
                    } else {
                        entry
                    };
                    (widx, holder)
                })
                .collect();
        }
    }
    Vec::new()
}

fn classify(cycle: &[CycleEdge]) -> (&'static str, &'static str) {
    if cycle.is_empty() {
        return (
            "no-cyclic-wait",
            "no cyclic wait was present at the end of the run; the failure \
             is starvation or an exhausted cycle budget rather than a \
             Fig. 5/9 ownership deadlock",
        );
    }
    let rcs: Vec<u8> = cycle.iter().map(|e| e.waiter_rc).collect();
    let broadcast =
        |r: u8| r == RouteChange::Broadcast.bits() || r == RouteChange::BroadcastRequest.bits();
    if rcs.iter().all(|&r| broadcast(r)) && rcs.iter().any(|&r| r == RouteChange::Broadcast.bits())
    {
        (
            "fig5-naive-broadcast",
            "every packet in the cyclic wait is mid-broadcast: concurrent \
             unserialized broadcast fans acquired their output ports \
             incrementally and closed a cycle — the Fig. 5 naive-broadcast \
             deadlock signature",
        )
    } else if rcs.iter().any(|&r| r == RouteChange::Detour.bits()) {
        (
            "fig9-detour-cross",
            "the cyclic wait involves a detoured packet (RC=3) crossing \
             other traffic — the Fig. 9 signature of detour and broadcast \
             turns sharing crossbar ports (D-XB chosen apart from the S-XB \
             constraint)",
        )
    } else if rcs.iter().all(|&r| r == RouteChange::Normal.bits()) {
        (
            "unicast-ownership-cycle",
            "every packet in the cyclic wait routes normally (RC=0): a \
             plain ownership cycle in the base routing order, not a \
             broadcast or detour artifact",
        )
    } else {
        (
            "mixed-rc-cycle",
            "the cyclic wait mixes RC states without matching a single \
             paper signature; see the per-packet forensics",
        )
    }
}

impl FlightHandle {
    /// Builds the post-mortem for a failed run, or `None` when the run
    /// completed. `diagnostics` is [`mdx_sim::SimResult::diagnostics`]
    /// (engine bookkeeping anomalies, normally empty).
    pub fn postmortem(
        &self,
        outcome: &SimOutcome,
        diagnostics: &[EngineDiagnostic],
    ) -> Option<PostmortemReport> {
        let outcome_name = match outcome {
            SimOutcome::Completed => return None,
            SimOutcome::Deadlock(_) => "deadlock",
            SimOutcome::Stalled => "stalled",
            SimOutcome::CycleLimit => "cycle-limit",
        };
        let s = self.state.borrow();
        let failed_at = s.final_at.unwrap_or(match outcome {
            SimOutcome::Deadlock(info) => info.detected_at,
            _ => 0,
        });
        let waits = &s.final_waits;
        let rc_of = |p: u32| {
            s.rc.get(p as usize)
                .copied()
                .unwrap_or(RouteChange::Normal)
                .bits()
        };

        let cycle: Vec<CycleEdge> = reconstruct_cycle(waits)
            .into_iter()
            .map(|(widx, holder)| {
                let w = &waits[widx];
                CycleEdge {
                    waiter: w.waiter,
                    holder: PacketId(holder),
                    channel: s.describe(w.channel, w.vc),
                    waiter_rc: rc_of(w.waiter.0),
                    holder_rc: rc_of(holder),
                    blocked_since: w.since,
                }
            })
            .collect();

        // Everyone still waiting or holding at the end gets a dossier.
        let mut ids: Vec<u32> = waits
            .iter()
            .flat_map(|w| std::iter::once(w.waiter.0).chain(w.holder.map(|h| h.0)))
            .collect();
        ids.sort_unstable();
        ids.dedup();

        // One pass over the ring collects each packet's recent arrivals.
        let mut hops: HashMap<u32, Vec<HopTrace>> = HashMap::new();
        for ev in s.events_in_order() {
            let at = match ev.kind {
                FlightEventKind::Inject { src_pe } => format!("PE{src_pe}"),
                FlightEventKind::Hop { at } => at.to_string(),
                _ => continue,
            };
            let h = hops.entry(ev.packet.0).or_default();
            h.push(HopTrace { at, cycle: ev.now });
            if h.len() > LAST_HOPS {
                h.remove(0);
            }
        }

        let packets: Vec<PacketForensics> = ids
            .iter()
            .map(|&p| {
                let rc = rc_of(p);
                PacketForensics {
                    packet: PacketId(p),
                    rc,
                    rc_name: rc_label(rc).to_string(),
                    injected_at: s.injected_at.get(p as usize).copied().unwrap_or(0),
                    last_hops: hops.remove(&p).unwrap_or_default(),
                    waiting_on: waits
                        .iter()
                        .filter(|w| w.waiter.0 == p)
                        .map(|w| match w.holder {
                            Some(h) => format!("{} (held by {})", s.describe(w.channel, w.vc), h),
                            None => format!("{} (free)", s.describe(w.channel, w.vc)),
                        })
                        .collect(),
                }
            })
            .collect();

        let (classification, summary) = classify(&cycle);
        Some(PostmortemReport {
            outcome: outcome_name.to_string(),
            failed_at,
            classification: classification.to_string(),
            summary: summary.to_string(),
            cycle,
            packets,
            gather_depth: s.gather_depth,
            gather_peak: s.gather_peak,
            wait_edges: waits.len(),
            ring_capacity: s.capacity(),
            events_recorded: s.recorded(),
            events_dropped: s.dropped(),
            engine_diagnostics: diagnostics.iter().map(|d| d.to_string()).collect(),
        })
    }
}

impl PostmortemReport {
    /// Serializes the report as pretty-printed JSON (deterministic: field
    /// order is fixed, no wall-clock content).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("PostmortemReport serializes")
    }

    /// Renders the human-readable report. Deterministic for identical
    /// runs: every number is a simulation cycle, never a wall-clock time.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== post-mortem: {} at cycle {} ==",
            self.outcome, self.failed_at
        );
        let _ = writeln!(out, "classification: {}", self.classification);
        let _ = writeln!(out, "  {}", self.summary);

        if !self.cycle.is_empty() {
            let _ = writeln!(out, "\ncyclic wait ({} edges):", self.cycle.len());
            for e in &self.cycle {
                let _ = writeln!(
                    out,
                    "  {} [RC={} {}] waits for {} held by {} [RC={} {}], blocked since cycle {}",
                    e.waiter,
                    e.waiter_rc,
                    rc_label(e.waiter_rc),
                    e.channel,
                    e.holder,
                    e.holder_rc,
                    rc_label(e.holder_rc),
                    e.blocked_since,
                );
            }
        }

        if !self.packets.is_empty() {
            let _ = writeln!(out, "\npacket forensics:");
            for p in &self.packets {
                let _ = writeln!(
                    out,
                    "  {}: RC={} ({}), injected at cycle {}",
                    p.packet, p.rc, p.rc_name, p.injected_at
                );
                for w in &p.waiting_on {
                    let _ = writeln!(out, "    waiting on: {w}");
                }
                if !p.last_hops.is_empty() {
                    let trail: Vec<String> = p
                        .last_hops
                        .iter()
                        .map(|h| format!("{} @{}", h.at, h.cycle))
                        .collect();
                    let _ = writeln!(out, "    last hops: {}", trail.join(" -> "));
                }
            }
        }

        let _ = writeln!(
            out,
            "\nS-XB gather queue: depth {} at failure (peak {})",
            self.gather_depth, self.gather_peak
        );
        let _ = writeln!(out, "terminal wait edges: {}", self.wait_edges);
        let _ = writeln!(
            out,
            "flight ring: {} events recorded, {} overwritten (capacity {})",
            self.events_recorded, self.events_dropped, self.ring_capacity
        );
        if self.engine_diagnostics.is_empty() {
            let _ = writeln!(out, "engine diagnostics: none");
        } else {
            let _ = writeln!(out, "engine diagnostics:");
            for d in &self.engine_diagnostics {
                let _ = writeln!(out, "  {d}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdx_topology::ChannelId;

    fn wait(waiter: u32, holder: Option<u32>, ch: u32, since: u64) -> WaitSnapshot {
        WaitSnapshot {
            waiter: PacketId(waiter),
            holder: holder.map(PacketId),
            channel: ChannelId(ch),
            vc: 0,
            since,
            epoch: 0,
            holder_epoch: holder.map(|_| 0),
        }
    }

    #[test]
    fn reconstructs_simple_two_cycle() {
        // pkt0 waits on pkt1, pkt1 waits on pkt0, plus a dangling want.
        let waits = vec![
            wait(0, Some(1), 3, 10),
            wait(1, Some(0), 4, 12),
            wait(2, None, 5, 14),
        ];
        let cyc = reconstruct_cycle(&waits);
        assert_eq!(cyc, vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn classification_covers_the_paper_signatures() {
        let edge = |rc: u8| CycleEdge {
            waiter: PacketId(0),
            holder: PacketId(1),
            channel: "R0 -> X0-XB".into(),
            waiter_rc: rc,
            holder_rc: rc,
            blocked_since: 0,
        };
        assert_eq!(classify(&[]).0, "no-cyclic-wait");
        assert_eq!(classify(&[edge(2), edge(2)]).0, "fig5-naive-broadcast");
        assert_eq!(classify(&[edge(2), edge(3)]).0, "fig9-detour-cross");
        assert_eq!(classify(&[edge(0)]).0, "unicast-ownership-cycle");
        assert_eq!(classify(&[edge(0), edge(2)]).0, "mixed-rc-cycle");
    }
}
