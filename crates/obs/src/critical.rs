//! Critical-path extraction from blocked/unblocked wait-for edges.
//!
//! Every closed blocked episode is a timed wait-for edge: *waiter* wanted
//! a channel held by *holder* over `[start, end)`. The **critical path**
//! of a run is the longest chain of such edges ending at the last
//! delivery — the sequence of waits that, had any of them been shorter,
//! would have moved the run's makespan. [`critical_path`] reconstructs it
//! greedily backwards: from the last-finished packet, repeatedly follow
//! the latest episode that ended before the current point in time into
//! the packet that was holding the port, until the chain bottoms out in a
//! packet that never waited.
//!
//! The walk is deterministic (ties broken by episode end, then start,
//! then channel id) and cycle-safe (each packet is visited at most once;
//! genuine cyclic waits belong to the deadlock post-mortem, not here).

use mdx_topology::{ChannelId, NetworkGraph};
use serde::{Deserialize, Serialize};

/// Upper bound on critical-path chain length — a backstop against
/// pathological inputs, far above any chain a real run produces.
pub const MAX_CRITICAL_STEPS: usize = 256;

/// One closed blocked episode, as a timed wait-for edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WaitEpisode {
    /// The packet that waited.
    pub waiter: u32,
    /// The packet holding the port when the episode opened (`None` when
    /// the port was free but the grant had not happened yet that cycle).
    pub holder: Option<u32>,
    /// The contended channel (dense id into the run's graph).
    pub channel: u32,
    /// First blocked cycle.
    pub start: u64,
    /// Grant cycle (exclusive; the episode spans `[start, end)`).
    pub end: u64,
}

/// One hop of the critical path: a wait the makespan went through.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CriticalStep {
    /// The waiting packet.
    pub waiter: u32,
    /// The packet it waited behind, if the port had an owner.
    pub holder: Option<u32>,
    /// Dense channel id of the contended port.
    pub channel: u32,
    /// Human-readable channel description (e.g. `R3 -> Y1-XB`).
    pub desc: String,
    /// First blocked cycle.
    pub start: u64,
    /// Grant cycle.
    pub end: u64,
}

impl CriticalStep {
    /// Cycles this step contributed to the chain.
    pub fn waited(&self) -> u64 {
        self.end - self.start
    }
}

/// The longest chain of wait-for edges ending at the last delivery.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CriticalPath {
    /// The packet the chain ends at (the run's last delivery), when the
    /// run delivered anything.
    pub last_delivery: Option<u32>,
    /// Cycle the last delivery finished.
    pub finished_at: u64,
    /// The chain, walked backwards from the last delivery (first element
    /// is the last delivery's own latest wait).
    pub steps: Vec<CriticalStep>,
    /// Total cycles spent across the chain's waits.
    pub waited_total: u64,
}

impl CriticalPath {
    /// An empty path (run delivered nothing, or nothing ever blocked).
    pub fn empty() -> CriticalPath {
        CriticalPath {
            last_delivery: None,
            finished_at: 0,
            steps: Vec::new(),
            waited_total: 0,
        }
    }

    /// Renders the chain hop-by-hop, newest wait first.
    pub fn render(&self) -> String {
        let mut out = String::new();
        match self.last_delivery {
            None => {
                out.push_str("critical path: (no delivered packet)\n");
                return out;
            }
            Some(id) => out.push_str(&format!(
                "critical path (ending at pkt{id}, finished cycle {}): {} wait(s), {} cycle(s)\n",
                self.finished_at,
                self.steps.len(),
                self.waited_total
            )),
        }
        for s in &self.steps {
            let holder = match s.holder {
                Some(h) => format!("pkt{h}"),
                None => "(free port)".to_string(),
            };
            out.push_str(&format!(
                "  pkt{} waited {} cyc [{}, {}) for {} held by {}\n",
                s.waiter,
                s.waited(),
                s.start,
                s.end,
                s.desc,
                holder
            ));
        }
        if self.steps.is_empty() {
            out.push_str("  (the last delivery never blocked)\n");
        }
        out
    }
}

/// Walks the wait-for edges backwards from `(last_delivery, finished_at)`.
///
/// At each packet, the latest episode ending at or before the current
/// time is the wait the makespan went through; the walk then jumps to the
/// packet that held the port when that wait began. Holderless episodes
/// (free-port arbitration losses) terminate the chain, as do packets with
/// no earlier episode and packets already on the chain.
pub fn critical_path(
    episodes: &[WaitEpisode],
    last_delivery: u32,
    finished_at: u64,
    graph: &NetworkGraph,
) -> CriticalPath {
    let mut steps = Vec::new();
    let mut waited_total = 0u64;
    let mut visited = vec![last_delivery];
    let mut current = last_delivery;
    let mut horizon = finished_at;

    while steps.len() < MAX_CRITICAL_STEPS {
        // The latest episode of `current` ending by `horizon`; ties broken
        // deterministically toward the longer (earlier-starting) episode,
        // then the smaller channel id.
        let next = episodes
            .iter()
            .filter(|e| e.waiter == current && e.end <= horizon)
            .max_by(|a, b| {
                a.end
                    .cmp(&b.end)
                    .then(b.start.cmp(&a.start))
                    .then(b.channel.cmp(&a.channel))
            });
        let Some(e) = next else { break };
        steps.push(CriticalStep {
            waiter: e.waiter,
            holder: e.holder,
            channel: e.channel,
            desc: graph.describe_channel(ChannelId(e.channel)),
            start: e.start,
            end: e.end,
        });
        waited_total += e.end - e.start;
        let Some(holder) = e.holder else { break };
        if visited.contains(&holder) {
            break;
        }
        visited.push(holder);
        current = holder;
        horizon = e.start;
    }

    CriticalPath {
        last_delivery: Some(last_delivery),
        finished_at,
        steps,
        waited_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdx_topology::graph::GraphBuilder;
    use mdx_topology::{Node, XbarRef};

    fn tiny_graph() -> NetworkGraph {
        let mut b = GraphBuilder::new();
        let pe = b.add_node(Node::Pe(0), None);
        let r = b.add_node(Node::Router(0), None);
        let x = b.add_node(Node::Xbar(XbarRef { dim: 0, line: 0 }), None);
        b.add_link(pe, r);
        b.add_link(r, x);
        b.build()
    }

    fn ep(waiter: u32, holder: Option<u32>, channel: u32, start: u64, end: u64) -> WaitEpisode {
        WaitEpisode {
            waiter,
            holder,
            channel,
            start,
            end,
        }
    }

    #[test]
    fn chains_through_holders() {
        let g = tiny_graph();
        // pkt2 waited behind pkt1, which earlier waited behind pkt0.
        let eps = vec![
            ep(1, Some(0), 0, 5, 12),
            ep(2, Some(1), 1, 14, 30),
            // A decoy later than the horizon once the walk reaches pkt1.
            ep(1, Some(0), 1, 20, 25),
        ];
        let p = critical_path(&eps, 2, 40, &g);
        assert_eq!(p.last_delivery, Some(2));
        assert_eq!(p.steps.len(), 2);
        assert_eq!(p.steps[0].waiter, 2);
        assert_eq!(p.steps[0].holder, Some(1));
        assert_eq!(p.steps[1].waiter, 1);
        assert_eq!(p.steps[1].holder, Some(0));
        assert_eq!(p.waited_total, (30 - 14) + (12 - 5));
        assert!(p.render().contains("pkt2 waited 16 cyc"));
    }

    #[test]
    fn holderless_wait_ends_chain() {
        let g = tiny_graph();
        let eps = vec![ep(3, None, 0, 2, 9), ep(3, Some(1), 1, 0, 1)];
        let p = critical_path(&eps, 3, 20, &g);
        // The latest episode is the holderless one; the chain stops there.
        assert_eq!(p.steps.len(), 1);
        assert_eq!(p.steps[0].holder, None);
        assert_eq!(p.waited_total, 7);
    }

    #[test]
    fn wait_cycles_do_not_loop() {
        let g = tiny_graph();
        // Mutual historical waits must not spin the walk forever.
        let eps = vec![ep(0, Some(1), 0, 10, 20), ep(1, Some(0), 1, 2, 8)];
        let p = critical_path(&eps, 0, 30, &g);
        assert_eq!(p.steps.len(), 2);
        assert_eq!(p.waited_total, 16);
    }

    #[test]
    fn no_waits_renders_cleanly() {
        let g = tiny_graph();
        let p = critical_path(&[], 5, 17, &g);
        assert_eq!(p.steps.len(), 0);
        assert!(p.render().contains("never blocked"));
        assert!(CriticalPath::empty().render().contains("no delivered"));
    }
}
