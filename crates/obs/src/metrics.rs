//! Channel- and crossbar-level traffic metrics.
//!
//! [`MetricsObserver`] accumulates, per directed channel: flit counts, peak
//! downstream-buffer occupancy, blocked episodes and blocked cycles; plus
//! run-level series (S-XB gather-queue depth over time), detour counts, and
//! a log₂ histogram of blocked-episode durations. [`MetricsHandle::report`]
//! reduces the raw tables into a [`MetricsReport`]: per-channel rows,
//! per-crossbar output utilization (the quantity Fig. 6's serialization
//! argument is about — the S-XB's output fan is the broadcast bottleneck),
//! and a text heatmap for terminals.

use mdx_core::RouteChange;
use mdx_sim::{InjectSpec, PacketId, SimObserver};
use mdx_topology::{ChannelId, NetworkGraph, Node, XbarRef};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Glyph ramp shared by the text heatmaps (same ramp as the bench reports).
const RAMP: &[u8] = b" .:-=+*#%@";

/// Number of log₂ buckets in the blocked-episode duration histogram
/// (bucket *i* counts episodes lasting `[2^i, 2^(i+1))` cycles; the last
/// bucket is open-ended).
pub const BLOCKED_BUCKETS: usize = 16;

/// One S-XB serialization-queue depth change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GatherSample {
    /// Cycle of the enqueue/dequeue.
    pub now: u64,
    /// Queue depth immediately after it.
    pub depth: usize,
}

struct State {
    graph: NetworkGraph,
    flits: Vec<u64>,
    peak_occupancy: Vec<usize>,
    blocked_events: Vec<u64>,
    blocked_cycles: Vec<u64>,
    blocked_hist: [u64; BLOCKED_BUCKETS],
    gather_series: Vec<GatherSample>,
    gather_peak: usize,
    injected: u64,
    hops: u64,
    detours: u64,
}

/// The attachable half of the metrics instrument: implements
/// [`SimObserver`]; build with [`MetricsObserver::new`], attach with
/// [`mdx_sim::Simulator::set_observer`], and read the results afterwards
/// through the paired [`MetricsHandle`].
pub struct MetricsObserver {
    state: Rc<RefCell<State>>,
}

/// The caller-retained half of the metrics instrument; survives handing the
/// [`MetricsObserver`] to the simulator and produces the [`MetricsReport`].
#[derive(Clone)]
pub struct MetricsHandle {
    state: Rc<RefCell<State>>,
}

impl MetricsObserver {
    /// Creates the observer/handle pair for a run on `graph` (the same
    /// graph handed to the simulator — channel ids must agree).
    pub fn new(graph: NetworkGraph) -> (MetricsObserver, MetricsHandle) {
        let n = graph.num_channels();
        let state = Rc::new(RefCell::new(State {
            graph,
            flits: vec![0; n],
            peak_occupancy: vec![0; n],
            blocked_events: vec![0; n],
            blocked_cycles: vec![0; n],
            blocked_hist: [0; BLOCKED_BUCKETS],
            gather_series: Vec::new(),
            gather_peak: 0,
            injected: 0,
            hops: 0,
            detours: 0,
        }));
        (
            MetricsObserver {
                state: Rc::clone(&state),
            },
            MetricsHandle { state },
        )
    }
}

impl SimObserver for MetricsObserver {
    fn on_inject(&mut self, _id: PacketId, _spec: &InjectSpec, _now: u64) {
        self.state.borrow_mut().injected += 1;
    }

    fn on_hop(&mut self, _id: PacketId, _at: Node, _in_channel: Option<ChannelId>, _now: u64) {
        self.state.borrow_mut().hops += 1;
    }

    fn on_rc_change(
        &mut self,
        _id: PacketId,
        _at: Node,
        _from: RouteChange,
        to: RouteChange,
        _now: u64,
    ) {
        if to == RouteChange::Detour {
            self.state.borrow_mut().detours += 1;
        }
    }

    fn on_blocked(
        &mut self,
        _id: PacketId,
        channel: ChannelId,
        _vc: u8,
        _holder: Option<PacketId>,
        _now: u64,
    ) {
        self.state.borrow_mut().blocked_events[channel.idx()] += 1;
    }

    fn on_unblocked(&mut self, _id: PacketId, channel: ChannelId, _vc: u8, waited: u64, _now: u64) {
        let mut s = self.state.borrow_mut();
        s.blocked_cycles[channel.idx()] += waited;
        let bucket = if waited <= 1 {
            0
        } else {
            ((63 - waited.leading_zeros()) as usize).min(BLOCKED_BUCKETS - 1)
        };
        s.blocked_hist[bucket] += 1;
    }

    fn on_flit(&mut self, channel: ChannelId, _vc: u8, occupancy: usize, _now: u64) {
        let mut s = self.state.borrow_mut();
        s.flits[channel.idx()] += 1;
        if occupancy > s.peak_occupancy[channel.idx()] {
            s.peak_occupancy[channel.idx()] = occupancy;
        }
    }

    fn on_gather(&mut self, _id: PacketId, depth: usize, now: u64) {
        let mut s = self.state.borrow_mut();
        s.gather_series.push(GatherSample { now, depth });
        if depth > s.gather_peak {
            s.gather_peak = depth;
        }
    }

    fn on_emission(&mut self, _id: PacketId, depth: usize, now: u64) {
        self.state
            .borrow_mut()
            .gather_series
            .push(GatherSample { now, depth });
    }
}

/// One directed channel's accumulated traffic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelMetrics {
    /// Dense channel id (same numbering as the simulator's graph).
    pub channel: u32,
    /// Human-readable `src -> dst` description.
    pub desc: String,
    /// Flits that crossed the channel.
    pub flits: u64,
    /// `flits / cycles` — fraction of cycles the channel carried a flit.
    pub utilization: f64,
    /// Peak downstream-buffer occupancy (flits).
    pub peak_occupancy: usize,
    /// Blocked episodes that started on this channel's port.
    pub blocked_events: u64,
    /// Total cycles port requests spent blocked on this channel.
    pub blocked_cycles: u64,
}

/// One crossbar's accumulated *output* traffic (summed over its outgoing
/// channels).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct XbarMetrics {
    /// Crossbar name in the paper's vocabulary (e.g. `X0-XB`).
    pub name: String,
    /// Dimension the crossbar routes along.
    pub dim: u8,
    /// Line index within that dimension.
    pub line: u32,
    /// Number of outgoing channels.
    pub out_ports: usize,
    /// Flits emitted across all outgoing channels.
    pub out_flits: u64,
    /// Mean per-port output utilization: `out_flits / (cycles * out_ports)`.
    pub utilization: f64,
    /// Blocked episodes on the crossbar's output ports.
    pub blocked_events: u64,
    /// Cycles spent blocked on the crossbar's output ports.
    pub blocked_cycles: u64,
}

/// The reduced, serializable metrics of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Cycles the run simulated (denominator of every utilization).
    pub cycles: u64,
    /// Total flit channel-crossings.
    pub total_flits: u64,
    /// Packets injected.
    pub injected: u64,
    /// Header hops (routing decisions made).
    pub hops: u64,
    /// Detour initiations (RC rewrites to `Detour`).
    pub detours: u64,
    /// `detours / injected` (0 when nothing was injected).
    pub detour_rate: f64,
    /// Active channels (flits or blocked events > 0), hottest first.
    pub channels: Vec<ChannelMetrics>,
    /// Per-crossbar output rows, highest utilization first.
    pub crossbars: Vec<XbarMetrics>,
    /// Peak S-XB serialization-queue depth.
    pub gather_peak: usize,
    /// Queue-depth time series (one sample per enqueue/dequeue).
    pub gather_series: Vec<GatherSample>,
    /// Blocked-episode durations, log₂-bucketed: entry *i* counts episodes
    /// of `[2^i, 2^(i+1))` cycles.
    pub blocked_histogram: Vec<u64>,
}

impl MetricsHandle {
    /// Reduces the accumulated tables into a [`MetricsReport`]. `cycles` is
    /// the run length ([`mdx_sim::SimStats::cycles`]); it only scales the
    /// utilization columns.
    pub fn report(&self, cycles: u64) -> MetricsReport {
        let s = self.state.borrow();
        let denom = cycles.max(1) as f64;
        let mut channels: Vec<ChannelMetrics> = (0..s.graph.num_channels())
            .filter(|&i| s.flits[i] > 0 || s.blocked_events[i] > 0)
            .map(|i| ChannelMetrics {
                channel: i as u32,
                desc: s.graph.describe_channel(ChannelId(i as u32)),
                flits: s.flits[i],
                utilization: s.flits[i] as f64 / denom,
                peak_occupancy: s.peak_occupancy[i],
                blocked_events: s.blocked_events[i],
                blocked_cycles: s.blocked_cycles[i],
            })
            .collect();
        channels.sort_by(|a, b| b.flits.cmp(&a.flits).then(a.channel.cmp(&b.channel)));

        let mut per_xbar: HashMap<XbarRef, XbarMetrics> = HashMap::new();
        for id in s.graph.channel_ids() {
            let src = s.graph.node(s.graph.channel(id).src);
            let Node::Xbar(x) = src else { continue };
            let row = per_xbar.entry(x).or_insert_with(|| XbarMetrics {
                name: x.to_string(),
                dim: x.dim,
                line: x.line,
                out_ports: 0,
                out_flits: 0,
                utilization: 0.0,
                blocked_events: 0,
                blocked_cycles: 0,
            });
            row.out_ports += 1;
            row.out_flits += s.flits[id.idx()];
            row.blocked_events += s.blocked_events[id.idx()];
            row.blocked_cycles += s.blocked_cycles[id.idx()];
        }
        let mut crossbars: Vec<XbarMetrics> = per_xbar
            .into_values()
            .map(|mut x| {
                x.utilization = x.out_flits as f64 / (denom * x.out_ports.max(1) as f64);
                x
            })
            .collect();
        crossbars.sort_by(|a, b| {
            b.utilization
                .partial_cmp(&a.utilization)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| (a.dim, a.line).cmp(&(b.dim, b.line)))
        });

        let total_flits: u64 = s.flits.iter().sum();
        MetricsReport {
            cycles,
            total_flits,
            injected: s.injected,
            hops: s.hops,
            detours: s.detours,
            detour_rate: if s.injected == 0 {
                0.0
            } else {
                s.detours as f64 / s.injected as f64
            },
            channels,
            crossbars,
            gather_peak: s.gather_peak,
            gather_series: s.gather_series.clone(),
            blocked_histogram: s.blocked_hist.to_vec(),
        }
    }
}

impl MetricsReport {
    /// The row for crossbar `name` (e.g. `"X0-XB"`), if it moved any
    /// traffic or exists in the graph.
    pub fn xbar(&self, name: &str) -> Option<&XbarMetrics> {
        self.crossbars.iter().find(|x| x.name == name)
    }

    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("MetricsReport serializes")
    }

    /// Renders the terminal heatmap: per-crossbar output utilization bars,
    /// the hottest channels, the gather-queue peak, and the blocked-episode
    /// histogram. `sxb`/`dxb` (e.g. from
    /// [`mdx_core::Scheme::serializing_node`] /
    /// [`mdx_core::Scheme::detour_node`]) annotate the matching crossbar
    /// rows.
    pub fn heatmap(&self, sxb: Option<&str>, dxb: Option<&str>) -> String {
        let mut out = String::new();
        let glyph = |frac: f64| -> char {
            let i = (frac.clamp(0.0, 1.0) * (RAMP.len() - 1) as f64).round() as usize;
            RAMP[i] as char
        };
        let bar = |frac: f64| -> String {
            const W: usize = 24;
            let full = (frac.clamp(0.0, 1.0) * W as f64).round() as usize;
            let mut b = String::new();
            for i in 0..W {
                b.push(if i < full { '#' } else { '.' });
            }
            b
        };

        out.push_str(&format!(
            "run: {} cycles, {} flits, {} packets, detour rate {:.3}\n",
            self.cycles, self.total_flits, self.injected, self.detour_rate
        ));
        out.push_str("\nper-crossbar output utilization (mean over output ports):\n");
        let max_util = self
            .crossbars
            .iter()
            .map(|x| x.utilization)
            .fold(0.0_f64, f64::max)
            .max(1e-12);
        for x in &self.crossbars {
            let tag = if Some(x.name.as_str()) == sxb && Some(x.name.as_str()) == dxb {
                " [S-XB=D-XB]"
            } else if Some(x.name.as_str()) == sxb {
                " [S-XB]"
            } else if Some(x.name.as_str()) == dxb {
                " [D-XB]"
            } else {
                ""
            };
            out.push_str(&format!(
                "  {:<8} {} {:.3}  ({} flits / {} ports, blocked {} eps, {} cyc){}\n",
                x.name,
                bar(x.utilization / max_util),
                x.utilization,
                x.out_flits,
                x.out_ports,
                x.blocked_events,
                x.blocked_cycles,
                tag,
            ));
        }

        out.push_str("\nhottest channels:\n");
        for c in self.channels.iter().take(12) {
            out.push_str(&format!(
                "  {} {:<22} {:>6} flits  util {:.3}  peak buf {}  blocked {} eps / {} cyc\n",
                glyph(c.utilization),
                c.desc,
                c.flits,
                c.utilization,
                c.peak_occupancy,
                c.blocked_events,
                c.blocked_cycles,
            ));
        }

        if self.gather_peak > 0 {
            out.push_str(&format!(
                "\nS-XB gather queue: peak depth {} over {} enqueue/dequeue events\n",
                self.gather_peak,
                self.gather_series.len()
            ));
        }

        let episodes: u64 = self.blocked_histogram.iter().sum();
        if episodes > 0 {
            out.push_str("\nblocked-episode durations (log2 buckets):\n");
            let max = *self.blocked_histogram.iter().max().unwrap_or(&1) as f64;
            for (i, &n) in self.blocked_histogram.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "  [{:>5}..{:<5}) {} {}\n",
                    1u64 << i,
                    if i + 1 >= BLOCKED_BUCKETS {
                        "inf".to_string()
                    } else {
                        (1u64 << (i + 1)).to_string()
                    },
                    bar(n as f64 / max),
                    n
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdx_topology::graph::GraphBuilder;

    fn tiny_graph() -> NetworkGraph {
        let mut b = GraphBuilder::new();
        let pe = b.add_node(Node::Pe(0), None);
        let r = b.add_node(Node::Router(0), None);
        let x = b.add_node(Node::Xbar(XbarRef { dim: 0, line: 0 }), None);
        b.add_link(pe, r);
        b.add_link(r, x);
        b.build()
    }

    #[test]
    fn accumulates_and_reduces() {
        let g = tiny_graph();
        let xbar_out = g
            .channel_ids()
            .find(|&c| matches!(g.node(g.channel(c).src), Node::Xbar(_)))
            .unwrap();
        let (mut obs, handle) = MetricsObserver::new(g);
        obs.on_inject(PacketId(0), &dummy_spec(), 0);
        for t in 0..10 {
            obs.on_flit(xbar_out, 0, 1, t);
        }
        obs.on_blocked(PacketId(1), xbar_out, 0, Some(PacketId(0)), 3);
        obs.on_unblocked(PacketId(1), xbar_out, 0, 5, 8);
        obs.on_gather(PacketId(0), 1, 2);
        obs.on_emission(PacketId(0), 0, 4);

        let rep = handle.report(20);
        assert_eq!(rep.total_flits, 10);
        assert_eq!(rep.injected, 1);
        assert_eq!(rep.channels.len(), 1);
        assert_eq!(rep.channels[0].flits, 10);
        assert!((rep.channels[0].utilization - 0.5).abs() < 1e-9);
        assert_eq!(rep.channels[0].blocked_events, 1);
        assert_eq!(rep.channels[0].blocked_cycles, 5);
        assert_eq!(rep.crossbars.len(), 1);
        assert_eq!(rep.crossbars[0].name, "X0-XB");
        assert_eq!(rep.crossbars[0].out_ports, 1);
        assert_eq!(rep.crossbars[0].out_flits, 10);
        assert_eq!(rep.gather_peak, 1);
        assert_eq!(rep.gather_series.len(), 2);
        // waited=5 lands in the [4, 8) bucket.
        assert_eq!(rep.blocked_histogram[2], 1);
        assert!(rep.xbar("X0-XB").is_some());
        assert!(rep.xbar("Y9-XB").is_none());
    }

    #[test]
    fn heatmap_and_json_render() {
        let g = tiny_graph();
        let ch = ChannelId(0);
        let (mut obs, handle) = MetricsObserver::new(g);
        obs.on_flit(ch, 0, 2, 1);
        let rep = handle.report(10);
        let text = rep.heatmap(Some("X0-XB"), Some("X0-XB"));
        assert!(text.contains("per-crossbar output utilization"));
        assert!(text.contains("hottest channels"));
        let json = rep.to_json();
        assert!(json.contains("\"total_flits\""));
        let back: MetricsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rep);
    }

    fn dummy_spec() -> InjectSpec {
        use mdx_core::Header;
        use mdx_topology::Coord;
        InjectSpec {
            src_pe: 0,
            header: Header::unicast(Coord::ORIGIN, Coord::ORIGIN),
            flits: 1,
            inject_at: 0,
        }
    }
}
