//! Cycle-exact latency attribution: disjoint, conserving per-packet phase
//! decomposition, blame profiles, and the run's critical path.
//!
//! [`AttributionObserver`] consumes the [`SimObserver`] stream and, for
//! every delivered packet, partitions the end-to-end latency window
//! `[injected_at, finished_at)` into **disjoint** phases whose durations
//! sum to the engine's own latency *exactly* — the profiler counterpart
//! of the paper's Figs. 9–10 argument about where cycles go:
//!
//! - `inject_wait` — source injection queueing: the scheduled injection
//!   cycle arrived but the header had not yet left the NIA (front-of-line
//!   blocking at the source, or the reconfiguration injection gate).
//! - `gather_wait` — S-XB serialization: the broadcast request sat in the
//!   S-XB gather queue between [`SimObserver::on_gather`] and its
//!   [`SimObserver::on_emission`] (the Fig. 6 one-at-a-time bottleneck).
//! - `blocked_normal` / `blocked_gather` / `blocked_detour` — port
//!   arbitration losses, split by *holder class* sampled when the episode
//!   opened: behind a normal (RC=0) packet or a free port, behind the
//!   S-XB pipeline (holder RC∈{1,2}), or behind a detoured (RC=3) packet.
//! - `epoch_pause` — cycles inside an mdx-reconfig epoch pause: any
//!   *waiting* cycle within `[quiesced, resumed)` and every cycle of the
//!   reprogram clock jump `[drained, reprogrammed)` (when nothing in the
//!   machine moves), counted exactly once.
//! - `detour_transfer` — cycles the packet spent in RC=3 flight (between
//!   the detour-initiating RC rewrite and the D-XB completing it), net of
//!   any overlapped wait above. Reported next to the fault-free
//!   dimension-order path length ([`InjectSpec::fault_free_channel_hops`])
//!   so the detour's *hop* overhead is visible too.
//! - `base_transfer` — the remainder: ordinary dimension-order movement.
//!
//! Overlaps resolve by a fixed priority (a broadcast can hold several
//! blocked branches open at once; a detoured packet can block mid-detour)
//! — every cycle lands in exactly one phase, so the hard invariant
//!
//! ```text
//! inject_wait + epoch_pause + gather_wait + blocked_* + detour_transfer
//!   + base_transfer == finished_at - injected_at
//! ```
//!
//! holds for every delivered packet by construction, and
//! [`AttributionHandle::report`] re-checks it against the engine's
//! [`PacketResult::latency`] anyway (`conserved` / `violations`).
//!
//! On top of the per-packet records the report computes **blame
//! profiles** — per-channel and per-crossbar blocked-cycles-caused over
//! every *closed* episode of the run (including packets that later
//! dropped; unfinished packets' open episodes never close and are
//! excluded) — and the **critical path**: the longest chain of wait-for
//! edges ending at the last delivery ([`crate::critical`]).
//!
//! Re-injection (live-reconfiguration `reinject`/`reroute` recovery)
//! resets a packet's per-packet record — the engine's latency measures
//! the final flight — while blame and the critical path keep the
//! wall-clock view of every closed episode.

use crate::critical::{critical_path, CriticalPath, WaitEpisode};
use mdx_core::RouteChange;
use mdx_sim::{EpochPhase, InjectSpec, PacketId, PacketOutcome, SimObserver, SimResult};
use mdx_topology::{ChannelId, NetworkGraph, Node, XbarRef};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Holder class of a blocked episode, sampled when the episode opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockClass {
    /// Behind a normal (RC=0) packet, or a free port losing arbitration.
    Normal,
    /// Behind the S-XB broadcast pipeline (holder RC=1 or RC=2).
    Gather,
    /// Behind a detoured (RC=3) packet.
    Detour,
}

/// One closed blocked episode plus its holder class.
#[derive(Debug, Clone, Copy)]
struct ClosedEpisode {
    ep: WaitEpisode,
    class: BlockClass,
}

/// A reconfiguration pause window under construction.
#[derive(Debug, Clone, Copy)]
struct PauseWin {
    start: u64,
    end: Option<u64>,
    /// Hard windows (the reprogram clock jump) pause *everything*; soft
    /// windows (quiesce → resume) re-label only waiting cycles.
    hard: bool,
}

/// Per-packet raw event record (the packet's *final* flight).
#[derive(Debug, Clone)]
struct Track {
    present: bool,
    injected_now: u64,
    rc: RouteChange,
    hops: u64,
    fault_free_hops: Option<u64>,
    detoured: bool,
    gather_open: Option<u64>,
    gather_spans: Vec<(u64, u64)>,
    detour_open: Option<u64>,
    detour_spans: Vec<(u64, u64)>,
    /// Open blocked episodes keyed by `(channel, vc)`.
    open_blocks: Vec<(u32, u8, BlockClass)>,
    /// Closed episodes of this flight: `(channel, start, end, class)`.
    episodes: Vec<(u32, u64, u64, BlockClass)>,
}

impl Default for Track {
    fn default() -> Track {
        Track {
            present: false,
            injected_now: 0,
            rc: RouteChange::Normal,
            hops: 0,
            fault_free_hops: None,
            detoured: false,
            gather_open: None,
            gather_spans: Vec::new(),
            detour_open: None,
            detour_spans: Vec::new(),
            open_blocks: Vec::new(),
            episodes: Vec::new(),
        }
    }
}

struct State {
    graph: NetworkGraph,
    packets: Vec<Track>,
    pauses: Vec<PauseWin>,
    /// Every closed episode of the run, in close order (wall-clock view,
    /// surviving re-injection resets) — feeds blame and the critical path.
    closed: Vec<ClosedEpisode>,
}

impl State {
    fn track_mut(&mut self, id: PacketId) -> &mut Track {
        if self.packets.len() <= id.idx() {
            self.packets.resize_with(id.idx() + 1, Track::default);
        }
        &mut self.packets[id.idx()]
    }

    fn rc_of(&self, id: PacketId) -> RouteChange {
        self.packets
            .get(id.idx())
            .filter(|t| t.present)
            .map(|t| t.rc)
            .unwrap_or(RouteChange::Normal)
    }
}

/// The attachable half of the attribution instrument: implements
/// [`SimObserver`]; build with [`AttributionObserver::new`], attach with
/// [`mdx_sim::Simulator::set_observer`], and reduce afterwards through the
/// paired [`AttributionHandle`].
pub struct AttributionObserver {
    state: Rc<RefCell<State>>,
}

/// The caller-retained half of the attribution instrument; survives
/// handing the [`AttributionObserver`] to the simulator and produces the
/// [`AttributionReport`].
#[derive(Clone)]
pub struct AttributionHandle {
    state: Rc<RefCell<State>>,
}

impl AttributionObserver {
    /// Creates the observer/handle pair for a run on `graph` (the same
    /// graph handed to the simulator — channel ids must agree).
    pub fn new(graph: NetworkGraph) -> (AttributionObserver, AttributionHandle) {
        let state = Rc::new(RefCell::new(State {
            graph,
            packets: Vec::new(),
            pauses: Vec::new(),
            closed: Vec::new(),
        }));
        (
            AttributionObserver {
                state: Rc::clone(&state),
            },
            AttributionHandle { state },
        )
    }
}

impl SimObserver for AttributionObserver {
    fn on_inject(&mut self, id: PacketId, spec: &InjectSpec, now: u64) {
        let mut s = self.state.borrow_mut();
        let t = s.track_mut(id);
        // A repeat injection is a live-reconfiguration re-schedule: the
        // engine restarts the packet's lifecycle (and its latency window),
        // so the per-packet record restarts too.
        *t = Track {
            present: true,
            injected_now: now,
            rc: spec.header.rc,
            fault_free_hops: spec.fault_free_channel_hops(),
            ..Track::default()
        };
    }

    fn on_hop(&mut self, id: PacketId, _at: Node, _in_channel: Option<ChannelId>, _now: u64) {
        self.state.borrow_mut().track_mut(id).hops += 1;
    }

    fn on_rc_change(
        &mut self,
        id: PacketId,
        _at: Node,
        from: RouteChange,
        to: RouteChange,
        now: u64,
    ) {
        let mut s = self.state.borrow_mut();
        let t = s.track_mut(id);
        t.rc = to;
        if to == RouteChange::Detour {
            t.detoured = true;
            t.detour_open.get_or_insert(now);
        } else if from == RouteChange::Detour {
            if let Some(start) = t.detour_open.take() {
                t.detour_spans.push((start, now));
            }
        }
    }

    fn on_blocked(
        &mut self,
        id: PacketId,
        channel: ChannelId,
        vc: u8,
        holder: Option<PacketId>,
        _now: u64,
    ) {
        let mut s = self.state.borrow_mut();
        let class = match holder.map(|h| s.rc_of(h)) {
            Some(RouteChange::BroadcastRequest) | Some(RouteChange::Broadcast) => {
                BlockClass::Gather
            }
            Some(RouteChange::Detour) => BlockClass::Detour,
            Some(RouteChange::Normal) | None => BlockClass::Normal,
        };
        let holder_id = holder.map(|h| h.0);
        s.track_mut(id).open_blocks.push((channel.0, vc, class));
        // Remember the holder alongside, for the wall-clock episode list.
        s.closed.push(ClosedEpisode {
            ep: WaitEpisode {
                waiter: id.0,
                holder: holder_id,
                channel: channel.0,
                start: u64::MAX, // patched on unblock; MAX marks "open"
                end: u64::MAX,
            },
            class,
        });
    }

    fn on_unblocked(&mut self, id: PacketId, channel: ChannelId, vc: u8, waited: u64, now: u64) {
        let mut s = self.state.borrow_mut();
        let start = now - waited;
        // Patch the matching open entry in the wall-clock list (the oldest
        // open one for this key — the pairing contract guarantees at most
        // one exists; see `mdx_sim::observer` module docs).
        if let Some(c) = s
            .closed
            .iter_mut()
            .find(|c| c.ep.waiter == id.0 && c.ep.channel == channel.0 && c.ep.start == u64::MAX)
        {
            c.ep.start = start;
            c.ep.end = now;
        }
        let t = s.track_mut(id);
        if let Some(pos) = t
            .open_blocks
            .iter()
            .position(|&(ch, v, _)| ch == channel.0 && v == vc)
        {
            let (ch, _, class) = t.open_blocks.swap_remove(pos);
            t.episodes.push((ch, start, now, class));
        }
    }

    fn on_gather(&mut self, id: PacketId, _depth: usize, now: u64) {
        self.state
            .borrow_mut()
            .track_mut(id)
            .gather_open
            .get_or_insert(now);
    }

    fn on_emission(&mut self, id: PacketId, _depth: usize, now: u64) {
        let mut s = self.state.borrow_mut();
        let t = s.track_mut(id);
        if let Some(start) = t.gather_open.take() {
            t.gather_spans.push((start, now));
        }
    }

    fn on_packet_finished(&mut self, id: PacketId, now: u64) {
        let mut s = self.state.borrow_mut();
        let t = s.track_mut(id);
        if let Some(start) = t.detour_open.take() {
            t.detour_spans.push((start, now));
        }
        if let Some(start) = t.gather_open.take() {
            t.gather_spans.push((start, now));
        }
    }

    fn on_epoch_phase(&mut self, _epoch: u32, phase: EpochPhase, now: u64) {
        let mut s = self.state.borrow_mut();
        match phase {
            // Soft pause: injection closed, drain in progress — waiting
            // cycles in here are the protocol's fault, moving ones are not.
            EpochPhase::Quiesced => s.pauses.push(PauseWin {
                start: now,
                end: None,
                hard: false,
            }),
            // Hard pause: the reprogram clock jump — nothing moves at all.
            EpochPhase::Drained => s.pauses.push(PauseWin {
                start: now,
                end: None,
                hard: true,
            }),
            EpochPhase::Reprogrammed => {
                if let Some(w) = s
                    .pauses
                    .iter_mut()
                    .rev()
                    .find(|w| w.hard && w.end.is_none())
                {
                    w.end = Some(now);
                }
            }
            EpochPhase::Resumed => {
                if let Some(w) = s
                    .pauses
                    .iter_mut()
                    .rev()
                    .find(|w| !w.hard && w.end.is_none())
                {
                    w.end = Some(now);
                }
            }
            EpochPhase::Detected => {}
        }
    }
}

/// Sweep-time phase labels, in priority order (lower wins a contended
/// segment). `EpochPause` is applied as an overlay, not a priority slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Slot {
    InjectWait,
    GatherWait,
    BlockedGather,
    BlockedDetour,
    BlockedNormal,
    DetourTransfer,
}

/// One delivered packet's phase decomposition. All phase fields are in
/// cycles and sum to `latency` exactly ([`PacketPhases::phase_sum`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketPhases {
    /// The packet (dense id within the run).
    pub id: u32,
    /// Engine end-to-end latency: `finished_at - injected_at`.
    pub latency: u64,
    /// Source injection queueing (scheduled but not yet in the network).
    pub inject_wait: u64,
    /// Cycles inside a reconfiguration epoch pause.
    pub epoch_pause: u64,
    /// S-XB gather-queue serialization wait.
    pub gather_wait: u64,
    /// Blocked behind normal traffic (or free-port arbitration losses).
    pub blocked_normal: u64,
    /// Blocked behind the S-XB broadcast pipeline (holder RC 1/2).
    pub blocked_gather: u64,
    /// Blocked behind a detoured packet (holder RC 3).
    pub blocked_detour: u64,
    /// In-flight cycles spent in RC=3 detour state.
    pub detour_transfer: u64,
    /// Ordinary dimension-order movement (the remainder).
    pub base_transfer: u64,
    /// Header hops (routing decisions) on the final flight.
    pub hops: u64,
    /// Fault-free dimension-order path length in channels, for unicasts.
    pub fault_free_hops: Option<u64>,
    /// Whether the packet ever entered RC=3.
    pub detoured: bool,
}

impl PacketPhases {
    /// Sum of the disjoint phases — equals [`PacketPhases::latency`] for a
    /// conserving decomposition.
    pub fn phase_sum(&self) -> u64 {
        self.inject_wait
            + self.epoch_pause
            + self.gather_wait
            + self.blocked_normal
            + self.blocked_gather
            + self.blocked_detour
            + self.detour_transfer
            + self.base_transfer
    }

    /// Detour hop overhead vs. the fault-free dimension-order path
    /// (`0` for non-detoured packets and broadcasts).
    pub fn detour_overhead_hops(&self) -> u64 {
        match (self.detoured, self.fault_free_hops) {
            (true, Some(ff)) => self.hops.saturating_sub(ff),
            _ => 0,
        }
    }
}

/// Phase totals over all delivered packets of a run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTotals {
    /// Total end-to-end latency (the denominator of every share).
    pub latency: u64,
    /// Total source injection queueing.
    pub inject_wait: u64,
    /// Total epoch-pause cycles.
    pub epoch_pause: u64,
    /// Total S-XB gather serialization wait.
    pub gather_wait: u64,
    /// Total blocked-behind-normal cycles.
    pub blocked_normal: u64,
    /// Total blocked-behind-S-XB cycles.
    pub blocked_gather: u64,
    /// Total blocked-behind-detour cycles.
    pub blocked_detour: u64,
    /// Total RC=3 in-flight cycles.
    pub detour_transfer: u64,
    /// Total ordinary transfer cycles.
    pub base_transfer: u64,
    /// Total detour hop overhead vs. fault-free dimension-order paths.
    pub detour_overhead_hops: u64,
}

impl PhaseTotals {
    /// `(name, cycles)` pairs of the cycle phases, in render order.
    pub fn named(&self) -> [(&'static str, u64); 8] {
        [
            ("inject_wait", self.inject_wait),
            ("epoch_pause", self.epoch_pause),
            ("gather_wait", self.gather_wait),
            ("blocked_normal", self.blocked_normal),
            ("blocked_gather", self.blocked_gather),
            ("blocked_detour", self.blocked_detour),
            ("detour_transfer", self.detour_transfer),
            ("base_transfer", self.base_transfer),
        ]
    }
}

/// One channel's blame row: blocked cycles *caused at* this channel's
/// port, over every closed episode of the run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelBlame {
    /// Dense channel id (same numbering as the simulator's graph).
    pub channel: u32,
    /// Human-readable `src -> dst` description.
    pub desc: String,
    /// Closed blocked episodes on this channel's port.
    pub episodes: u64,
    /// Total blocked cycles those episodes cost their waiters.
    pub blocked_cycles: u64,
    /// Portion of `blocked_cycles` waited behind the S-XB pipeline.
    pub gather_cycles: u64,
    /// Portion waited behind detoured (RC=3) holders.
    pub detour_cycles: u64,
    /// Portion waited behind normal holders or free ports.
    pub normal_cycles: u64,
}

/// One crossbar's blame row: blocked cycles caused on its output ports.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct XbarBlame {
    /// Crossbar name in the paper's vocabulary (e.g. `X0-XB`).
    pub name: String,
    /// Dimension the crossbar routes along.
    pub dim: u8,
    /// Line index within that dimension.
    pub line: u32,
    /// Closed blocked episodes on the crossbar's output ports.
    pub episodes: u64,
    /// Total blocked cycles those episodes cost.
    pub blocked_cycles: u64,
}

/// The reduced, serializable attribution of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributionReport {
    /// Delivered packets decomposed.
    pub delivered: usize,
    /// Whether `phase_sum == latency` held for every delivered packet.
    pub conserved: bool,
    /// Packet ids whose decomposition failed conservation (always empty
    /// unless the engine and observer disagree — a bug either way).
    pub violations: Vec<u32>,
    /// Phase totals over the delivered packets.
    pub totals: PhaseTotals,
    /// Per-packet decompositions, by packet id.
    pub packets: Vec<PacketPhases>,
    /// Per-channel blocked-cycles-caused, heaviest first.
    pub channel_blame: Vec<ChannelBlame>,
    /// Per-crossbar blocked-cycles-caused (output ports), heaviest first.
    pub xbar_blame: Vec<XbarBlame>,
    /// The longest wait-for chain ending at the last delivery.
    pub critical: CriticalPath,
}

impl AttributionHandle {
    /// Reduces the accumulated events against the engine's own accounting
    /// into an [`AttributionReport`]. `result` must come from the run the
    /// observer watched.
    pub fn report(&self, result: &SimResult) -> AttributionReport {
        let s = self.state.borrow();

        // Closed pause windows (an unclosed protocol leaves the window
        // open to the end of time; the per-packet clip bounds it).
        let pauses: Vec<(u64, u64, bool)> = s
            .pauses
            .iter()
            .map(|w| (w.start, w.end.unwrap_or(u64::MAX), w.hard))
            .collect();

        let mut packets = Vec::new();
        let mut totals = PhaseTotals::default();
        let mut violations = Vec::new();
        for p in &result.packets {
            if p.outcome != PacketOutcome::Delivered {
                continue;
            }
            let Some(finished) = p.finished_at else {
                continue;
            };
            let track = s.packets.get(p.id.idx()).filter(|t| t.present);
            let phases = decompose(p.id.0, p.injected_at, finished, track, &pauses);
            if phases.phase_sum() != phases.latency {
                violations.push(p.id.0);
            }
            totals.latency += phases.latency;
            totals.inject_wait += phases.inject_wait;
            totals.epoch_pause += phases.epoch_pause;
            totals.gather_wait += phases.gather_wait;
            totals.blocked_normal += phases.blocked_normal;
            totals.blocked_gather += phases.blocked_gather;
            totals.blocked_detour += phases.blocked_detour;
            totals.detour_transfer += phases.detour_transfer;
            totals.base_transfer += phases.base_transfer;
            totals.detour_overhead_hops += phases.detour_overhead_hops();
            packets.push(phases);
        }

        // Blame: every closed episode, aggregated per channel and per
        // owning crossbar.
        let n = s.graph.num_channels();
        let mut ep_count = vec![0u64; n];
        let mut cyc = vec![0u64; n];
        let mut cyc_gather = vec![0u64; n];
        let mut cyc_detour = vec![0u64; n];
        let mut cyc_normal = vec![0u64; n];
        for c in s.closed.iter().filter(|c| c.ep.end != u64::MAX) {
            let i = c.ep.channel as usize;
            let dur = c.ep.end - c.ep.start;
            ep_count[i] += 1;
            cyc[i] += dur;
            match c.class {
                BlockClass::Gather => cyc_gather[i] += dur,
                BlockClass::Detour => cyc_detour[i] += dur,
                BlockClass::Normal => cyc_normal[i] += dur,
            }
        }
        let mut channel_blame: Vec<ChannelBlame> = (0..n)
            .filter(|&i| ep_count[i] > 0)
            .map(|i| ChannelBlame {
                channel: i as u32,
                desc: s.graph.describe_channel(ChannelId(i as u32)),
                episodes: ep_count[i],
                blocked_cycles: cyc[i],
                gather_cycles: cyc_gather[i],
                detour_cycles: cyc_detour[i],
                normal_cycles: cyc_normal[i],
            })
            .collect();
        channel_blame.sort_by(|a, b| {
            b.blocked_cycles
                .cmp(&a.blocked_cycles)
                .then(a.channel.cmp(&b.channel))
        });

        let mut per_xbar: HashMap<XbarRef, XbarBlame> = HashMap::new();
        for id in s.graph.channel_ids() {
            if ep_count[id.idx()] == 0 {
                continue;
            }
            let src = s.graph.node(s.graph.channel(id).src);
            let Node::Xbar(x) = src else { continue };
            let row = per_xbar.entry(x).or_insert_with(|| XbarBlame {
                name: x.to_string(),
                dim: x.dim,
                line: x.line,
                episodes: 0,
                blocked_cycles: 0,
            });
            row.episodes += ep_count[id.idx()];
            row.blocked_cycles += cyc[id.idx()];
        }
        let mut xbar_blame: Vec<XbarBlame> = per_xbar.into_values().collect();
        xbar_blame.sort_by(|a, b| {
            b.blocked_cycles
                .cmp(&a.blocked_cycles)
                .then((a.dim, a.line).cmp(&(b.dim, b.line)))
        });

        // Critical path from the wall-clock episode list, ending at the
        // last delivery (ties toward the smaller id, deterministically).
        let critical = result
            .packets
            .iter()
            .filter(|p| p.outcome == PacketOutcome::Delivered)
            .filter_map(|p| p.finished_at.map(|f| (f, p.id.0)))
            .max_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)))
            .map(|(finished, id)| {
                let eps: Vec<WaitEpisode> = s
                    .closed
                    .iter()
                    .filter(|c| c.ep.end != u64::MAX)
                    .map(|c| c.ep)
                    .collect();
                critical_path(&eps, id, finished, &s.graph)
            })
            .unwrap_or_else(CriticalPath::empty);

        AttributionReport {
            delivered: packets.len(),
            conserved: violations.is_empty(),
            violations,
            totals,
            packets,
            channel_blame,
            xbar_blame,
            critical,
        }
    }
}

/// Partitions one packet's latency window into disjoint phases by a
/// boundary sweep over its recorded intervals.
fn decompose(
    id: u32,
    injected_at: u64,
    finished_at: u64,
    track: Option<&Track>,
    pauses: &[(u64, u64, bool)],
) -> PacketPhases {
    let w0 = injected_at;
    let w1 = finished_at;
    let mut phases = PacketPhases {
        id,
        latency: w1 - w0,
        inject_wait: 0,
        epoch_pause: 0,
        gather_wait: 0,
        blocked_normal: 0,
        blocked_gather: 0,
        blocked_detour: 0,
        detour_transfer: 0,
        base_transfer: 0,
        hops: track.map_or(0, |t| t.hops),
        fault_free_hops: track.and_then(|t| t.fault_free_hops),
        detoured: track.is_some_and(|t| t.detoured),
    };
    if w1 == w0 {
        return phases;
    }

    // Labeled intervals, clipped to the window.
    let mut ivals: Vec<(u64, u64, Slot)> = Vec::new();
    let mut push = |a: u64, b: u64, slot: Slot| {
        let a = a.max(w0);
        let b = b.min(w1);
        if a < b {
            ivals.push((a, b, slot));
        }
    };
    if let Some(t) = track {
        push(w0, t.injected_now, Slot::InjectWait);
        for &(a, b) in &t.gather_spans {
            push(a, b, Slot::GatherWait);
        }
        for &(_, a, b, class) in &t.episodes {
            let slot = match class {
                BlockClass::Gather => Slot::BlockedGather,
                BlockClass::Detour => Slot::BlockedDetour,
                BlockClass::Normal => Slot::BlockedNormal,
            };
            push(a, b, slot);
        }
        for &(a, b) in &t.detour_spans {
            push(a, b, Slot::DetourTransfer);
        }
        if let Some(a) = t.detour_open {
            push(a, w1, Slot::DetourTransfer);
        }
    }

    // Elementary segments between all boundaries.
    let mut bounds: Vec<u64> = vec![w0, w1];
    for &(a, b, _) in &ivals {
        bounds.push(a);
        bounds.push(b);
    }
    for &(a, b, _) in pauses {
        if a > w0 && a < w1 {
            bounds.push(a);
        }
        if b > w0 && b < w1 {
            bounds.push(b);
        }
    }
    bounds.sort_unstable();
    bounds.dedup();

    for pair in bounds.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        let dur = b - a;
        let slot = ivals
            .iter()
            .filter(|&&(s, e, _)| s <= a && b <= e)
            .map(|&(_, _, slot)| slot)
            .min();
        let in_hard = pauses.iter().any(|&(s, e, hard)| hard && s <= a && b <= e);
        let in_soft = pauses.iter().any(|&(s, e, hard)| !hard && s <= a && b <= e);
        let is_wait = matches!(
            slot,
            Some(Slot::InjectWait)
                | Some(Slot::GatherWait)
                | Some(Slot::BlockedGather)
                | Some(Slot::BlockedDetour)
                | Some(Slot::BlockedNormal)
        );
        if in_hard || (in_soft && is_wait) {
            phases.epoch_pause += dur;
            continue;
        }
        match slot {
            Some(Slot::InjectWait) => phases.inject_wait += dur,
            Some(Slot::GatherWait) => phases.gather_wait += dur,
            Some(Slot::BlockedGather) => phases.blocked_gather += dur,
            Some(Slot::BlockedDetour) => phases.blocked_detour += dur,
            Some(Slot::BlockedNormal) => phases.blocked_normal += dur,
            Some(Slot::DetourTransfer) => phases.detour_transfer += dur,
            None => phases.base_transfer += dur,
        }
    }
    phases
}

impl AttributionReport {
    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("AttributionReport serializes")
    }

    /// Renders the deterministic terminal report: phase totals with
    /// shares, the blame tables, and the critical path.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "latency attribution: {} delivered packet(s), {} total latency cycle(s), \
             conservation {}\n",
            self.delivered,
            self.totals.latency,
            if self.conserved {
                "OK".to_string()
            } else {
                format!("VIOLATED ({} packet(s))", self.violations.len())
            }
        ));
        let denom = self.totals.latency.max(1) as f64;
        out.push_str("\nphase totals (cycles, share of latency):\n");
        for (name, cycles) in self.totals.named() {
            out.push_str(&format!(
                "  {:<16} {:>10}  {:>6.1}%\n",
                name,
                cycles,
                cycles as f64 * 100.0 / denom
            ));
        }
        if self.totals.detour_overhead_hops > 0 {
            out.push_str(&format!(
                "  detour overhead: {} extra channel hop(s) vs fault-free dimension-order paths\n",
                self.totals.detour_overhead_hops
            ));
        }

        if !self.channel_blame.is_empty() {
            out.push_str("\nblame: blocked-cycles-caused per channel (top 10):\n");
            for c in self.channel_blame.iter().take(10) {
                out.push_str(&format!(
                    "  {:<22} {:>8} cyc / {:>4} eps  (gather {}, detour {}, normal {})\n",
                    c.desc,
                    c.blocked_cycles,
                    c.episodes,
                    c.gather_cycles,
                    c.detour_cycles,
                    c.normal_cycles
                ));
            }
        }
        if !self.xbar_blame.is_empty() {
            out.push_str("\nblame: blocked-cycles-caused per crossbar (output ports):\n");
            for x in &self.xbar_blame {
                out.push_str(&format!(
                    "  {:<8} {:>8} cyc / {:>4} eps\n",
                    x.name, x.blocked_cycles, x.episodes
                ));
            }
        }
        out.push('\n');
        out.push_str(&self.critical.render());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdx_core::Header;
    use mdx_sim::{PacketResult, SimOutcome, SimStats};
    use mdx_topology::graph::GraphBuilder;
    use mdx_topology::Coord;

    fn tiny_graph() -> NetworkGraph {
        let mut b = GraphBuilder::new();
        let pe = b.add_node(Node::Pe(0), None);
        let r = b.add_node(Node::Router(0), None);
        let x = b.add_node(Node::Xbar(XbarRef { dim: 0, line: 0 }), None);
        b.add_link(pe, r);
        b.add_link(r, x);
        b.build()
    }

    fn spec(inject_at: u64) -> InjectSpec {
        InjectSpec {
            src_pe: 0,
            header: Header::unicast(Coord::new(&[0, 0]), Coord::new(&[2, 0])),
            flits: 4,
            inject_at,
        }
    }

    fn delivered(id: u32, injected_at: u64, finished_at: u64) -> PacketResult {
        PacketResult {
            id: PacketId(id),
            injected_at,
            finished_at: Some(finished_at),
            deliveries: vec![(1, finished_at)],
            outcome: PacketOutcome::Delivered,
            route: Vec::new(),
        }
    }

    fn result_of(packets: Vec<PacketResult>) -> SimResult {
        let delivered = packets.len();
        SimResult {
            outcome: SimOutcome::Completed,
            stats: SimStats {
                cycles: 100,
                flit_hops: 0,
                delivered,
                dropped: 0,
                unfinished: 0,
                latency_sum: 0,
                latency_max: 0,
            },
            packets,
            route_names: Vec::new(),
            diagnostics: Vec::new(),
            profile: None,
        }
    }

    #[test]
    fn phases_partition_and_conserve() {
        let g = tiny_graph();
        let (mut obs, handle) = AttributionObserver::new(g);
        // Scheduled at 0, actually injected at 4 (inject_wait 4).
        obs.on_inject(PacketId(0), &spec(0), 4);
        // Blocked on channel 1 for [10, 16) behind a free port.
        obs.on_blocked(PacketId(0), ChannelId(1), 0, None, 10);
        obs.on_unblocked(PacketId(0), ChannelId(1), 0, 6, 16);
        // Detour from 20 to 30.
        obs.on_rc_change(
            PacketId(0),
            Node::Router(0),
            RouteChange::Normal,
            RouteChange::Detour,
            20,
        );
        obs.on_rc_change(
            PacketId(0),
            Node::Router(0),
            RouteChange::Detour,
            RouteChange::Normal,
            30,
        );
        obs.on_packet_finished(PacketId(0), 40);

        let rep = handle.report(&result_of(vec![delivered(0, 0, 40)]));
        assert!(rep.conserved);
        let p = &rep.packets[0];
        assert_eq!(p.latency, 40);
        assert_eq!(p.inject_wait, 4);
        assert_eq!(p.blocked_normal, 6);
        assert_eq!(p.detour_transfer, 10);
        assert_eq!(p.base_transfer, 40 - 4 - 6 - 10);
        assert_eq!(p.phase_sum(), p.latency);
        assert!(p.detoured);
        assert_eq!(p.fault_free_hops, Some(4));
        assert!(rep.render().contains("conservation OK"));
    }

    #[test]
    fn overlapping_waits_count_once() {
        let g = tiny_graph();
        let (mut obs, handle) = AttributionObserver::new(g);
        obs.on_inject(PacketId(0), &spec(0), 0);
        // Two overlapping episodes (a broadcast's two branches): [5, 15)
        // behind a gather-class holder and [10, 20) behind normal traffic.
        obs.on_inject(PacketId(1), &spec(0), 0);
        obs.on_rc_change(
            PacketId(1),
            Node::Router(0),
            RouteChange::Normal,
            RouteChange::BroadcastRequest,
            1,
        );
        obs.on_blocked(PacketId(0), ChannelId(0), 0, Some(PacketId(1)), 5);
        obs.on_blocked(PacketId(0), ChannelId(1), 0, None, 10);
        obs.on_unblocked(PacketId(0), ChannelId(0), 0, 10, 15);
        obs.on_unblocked(PacketId(0), ChannelId(1), 0, 10, 20);
        obs.on_packet_finished(PacketId(0), 25);

        let rep = handle.report(&result_of(vec![delivered(0, 0, 25)]));
        assert!(rep.conserved);
        let p = &rep.packets[0];
        // [5, 15) is gather-class (higher priority), [15, 20) normal.
        assert_eq!(p.blocked_gather, 10);
        assert_eq!(p.blocked_normal, 5);
        assert_eq!(p.base_transfer, 25 - 15);
        assert_eq!(p.phase_sum(), 25);
    }

    #[test]
    fn epoch_pause_overlays_waits_and_hard_windows() {
        let g = tiny_graph();
        let (mut obs, handle) = AttributionObserver::new(g);
        obs.on_inject(PacketId(0), &spec(0), 0);
        // Blocked [10, 40); quiesce [20, 50) with a hard reprogram jump
        // [30, 35) inside it.
        obs.on_blocked(PacketId(0), ChannelId(0), 0, None, 10);
        obs.on_epoch_phase(1, EpochPhase::Quiesced, 20);
        obs.on_epoch_phase(1, EpochPhase::Drained, 30);
        obs.on_epoch_phase(1, EpochPhase::Reprogrammed, 35);
        obs.on_unblocked(PacketId(0), ChannelId(0), 0, 30, 40);
        obs.on_epoch_phase(1, EpochPhase::Resumed, 50);
        obs.on_packet_finished(PacketId(0), 60);

        let rep = handle.report(&result_of(vec![delivered(0, 0, 60)]));
        assert!(rep.conserved);
        let p = &rep.packets[0];
        // Blocked [10, 20) is normal; blocked [20, 40) is pause-overlaid;
        // moving [40, 50) inside the soft window stays base transfer.
        assert_eq!(p.blocked_normal, 10);
        assert_eq!(p.epoch_pause, 20);
        // Everything outside the waits and pause overlays is movement:
        // [0,10), [40,50) (moving inside the soft window), [50,60).
        assert_eq!(p.base_transfer, 30);
        assert_eq!(p.phase_sum(), 60);
        // The hard window inside the blocked span was not double-counted.
        let totals = &rep.totals;
        assert_eq!(totals.epoch_pause, 20);
    }

    #[test]
    fn hard_pause_overlays_transfer_too() {
        let g = tiny_graph();
        let (mut obs, handle) = AttributionObserver::new(g);
        obs.on_inject(PacketId(0), &spec(0), 0);
        // No waits at all; a hard jump [10, 18) pauses the whole machine.
        obs.on_epoch_phase(1, EpochPhase::Drained, 10);
        obs.on_epoch_phase(1, EpochPhase::Reprogrammed, 18);
        obs.on_packet_finished(PacketId(0), 30);
        let rep = handle.report(&result_of(vec![delivered(0, 0, 30)]));
        let p = &rep.packets[0];
        assert_eq!(p.epoch_pause, 8);
        assert_eq!(p.base_transfer, 22);
        assert_eq!(p.phase_sum(), 30);
    }

    #[test]
    fn reinjection_resets_the_final_flight() {
        let g = tiny_graph();
        let (mut obs, handle) = AttributionObserver::new(g);
        obs.on_inject(PacketId(0), &spec(0), 0);
        obs.on_blocked(PacketId(0), ChannelId(0), 0, None, 2);
        obs.on_unblocked(PacketId(0), ChannelId(0), 0, 3, 5);
        obs.on_hop(PacketId(0), Node::Router(0), None, 6);
        // Re-scheduled: the second flight starts at 50 (scheduled 48).
        obs.on_inject(PacketId(0), &spec(48), 50);
        obs.on_packet_finished(PacketId(0), 60);

        let rep = handle.report(&result_of(vec![delivered(0, 48, 60)]));
        assert!(rep.conserved);
        let p = &rep.packets[0];
        // First-flight wait and hops do not leak into the final flight.
        assert_eq!(p.blocked_normal, 0);
        assert_eq!(p.inject_wait, 2);
        assert_eq!(p.base_transfer, 10);
        assert_eq!(p.hops, 0);
        // ...but blame keeps the wall-clock view of the closed episode.
        assert_eq!(rep.channel_blame.len(), 1);
        assert_eq!(rep.channel_blame[0].blocked_cycles, 3);
    }

    #[test]
    fn blame_ranks_channels_and_crossbars() {
        let g = tiny_graph();
        let xbar_out = g
            .channel_ids()
            .find(|&c| matches!(g.node(g.channel(c).src), Node::Xbar(_)))
            .unwrap();
        let other = g.channel_ids().find(|&c| c != xbar_out).unwrap();
        let (mut obs, handle) = AttributionObserver::new(g);
        obs.on_inject(PacketId(0), &spec(0), 0);
        obs.on_inject(PacketId(1), &spec(0), 0);
        // pkt1's own wait ends before pkt0's wait began, so the critical
        // path can chain through it.
        obs.on_blocked(PacketId(1), other, 0, None, 1);
        obs.on_unblocked(PacketId(1), other, 0, 2, 3);
        obs.on_blocked(PacketId(0), xbar_out, 0, Some(PacketId(1)), 5);
        obs.on_unblocked(PacketId(0), xbar_out, 0, 20, 25);
        obs.on_packet_finished(PacketId(0), 30);
        obs.on_packet_finished(PacketId(1), 30);

        let rep = handle.report(&result_of(vec![delivered(0, 0, 30), delivered(1, 0, 30)]));
        assert_eq!(rep.channel_blame.len(), 2);
        assert_eq!(rep.channel_blame[0].channel, xbar_out.0);
        assert_eq!(rep.channel_blame[0].blocked_cycles, 20);
        assert_eq!(rep.xbar_blame.len(), 1);
        assert_eq!(rep.xbar_blame[0].name, "X0-XB");
        assert_eq!(rep.xbar_blame[0].blocked_cycles, 20);
        // Critical path ends at the last delivery (tie -> smaller id) and
        // chains through the holder.
        assert_eq!(rep.critical.last_delivery, Some(0));
        assert_eq!(rep.critical.steps.len(), 2);
        assert_eq!(rep.critical.waited_total, 22);
        // JSON round-trips.
        let back: AttributionReport = serde_json::from_str(&rep.to_json()).unwrap();
        assert_eq!(back, rep);
    }

    #[test]
    fn gather_wait_is_the_sxb_serialization_phase() {
        let g = tiny_graph();
        let (mut obs, handle) = AttributionObserver::new(g);
        let mut bspec = spec(0);
        bspec.header = Header::broadcast_request(Coord::ORIGIN);
        obs.on_inject(PacketId(0), &bspec, 0);
        obs.on_gather(PacketId(0), 2, 10);
        obs.on_emission(PacketId(0), 1, 24);
        obs.on_packet_finished(PacketId(0), 30);
        let rep = handle.report(&result_of(vec![delivered(0, 0, 30)]));
        let p = &rep.packets[0];
        assert_eq!(p.gather_wait, 14);
        assert_eq!(p.fault_free_hops, None);
        assert_eq!(p.phase_sum(), 30);
    }
}
