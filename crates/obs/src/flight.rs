//! Always-on flight recorder: a fixed-capacity ring of packet lifecycle
//! events, drained into a forensic post-mortem when a run fails.
//!
//! [`FlightRecorder`] subscribes to the [`SimObserver`] hop-level hooks and
//! keeps the last `capacity` events in a pre-allocated ring — **zero
//! allocation in steady state**, so it can stay attached to every run the
//! way a cockpit flight recorder stays powered. Per-flit channel crossings
//! are deliberately *not* recorded: they dominate event volume a
//! hundredfold and carry no forensic information beyond what the hop,
//! blocked, and gather events already pin down; skipping them keeps the
//! ring's history window long enough to cover the whole failure build-up.
//!
//! Alongside the ring, the recorder maintains tiny per-packet state tables
//! (current RC field, injection cycle — grown only at injection, amortized)
//! plus the S-XB gather-queue depth, and captures the engine's terminal
//! wait snapshot ([`SimObserver::on_final_waits`]) and deadlock witness
//! ([`SimObserver::on_deadlock`]) when the watchdog fires. The paired
//! [`FlightHandle`] turns all of that into a
//! [`crate::PostmortemReport`][crate::postmortem::PostmortemReport] after
//! the run.

use mdx_core::RouteChange;
use mdx_sim::{DeadlockInfo, EpochPhase, InjectSpec, PacketId, SimObserver, WaitSnapshot};
use mdx_topology::{ChannelId, NetworkGraph, Node};
use std::cell::RefCell;
use std::rc::Rc;

/// Default ring capacity: deep enough to hold the full build-up of every
/// deadlock the paper's scenarios produce, small enough to be always-on.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

/// What one ring entry records. All variants are fixed-size (`Copy`) so the
/// ring never allocates after construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlightEventKind {
    /// The packet entered the network from `src_pe`.
    Inject {
        /// Source PE index.
        src_pe: u32,
    },
    /// The packet's header reached switch `at`.
    Hop {
        /// The switch reached.
        at: Node,
    },
    /// The routing decision rewrote the RC field at `at`.
    RcChange {
        /// The rewriting switch.
        at: Node,
        /// RC before.
        from: RouteChange,
        /// RC after.
        to: RouteChange,
    },
    /// A port request lost arbitration and began a blocked episode.
    Blocked {
        /// The contended channel.
        channel: ChannelId,
        /// The contended lane.
        vc: u8,
        /// The owning packet, if any.
        holder: Option<PacketId>,
    },
    /// A blocked port request was granted after `waited` cycles.
    Unblocked {
        /// The granted channel.
        channel: ChannelId,
        /// The granted lane.
        vc: u8,
        /// Blocked episode length in cycles.
        waited: u64,
    },
    /// The packet joined the S-XB serialization queue (depth after).
    Gather {
        /// Queue depth after the enqueue.
        depth: u32,
    },
    /// The S-XB began emitting the packet (depth after the dequeue).
    Emission {
        /// Queue depth after the dequeue.
        depth: u32,
    },
    /// The packet's tail reached destination PE `pe`.
    Delivery {
        /// Destination PE index.
        pe: u32,
    },
    /// The packet reached a terminal state.
    Finished,
    /// A mid-run fault event activated, wounding `victims` in-flight
    /// packets (recorded against the sentinel packet).
    FaultActivated {
        /// Number of packets wounded by the event.
        victims: u32,
    },
    /// The reconfiguration epoch protocol advanced a phase (recorded
    /// against the sentinel packet).
    Epoch {
        /// The epoch number the protocol is transitioning.
        epoch: u32,
        /// The phase reached.
        phase: EpochPhase,
    },
}

/// Sentinel packet id for ring entries that concern the whole network
/// (fault activations, epoch phases) rather than one packet.
pub const FLIGHT_NO_PACKET: PacketId = PacketId(u32::MAX);

/// One entry of the flight-recorder ring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightEvent {
    /// Simulation cycle of the event.
    pub now: u64,
    /// The packet concerned, or [`FLIGHT_NO_PACKET`] for network-wide
    /// entries (fault activations, epoch phases).
    pub packet: PacketId,
    /// What happened.
    pub kind: FlightEventKind,
}

pub(crate) struct FlightState {
    pub(crate) graph: NetworkGraph,
    /// Virtual-channel lanes per physical channel, for channel descriptions
    /// that match the engine's (`... (vcN)` suffix only when lanes > 1).
    pub(crate) vcs: usize,
    ring: Vec<FlightEvent>,
    capacity: usize,
    /// Next overwrite position once the ring is full.
    head: usize,
    /// Total events offered to the ring (recorded + overwritten).
    recorded: u64,
    /// Last-known RC field per packet (paper Fig. 4 encoding), grown at
    /// injection.
    pub(crate) rc: Vec<RouteChange>,
    /// Injection cycle per packet, grown at injection.
    pub(crate) injected_at: Vec<u64>,
    /// Current S-XB gather-queue depth.
    pub(crate) gather_depth: u32,
    /// Peak S-XB gather-queue depth.
    pub(crate) gather_peak: u32,
    /// The engine's terminal wait snapshot, captured at abnormal run end.
    pub(crate) final_waits: Vec<WaitSnapshot>,
    /// Cycle at which the terminal snapshot was taken.
    pub(crate) final_at: Option<u64>,
    /// The watchdog's deadlock witness, when the run deadlocked.
    pub(crate) deadlock: Option<DeadlockInfo>,
}

impl FlightState {
    #[inline]
    fn push(&mut self, now: u64, packet: PacketId, kind: FlightEventKind) {
        let ev = FlightEvent { now, packet, kind };
        if self.ring.len() < self.capacity {
            // Capacity was reserved up front: this push never reallocates.
            self.ring.push(ev);
        } else {
            self.ring[self.head] = ev;
        }
        self.head = (self.head + 1) % self.capacity;
        self.recorded += 1;
    }

    /// Grows the per-packet tables to cover `id` (amortized; only at
    /// injection).
    fn ensure_packet(&mut self, id: PacketId) {
        if id.idx() >= self.rc.len() {
            self.rc.resize(id.idx() + 1, RouteChange::Normal);
            self.injected_at.resize(id.idx() + 1, 0);
        }
    }

    /// Ring contents in chronological order (oldest first).
    pub(crate) fn events_in_order(&self) -> Vec<FlightEvent> {
        if self.ring.len() < self.capacity {
            self.ring.clone()
        } else {
            let mut out = Vec::with_capacity(self.ring.len());
            out.extend_from_slice(&self.ring[self.head..]);
            out.extend_from_slice(&self.ring[..self.head]);
            out
        }
    }

    pub(crate) fn recorded(&self) -> u64 {
        self.recorded
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.recorded - self.ring.len() as u64
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Channel description matching the engine's port naming.
    pub(crate) fn describe(&self, channel: ChannelId, vc: u8) -> String {
        if self.vcs > 1 {
            format!("{} (vc{vc})", self.graph.describe_channel(channel))
        } else {
            self.graph.describe_channel(channel)
        }
    }
}

/// The attachable half of the flight recorder; pair with the
/// [`FlightHandle`] returned by [`FlightRecorder::new`].
pub struct FlightRecorder {
    state: Rc<RefCell<FlightState>>,
}

/// The caller-retained half of the flight recorder: inspect the ring after
/// the run, or build a
/// [`PostmortemReport`](crate::postmortem::PostmortemReport) when it
/// failed.
#[derive(Clone)]
pub struct FlightHandle {
    pub(crate) state: Rc<RefCell<FlightState>>,
}

impl FlightRecorder {
    /// Creates the recorder/handle pair for a run on `graph`.
    ///
    /// `vcs` is the scheme's virtual-channel lane count
    /// ([`mdx_core::Scheme::max_vcs`], clamped to at least 1) so channel
    /// names in the post-mortem match the engine's deadlock witness;
    /// `capacity` is the ring depth ([`DEFAULT_FLIGHT_CAPACITY`] is the
    /// always-on default). The ring is allocated once, here.
    pub fn new(graph: NetworkGraph, vcs: usize, capacity: usize) -> (FlightRecorder, FlightHandle) {
        let capacity = capacity.max(1);
        let state = Rc::new(RefCell::new(FlightState {
            graph,
            vcs: vcs.max(1),
            ring: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            recorded: 0,
            rc: Vec::new(),
            injected_at: Vec::new(),
            gather_depth: 0,
            gather_peak: 0,
            final_waits: Vec::new(),
            final_at: None,
            deadlock: None,
        }));
        (
            FlightRecorder {
                state: Rc::clone(&state),
            },
            FlightHandle { state },
        )
    }
}

impl SimObserver for FlightRecorder {
    fn on_inject(&mut self, id: PacketId, spec: &InjectSpec, now: u64) {
        let mut s = self.state.borrow_mut();
        s.ensure_packet(id);
        s.rc[id.idx()] = spec.header.rc;
        s.injected_at[id.idx()] = now;
        s.push(
            now,
            id,
            FlightEventKind::Inject {
                src_pe: spec.src_pe as u32,
            },
        );
    }

    fn on_hop(&mut self, id: PacketId, at: Node, _in_channel: Option<ChannelId>, now: u64) {
        self.state
            .borrow_mut()
            .push(now, id, FlightEventKind::Hop { at });
    }

    fn on_rc_change(
        &mut self,
        id: PacketId,
        at: Node,
        from: RouteChange,
        to: RouteChange,
        now: u64,
    ) {
        let mut s = self.state.borrow_mut();
        s.ensure_packet(id);
        s.rc[id.idx()] = to;
        s.push(now, id, FlightEventKind::RcChange { at, from, to });
    }

    fn on_blocked(
        &mut self,
        id: PacketId,
        channel: ChannelId,
        vc: u8,
        holder: Option<PacketId>,
        now: u64,
    ) {
        self.state.borrow_mut().push(
            now,
            id,
            FlightEventKind::Blocked {
                channel,
                vc,
                holder,
            },
        );
    }

    fn on_unblocked(&mut self, id: PacketId, channel: ChannelId, vc: u8, waited: u64, now: u64) {
        self.state.borrow_mut().push(
            now,
            id,
            FlightEventKind::Unblocked {
                channel,
                vc,
                waited,
            },
        );
    }

    fn on_gather(&mut self, id: PacketId, depth: usize, now: u64) {
        let mut s = self.state.borrow_mut();
        s.gather_depth = depth as u32;
        s.gather_peak = s.gather_peak.max(depth as u32);
        s.push(
            now,
            id,
            FlightEventKind::Gather {
                depth: depth as u32,
            },
        );
    }

    fn on_emission(&mut self, id: PacketId, depth: usize, now: u64) {
        let mut s = self.state.borrow_mut();
        s.gather_depth = depth as u32;
        s.push(
            now,
            id,
            FlightEventKind::Emission {
                depth: depth as u32,
            },
        );
    }

    fn on_delivery(&mut self, id: PacketId, pe: usize, now: u64) {
        self.state
            .borrow_mut()
            .push(now, id, FlightEventKind::Delivery { pe: pe as u32 });
    }

    fn on_packet_finished(&mut self, id: PacketId, now: u64) {
        self.state
            .borrow_mut()
            .push(now, id, FlightEventKind::Finished);
    }

    fn on_final_waits(&mut self, now: u64, waits: &[WaitSnapshot]) {
        let mut s = self.state.borrow_mut();
        s.final_at = Some(now);
        s.final_waits = waits.to_vec();
    }

    fn on_deadlock(&mut self, info: &DeadlockInfo) {
        self.state.borrow_mut().deadlock = Some(info.clone());
    }

    fn on_fault_activated(&mut self, now: u64, victims: &[PacketId]) {
        self.state.borrow_mut().push(
            now,
            FLIGHT_NO_PACKET,
            FlightEventKind::FaultActivated {
                victims: victims.len() as u32,
            },
        );
    }

    fn on_epoch_phase(&mut self, epoch: u32, phase: EpochPhase, now: u64) {
        self.state.borrow_mut().push(
            now,
            FLIGHT_NO_PACKET,
            FlightEventKind::Epoch { epoch, phase },
        );
    }
}

impl FlightHandle {
    /// Total events offered to the ring (including overwritten ones).
    pub fn events_recorded(&self) -> u64 {
        self.state.borrow().recorded()
    }

    /// Events overwritten because the ring wrapped.
    pub fn events_dropped(&self) -> u64 {
        self.state.borrow().dropped()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.state.borrow().capacity()
    }

    /// Snapshot of the ring, oldest event first.
    pub fn events(&self) -> Vec<FlightEvent> {
        self.state.borrow().events_in_order()
    }

    /// The engine's deadlock witness, when one was reported.
    pub fn deadlock(&self) -> Option<DeadlockInfo> {
        self.state.borrow().deadlock.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdx_core::Header;
    use mdx_topology::{Coord, MdCrossbar, Shape};

    fn graph() -> NetworkGraph {
        MdCrossbar::build(Shape::fig2()).graph().clone()
    }

    #[test]
    fn ring_wraps_and_keeps_newest() {
        let (mut rec, handle) = FlightRecorder::new(graph(), 1, 4);
        for i in 0..10u64 {
            rec.on_hop(PacketId(0), Node::Router(i as usize % 3), None, i);
        }
        assert_eq!(handle.events_recorded(), 10);
        assert_eq!(handle.events_dropped(), 6);
        assert_eq!(handle.capacity(), 4);
        let evs = handle.events();
        assert_eq!(evs.len(), 4);
        // Oldest-first: cycles 6, 7, 8, 9 survive.
        let cycles: Vec<u64> = evs.iter().map(|e| e.now).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9]);
    }

    #[test]
    fn tracks_rc_state_and_gather_depth() {
        let (mut rec, handle) = FlightRecorder::new(graph(), 1, 16);
        let spec = InjectSpec {
            src_pe: 0,
            header: Header::broadcast_request(Coord::ORIGIN),
            flits: 4,
            inject_at: 0,
        };
        rec.on_inject(PacketId(0), &spec, 0);
        rec.on_gather(PacketId(0), 2, 3);
        rec.on_rc_change(
            PacketId(0),
            Node::Pe(0),
            RouteChange::BroadcastRequest,
            RouteChange::Broadcast,
            5,
        );
        let s = handle.state.borrow();
        assert_eq!(s.rc[0], RouteChange::Broadcast);
        assert_eq!(s.injected_at[0], 0);
        assert_eq!(s.gather_peak, 2);
    }
}
