//! Near-deadlock early warning via periodic wait-graph probes.
//!
//! [`StallProbe`] asks the engine for a [`mdx_sim::WaitSnapshot`] every
//! `interval` cycles (see [`mdx_sim::SimObserver::probe_interval`]) and
//! reduces each snapshot with [`mdx_deadlock::analyze_waits`]: the longest
//! wait-*chain* length and the maximum blocked duration. Both grow
//! monotonically in the cycles leading up to a deadlock — a wait chain that
//! lengthens probe after probe (and eventually closes into a cycle) is the
//! observable prelude to the watchdog firing, which is exactly what the
//! paper's Fig. 5 broadcast deadlock looks like from inside the network.

use mdx_deadlock::{analyze_waits, WaitFor};
use mdx_sim::{DeadlockInfo, SimObserver, WaitSnapshot};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::rc::Rc;

/// One reduced probe snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallSample {
    /// Probe cycle.
    pub now: u64,
    /// Ungranted port wants at that cycle.
    pub waiting: usize,
    /// Longest wait-for chain (packets), counting the holder at the end;
    /// `0` when nothing waits.
    pub longest_chain: usize,
    /// Whether the wait-for graph contained a cycle (a deadlock the
    /// watchdog has not yet confirmed).
    pub has_cycle: bool,
    /// Longest time any current want has been blocked, in cycles.
    pub max_wait: u64,
}

struct State {
    interval: u64,
    samples: Vec<StallSample>,
    deadlock_at: Option<u64>,
}

/// The attachable half of the stall instrument; build with
/// [`StallProbe::new`] and read back through the paired [`StallHandle`].
pub struct StallProbe {
    state: Rc<RefCell<State>>,
}

/// The caller-retained half of the stall instrument.
#[derive(Clone)]
pub struct StallHandle {
    state: Rc<RefCell<State>>,
}

impl StallProbe {
    /// Creates the probe/handle pair sampling every `interval` cycles
    /// (clamped to at least 1).
    pub fn new(interval: u64) -> (StallProbe, StallHandle) {
        let state = Rc::new(RefCell::new(State {
            interval: interval.max(1),
            samples: Vec::new(),
            deadlock_at: None,
        }));
        (
            StallProbe {
                state: Rc::clone(&state),
            },
            StallHandle { state },
        )
    }
}

impl SimObserver for StallProbe {
    fn probe_interval(&self) -> Option<u64> {
        Some(self.state.borrow().interval)
    }

    fn on_probe(&mut self, now: u64, waits: &[WaitSnapshot]) {
        let edges: Vec<WaitFor> = waits
            .iter()
            .map(|w| WaitFor {
                waiter: w.waiter.0,
                holder: w.holder.map(|h| h.0),
            })
            .collect();
        let chain = analyze_waits(&edges);
        let max_wait = waits.iter().map(|w| now.saturating_sub(w.since)).max();
        self.state.borrow_mut().samples.push(StallSample {
            now,
            waiting: waits.len(),
            longest_chain: chain.longest_chain,
            has_cycle: chain.has_cycle,
            max_wait: max_wait.unwrap_or(0),
        });
    }

    fn on_deadlock(&mut self, info: &DeadlockInfo) {
        self.state.borrow_mut().deadlock_at = Some(info.detected_at);
    }
}

/// The reduced, serializable stall history of one run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallReport {
    /// Probe period in cycles.
    pub interval: u64,
    /// One sample per probe, in time order.
    pub samples: Vec<StallSample>,
    /// Cycle the watchdog confirmed a deadlock, if it did.
    pub deadlock_at: Option<u64>,
}

impl StallHandle {
    /// Snapshots the collected samples into a [`StallReport`].
    pub fn report(&self) -> StallReport {
        let s = self.state.borrow();
        StallReport {
            interval: s.interval,
            samples: s.samples.clone(),
            deadlock_at: s.deadlock_at,
        }
    }
}

impl StallReport {
    /// Longest wait chain seen across all probes.
    pub fn peak_chain(&self) -> usize {
        self.samples
            .iter()
            .map(|s| s.longest_chain)
            .max()
            .unwrap_or(0)
    }

    /// Longest blocked duration seen across all probes, in cycles.
    pub fn peak_wait(&self) -> u64 {
        self.samples.iter().map(|s| s.max_wait).max().unwrap_or(0)
    }

    /// Whether any probe saw a cyclic wait.
    pub fn saw_cycle(&self) -> bool {
        self.samples.iter().any(|s| s.has_cycle)
    }

    /// The per-probe chain lengths, in time order — the "is it growing?"
    /// series.
    pub fn chain_series(&self) -> Vec<usize> {
        self.samples.iter().map(|s| s.longest_chain).collect()
    }

    /// A near-deadlock warning when the evidence supports one: a cyclic
    /// wait observed, or the wait chain still growing at the last probe.
    pub fn warning(&self) -> Option<String> {
        if let Some(s) = self.samples.iter().find(|s| s.has_cycle) {
            return Some(format!(
                "cyclic wait observed at cycle {} (chain length {})",
                s.now, s.longest_chain
            ));
        }
        let n = self.samples.len();
        if n >= 2 {
            let last = &self.samples[n - 1];
            let prev = &self.samples[n - 2];
            if last.longest_chain > prev.longest_chain && last.longest_chain >= 3 {
                return Some(format!(
                    "wait chain growing: {} -> {} packets by cycle {}",
                    prev.longest_chain, last.longest_chain, last.now
                ));
            }
        }
        None
    }

    /// Renders the stall timeline for terminals: one line per probe with a
    /// chain-length bar, plus the deadlock marker when the watchdog fired.
    pub fn timeline(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "stall probe (every {} cycles, {} samples):\n",
            self.interval,
            self.samples.len()
        ));
        let peak = self.peak_chain().max(1);
        for s in &self.samples {
            let width = (s.longest_chain * 32) / peak;
            let mut bar = String::new();
            for _ in 0..width {
                bar.push('#');
            }
            out.push_str(&format!(
                "  cycle {:>7}  waiting {:>3}  chain {:>3} {}{}{}\n",
                s.now,
                s.waiting,
                s.longest_chain,
                bar,
                if s.has_cycle { "  << CYCLE" } else { "" },
                if s.max_wait > 0 {
                    format!("  (max wait {} cyc)", s.max_wait)
                } else {
                    String::new()
                },
            ));
        }
        match self.deadlock_at {
            Some(at) => out.push_str(&format!("  watchdog: DEADLOCK confirmed at cycle {at}\n")),
            None => {
                if let Some(w) = self.warning() {
                    out.push_str(&format!("  warning: {w}\n"));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdx_sim::{PacketId, WaitEdge};
    use mdx_topology::ChannelId;

    fn want(waiter: u32, holder: Option<u32>, since: u64) -> WaitSnapshot {
        WaitSnapshot {
            waiter: PacketId(waiter),
            holder: holder.map(PacketId),
            channel: ChannelId(0),
            vc: 0,
            since,
            epoch: 0,
            holder_epoch: holder.map(|_| 0),
        }
    }

    #[test]
    fn samples_reduce_chain_and_wait() {
        let (mut probe, handle) = StallProbe::new(8);
        assert_eq!(probe.probe_interval(), Some(8));
        probe.on_probe(8, &[want(0, Some(1), 2)]);
        probe.on_probe(16, &[want(0, Some(1), 2), want(1, Some(2), 10)]);
        let rep = handle.report();
        assert_eq!(rep.samples.len(), 2);
        assert_eq!(rep.samples[0].longest_chain, 2);
        assert_eq!(rep.samples[1].longest_chain, 3);
        assert_eq!(rep.samples[1].max_wait, 14);
        assert_eq!(rep.peak_chain(), 3);
        assert_eq!(rep.peak_wait(), 14);
        assert!(!rep.saw_cycle());
        assert_eq!(rep.chain_series(), vec![2, 3]);
        assert!(rep.warning().unwrap().contains("growing"));
    }

    #[test]
    fn cycle_and_deadlock_show_in_timeline() {
        let (mut probe, handle) = StallProbe::new(4);
        probe.on_probe(4, &[want(0, Some(1), 0), want(1, Some(0), 0)]);
        probe.on_deadlock(&DeadlockInfo {
            detected_at: 40,
            cycle: vec![WaitEdge {
                waiter: PacketId(0),
                holder: PacketId(1),
                channel: "R0 -> X0-XB".into(),
            }],
        });
        let rep = handle.report();
        assert!(rep.saw_cycle());
        assert_eq!(rep.deadlock_at, Some(40));
        assert!(rep.warning().unwrap().contains("cyclic wait"));
        let tl = rep.timeline();
        assert!(tl.contains("<< CYCLE"));
        assert!(tl.contains("DEADLOCK confirmed at cycle 40"));
    }

    #[test]
    fn quiet_run_has_no_warning() {
        let (mut probe, handle) = StallProbe::new(4);
        probe.on_probe(4, &[]);
        probe.on_probe(8, &[]);
        let rep = handle.report();
        assert_eq!(rep.peak_chain(), 0);
        assert!(rep.warning().is_none());
    }
}
