//! # mdx-obs — telemetry observers for the SR2201 simulator
//!
//! Composable instrumentation built on [`mdx_sim`]'s observer seam
//! ([`mdx_sim::SimObserver`]). Three observers cover the three questions an
//! interconnect experiment keeps asking:
//!
//! - [`MetricsObserver`] — *where does the traffic go?* Per-channel flit
//!   counts and peak occupancy, per-crossbar output utilization and port
//!   contention, S-XB gather-queue depth over time, detour rate, and a
//!   blocked-episode duration histogram. Renders a text heatmap and
//!   serializes to JSON.
//! - [`TraceRecorder`] — *what did each packet do, cycle by cycle?* Records
//!   hop and stall slices in the Chrome `trace_event` JSON format, openable
//!   in [Perfetto](https://ui.perfetto.dev) (or `chrome://tracing`): one
//!   track per packet, counter tracks for the S-XB queue and the hottest
//!   crossbars.
//! - [`StallProbe`] — *is the run heading for deadlock?* Periodically
//!   snapshots the engine's wait-for graph and reduces it with
//!   [`mdx_deadlock::analyze_waits`]: longest wait-chain length and maximum
//!   blocked duration are near-deadlock early warnings long before the
//!   watchdog fires.
//! - [`FlightRecorder`] — *what happened right before it died?* An
//!   always-on, fixed-capacity ring of hop-level events (zero allocation
//!   in steady state). When a run ends abnormally, the paired
//!   [`FlightHandle`] joins the ring with the engine's terminal wait
//!   snapshot and deadlock witness into a [`PostmortemReport`]: the cyclic
//!   wait with each packet's RC state, recent hops, S-XB gather depth, and
//!   a classification against the paper's Fig. 5 / Fig. 9 signatures.
//! - [`WindowObserver`] — *is the network keeping up?* Fixed-width
//!   telemetry intervals in a capped ring (bounded memory for unbounded
//!   streaming runs): per-window injected/finished counts, mean latency,
//!   in-flight backlog, and open-loop saturation detection
//!   (delivered-rate lagging offered-rate with a rising backlog).
//! - [`AttributionObserver`] — *why was each packet slow?* Decomposes every
//!   delivered packet's end-to-end latency into disjoint, conserving phases
//!   (injection queueing, S-XB serialization, blocked time split by holder
//!   class, epoch pauses, detour vs. base transfer) with the hard invariant
//!   `sum(phases) == latency`, plus per-channel/per-crossbar *blame
//!   profiles* and the run's *critical path* of wait-for edges
//!   ([`crate::critical`]).
//!
//! [`TraceDoc`] is the strict schema for the trace recorder's Chrome-trace
//! JSON (deny-unknown-fields, per-phase shape checks).
//!
//! The [`span`] module is a different kind of instrument: request-scoped
//! tracing for the serving stack — a dependency-light [`Span`] model with
//! a head-sampling [`SpanCollector`], a JSONL span log, and a Perfetto
//! exporter validated by the same [`TraceDoc`] schema. It watches the
//! *service around* the engine (queue wait, cache tier, serialize) as
//! well as the engine itself (profile phases, reconfig epochs).
//!
//! Each observer follows the same *handle* pattern: the observer itself is
//! attached to the simulator (which takes ownership of the `Box<dyn
//! SimObserver>`), while a cheap [`std::rc::Rc`]-backed handle stays with
//! the caller and can read the accumulated state afterwards — no
//! downcasting required:
//!
//! ```
//! use std::sync::Arc;
//! use mdx_core::{Header, NaiveBroadcast};
//! use mdx_obs::MetricsObserver;
//! use mdx_sim::{InjectSpec, SimConfig, Simulator};
//! use mdx_topology::{MdCrossbar, Shape};
//!
//! let net = Arc::new(MdCrossbar::build(Shape::fig2()));
//! let shape = net.shape().clone();
//! let scheme = Arc::new(NaiveBroadcast::new(net.clone()));
//! let mut sim = Simulator::new(net.graph().clone(), scheme, SimConfig::default());
//! let (obs, metrics) = MetricsObserver::new(net.graph().clone());
//! sim.set_observer(Box::new(obs));
//! sim.schedule(InjectSpec {
//!     src_pe: 0,
//!     header: Header::unicast(shape.coord_of(0), shape.coord_of(11)),
//!     flits: 4,
//!     inject_at: 0,
//! });
//! let result = sim.run();
//! let report = metrics.report(result.stats.cycles);
//! assert!(report.total_flits > 0);
//! ```
//!
//! To run several observers at once, wrap them in a [`FanoutObserver`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attribution;
pub mod critical;
mod flight;
mod metrics;
mod postmortem;
mod schema;
pub mod span;
mod stall;
mod trace;
mod windows;

pub use attribution::{
    AttributionHandle, AttributionObserver, AttributionReport, ChannelBlame, PacketPhases,
    PhaseTotals, XbarBlame,
};
pub use critical::{critical_path, CriticalPath, CriticalStep, WaitEpisode, MAX_CRITICAL_STEPS};
pub use flight::{
    FlightEvent, FlightEventKind, FlightHandle, FlightRecorder, DEFAULT_FLIGHT_CAPACITY,
    FLIGHT_NO_PACKET,
};
pub use metrics::{
    ChannelMetrics, GatherSample, MetricsHandle, MetricsObserver, MetricsReport, XbarMetrics,
};
pub use postmortem::{CycleEdge, HopTrace, PacketForensics, PostmortemReport, LAST_HOPS};
pub use schema::{TraceArgs, TraceDoc, TraceEvent};
pub use span::{
    group_traces, parse_span_log, spans_to_perfetto, summarize_spans, Span, SpanCollector,
    SpanStats, SpanSummary, SpanUnit, TraceBuilder, DEFAULT_TRACE_CAPACITY,
};
pub use stall::{StallHandle, StallProbe, StallReport, StallSample};
pub use trace::{TraceHandle, TraceRecorder};
pub use windows::{
    WindowHandle, WindowObserver, WindowReport, WindowRow, WindowTotals, DEFAULT_MAX_WINDOWS,
    SATURATION_DELIVERY_FRACTION, SATURATION_WINDOWS,
};

use mdx_sim::{DeadlockInfo, InjectSpec, PacketId, SimObserver, WaitSnapshot};
use mdx_topology::{ChannelId, Node};

/// Broadcasts every hook to a list of child observers, letting several
/// independent instruments watch one run.
///
/// [`SimObserver::probe_interval`] resolves to the *minimum* interval any
/// child requests; every child receives every probe (a child that wanted a
/// coarser period simply sees extra snapshots, which the bundled observers
/// tolerate).
#[derive(Default)]
pub struct FanoutObserver {
    parts: Vec<Box<dyn SimObserver>>,
}

impl FanoutObserver {
    /// An empty fanout (a no-op observer until children are added).
    pub fn new() -> FanoutObserver {
        FanoutObserver { parts: Vec::new() }
    }

    /// Adds a child observer (builder style).
    pub fn with(mut self, part: Box<dyn SimObserver>) -> FanoutObserver {
        self.parts.push(part);
        self
    }

    /// Adds a child observer.
    pub fn push(&mut self, part: Box<dyn SimObserver>) {
        self.parts.push(part);
    }

    /// Number of child observers.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// True when no children are attached.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }
}

impl SimObserver for FanoutObserver {
    fn on_inject(&mut self, id: PacketId, spec: &InjectSpec, now: u64) {
        for p in &mut self.parts {
            p.on_inject(id, spec, now);
        }
    }

    fn on_hop(&mut self, id: PacketId, at: Node, in_channel: Option<ChannelId>, now: u64) {
        for p in &mut self.parts {
            p.on_hop(id, at, in_channel, now);
        }
    }

    fn on_rc_change(
        &mut self,
        id: PacketId,
        at: Node,
        from: mdx_core::RouteChange,
        to: mdx_core::RouteChange,
        now: u64,
    ) {
        for p in &mut self.parts {
            p.on_rc_change(id, at, from, to, now);
        }
    }

    fn on_blocked(
        &mut self,
        id: PacketId,
        channel: ChannelId,
        vc: u8,
        holder: Option<PacketId>,
        now: u64,
    ) {
        for p in &mut self.parts {
            p.on_blocked(id, channel, vc, holder, now);
        }
    }

    fn on_unblocked(&mut self, id: PacketId, channel: ChannelId, vc: u8, waited: u64, now: u64) {
        for p in &mut self.parts {
            p.on_unblocked(id, channel, vc, waited, now);
        }
    }

    fn on_flit(&mut self, channel: ChannelId, vc: u8, occupancy: usize, now: u64) {
        for p in &mut self.parts {
            p.on_flit(channel, vc, occupancy, now);
        }
    }

    fn on_gather(&mut self, id: PacketId, depth: usize, now: u64) {
        for p in &mut self.parts {
            p.on_gather(id, depth, now);
        }
    }

    fn on_emission(&mut self, id: PacketId, depth: usize, now: u64) {
        for p in &mut self.parts {
            p.on_emission(id, depth, now);
        }
    }

    fn on_delivery(&mut self, id: PacketId, pe: usize, now: u64) {
        for p in &mut self.parts {
            p.on_delivery(id, pe, now);
        }
    }

    fn on_packet_finished(&mut self, id: PacketId, now: u64) {
        for p in &mut self.parts {
            p.on_packet_finished(id, now);
        }
    }

    fn probe_interval(&self) -> Option<u64> {
        self.parts.iter().filter_map(|p| p.probe_interval()).min()
    }

    fn on_probe(&mut self, now: u64, waits: &[WaitSnapshot]) {
        for p in &mut self.parts {
            p.on_probe(now, waits);
        }
    }

    fn on_final_waits(&mut self, now: u64, waits: &[WaitSnapshot]) {
        for p in &mut self.parts {
            p.on_final_waits(now, waits);
        }
    }

    fn on_deadlock(&mut self, info: &DeadlockInfo) {
        for p in &mut self.parts {
            p.on_deadlock(info);
        }
    }

    fn on_fault_activated(&mut self, now: u64, victims: &[PacketId]) {
        for p in &mut self.parts {
            p.on_fault_activated(now, victims);
        }
    }

    fn on_epoch_phase(&mut self, epoch: u32, phase: mdx_sim::EpochPhase, now: u64) {
        for p in &mut self.parts {
            p.on_epoch_phase(epoch, phase, now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdx_sim::EventCounts;

    #[test]
    fn fanout_forwards_to_all_children() {
        // EventCounts children can't be read back through the box, so use the
        // fanout with metrics handles instead; here we only check interval
        // resolution and that pushing works.
        let f = FanoutObserver::new().with(Box::new(EventCounts::default()));
        assert_eq!(f.len(), 1);
        assert!(!f.is_empty());
        assert_eq!(f.probe_interval(), None);
    }

    struct FixedInterval(u64);
    impl SimObserver for FixedInterval {
        fn probe_interval(&self) -> Option<u64> {
            Some(self.0)
        }
    }

    #[test]
    fn fanout_probe_interval_is_min_of_children() {
        let f = FanoutObserver::new()
            .with(Box::new(FixedInterval(64)))
            .with(Box::new(EventCounts::default()))
            .with(Box::new(FixedInterval(16)));
        assert_eq!(f.probe_interval(), Some(16));
    }
}
