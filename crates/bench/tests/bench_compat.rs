//! Schema/compat contract for the committed `BENCH_*.json` trajectory
//! files: every committed file (including rows written by older releases
//! that lack newer columns) must keep parsing leniently, timestamps must
//! stay monotonic under append, and the regression sentinel must come up
//! clean on the history as committed — so a PR that breaks the format, or
//! one that lands a real perf/correctness regression, fails here rather
//! than in a figure run weeks later.

use mdx_bench::{
    append_snapshot, scan_file, scan_path, SentinelConfig, TrajectoryEntry, TrajectoryFile,
};
use std::path::{Path, PathBuf};

const BENCH_FILES: &[&str] = &[
    "BENCH_fig9.json",
    "BENCH_fig10.json",
    "BENCH_serve.json",
    "BENCH_tournament.json",
];

/// The repo root, two levels above this crate's manifest.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves")
}

fn committed_files() -> Vec<(String, TrajectoryFile)> {
    BENCH_FILES
        .iter()
        .filter_map(|name| {
            let path = repo_root().join(name);
            let body = std::fs::read_to_string(&path).ok()?;
            let file: TrajectoryFile = serde_json::from_str(&body)
                .unwrap_or_else(|e| panic!("{name} no longer parses: {e}"));
            Some((name.to_string(), file))
        })
        .collect()
}

#[test]
fn committed_bench_files_parse_and_are_internally_consistent() {
    let files = committed_files();
    assert!(
        !files.is_empty(),
        "no committed BENCH_*.json found at the repo root"
    );
    for (name, file) in &files {
        assert!(!file.entries.is_empty(), "{name} has no entries");
        for e in &file.entries {
            assert_eq!(&e.figure, &file.figure, "{name}: entry/figure mismatch");
            assert!(e.scenarios > 0, "{name}: entry with zero scenarios");
            assert!(
                (0.0..=1.0).contains(&e.deadlock_rate),
                "{name}: deadlock_rate out of range"
            );
            assert!(
                (0.0..=1.0).contains(&e.completed_rate),
                "{name}: completed_rate out of range"
            );
            assert!(e.throughput.is_finite() && e.throughput >= 0.0, "{name}");
        }
    }
}

#[test]
fn committed_timestamps_are_monotonic_and_appends_keep_them_so() {
    for (name, file) in committed_files() {
        for w in file.entries.windows(2) {
            assert!(
                w[0].recorded_at_epoch_s <= w[1].recorded_at_epoch_s,
                "{name}: recorded_at_epoch_s went backwards"
            );
        }
        // Appending a genuinely new measurement through the real append
        // path keeps the invariant: the fresh entry's clock stamp is never
        // earlier than the committed history.
        let tmp = std::env::temp_dir().join(format!(
            "mdx-bench-compat-{}-{}-{:?}",
            name,
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::write(&tmp, serde_json::to_string_pretty(&file).unwrap()).unwrap();
        let last = file.entries.last().unwrap();
        let mut next = last.clone();
        next.recorded_at_epoch_s = last.recorded_at_epoch_s + 60;
        next.throughput *= 1.01; // a new measurement, not a duplicate
        let diff = append_snapshot(&tmp, next, 0.10).unwrap();
        assert!(!diff.first && !diff.duplicate, "{name}");
        let back: TrajectoryFile =
            serde_json::from_str(&std::fs::read_to_string(&tmp).unwrap()).unwrap();
        assert_eq!(back.entries.len(), file.entries.len() + 1, "{name}");
        for w in back.entries.windows(2) {
            assert!(w[0].recorded_at_epoch_s <= w[1].recorded_at_epoch_s);
        }
        let _ = std::fs::remove_file(&tmp);
    }
}

#[test]
fn legacy_rows_without_newer_columns_still_parse() {
    // A file exactly as the first trajectory release wrote it: no
    // wall_clock_s, no engine-profile columns, no span tails. The lenient
    // parser zero-fills them instead of bricking the committed history.
    let legacy = r#"{
        "figure": "fig9",
        "entries": [{
            "figure": "fig9",
            "recorded_at_epoch_s": 1700000000,
            "scenarios": 224,
            "deadlock_rate": 0.1,
            "completed_rate": 0.9,
            "throughput": 9.7,
            "mean_latency": 41.8,
            "p95_latency": 41.8,
            "sxb_util": 0.31
        }]
    }"#;
    let file: TrajectoryFile = serde_json::from_str(legacy).expect("legacy file parses");
    let e = &file.entries[0];
    assert_eq!(e.wall_clock_s, 0.0);
    assert_eq!(e.idle_tick_fraction, 0.0);
    assert_eq!(e.cycles_per_sec, 0.0);
    assert_eq!(e.p99_queue_wait_s, 0.0);
    assert_eq!(e.p99_engine_run_s, 0.0);
    // And a modern entry round-trips every column.
    let modern: TrajectoryEntry = serde_json::from_str(&serde_json::to_string(e).unwrap()).unwrap();
    assert_eq!(&modern, e);
}

#[test]
fn sentinel_is_clean_on_the_committed_history() {
    let cfg = SentinelConfig::default();
    for (name, file) in committed_files() {
        let report =
            scan_path(&repo_root().join(&name), &cfg).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            report.regressions,
            0,
            "{name}: committed history flags a regression: {}",
            report.render()
        );
        // The path and in-memory scans agree.
        assert_eq!(report, scan_file(&file, &cfg), "{name}");
    }
}
