//! Bench-trajectory regression sentinel: median/MAD changepoint detection
//! over committed `BENCH_*.json` files.
//!
//! The per-append diff in [`crate::trajectory`] only compares the last
//! two snapshots — a slow drift, or a regression that lands together with
//! a noisy baseline entry, slips through. The sentinel looks at the whole
//! series instead: for each diffed metric it takes the **median** and
//! **MAD** (median absolute deviation) of every entry but the last, then
//! asks whether the latest entry deviates from that robust baseline by
//! more than `mad_k` floored MADs *in the metric's bad direction*
//! (throughput falling, deadlocks rising — the same direction table the
//! trajectory diff uses).
//!
//! Median/MAD (rather than mean/stddev) keeps one historical outlier from
//! inflating the tolerance band; the floors keep a perfectly flat history
//! (MAD = 0, common for deterministic sweeps) from flagging floating-point
//! dust:
//!
//! - the MAD is floored at `rel_floor * |median|` — a deviation also has
//!   to be *relatively* large to count;
//! - and at a tiny absolute epsilon, so an all-zero series (deadlock rate
//!   in a healthy file) only flags when deadlocks genuinely appear.
//!
//! Files shorter than `min_points` entries are skipped, not failed — a
//! fresh trajectory has no baseline to regress against.

use crate::trajectory::{metric_value, TrajectoryFile, METRICS};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// Default minimum series length before the sentinel judges a file.
pub const DEFAULT_MIN_POINTS: usize = 4;
/// Default tolerance band, in floored MADs (~2.7 sigma for normal noise).
pub const DEFAULT_MAD_K: f64 = 4.0;
/// Default relative MAD floor, as a fraction of the baseline median.
pub const DEFAULT_REL_FLOOR: f64 = 0.05;

/// Absolute MAD floor: deviations below this never flag, no matter how
/// flat the baseline.
const ABS_FLOOR: f64 = 1e-9;

/// Sentinel tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SentinelConfig {
    /// Entries a series needs before the latest one is judged.
    pub min_points: usize,
    /// Tolerance band in floored MADs.
    pub mad_k: f64,
    /// Relative MAD floor (fraction of the baseline median).
    pub rel_floor: f64,
}

impl Default for SentinelConfig {
    fn default() -> SentinelConfig {
        SentinelConfig {
            min_points: DEFAULT_MIN_POINTS,
            mad_k: DEFAULT_MAD_K,
            rel_floor: DEFAULT_REL_FLOOR,
        }
    }
}

/// One metric's verdict over one trajectory file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricVerdict {
    /// Metric name (a [`crate::TrajectoryEntry`] field).
    pub metric: String,
    /// Baseline median (every entry but the last).
    pub baseline_median: f64,
    /// Baseline MAD before flooring.
    pub mad: f64,
    /// The latest entry's value.
    pub latest: f64,
    /// Signed deviation of the latest value from the baseline median.
    pub deviation: f64,
    /// Deviation in floored MADs, counted only in the bad direction
    /// (0 when the latest value moved the healthy way).
    pub score: f64,
    /// `score > mad_k`: a confirmed regression.
    pub regression: bool,
}

/// The sentinel's verdict over one trajectory file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SentinelReport {
    /// The figure scanned.
    pub figure: String,
    /// Entries in the file.
    pub entries: usize,
    /// True when the series was shorter than `min_points` and judgment
    /// was skipped.
    pub skipped: bool,
    /// Per-metric verdicts (empty when skipped).
    pub verdicts: Vec<MetricVerdict>,
    /// Confirmed regressions.
    pub regressions: usize,
}

impl SentinelReport {
    /// Renders the report as an aligned text block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.skipped {
            out.push_str(&format!(
                "{}: {} entr{} — too short to judge (need more history)\n",
                self.figure,
                self.entries,
                if self.entries == 1 { "y" } else { "ies" }
            ));
            return out;
        }
        out.push_str(&format!(
            "{} sentinel ({} entries, latest vs median/MAD baseline):\n",
            self.figure, self.entries
        ));
        for v in &self.verdicts {
            out.push_str(&format!(
                "  {:<16} median {:>10.4}  mad {:>8.4}  latest {:>10.4}  score {:>6.1}{}\n",
                v.metric,
                v.baseline_median,
                v.mad,
                v.latest,
                v.score,
                if v.regression { "  << REGRESSION" } else { "" }
            ));
        }
        if self.regressions > 0 {
            out.push_str(&format!("  {} confirmed regression(s)\n", self.regressions));
        }
        out
    }
}

/// Median of a non-empty slice (mean of the middle pair for even lengths).
fn median(vals: &mut [f64]) -> f64 {
    vals.sort_by(|a, b| a.partial_cmp(b).expect("finite metric values"));
    let n = vals.len();
    if n % 2 == 1 {
        vals[n / 2]
    } else {
        (vals[n / 2 - 1] + vals[n / 2]) / 2.0
    }
}

/// Scans one in-memory trajectory file.
pub fn scan_file(file: &TrajectoryFile, cfg: &SentinelConfig) -> SentinelReport {
    let n = file.entries.len();
    if n < cfg.min_points.max(2) {
        return SentinelReport {
            figure: file.figure.clone(),
            entries: n,
            skipped: true,
            verdicts: Vec::new(),
            regressions: 0,
        };
    }
    let mut verdicts = Vec::new();
    for &(name, higher_is_worse) in METRICS {
        let series: Vec<f64> = file.entries.iter().map(|e| metric_value(e, name)).collect();
        let (baseline, latest) = series.split_at(n - 1);
        let latest = latest[0];
        let mut vals = baseline.to_vec();
        let med = median(&mut vals);
        let mut devs: Vec<f64> = baseline.iter().map(|v| (v - med).abs()).collect();
        let mad = median(&mut devs);
        let floor = mad.max(cfg.rel_floor * med.abs()).max(ABS_FLOOR);
        let deviation = latest - med;
        let bad_dev = if higher_is_worse {
            deviation
        } else {
            -deviation
        };
        let score = if bad_dev > 0.0 { bad_dev / floor } else { 0.0 };
        verdicts.push(MetricVerdict {
            metric: name.to_string(),
            baseline_median: med,
            mad,
            latest,
            deviation,
            score,
            regression: score > cfg.mad_k,
        });
    }
    let regressions = verdicts.iter().filter(|v| v.regression).count();
    SentinelReport {
        figure: file.figure.clone(),
        entries: n,
        skipped: false,
        verdicts,
        regressions,
    }
}

/// Reads and scans a trajectory file on disk.
pub fn scan_path(path: &Path, cfg: &SentinelConfig) -> io::Result<SentinelReport> {
    let body = std::fs::read_to_string(path)?;
    let file: TrajectoryFile = serde_json::from_str(&body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{path:?}: {e}")))?;
    Ok(scan_file(&file, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trajectory::TrajectoryEntry;

    fn entry(throughput: f64, deadlock_rate: f64, mean_latency: f64) -> TrajectoryEntry {
        TrajectoryEntry {
            figure: "fig9".to_string(),
            recorded_at_epoch_s: 0,
            wall_clock_s: 0.0,
            scenarios: 10,
            deadlock_rate,
            completed_rate: 1.0 - deadlock_rate,
            throughput,
            mean_latency,
            p95_latency: mean_latency * 2.0,
            sxb_util: 0.2,
            idle_tick_fraction: 0.3,
            cycles_per_sec: 0.0,
            p99_queue_wait_s: 0.0,
            p99_engine_run_s: 0.0,
        }
    }

    fn file(entries: Vec<TrajectoryEntry>) -> TrajectoryFile {
        TrajectoryFile {
            figure: "fig9".to_string(),
            entries,
        }
    }

    #[test]
    fn short_series_is_skipped_not_failed() {
        let f = file(vec![entry(2.0, 0.0, 40.0)]);
        let r = scan_file(&f, &SentinelConfig::default());
        assert!(r.skipped);
        assert_eq!(r.regressions, 0);
        assert!(r.render().contains("too short"));
    }

    #[test]
    fn synthetic_regression_is_confirmed_and_direction_aware() {
        // Six stable snapshots with mild jitter, then throughput collapses
        // and deadlocks appear in the same entry.
        let mut entries: Vec<TrajectoryEntry> = [2.00, 2.02, 1.98, 2.01, 1.99, 2.00]
            .iter()
            .map(|&t| entry(t, 0.0, 40.0))
            .collect();
        entries.push(entry(1.0, 0.25, 41.0));
        let r = scan_file(&file(entries), &SentinelConfig::default());
        assert!(!r.skipped);
        let by_name = |n: &str| r.verdicts.iter().find(|v| v.metric == n).unwrap();
        assert!(by_name("throughput").regression, "{r:?}");
        assert!(by_name("deadlock_rate").regression, "{r:?}");
        assert!(by_name("completed_rate").regression, "{r:?}");
        // Latency (and the p95 tracking it) moved 2.5% against a 5%
        // relative floor: inside the band.
        assert!(!by_name("mean_latency").regression, "{r:?}");
        assert_eq!(r.regressions, 3);
        assert!(r.render().contains("REGRESSION"));
    }

    #[test]
    fn improvement_and_flat_history_stay_clean() {
        // Throughput *rising* and a flat series must not flag: the bad
        // direction gate and the MAD floors both hold.
        let mut entries: Vec<TrajectoryEntry> = (0..6).map(|_| entry(2.0, 0.0, 40.0)).collect();
        entries.push(entry(3.0, 0.0, 40.0));
        let r = scan_file(&file(entries), &SentinelConfig::default());
        assert_eq!(r.regressions, 0, "{r:?}");
        assert!(r.verdicts.iter().all(|v| v.score == 0.0 || !v.regression));
    }

    #[test]
    fn one_historical_outlier_does_not_widen_the_band() {
        // A single bad baseline entry would inflate a stddev-based band;
        // the median/MAD baseline shrugs it off and still catches the
        // regression in the latest entry.
        let mut entries: Vec<TrajectoryEntry> = [2.0, 2.0, 0.5, 2.0, 2.0, 2.0]
            .iter()
            .map(|&t| entry(t, 0.0, 40.0))
            .collect();
        entries.push(entry(1.0, 0.0, 40.0));
        let r = scan_file(&file(entries), &SentinelConfig::default());
        let tp = r
            .verdicts
            .iter()
            .find(|v| v.metric == "throughput")
            .unwrap();
        assert_eq!(tp.baseline_median, 2.0);
        assert!(tp.regression, "{r:?}");
    }

    #[test]
    fn scan_path_round_trips_disk_files() {
        let path = std::env::temp_dir().join(format!(
            "mdx-sentinel-test-{}-{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ));
        let entries: Vec<TrajectoryEntry> = (0..5)
            .map(|i| entry(2.0 + 0.01 * i as f64, 0.0, 40.0))
            .collect();
        std::fs::write(&path, serde_json::to_string_pretty(&file(entries)).unwrap()).unwrap();
        let r = scan_path(&path, &SentinelConfig::default()).unwrap();
        assert!(!r.skipped);
        assert_eq!(r.regressions, 0);
        let _ = std::fs::remove_file(&path);
    }
}
