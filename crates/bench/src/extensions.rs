//! Beyond the paper's specification: the facility under *multiple* faults
//! (its Sec. 6 future-work direction — "improve this facility to further
//! increase the system reliability").
//!
//! The hardware mechanism generalizes unchanged: the configuration rules of
//! `mdx-core::config` pick a dimension order and an S-XB/D-XB line clearing
//! *all* faults when one exists. This experiment measures how often that
//! succeeds and how much of the graph-theoretic upper bound (pairs still
//! physically connected) the detour facility then delivers.

use crate::report::{pct, Table};
use mdx_core::{trace_broadcast, trace_unicast, Header, Sr2201Routing};
use mdx_fault::{connectivity, enumerate_single_faults, FaultSet};
use mdx_topology::{Coord, MdCrossbar, Node, Shape};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use rayon::prelude::*;
use std::sync::Arc;

/// Multi-fault tolerance sweep.
pub fn multi_fault() -> Vec<Table> {
    let mut t = Table::new(
        "ext-multi-fault",
        "beyond spec: k simultaneous faults on 8x8 (100 random fault sets each)",
        &[
            "faults k",
            "configurable",
            "pairs delivered (of configurable runs)",
            "graph upper bound",
            "delivery/bound",
            "broadcast coverage",
        ],
    );
    let net = Arc::new(MdCrossbar::build(Shape::new(&[8, 8]).unwrap()));
    let shape = net.shape().clone();
    let n = shape.num_pes();
    let all_sites = enumerate_single_faults(&net);
    for k in 1..=3usize {
        let samples: Vec<(bool, usize, usize, usize, usize, usize)> = (0..100u64)
            .into_par_iter()
            .map(|seed| {
                let mut rng = ChaCha12Rng::seed_from_u64(seed * 31 + k as u64);
                let faults: FaultSet = all_sites.choose_multiple(&mut rng, k).copied().collect();
                let Ok(scheme) = Sr2201Routing::new(net.clone(), &faults) else {
                    return (false, 0, 0, 0, 0, 0);
                };
                let report = connectivity::reachable_pairs(&net, &faults);
                let mut delivered = 0usize;
                let mut pairs = 0usize;
                for src in 0..n {
                    for dst in 0..n {
                        if src == dst || !faults.pe_usable(src) || !faults.pe_usable(dst) {
                            continue;
                        }
                        pairs += 1;
                        let h = Header::unicast(shape.coord_of(src), shape.coord_of(dst));
                        if let Ok(tr) = trace_unicast(&scheme, net.graph(), h, src) {
                            if tr.steps.last().map(|s| s.node) == Some(Node::Pe(dst)) {
                                delivered += 1;
                            }
                        }
                    }
                }
                // Broadcast coverage from one usable source.
                let (mut covered, mut usable) = (0usize, 0usize);
                if let Some(src) = (0..n).find(|&p| faults.pe_usable(p)) {
                    usable = (0..n).filter(|&p| faults.pe_usable(p)).count();
                    if let Ok(bt) = trace_broadcast(&scheme, net.graph(), src, shape.coord_of(src))
                    {
                        covered = bt.delivered.len();
                    }
                }
                (
                    true,
                    pairs,
                    delivered,
                    report.connected_pairs,
                    covered,
                    usable,
                )
            })
            .collect();
        let configurable = samples.iter().filter(|s| s.0).count();
        let pairs: usize = samples.iter().map(|s| s.1).sum();
        let delivered: usize = samples.iter().map(|s| s.2).sum();
        let bound: usize = samples.iter().map(|s| s.3).sum();
        let covered: usize = samples.iter().map(|s| s.4).sum();
        let usable: usize = samples.iter().map(|s| s.5).sum();
        t.row(vec![
            k.to_string(),
            pct(configurable, 100),
            pct(delivered, pairs),
            pct(bound, pairs),
            pct(delivered, bound),
            pct(covered, usable),
        ]);
    }
    t.note("configurable = the service processor found a dimension order and S-XB line clearing every fault (conflicting crossbar dimensions or exhausted lines make it refuse)");
    t.note("the paper only specifies single faults; k >= 2 probes its future-work direction with the mechanism unchanged");
    vec![t]
}

/// Adaptive-order extension: O1TURN-style two-order routing vs plain
/// dimension order on the MD crossbar, attacking the transpose funnel the
/// load sweep records as an honest negative.
pub fn adaptive_order() -> Vec<Table> {
    use crate::report::f3;
    use crate::run_schedule;
    use mdx_core::O1TurnRouting;
    use mdx_sim::{SimConfig, SimOutcome};
    use mdx_workloads::{unicast_schedule, OpenLoop, TrafficPattern};

    let shape = Shape::new(&[8, 8]).unwrap();
    let net = Arc::new(MdCrossbar::build(shape.clone()));
    let mut tables = Vec::new();
    for pattern in [TrafficPattern::Transpose, TrafficPattern::UniformRandom] {
        let mut t = Table::new(
            "ext-adaptive-order",
            &format!(
                "{} traffic, 8x8: dimension-order vs O1TURN two-order (2 lanes)",
                pattern.name()
            ),
            &[
                "offered rate",
                "X-Y order lat",
                "X-Y done",
                "o1turn lat",
                "o1turn done",
            ],
        );
        let rows: Vec<Vec<String>> = [0.01f64, 0.02, 0.04, 0.06]
            .par_iter()
            .map(|&rate| {
                let specs = unicast_schedule(
                    &shape,
                    pattern,
                    OpenLoop {
                        rate,
                        packet_flits: 8,
                        window: 400,
                        seed: 7,
                    },
                    &FaultSet::none(),
                );
                let mut row = vec![f3(rate)];
                let schemes: Vec<Arc<dyn mdx_core::Scheme>> = vec![
                    Arc::new(Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap()),
                    Arc::new(O1TurnRouting::new(net.clone(), 7)),
                ];
                for scheme in schemes {
                    let r = run_schedule(net.graph(), scheme, &specs, SimConfig::default());
                    row.push(f3(r.stats.mean_latency()));
                    row.push(match &r.outcome {
                        SimOutcome::Completed => {
                            format!("{}/{}", r.stats.delivered, r.packets.len())
                        }
                        other => format!("{other:?}"),
                    });
                }
                row
            })
            .collect();
        for row in rows {
            t.row(row);
        }
        t.note("o1turn splits each packet pseudo-randomly between X-Y (lane 0) and Y-X (lane 1) order; both sub-networks stay dimension-ordered, so the union is deadlock-free (certified by the lane-granular wait-graph analyzer)");
        tables.push(t);
    }
    tables
}

/// Channel-utilization analysis: where the flits actually go. Makes the
/// transpose funnel visible (the "(y,y)" turn routers) and shows O1TURN
/// spreading it across both orders.
pub fn hotspots() -> Vec<Table> {
    use mdx_core::{O1TurnRouting, Scheme};
    use mdx_sim::{SimConfig, Simulator};
    use mdx_workloads::{unicast_schedule, OpenLoop, TrafficPattern};

    let shape = Shape::new(&[8, 8]).unwrap();
    let net = Arc::new(MdCrossbar::build(shape.clone()));
    let specs = unicast_schedule(
        &shape,
        TrafficPattern::Transpose,
        OpenLoop {
            rate: 0.03,
            packet_flits: 8,
            window: 400,
            seed: 7,
        },
        &FaultSet::none(),
    );
    let mut tables = Vec::new();
    let schemes: Vec<(&str, Arc<dyn Scheme>)> = vec![
        (
            "dimension-order",
            Arc::new(Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap()),
        ),
        ("o1turn", Arc::new(O1TurnRouting::new(net.clone(), 7))),
    ];
    for (name, scheme) in schemes {
        let mut t = Table::new(
            "ext-hotspots",
            &format!("transpose on 8x8 under {name}: ten hottest channels"),
            &["channel", "flits", "share of total"],
        );
        let mut sim = Simulator::new(net.graph().clone(), scheme, SimConfig::default());
        for &s in &specs {
            sim.schedule(s);
        }
        let r = sim.run();
        let flits = sim.channel_flits();
        let total: u64 = flits.iter().sum();
        let mut hot: Vec<(usize, u64)> = flits
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, f)| f > 0)
            .collect();
        hot.sort_by_key(|&(_, f)| std::cmp::Reverse(f));
        for &(ch, f) in hot.iter().take(10) {
            t.row(vec![
                net.graph()
                    .describe_channel(mdx_topology::ChannelId(ch as u32)),
                f.to_string(),
                pct(f as usize, total as usize),
            ]);
        }
        let gini_top = hot.iter().take(10).map(|&(_, f)| f).sum::<u64>();
        t.note(format!(
            "top-10 channels carry {} of all flit-hops; run outcome {:?}, mean latency {:.1}",
            pct(gini_top as usize, total as usize),
            r.outcome,
            r.stats.mean_latency()
        ));
        // Per-router traffic heatmap (flits leaving each router toward its
        // Y crossbar — the turn the funnel concentrates).
        let mut per_pe = vec![0u64; shape.num_pes()];
        for ch in net.graph().channel_ids() {
            let info = net.graph().channel(ch);
            if let (mdx_topology::Node::Router(rt), mdx_topology::Node::Xbar(x)) =
                (net.graph().node(info.src), net.graph().node(info.dst))
            {
                if x.dim == 1 {
                    per_pe[rt] += flits[ch.idx()];
                }
            }
        }
        t.note("router -> Y-XB traffic heatmap (hot = bright):");
        for line in crate::report::heatmap_2d(&shape, &per_pe).lines() {
            t.note(line.to_string());
        }
        tables.push(t);
    }
    tables
}

/// Switching-technique comparison: cut-through vs store-and-forward — the
/// latency argument behind the paper's citations of Kermani/Kleinrock and
/// Dally/Seitz ("to transmit packets with low latency and high
/// throughput").
pub fn switching() -> Vec<Table> {
    use crate::report::f3;
    use crate::run_schedule;
    use mdx_core::Header;
    use mdx_sim::{InjectSpec, SimConfig};

    let mut t = Table::new(
        "ext-switching",
        "one packet across the 8x8 network (max distance): latency vs packet length",
        &["packet flits", "cut-through", "store-and-forward", "SAF/CT"],
    );
    let shape = Shape::new(&[8, 8]).unwrap();
    let net = Arc::new(MdCrossbar::build(shape.clone()));
    for flits in [2usize, 4, 8, 16, 32, 64] {
        let lat = |saf: bool| {
            let scheme = Arc::new(Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap());
            let specs = vec![InjectSpec {
                src_pe: 0,
                header: Header::unicast(shape.coord_of(0), shape.coord_of(63)),
                flits,
                inject_at: 0,
            }];
            let r = run_schedule(
                net.graph(),
                scheme,
                &specs,
                SimConfig {
                    store_and_forward: saf,
                    buffer_flits: 128,
                    ..SimConfig::default()
                },
            );
            r.packets[0].latency().unwrap()
        };
        let ct = lat(false);
        let saf = lat(true);
        t.row(vec![
            flits.to_string(),
            ct.to_string(),
            saf.to_string(),
            f3(saf as f64 / ct as f64),
        ]);
    }
    t.note("cut-through pipelines (≈ hops + flits cycles); store-and-forward pays ≈ hops x flits — the gap widens linearly with packet length");
    vec![t]
}

/// Accepted vs offered throughput: where each topology saturates (the
/// paper's "higher throughput" claim, measured rather than asserted).
pub fn saturation() -> Vec<Table> {
    use crate::report::f3;
    use crate::run_schedule;
    use mdx_baselines::DirectDor;
    use mdx_core::Scheme;
    use mdx_sim::SimConfig;
    use mdx_topology::mesh::{DirectNetwork, Wrap};
    use mdx_workloads::{unicast_schedule, OpenLoop, TrafficPattern};

    let mut t = Table::new(
        "claim-saturation",
        "uniform 8x8: accepted throughput (flits/PE/cycle) vs offered",
        &["offered", "md-crossbar", "mesh", "torus+VC"],
    );
    let shape = Shape::new(&[8, 8]).unwrap();
    let n = shape.num_pes() as f64;
    let mdx = Arc::new(MdCrossbar::build(shape.clone()));
    let mesh = Arc::new(DirectNetwork::build(shape.clone(), Wrap::Mesh));
    let torus = Arc::new(DirectNetwork::build(shape.clone(), Wrap::Torus));
    let flits = 8usize;
    let window = 600u64;
    let rows: Vec<Vec<String>> = [0.02f64, 0.04, 0.08, 0.12, 0.16, 0.24]
        .par_iter()
        .map(|&rate| {
            let specs = unicast_schedule(
                &shape,
                TrafficPattern::UniformRandom,
                OpenLoop {
                    rate,
                    packet_flits: flits,
                    window,
                    seed: 3,
                },
                &FaultSet::none(),
            );
            let offered = rate * flits as f64;
            let mut row = vec![f3(offered)];
            let schemes: Vec<(mdx_topology::NetworkGraph, Arc<dyn Scheme>)> = vec![
                (
                    mdx.graph().clone(),
                    Arc::new(Sr2201Routing::new(mdx.clone(), &FaultSet::none()).unwrap()),
                ),
                (mesh.graph().clone(), Arc::new(DirectDor::new(mesh.clone()))),
                (
                    torus.graph().clone(),
                    Arc::new(DirectDor::with_dateline_vcs(torus.clone())),
                ),
            ];
            for (graph, scheme) in schemes {
                let r = run_schedule(&graph, scheme, &specs, SimConfig::default());
                // Accepted rate: delivered payload flits per PE per cycle of
                // actual run time (the run extends past the injection window
                // while the backlog drains; saturation shows as a plateau).
                let delivered_flits = (r.stats.delivered * flits) as f64;
                row.push(f3(delivered_flits / (r.stats.cycles as f64) / n));
            }
            row
        })
        .collect();
    for row in rows {
        t.row(row);
    }
    t.note("below saturation accepted tracks offered; the plateau is the network's usable capacity under uniform traffic");
    vec![t]
}

/// The reliability loop the paper assumes but does not describe: the
/// service processor diagnoses the faulty component from end-to-end probe
/// outcomes, configures the detour facility, and traffic flows again.
pub fn diagnosis() -> Vec<Table> {
    use mdx_fault::diagnosis::{diagnose, diagnose_all_pairs, observe_probes};
    use mdx_fault::FaultSite;

    let net = Arc::new(MdCrossbar::build(Shape::new(&[8, 8]).unwrap()));
    let shape = net.shape().clone();
    let n = shape.num_pes();
    let mut t = Table::new(
        "ext-diagnosis",
        "single-fault localization from all-pairs probes (8x8, every fault site)",
        &[
            "fault class",
            "faults",
            "uniquely localized",
            "within coordinate",
            "loop closed (deliver after reconfigure)",
        ],
    );
    let mut classes: Vec<(&str, Vec<FaultSite>)> = vec![
        ("crossbar", Vec::new()),
        ("router", Vec::new()),
        ("pe", Vec::new()),
    ];
    for site in enumerate_single_faults(&net) {
        let idx = match site {
            FaultSite::Xbar(_) => 0,
            FaultSite::Router(_) => 1,
            FaultSite::Pe(_) => 2,
        };
        classes[idx].1.push(site);
    }
    for (name, sites) in &classes {
        let results: Vec<(bool, bool, bool)> = sites
            .par_iter()
            .map(|&site| {
                let truth = FaultSet::single(site);
                let d = diagnose_all_pairs(&net, &truth);
                let unique = d.is_unique() && d.candidates[0] == site;
                let same_coord = d.candidates.iter().all(|c| match (c, &site) {
                    (FaultSite::Xbar(a), FaultSite::Xbar(b)) => a == b,
                    (
                        FaultSite::Router(a) | FaultSite::Pe(a),
                        FaultSite::Router(b) | FaultSite::Pe(b),
                    ) => a == b,
                    _ => false,
                }) && d.candidates.contains(&site);
                // Close the loop: configure from the strongest candidate
                // and verify all usable pairs deliver.
                let picked = d
                    .candidates
                    .iter()
                    .copied()
                    .find(|c| matches!(c, FaultSite::Router(_) | FaultSite::Xbar(_)))
                    .or_else(|| d.candidates.first().copied());
                let closed = match picked {
                    None => false,
                    Some(p) => {
                        let believed = FaultSet::single(p);
                        match Sr2201Routing::new(net.clone(), &believed) {
                            Err(_) => false,
                            Ok(scheme) => (0..n).step_by(7).all(|src| {
                                (0..n).step_by(5).all(|dst| {
                                    if src == dst || !truth.pe_usable(src) || !truth.pe_usable(dst)
                                    {
                                        return true;
                                    }
                                    let h =
                                        Header::unicast(shape.coord_of(src), shape.coord_of(dst));
                                    trace_unicast(&scheme, net.graph(), h, src).is_ok()
                                })
                            }),
                        }
                    }
                };
                (unique, same_coord, closed)
            })
            .collect();
        let unique = results.iter().filter(|r| r.0).count();
        let coord = results.iter().filter(|r| r.1).count();
        let closed = results.iter().filter(|r| r.2).count();
        t.row(vec![
            name.to_string(),
            sites.len().to_string(),
            pct(unique, sites.len()),
            pct(coord, sites.len()),
            pct(closed, sites.len()),
        ]);
    }
    t.note("dead routers and dead PEs at the same coordinate can be probe-indistinguishable (same field-replaceable unit); 'within coordinate' counts those as localized");

    // Probe-budget sweep: how much probing the localization needs.
    let mut b = Table::new(
        "ext-diagnosis-budget",
        "probe budget vs localization quality (faulty router (3,2) on 8x8)",
        &["probe sources", "probes", "candidates left"],
    );
    let site = FaultSite::Router(shape.index_of(Coord::new(&[3, 2])));
    let truth = FaultSet::single(site);
    for k in [1usize, 2, 4, 8, 16, 64] {
        let mut plan = Vec::new();
        for src in (0..n).step_by(n / k.min(n)) {
            for dst in 0..n {
                if dst != src {
                    plan.push((src, dst));
                }
            }
        }
        let d = diagnose(&net, &observe_probes(&net, &truth, &plan));
        b.row(vec![
            k.min(n).to_string(),
            plan.len().to_string(),
            d.candidates.len().to_string(),
        ]);
    }
    vec![t, b]
}

/// Live-reconfiguration sweep: the same mid-run fault, crossed with the
/// three recovery policies, for each fault class. Measures the epoch
/// protocol's victim accounting and the downtime the service processor
/// imposes (quiesce through resume).
pub fn reconfig_policies() -> Vec<Table> {
    use mdx_fault::{FaultSite, FaultTimeline};
    use mdx_reconfig::{run_reconfig, ReconfigSpec, RecoveryPolicy};
    use mdx_sim::SimConfig;
    use mdx_topology::XbarRef;
    use mdx_workloads::{unicast_schedule, OpenLoop, TrafficPattern};

    let mut t = Table::new(
        "ext-reconfig",
        "live reconfiguration on 8x8: fault at cycle 60 under uniform traffic, by recovery policy",
        &[
            "fault",
            "policy",
            "victims",
            "recovered",
            "lost",
            "drain cycles",
            "downtime",
            "delivered",
            "transition",
        ],
    );
    let net = Arc::new(MdCrossbar::build(Shape::new(&[8, 8]).unwrap()));
    let shape = net.shape().clone();
    let classes: Vec<(&str, FaultSite)> = vec![
        (
            "router (3,2)",
            FaultSite::Router(shape.index_of(Coord::new(&[3, 2]))),
        ),
        ("PE 5", FaultSite::Pe(5)),
        ("Y2-XB", FaultSite::Xbar(XbarRef { dim: 1, line: 2 })),
    ];
    for (label, site) in &classes {
        // The application avoids the component slated to die, so every
        // loss below is the protocol's fault, not an unreachable endpoint.
        let specs = unicast_schedule(
            &shape,
            TrafficPattern::UniformRandom,
            OpenLoop {
                rate: 0.02,
                packet_flits: 12,
                window: 200,
                seed: 11,
            },
            &FaultSet::single(*site),
        );
        let offered = specs.len();
        for policy in [
            RecoveryPolicy::Drop,
            RecoveryPolicy::Reinject,
            RecoveryPolicy::Reroute,
        ] {
            let spec =
                ReconfigSpec::new(FaultTimeline::new().inject(*site, 60)).with_policy(policy);
            let out = run_reconfig(
                net.clone(),
                "sr2201",
                &FaultSet::none(),
                &specs,
                SimConfig::default(),
                &spec,
                None,
            )
            .expect("single faults reconfigure");
            let r = &out.report;
            let e = &r.epochs[0];
            t.row(vec![
                label.to_string(),
                policy.to_string(),
                r.victims_total.to_string(),
                r.recovered.to_string(),
                r.lost.to_string(),
                e.drain_cycles.to_string(),
                (e.resumed_at - e.event_at).to_string(),
                pct(out.result.stats.delivered, offered),
                if r.transition_safe() {
                    "safe"
                } else {
                    "VIOLATION"
                }
                .to_string(),
            ]);
        }
    }
    t.note("downtime = cycles from fault activation to injection-gate reopen (detect + drain + reprogram)");
    vec![t]
}
