//! The quantified comparison claims of Secs. 1-3: MD crossbar vs mesh and
//! torus, hardware detour vs table/software fault handling, hardware vs
//! software broadcast, and the full-scale 2048-PE configuration.

use crate::report::{f3, Table};
use crate::run_schedule;
use mdx_baselines::software::{
    software_tree_broadcast, sp2_software_schedule, DEFAULT_SOFTWARE_OVERHEAD,
};
use mdx_baselines::{DirectDor, TableRouting};
use mdx_core::{Header, Scheme, Sr2201Routing};
use mdx_fault::{FaultSet, FaultSite};
use mdx_sim::{InjectSpec, PacketOutcome, SimConfig, SimOutcome, SimResult};
use mdx_topology::{mesh::DirectNetwork, mesh::Wrap, Coord, MdCrossbar, NetworkGraph, Shape};
use mdx_workloads::{mixed_schedule, unicast_schedule, OpenLoop, TrafficPattern};
use rayon::prelude::*;
use std::sync::Arc;

const PACKET_FLITS: usize = 8;
const WINDOW: u64 = 400;

fn summarize(r: &SimResult) -> (String, String, String, String) {
    let deadlocked = matches!(r.outcome, SimOutcome::Deadlock(_));
    (
        f3(r.stats.mean_latency()),
        r.latency_percentile(99)
            .map(|v| v.to_string())
            .unwrap_or("-".to_string()),
        f3(r.stats.flit_hops_per_cycle()),
        if deadlocked {
            "DEADLOCK".to_string()
        } else {
            format!("{}/{}", r.stats.delivered, r.packets.len())
        },
    )
}

/// Sec. 3.1: load-latency sweep, MD crossbar vs mesh vs torus, 8x8.
pub fn mdx_vs_mesh() -> Vec<Table> {
    let shape = Shape::new(&[8, 8]).unwrap();
    let mdx = Arc::new(MdCrossbar::build(shape.clone()));
    let mesh = Arc::new(DirectNetwork::build(shape.clone(), Wrap::Mesh));
    let torus = Arc::new(DirectNetwork::build(shape.clone(), Wrap::Torus));
    let patterns = [TrafficPattern::UniformRandom, TrafficPattern::Transpose];
    let loads = [0.01f64, 0.02, 0.03, 0.04, 0.06, 0.08];
    let mut tables = Vec::new();
    for pattern in patterns {
        let mut t = Table::new(
            "claim-mdx-vs-mesh",
            &format!(
                "{} traffic, 8x8, {PACKET_FLITS}-flit packets: mean latency (cycles) and delivery",
                pattern.name()
            ),
            &[
                "offered rate (pkts/PE/cyc)",
                "md-crossbar lat",
                "md-crossbar done",
                "mesh lat",
                "mesh done",
                "torus lat",
                "torus done",
                "torus+VC lat",
                "torus+VC done",
            ],
        );
        let rows: Vec<Vec<String>> = loads
            .par_iter()
            .map(|&rate| {
                let cfg = OpenLoop {
                    rate,
                    packet_flits: PACKET_FLITS,
                    window: WINDOW,
                    seed: 7,
                };
                let specs = unicast_schedule(&shape, pattern, cfg, &FaultSet::none());
                let runs: Vec<(NetworkGraph, Arc<dyn Scheme>)> = vec![
                    (
                        mdx.graph().clone(),
                        Arc::new(Sr2201Routing::new(mdx.clone(), &FaultSet::none()).unwrap()),
                    ),
                    (mesh.graph().clone(), Arc::new(DirectDor::new(mesh.clone()))),
                    (
                        torus.graph().clone(),
                        Arc::new(DirectDor::new(torus.clone())),
                    ),
                    (
                        torus.graph().clone(),
                        Arc::new(DirectDor::with_dateline_vcs(torus.clone())),
                    ),
                ];
                let mut row = vec![f3(rate)];
                for (graph, scheme) in runs {
                    let r = run_schedule(&graph, scheme, &specs, SimConfig::default());
                    let (lat, _p99, _thr, done) = summarize(&r);
                    row.push(lat);
                    row.push(done);
                }
                row
            })
            .collect();
        for row in rows {
            t.row(row);
        }
        t.note("same injected schedule on every topology; the plain torus has no virtual channels, so DEADLOCK rows are expected at high load; torus+VC is the classic two-lane dateline fix the T3D class of machines needs — the MD crossbar needs neither");
        tables.push(t);
    }
    tables
}

/// Secs. 1 & 4: cost of fault handling — hardware detour vs T3D-style table
/// rewrite vs SP2-style software transmission.
pub fn fault_overhead() -> Vec<Table> {
    let shape = Shape::new(&[8, 8]).unwrap();
    let net = Arc::new(MdCrossbar::build(shape.clone()));
    let faulty = shape.index_of(Coord::new(&[3, 2]));
    let faults = FaultSet::single(FaultSite::Router(faulty));
    let rate = 0.02;
    let cfg = OpenLoop {
        rate,
        packet_flits: PACKET_FLITS,
        window: WINDOW,
        seed: 11,
    };
    let specs = unicast_schedule(&shape, TrafficPattern::UniformRandom, cfg, &faults);

    let mut t = Table::new(
        "claim-fault-overhead",
        "uniform traffic, 8x8, one faulty router: fault-handling strategies",
        &[
            "strategy",
            "mean latency",
            "p99",
            "throughput (flit-hops/cyc)",
            "delivered",
            "state cost",
        ],
    );

    // Fault-free reference (same schedule, no fault).
    let reference = Arc::new(Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap());
    let r = run_schedule(net.graph(), reference, &specs, SimConfig::default());
    let (lat, p99, thr, done) = summarize(&r);
    t.row(vec![
        "no fault (reference)".into(),
        lat,
        p99,
        thr,
        done,
        "-".into(),
    ]);

    // SR2201 hardware detour.
    let sr = Arc::new(Sr2201Routing::new(net.clone(), &faults).unwrap());
    let r = run_schedule(net.graph(), sr, &specs, SimConfig::default());
    let (lat, p99, thr, done) = summarize(&r);
    let regs = mdx_fault::FaultRegisters::derive(&net, &faults);
    t.row(vec![
        "sr2201 hardware detour".into(),
        lat,
        p99,
        thr,
        done,
        format!("{} register bits", regs.total_register_bits()),
    ]);

    // T3D-style table rewrite.
    let table = Arc::new(TableRouting::new(net.clone(), &faults));
    let entries = table.table_entries();
    let r = run_schedule(net.graph(), table, &specs, SimConfig::default());
    let (lat, p99, thr, done) = summarize(&r);
    t.row(vec![
        "t3d-style table rewrite".into(),
        lat,
        p99,
        thr,
        done,
        format!("{entries} table entries"),
    ]);

    // SP2-style software transmission: the hardware still detours, but every
    // packet pays the software path.
    let sw_specs = sp2_software_schedule(&specs, DEFAULT_SOFTWARE_OVERHEAD);
    let sr = Arc::new(Sr2201Routing::new(net.clone(), &faults).unwrap());
    let r = run_schedule(net.graph(), sr, &sw_specs, SimConfig::default());
    let mut lat_sum = 0u64;
    let mut lat_max = 0u64;
    let mut done_n = 0usize;
    // Software latency counts from the ORIGINAL request time, including the
    // protocol-stack delay.
    for (orig, p) in specs.iter().zip(&r.packets) {
        if p.outcome == PacketOutcome::Delivered {
            let l = p.finished_at.unwrap() - orig.inject_at;
            lat_sum += l;
            lat_max = lat_max.max(l);
            done_n += 1;
        }
    }
    t.row(vec![
        format!("sp2-style software ({}cyc/pkt)", DEFAULT_SOFTWARE_OVERHEAD),
        f3(lat_sum as f64 / done_n.max(1) as f64),
        lat_max.to_string(),
        f3(r.stats.flit_hops_per_cycle()),
        format!("{done_n}/{}", specs.len()),
        "host CPU per packet".into(),
    ]);
    t.note("shape to reproduce: hardware detour within a few percent of fault-free; table rewrite similar latency but O(switches x PEs) state and no deadlock guarantee; software path an order of magnitude slower");
    vec![t]
}

/// Secs. 1 & 4: broadcast latency scaling — hardware S-XB vs software tree.
pub fn bc_scaling() -> Vec<Table> {
    let mut t = Table::new(
        "claim-bc-scaling",
        "single broadcast completion latency (cycles), hardware S-XB vs software binomial tree",
        &[
            "network",
            "PEs",
            "hw S-XB",
            "sw tree",
            "sw rounds",
            "hw speedup",
        ],
    );
    for dims in [&[4u16, 3][..], &[4, 4], &[8, 8], &[16, 16], &[8, 8, 4]] {
        let shape = Shape::new(dims).unwrap();
        let net = Arc::new(MdCrossbar::build(shape.clone()));
        let scheme: Arc<dyn Scheme> =
            Arc::new(Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap());
        let specs = vec![InjectSpec {
            src_pe: 0,
            header: Header::broadcast_request(shape.coord_of(0)),
            flits: PACKET_FLITS,
            inject_at: 0,
        }];
        let r = run_schedule(net.graph(), scheme.clone(), &specs, SimConfig::default());
        assert_eq!(r.outcome, SimOutcome::Completed);
        let hw = r.packets[0].finished_at.unwrap();
        let sw = software_tree_broadcast(
            net.graph(),
            scheme,
            &shape,
            0,
            PACKET_FLITS,
            DEFAULT_SOFTWARE_OVERHEAD,
            SimConfig::default(),
        );
        let extents: Vec<String> = dims.iter().map(|e| e.to_string()).collect();
        t.row(vec![
            format!("md-crossbar {}", extents.join("x")),
            shape.num_pes().to_string(),
            hw.to_string(),
            sw.completion.to_string(),
            sw.rounds.to_string(),
            f3(sw.completion as f64 / hw as f64),
        ]);
    }
    t.note("software tree pays log2(n) sequential rounds x software overhead; the S-XB pipeline cost is one serialized pass");
    vec![t]
}

/// Sec. 2: the full-scale SR2201 (2048 PEs, 16x16x8) exercising routing,
/// broadcast and detour together.
pub fn scale_2048() -> Vec<Table> {
    let shape = Shape::sr2201_full();
    let net = Arc::new(MdCrossbar::build(shape.clone()));
    let mut t = Table::new(
        "claim-scale-2048",
        "full-scale SR2201 (16x16x8 = 2048 PEs): mixed traffic, fault-free and one faulty router",
        &[
            "scenario",
            "packets",
            "outcome",
            "mean latency",
            "p99",
            "sim cycles",
            "wall time (s)",
        ],
    );
    for (label, site) in [
        ("fault-free", None),
        ("faulty router (7,9,3)", Some(Coord::new(&[7, 9, 3]))),
    ] {
        let faults = site
            .map(|c| FaultSet::single(FaultSite::Router(shape.index_of(c))))
            .unwrap_or_default();
        let scheme = Arc::new(Sr2201Routing::new(net.clone(), &faults).unwrap());
        let mut specs = mixed_schedule(
            &shape,
            TrafficPattern::UniformRandom,
            OpenLoop {
                rate: 0.001,
                packet_flits: PACKET_FLITS,
                window: 300,
                seed: 3,
            },
            0.0,
            &faults,
        );
        // A couple of broadcasts riding on top.
        specs.push(InjectSpec {
            src_pe: 77,
            header: Header::broadcast_request(shape.coord_of(77)),
            flits: PACKET_FLITS,
            inject_at: 50,
        });
        specs.push(InjectSpec {
            src_pe: 1999,
            header: Header::broadcast_request(shape.coord_of(1999)),
            flits: PACKET_FLITS,
            inject_at: 150,
        });
        let start = std::time::Instant::now();
        let r = run_schedule(net.graph(), scheme, &specs, SimConfig::default());
        let wall = start.elapsed().as_secs_f64();
        let (lat, p99, _thr, done) = summarize(&r);
        t.row(vec![
            label.to_string(),
            specs.len().to_string(),
            done,
            lat,
            p99,
            r.stats.cycles.to_string(),
            f3(wall),
        ]);
    }
    t.note("broadcasts deliver to all 2048 PEs (2047 under the router fault)");
    vec![t]
}
