//! Plain-text table rendering and JSON persistence for experiment results.

use serde::Serialize;
use std::fmt::Write as _;

/// One experiment's result table.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Experiment id (e.g. `fig5-bc-deadlock`).
    pub id: String,
    /// One-line description.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (assumptions, seeds, interpretation).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Table {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Appends a note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {}", self.id, self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
            .collect();
        let _ = writeln!(out, "  {}", header.join("  "));
        let rule: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        let _ = writeln!(out, "  {}", rule.join("  "));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
                .collect();
            let _ = writeln!(out, "  {}", cells.join("  "));
        }
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        out
    }
}

/// Formats a float with three significant decimals.
pub fn f3(x: f64) -> String {
    if x.is_nan() {
        "-".to_string()
    } else {
        format!("{x:.3}")
    }
}

/// Formats a ratio as a percentage.
pub fn pct(num: usize, den: usize) -> String {
    if den == 0 {
        "-".to_string()
    } else {
        format!("{:.1}%", 100.0 * num as f64 / den as f64)
    }
}

/// Renders a 2D lattice heatmap as ASCII: one cell per PE position, shaded
/// by the magnitude of `values[pe]` relative to the maximum (` .:-=+*#%@`).
/// Returns an empty string for non-2D shapes.
pub fn heatmap_2d(shape: &mdx_topology::Shape, values: &[u64]) -> String {
    if shape.d() != 2 || values.len() != shape.num_pes() {
        return String::new();
    }
    const RAMP: &[u8] = b" .:-=+*#%@";
    let max = values.iter().copied().max().unwrap_or(0).max(1);
    let (w, h) = (shape.extent(0), shape.extent(1));
    let mut out = String::new();
    for y in (0..h).rev() {
        let _ = write!(out, "  y{y:<2} ");
        for x in 0..w {
            let v = values[shape.index_of(mdx_topology::Coord::new(&[x, y]))];
            let idx = (v * (RAMP.len() as u64 - 1) / max) as usize;
            out.push(RAMP[idx] as char);
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    let _ = write!(out, "       ");
    for x in 0..w {
        let _ = write!(out, "{:<2}", x % 10);
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("t", "demo", &["a", "long-column"]);
        t.row(vec!["xxxx".into(), "1".into()]);
        t.note("hello");
        let s = t.render();
        assert!(s.contains("== t — demo"));
        assert!(s.contains("a     long-column"));
        assert!(s.contains("xxxx  1"));
        assert!(s.contains("note: hello"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("t", "demo", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn heatmap_renders_2d() {
        let shape = mdx_topology::Shape::new(&[4, 2]).unwrap();
        let mut values = vec![0u64; 8];
        values[0] = 10; // (0,0) hottest
        let map = heatmap_2d(&shape, &values);
        assert!(map.contains("y0"));
        assert!(map.contains("@@"));
        // Non-2D: empty.
        let s3 = mdx_topology::Shape::new(&[2, 2, 2]).unwrap();
        assert!(heatmap_2d(&s3, &[0; 8]).is_empty());
        // Wrong length: empty.
        assert!(heatmap_2d(&shape, &[1, 2]).is_empty());
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f3(f64::NAN), "-");
        assert_eq!(pct(1, 4), "25.0%");
        assert_eq!(pct(1, 0), "-");
    }
}
