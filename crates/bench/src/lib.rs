//! # mdx-bench
//!
//! The experiment harness: every figure-level result of the paper, plus the
//! quantified claims of Secs. 2-3 and the ablations listed in DESIGN.md, as
//! library functions returning [`report::Table`]s. The `experiments` binary
//! dispatches on experiment ids and prints the tables (optionally dumping
//! JSON); the Criterion benches time scaled-down versions of each.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod claims;
pub mod extensions;
pub mod figures;
pub mod report;
pub mod sentinel;
pub mod trajectory;

use mdx_core::Scheme;
use mdx_sim::{InjectSpec, SimConfig, SimResult, Simulator};
use mdx_topology::NetworkGraph;
use std::sync::Arc;

pub use report::Table;
pub use sentinel::{
    scan_file, scan_path, MetricVerdict, SentinelConfig, SentinelReport, DEFAULT_MAD_K,
    DEFAULT_MIN_POINTS, DEFAULT_REL_FLOOR,
};
pub use trajectory::{
    append_snapshot, snapshot_fig10, snapshot_fig9, snapshot_serve, snapshot_tournament,
    MetricDelta, TrajectoryDiff, TrajectoryEntry, TrajectoryFile, DEFAULT_THRESHOLD,
};

/// Runs one schedule to completion and returns the result.
pub fn run_schedule(
    graph: &NetworkGraph,
    scheme: Arc<dyn Scheme>,
    specs: &[InjectSpec],
    cfg: SimConfig,
) -> SimResult {
    let mut sim = Simulator::new(graph.clone(), scheme, cfg);
    for &s in specs {
        sim.schedule(s);
    }
    sim.run()
}

/// All experiment ids, in presentation order.
pub fn experiment_ids() -> Vec<&'static str> {
    vec![
        "fig2-topology",
        "fig3-packet",
        "fig5-bc-deadlock",
        "fig6-sxb-broadcast",
        "fig8-detour",
        "fig9-combined-deadlock",
        "fig10-deadlock-free",
        "claim-mdx-vs-mesh",
        "claim-fault-overhead",
        "claim-bc-scaling",
        "claim-scale-2048",
        "claim-saturation",
        "abl-buffer-depth",
        "abl-sxb-placement",
        "ext-multi-fault",
        "ext-adaptive-order",
        "ext-hotspots",
        "ext-switching",
        "ext-diagnosis",
        "ext-reconfig",
    ]
}

/// Runs one experiment by id.
///
/// # Panics
/// Panics on an unknown id (the binary validates first).
pub fn run_experiment(id: &str) -> Vec<Table> {
    match id {
        "fig2-topology" => figures::fig2_topology(),
        "fig3-packet" => figures::fig3_packet(),
        "fig5-bc-deadlock" => figures::fig5_bc_deadlock(),
        "fig6-sxb-broadcast" => figures::fig6_sxb_broadcast(),
        "fig8-detour" => figures::fig8_detour(),
        "fig9-combined-deadlock" => figures::fig9_combined_deadlock(),
        "fig10-deadlock-free" => figures::fig10_deadlock_free(),
        "claim-mdx-vs-mesh" => claims::mdx_vs_mesh(),
        "claim-fault-overhead" => claims::fault_overhead(),
        "claim-bc-scaling" => claims::bc_scaling(),
        "claim-scale-2048" => claims::scale_2048(),
        "claim-saturation" => extensions::saturation(),
        "abl-buffer-depth" => ablations::buffer_depth(),
        "abl-sxb-placement" => ablations::sxb_placement(),
        "ext-multi-fault" => extensions::multi_fault(),
        "ext-adaptive-order" => extensions::adaptive_order(),
        "ext-hotspots" => extensions::hotspots(),
        "ext-switching" => extensions::switching(),
        "ext-diagnosis" => extensions::diagnosis(),
        "ext-reconfig" => extensions::reconfig_policies(),
        other => panic!("unknown experiment id {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_ids_are_unique_and_dispatchable_cheaply() {
        let ids = experiment_ids();
        let set: std::collections::HashSet<&&str> = ids.iter().collect();
        assert_eq!(set.len(), ids.len());
        // The cheap experiments run end-to-end in tests (the heavier ones
        // are covered by the release-mode `experiments` binary runs).
        for id in ["fig3-packet", "fig2-topology", "ext-hotspots"] {
            let tables = run_experiment(id);
            assert!(!tables.is_empty(), "{id}");
            for t in &tables {
                assert!(!t.columns.is_empty());
                assert!(!t.rows.is_empty(), "{id}: empty table {}", t.id);
                let rendered = t.render();
                assert!(rendered.contains(&t.id));
            }
        }
    }

    #[test]
    #[should_panic(expected = "unknown experiment id")]
    fn unknown_id_panics() {
        run_experiment("no-such-thing");
    }

    #[test]
    fn run_schedule_smoke() {
        use mdx_core::{Header, Sr2201Routing};
        use mdx_fault::FaultSet;
        use mdx_topology::{MdCrossbar, Shape};
        let net = Arc::new(MdCrossbar::build(Shape::fig2()));
        let shape = net.shape().clone();
        let scheme = Arc::new(Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap());
        let specs = vec![InjectSpec {
            src_pe: 0,
            header: Header::unicast(shape.coord_of(0), shape.coord_of(7)),
            flits: 4,
            inject_at: 0,
        }];
        let r = run_schedule(net.graph(), scheme, &specs, SimConfig::default());
        assert_eq!(r.stats.delivered, 1);
    }
}
