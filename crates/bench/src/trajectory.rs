//! Cross-run bench trajectory: append-only metric snapshots with
//! regression diffs.
//!
//! A *trajectory file* (`BENCH_fig9.json`, `BENCH_fig10.json`) accumulates
//! one [`TrajectoryEntry`] per invocation of the `experiments trajectory`
//! subcommand: throughput, latency, deadlock rate, and S-XB utilization of
//! a scaled-down Fig. 9 / Fig. 10 sweep. [`append_snapshot`] appends the
//! new entry and diffs it against the previous one, flagging any metric
//! that moved in its bad direction by more than a threshold — so a perf or
//! correctness regression shows up as a trajectory kink in CI, not as a
//! silent drift discovered figures later.
//!
//! Wall-clock timestamps are recorded for humans but excluded from the
//! diff: two snapshots of the same commit compare clean.

use mdx_campaign::{run_campaign_with, CampaignResult, ObsOptions, Scenario, Workload};
use mdx_fault::{enumerate_single_faults, FaultSite};
use mdx_sim::SortedLatencies;
use mdx_topology::{Coord, MdCrossbar, Shape};
use mdx_workloads::TrafficPattern;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Default regression threshold: a metric moving more than this fraction
/// in its bad direction flags the diff.
pub const DEFAULT_THRESHOLD: f64 = 0.10;

/// One metric snapshot of a figure-level sweep.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TrajectoryEntry {
    /// Which sweep this snapshot measures (`fig9`, `fig10`, `serve`,
    /// `tournament`).
    pub figure: String,
    /// Wall-clock seconds since the epoch when the snapshot ran. For
    /// humans reading the file; **never** compared by the diff.
    pub recorded_at_epoch_s: u64,
    /// Wall-clock seconds the sweep itself took. Timing is machine- and
    /// load-dependent, so like the timestamp it is recorded for humans and
    /// excluded from both the regression diff and duplicate detection —
    /// back-to-back runs of one commit must still compare clean.
    pub wall_clock_s: f64,
    /// Scenarios executed.
    pub scenarios: usize,
    /// Fraction of runs that deadlocked.
    pub deadlock_rate: f64,
    /// Fraction of runs that completed.
    pub completed_rate: f64,
    /// Delivered packets per kilocycle, summed over the sweep.
    pub throughput: f64,
    /// Mean delivered-packet latency pooled over the whole sweep, in
    /// cycles (falls back to the mean of per-run medians when rows carry
    /// no latency pool).
    pub mean_latency: f64,
    /// True pooled 95th-percentile latency over every delivered packet of
    /// the sweep, in cycles. Pooling matters: fig9-style runs deliver ~2
    /// packets each, so *averaging per-run percentiles* collapses p95
    /// into p50 (both hit index 0 of a 2-element list) and the file
    /// records `p95 == mean` forever.
    pub p95_latency: f64,
    /// Mean S-XB output utilization over instrumented rows.
    pub sxb_util: f64,
    /// Sweep-wide engine idle-tick fraction (idle ticks / ticks, summed
    /// over every row's self-profile). Deterministic per token set, so it
    /// participates in duplicate detection — but it has no inherent bad
    /// direction, so it is tracked, not regression-diffed.
    pub idle_tick_fraction: f64,
    /// Simulated cycles per wall-clock second across the sweep (total
    /// cycles / total engine run-loop seconds). Machine-dependent: like
    /// `wall_clock_s`, recorded for humans and excluded from both the
    /// regression diff and duplicate detection.
    pub cycles_per_sec: f64,
    /// 99th-percentile `queue` span duration over the serve session's
    /// kept traces, in seconds. Span-derived wall-clock timing is
    /// machine- and load-dependent, so like `wall_clock_s` it is recorded
    /// for humans and excluded from both the regression diff and
    /// duplicate detection. Zero for non-serve figures.
    pub p99_queue_wait_s: f64,
    /// 99th-percentile `run` span duration (engine execution, wall clock)
    /// over the serve session's kept traces, in seconds. Machine-
    /// dependent like `p99_queue_wait_s`; zero for non-serve figures.
    pub p99_engine_run_s: f64,
}

// Hand-written so trajectory files from before `wall_clock_s` (or the
// engine-profile columns) existed still parse: the derived impl treats a
// missing field as an error, which would brick every committed
// BENCH_*.json on upgrade.
impl Deserialize for TrajectoryEntry {
    fn from_value(v: &serde::value::Value) -> Result<TrajectoryEntry, serde::de::Error> {
        let entries = v
            .as_map()
            .ok_or_else(|| serde::de::Error::expected("a trajectory entry object"))?;
        let lenient = |name: &str| match entries.iter().find(|(k, _)| k == name) {
            Some((_, v)) => Deserialize::from_value(v),
            None => Ok(0.0),
        };
        let wall_clock_s = lenient("wall_clock_s")?;
        let idle_tick_fraction = lenient("idle_tick_fraction")?;
        let cycles_per_sec = lenient("cycles_per_sec")?;
        let p99_queue_wait_s = lenient("p99_queue_wait_s")?;
        let p99_engine_run_s = lenient("p99_engine_run_s")?;
        Ok(TrajectoryEntry {
            figure: Deserialize::from_value(serde::de::field(entries, "figure")?)?,
            recorded_at_epoch_s: Deserialize::from_value(serde::de::field(
                entries,
                "recorded_at_epoch_s",
            )?)?,
            wall_clock_s,
            scenarios: Deserialize::from_value(serde::de::field(entries, "scenarios")?)?,
            deadlock_rate: Deserialize::from_value(serde::de::field(entries, "deadlock_rate")?)?,
            completed_rate: Deserialize::from_value(serde::de::field(entries, "completed_rate")?)?,
            throughput: Deserialize::from_value(serde::de::field(entries, "throughput")?)?,
            mean_latency: Deserialize::from_value(serde::de::field(entries, "mean_latency")?)?,
            p95_latency: Deserialize::from_value(serde::de::field(entries, "p95_latency")?)?,
            sxb_util: Deserialize::from_value(serde::de::field(entries, "sxb_util")?)?,
            idle_tick_fraction,
            cycles_per_sec,
            p99_queue_wait_s,
            p99_engine_run_s,
        })
    }
}

/// A trajectory file: every snapshot ever appended for one figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryFile {
    /// The figure this file tracks.
    pub figure: String,
    /// Snapshots, oldest first.
    pub entries: Vec<TrajectoryEntry>,
}

/// One metric's movement between the two most recent snapshots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricDelta {
    /// Metric name (field name of [`TrajectoryEntry`]).
    pub metric: String,
    /// Previous snapshot's value.
    pub previous: f64,
    /// New snapshot's value.
    pub current: f64,
    /// Signed relative change (`(current - previous) / |previous|`; a full
    /// `1.0` when rising from exactly zero).
    pub delta: f64,
    /// Whether the movement exceeds the threshold *in the metric's bad
    /// direction* (throughput/completion falling; latency/deadlocks
    /// rising).
    pub regression: bool,
}

/// The result of appending a snapshot: the diff against the previous one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryDiff {
    /// The figure diffed.
    pub figure: String,
    /// True when this was the file's first entry (nothing to diff).
    pub first: bool,
    /// Per-metric movements (empty on the first entry).
    pub deltas: Vec<MetricDelta>,
    /// Number of flagged regressions.
    pub regressions: usize,
    /// True when the new snapshot was measurement-identical to the file's
    /// last entry (timestamp excluded) and the append was skipped — the
    /// file never accumulates byte-duplicate consecutive entries.
    pub duplicate: bool,
}

impl TrajectoryDiff {
    /// Renders the diff as an aligned text block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.first {
            out.push_str(&format!(
                "{}: first snapshot recorded (no previous entry to diff)\n",
                self.figure
            ));
            return out;
        }
        if self.duplicate {
            out.push_str(&format!(
                "{}: snapshot identical to the previous entry; append skipped\n",
                self.figure
            ));
            return out;
        }
        out.push_str(&format!(
            "{} trajectory diff (vs previous entry):\n",
            self.figure
        ));
        for d in &self.deltas {
            out.push_str(&format!(
                "  {:<16} {:>10.4} -> {:>10.4}  ({:+.1}%){}\n",
                d.metric,
                d.previous,
                d.current,
                d.delta * 100.0,
                if d.regression { "  << REGRESSION" } else { "" }
            ));
        }
        if self.regressions > 0 {
            out.push_str(&format!("  {} regression(s) flagged\n", self.regressions));
        }
        out
    }
}

/// Bad direction of each diffed metric: `true` = higher is worse. The
/// sentinel (`crate::sentinel`) scans the same metric set with the same
/// direction convention.
pub(crate) const METRICS: &[(&str, bool)] = &[
    ("deadlock_rate", true),
    ("completed_rate", false),
    ("throughput", false),
    ("mean_latency", true),
    ("p95_latency", true),
];

pub(crate) fn metric_value(e: &TrajectoryEntry, name: &str) -> f64 {
    match name {
        "deadlock_rate" => e.deadlock_rate,
        "completed_rate" => e.completed_rate,
        "throughput" => e.throughput,
        "mean_latency" => e.mean_latency,
        "p95_latency" => e.p95_latency,
        "sxb_util" => e.sxb_util,
        _ => unreachable!("unknown trajectory metric {name}"),
    }
}

fn diff_entries(prev: &TrajectoryEntry, cur: &TrajectoryEntry, threshold: f64) -> Vec<MetricDelta> {
    METRICS
        .iter()
        .map(|&(name, higher_is_worse)| {
            let previous = metric_value(prev, name);
            let current = metric_value(cur, name);
            let delta = if previous.abs() > f64::EPSILON {
                (current - previous) / previous.abs()
            } else if current.abs() > f64::EPSILON {
                1.0
            } else {
                0.0
            };
            let bad_move = if higher_is_worse { delta } else { -delta };
            MetricDelta {
                metric: name.to_string(),
                previous,
                current,
                delta,
                regression: bad_move > threshold,
            }
        })
        .collect()
}

/// Reduces a campaign sweep into a trajectory entry.
fn summarize(figure: &str, result: &CampaignResult) -> TrajectoryEntry {
    let n = result.reports.len().max(1);
    let deadlocks = result.deadlocks().count();
    let completed = result
        .reports
        .iter()
        .filter(|r| r.outcome == "completed")
        .count();
    let delivered: usize = result.reports.iter().map(|r| r.stats.delivered).sum();
    let cycles: u64 = result.reports.iter().map(|r| r.stats.cycles).sum();
    let mean_of = |vals: Vec<f64>| {
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    };
    // Pool every delivered latency of the sweep and take true pooled
    // statistics. Averaging per-run percentiles is wrong for small runs:
    // with ~2 delivered packets per run, `percentile(50)` and
    // `percentile(95)` land on the same index, and the trajectory file
    // records p95 == mean forever.
    let pooled: Vec<u64> = result
        .reports
        .iter()
        .filter_map(|r| r.latencies.as_ref())
        .flatten()
        .copied()
        .collect();
    let (mean_latency, p95_latency) = if pooled.is_empty() {
        // Legacy fallback for sweeps run without the latency pool.
        (
            mean_of(
                result
                    .reports
                    .iter()
                    .filter_map(|r| r.latency_p50.map(|v| v as f64))
                    .collect(),
            ),
            mean_of(
                result
                    .reports
                    .iter()
                    .filter_map(|r| r.latency_p95.map(|v| v as f64))
                    .collect(),
            ),
        )
    } else {
        let mean = pooled.iter().sum::<u64>() as f64 / pooled.len() as f64;
        let sorted = SortedLatencies::from_unsorted(pooled);
        (mean, sorted.percentile(95).map_or(0.0, |v| v as f64))
    };
    // Engine self-profiles: the deterministic idle-tick fraction, plus the
    // machine-dependent simulation speed (fresh rows carry run-loop wall
    // clocks; replayed/cached rows deserialize them as 0 and drop out of
    // the speed denominator).
    let (mut ticks, mut idle_ticks, mut prof_cycles) = (0u64, 0u64, 0u64);
    let mut prof_wall = 0.0f64;
    for p in result.reports.iter().filter_map(|r| r.profile.as_ref()) {
        ticks += p.ticks;
        idle_ticks += p.idle_ticks;
        if p.wall_s > 0.0 {
            prof_cycles += p.cycles;
            prof_wall += p.wall_s;
        }
    }
    TrajectoryEntry {
        figure: figure.to_string(),
        recorded_at_epoch_s: SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        // Stamped by the snapshot functions, which own the sweep timer.
        wall_clock_s: 0.0,
        scenarios: result.reports.len(),
        deadlock_rate: deadlocks as f64 / n as f64,
        completed_rate: completed as f64 / n as f64,
        throughput: if cycles == 0 {
            0.0
        } else {
            delivered as f64 * 1000.0 / cycles as f64
        },
        mean_latency,
        p95_latency,
        sxb_util: mean_of(
            result
                .reports
                .iter()
                .filter_map(|r| r.telemetry.as_ref().and_then(|t| t.sxb_util))
                .collect(),
        ),
        idle_tick_fraction: if ticks == 0 {
            0.0
        } else {
            idle_ticks as f64 / ticks as f64
        },
        cycles_per_sec: if prof_wall > 0.0 {
            prof_cycles as f64 / prof_wall
        } else {
            0.0
        },
        // Stamped by `snapshot_serve`, which owns the span collector.
        p99_queue_wait_s: 0.0,
        p99_engine_run_s: 0.0,
    }
}

fn metrics_opts() -> ObsOptions {
    ObsOptions {
        metrics: true,
        // Rows carry their delivered-latency pool so `summarize` can take
        // true sweep-wide percentiles.
        latencies: true,
        ..ObsOptions::default()
    }
}

/// A scaled-down Fig. 9 sweep (broadcast + detoured unicast around a
/// faulty router, both D-XB placements): the figure's full offset range
/// at half the seeds, so the separate-D-XB deadlock rate stays non-zero
/// and trackable.
pub fn snapshot_fig9() -> TrajectoryEntry {
    let shape = Shape::fig2();
    let faulty = shape.index_of(Coord::new(&[1, 0]));
    let scenarios: Vec<Scenario> = ["separate-dxb", "sr2201"]
        .iter()
        .flat_map(|scheme| {
            let shape = &shape;
            (10..38u64).flat_map(move |offset| {
                (0..4u64).map(move |seed| {
                    Scenario::new(
                        vec![4, 3],
                        scheme,
                        mdx_campaign::detour_stress_for(shape, 24, offset),
                        seed,
                    )
                    .with_faults([FaultSite::Router(faulty)])
                })
            })
        })
        .collect();
    let start = Instant::now();
    let mut e = summarize("fig9", &run_campaign_with(scenarios, &metrics_opts()));
    e.wall_clock_s = start.elapsed().as_secs_f64();
    e
}

/// A scaled-down Fig. 10 sweep (the paper's scheme under every single
/// fault, mixed traffic): (fault-free + every single fault) x 2 seeds.
pub fn snapshot_fig10() -> TrajectoryEntry {
    let net = MdCrossbar::build(Shape::fig2());
    let mut sites: Vec<Option<FaultSite>> = vec![None];
    sites.extend(enumerate_single_faults(&net).into_iter().map(Some));
    let scenarios: Vec<Scenario> = sites
        .iter()
        .flat_map(|site| {
            (0..2u64).map(move |seed| {
                Scenario::new(
                    vec![4, 3],
                    "sr2201",
                    Workload::Mixed {
                        pattern: TrafficPattern::UniformRandom,
                        rate: 0.02,
                        packet_flits: 12,
                        window: 200,
                        broadcast_rate: 0.002,
                    },
                    seed,
                )
                .with_faults(*site)
            })
        })
        .collect();
    let start = Instant::now();
    let mut e = summarize("fig10", &run_campaign_with(scenarios, &metrics_opts()));
    e.wall_clock_s = start.elapsed().as_secs_f64();
    e
}

/// 99th-percentile of a set of span durations (nearest-rank on the
/// sorted set, matching [`SortedLatencies`]' index convention).
fn p99_of(mut vals: Vec<f64>) -> f64 {
    if vals.is_empty() {
        return 0.0;
    }
    vals.sort_by(|a, b| a.partial_cmp(b).expect("finite span durations"));
    vals[(vals.len() - 1) * 99 / 100]
}

/// A serve-mode sweep: the fig10-style token set pushed through one
/// resident [`mdx_serve::Service`] — every token cold, then every token
/// again as a duplicate that must come back from the result cache. The
/// diffed metrics are row metrics (deterministic per token set); the
/// session's timing lands in `wall_clock_s`, and the session runs fully
/// traced (sample rate 1.0) so the span-derived tail columns
/// `p99_queue_wait_s` / `p99_engine_run_s` come from real request spans.
///
/// # Panics
/// Panics when a request errors or a duplicate misses the cache — either
/// means the service layer itself regressed, which is exactly what this
/// snapshot exists to catch.
pub fn snapshot_serve() -> TrajectoryEntry {
    use mdx_serve::{Request, Response, ServeConfig, Service};
    let net = MdCrossbar::build(Shape::fig2());
    let mut sites: Vec<Option<FaultSite>> = vec![None];
    sites.extend(enumerate_single_faults(&net).into_iter().map(Some));
    let tokens: Vec<String> = sites
        .iter()
        .map(|site| {
            Scenario::new(
                vec![4, 3],
                "sr2201",
                Workload::Mixed {
                    pattern: TrafficPattern::UniformRandom,
                    rate: 0.02,
                    packet_flits: 12,
                    window: 200,
                    broadcast_rate: 0.002,
                },
                1,
            )
            .with_faults(*site)
            .token()
        })
        .collect();

    let start = Instant::now();
    let service = Service::new(&ServeConfig {
        span_sample: Some(1.0),
        ..ServeConfig::default()
    });
    // Drive the full line protocol (not `handle` directly) so each request
    // opens a root span with the queue/cache/run/serialize children the
    // tail columns are computed from.
    let run_line = |token: &str, trace: String| -> Response {
        let line = serde_json::to_string(&Request::run(token).with_trace(trace)).expect("request");
        let body = service.process_line(&line, Instant::now());
        serde_json::from_str(&body).expect("response parses")
    };
    let reports: Vec<_> = tokens
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let resp = run_line(t, format!("traj-cold-{i}"));
            assert!(!resp.is_error(), "serve snapshot: {:?}", resp.error);
            resp.row.expect("row body")
        })
        .collect();
    for (i, t) in tokens.iter().enumerate() {
        let resp = run_line(t, format!("traj-dup-{i}"));
        assert_eq!(resp.cached, Some(true), "duplicate token missed the cache");
    }
    // Tail timings over every kept trace (rate 1.0 keeps them all): the
    // `queue` child is scheduler wait, the `run` child is wall-clock
    // engine execution. Durations are in microseconds.
    let (mut queue_s, mut run_s) = (Vec::new(), Vec::new());
    for trace in service.spans().expect("span collector").kept_traces() {
        for s in &trace {
            if s.unit == mdx_obs::SpanUnit::Micros {
                let secs = s.duration() as f64 / 1e6;
                match s.name.as_str() {
                    "queue" => queue_s.push(secs),
                    "run" => run_s.push(secs),
                    _ => {}
                }
            }
        }
    }
    let mut e = summarize(
        "serve",
        &CampaignResult {
            reports,
            skipped: Vec::new(),
        },
    );
    e.wall_clock_s = start.elapsed().as_secs_f64();
    e.p99_queue_wait_s = p99_of(queue_s);
    e.p99_engine_run_s = p99_of(run_s);
    e
}

/// A cross-scheme tournament sweep: the default zoo grid (every
/// registered scheme on every topology, clean and router-faulted, mixed
/// traffic) reduced to one entry. Unlike the figure snapshots,
/// `completed_rate` here is *grid coverage* — executed cells over total
/// cells — so a scheme falling off its home topology (or a registry
/// change that breaks cell compatibility) kinks the trajectory even when
/// every surviving cell stays healthy. The latency columns are
/// delivered-weighted means of the cells' pooled p50/p95 (cells keep
/// percentiles, not raw pools, so a true cross-grid pool is not
/// reconstructible); columns that do not exist for a tournament
/// (`sxb_util`, the engine profile, the span tails) stay zero.
pub fn snapshot_tournament() -> TrajectoryEntry {
    use mdx_tournament::{run_tournament, TournamentCell, TournamentSpec};
    let spec = TournamentSpec::parse("").expect("the default grid parses");
    let start = Instant::now();
    let table = run_tournament(&spec);
    let ok: Vec<&TournamentCell> = table.ok_cells().collect();
    let runs: usize = ok.iter().map(|c| c.runs).sum();
    let deadlocks: usize = ok.iter().map(|c| c.deadlocks).sum();
    let delivered: usize = ok.iter().map(|c| c.delivered).sum();
    let cycles: u64 = ok.iter().map(|c| c.cycles).sum();
    let weighted = |pick: fn(&TournamentCell) -> Option<u64>| {
        let (mut sum, mut weight) = (0.0f64, 0usize);
        for c in &ok {
            if let Some(v) = pick(c) {
                sum += v as f64 * c.delivered as f64;
                weight += c.delivered;
            }
        }
        if weight == 0 {
            0.0
        } else {
            sum / weight as f64
        }
    };
    TrajectoryEntry {
        figure: "tournament".to_string(),
        recorded_at_epoch_s: SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        wall_clock_s: start.elapsed().as_secs_f64(),
        scenarios: runs,
        deadlock_rate: if runs == 0 {
            0.0
        } else {
            deadlocks as f64 / runs as f64
        },
        completed_rate: if table.cells.is_empty() {
            0.0
        } else {
            ok.len() as f64 / table.cells.len() as f64
        },
        throughput: if cycles == 0 {
            0.0
        } else {
            delivered as f64 * 1000.0 / cycles as f64
        },
        mean_latency: weighted(|c| c.p50),
        p95_latency: weighted(|c| c.p95),
        sxb_util: 0.0,
        idle_tick_fraction: 0.0,
        cycles_per_sec: 0.0,
        p99_queue_wait_s: 0.0,
        p99_engine_run_s: 0.0,
    }
}

/// True when two entries record the same measurement — every field except
/// the wall-clock timestamp, the sweep's wall-clock duration, and the
/// (machine-dependent) simulation speed and span-derived tail timings
/// matches.
fn same_measurement(a: &TrajectoryEntry, b: &TrajectoryEntry) -> bool {
    a.figure == b.figure
        && a.scenarios == b.scenarios
        && a.deadlock_rate == b.deadlock_rate
        && a.completed_rate == b.completed_rate
        && a.throughput == b.throughput
        && a.mean_latency == b.mean_latency
        && a.p95_latency == b.p95_latency
        && a.sxb_util == b.sxb_util
        && a.idle_tick_fraction == b.idle_tick_fraction
}

/// Appends `entry` to the trajectory file at `path` (creating it when
/// absent), writes the file back, and returns the diff against the
/// previously last entry.
///
/// An entry that is measurement-identical to the file's last one (only
/// the timestamp differing) is **not** appended — deterministic sweeps
/// re-run on the same commit would otherwise pile up byte-duplicate
/// consecutive entries. The returned diff has
/// [`TrajectoryDiff::duplicate`] set and zero regressions.
pub fn append_snapshot(
    path: &Path,
    entry: TrajectoryEntry,
    threshold: f64,
) -> io::Result<TrajectoryDiff> {
    let mut file = match std::fs::read_to_string(path) {
        Ok(body) => serde_json::from_str::<TrajectoryFile>(&body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{path:?}: {e}")))?,
        Err(e) if e.kind() == io::ErrorKind::NotFound => TrajectoryFile {
            figure: entry.figure.clone(),
            entries: Vec::new(),
        },
        Err(e) => return Err(e),
    };
    let diff = match file.entries.last() {
        Some(prev) if same_measurement(prev, &entry) => {
            return Ok(TrajectoryDiff {
                figure: entry.figure.clone(),
                first: false,
                deltas: Vec::new(),
                regressions: 0,
                duplicate: true,
            });
        }
        Some(prev) => {
            let deltas = diff_entries(prev, &entry, threshold);
            let regressions = deltas.iter().filter(|d| d.regression).count();
            TrajectoryDiff {
                figure: entry.figure.clone(),
                first: false,
                deltas,
                regressions,
                duplicate: false,
            }
        }
        None => TrajectoryDiff {
            figure: entry.figure.clone(),
            first: true,
            deltas: Vec::new(),
            regressions: 0,
            duplicate: false,
        },
    };
    file.entries.push(entry);
    let body = serde_json::to_string_pretty(&file)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(path, body)?;
    Ok(diff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdx_campaign::ScenarioReport;
    use mdx_sim::SimStats;

    /// A minimal completed row carrying the given delivered-latency pool
    /// (and the per-run percentiles the legacy reduction would read).
    fn row_with_latencies(latencies: Vec<u64>) -> ScenarioReport {
        let scenario = Scenario::new(
            vec![4, 3],
            "sr2201",
            Workload::BroadcastStorm {
                sources: vec![0],
                flits: 8,
            },
            0,
        );
        let sorted = SortedLatencies::from_unsorted(latencies.clone());
        ScenarioReport {
            token: scenario.token(),
            scenario,
            outcome: "completed".to_string(),
            offered: latencies.len(),
            stats: SimStats {
                cycles: 1000,
                flit_hops: 0,
                delivered: latencies.len(),
                dropped: 0,
                unfinished: 0,
                latency_sum: latencies.iter().sum(),
                latency_max: latencies.iter().copied().max().unwrap_or(0),
            },
            latency_p50: sorted.percentile(50),
            latency_p95: sorted.percentile(95),
            latency_p99: sorted.percentile(99),
            hot_channels: Vec::new(),
            deadlock: None,
            digest: String::new(),
            telemetry: None,
            postmortem: None,
            reconfig: None,
            attribution: None,
            latencies: Some(latencies),
            stream: None,
            profile: None,
        }
    }

    #[test]
    fn p95_pools_across_runs_instead_of_averaging_per_run_percentiles() {
        // Two tiny runs with a skewed pool: [10, 500] and [10, 1000]. The
        // old reduction averaged per-run percentiles — with 2 delivered
        // packets, p50 and p95 hit the same index (0), so it reported
        // mean == p95 == 10 (exactly the `BENCH_fig9.json` 41.8/41.8
        // artifact). The pooled reduction separates them.
        let result = CampaignResult {
            reports: vec![
                row_with_latencies(vec![10, 500]),
                row_with_latencies(vec![10, 1000]),
            ],
            skipped: Vec::new(),
        };
        let e = summarize("fig9", &result);
        assert_eq!(e.mean_latency, 380.0); // (10+500+10+1000)/4
        assert_eq!(e.p95_latency, 500.0); // pooled [10,10,500,1000] p95
        assert_ne!(e.mean_latency, e.p95_latency);
    }

    #[test]
    fn summarize_falls_back_without_latency_pools() {
        let mut a = row_with_latencies(vec![10, 10]);
        let mut b = row_with_latencies(vec![10, 1000]);
        a.latencies = None;
        b.latencies = None;
        let result = CampaignResult {
            reports: vec![a, b],
            skipped: Vec::new(),
        };
        // Legacy behavior (and its collapse) preserved for pool-less rows.
        let e = summarize("fig9", &result);
        assert_eq!(e.mean_latency, e.p95_latency);
    }

    fn entry(figure: &str, throughput: f64, deadlock_rate: f64) -> TrajectoryEntry {
        TrajectoryEntry {
            figure: figure.to_string(),
            recorded_at_epoch_s: 0,
            wall_clock_s: 0.0,
            scenarios: 10,
            deadlock_rate,
            completed_rate: 1.0 - deadlock_rate,
            throughput,
            mean_latency: 40.0,
            p95_latency: 90.0,
            sxb_util: 0.2,
            idle_tick_fraction: 0.3,
            cycles_per_sec: 0.0,
            p99_queue_wait_s: 0.0,
            p99_engine_run_s: 0.0,
        }
    }

    #[test]
    fn append_creates_then_diffs_and_flags_direction() {
        let path = std::env::temp_dir().join(format!(
            "mdx-trajectory-test-{}-{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);

        let d1 = append_snapshot(&path, entry("fig9", 2.0, 0.5), 0.10).unwrap();
        assert!(d1.first);
        assert_eq!(d1.regressions, 0);

        // Throughput collapses, deadlocks rise, and (derived) completion
        // falls: all three flagged.
        let d2 = append_snapshot(&path, entry("fig9", 1.0, 0.8), 0.10).unwrap();
        assert!(!d2.first);
        assert_eq!(d2.regressions, 3);
        let by_name = |n: &str| d2.deltas.iter().find(|d| d.metric == n).unwrap().clone();
        assert!(by_name("throughput").regression);
        assert!(by_name("deadlock_rate").regression);
        assert!(by_name("completed_rate").regression);
        assert!(!by_name("mean_latency").regression);
        assert!(d2.render().contains("REGRESSION"));

        // Throughput *rising* and deadlocks *falling* is improvement, not
        // regression.
        let d3 = append_snapshot(&path, entry("fig9", 3.0, 0.1), 0.10).unwrap();
        assert_eq!(d3.regressions, 0);

        // The file accumulated all three entries and round-trips.
        let file: TrajectoryFile =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(file.entries.len(), 3);
        assert_eq!(file.figure, "fig9");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn duplicate_consecutive_snapshot_is_skipped() {
        let path = std::env::temp_dir().join(format!(
            "mdx-trajectory-dup-test-{}-{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);

        let first = append_snapshot(&path, entry("fig9", 2.0, 0.5), 0.10).unwrap();
        assert!(first.first && !first.duplicate);

        // Same measurement, different wall clock: skipped, not appended.
        let mut again = entry("fig9", 2.0, 0.5);
        again.recorded_at_epoch_s = 12345;
        let dup = append_snapshot(&path, again, 0.10).unwrap();
        assert!(dup.duplicate);
        assert_eq!(dup.regressions, 0);
        assert!(dup.deltas.is_empty());
        assert!(dup.render().contains("append skipped"));

        let file: TrajectoryFile =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(file.entries.len(), 1);

        // A genuinely new measurement still appends and diffs.
        let moved = append_snapshot(&path, entry("fig9", 3.0, 0.5), 0.10).unwrap();
        assert!(!moved.duplicate && !moved.first);
        let file: TrajectoryFile =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(file.entries.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wall_clock_is_lenient_on_parse_and_excluded_from_duplicates() {
        // Entries written before `wall_clock_s` existed still parse.
        let legacy = r#"{"figure":"fig9","recorded_at_epoch_s":5,"scenarios":10,
            "deadlock_rate":0.5,"completed_rate":0.5,"throughput":2.0,
            "mean_latency":40.0,"p95_latency":90.0,"sxb_util":0.2}"#;
        let e: TrajectoryEntry = serde_json::from_str(legacy).unwrap();
        assert_eq!(e.wall_clock_s, 0.0);
        assert_eq!(e.scenarios, 10);

        // The new field round-trips...
        let mut stamped = entry("fig9", 2.0, 0.5);
        stamped.wall_clock_s = 3.25;
        let back: TrajectoryEntry =
            serde_json::from_str(&serde_json::to_string(&stamped).unwrap()).unwrap();
        assert_eq!(back.wall_clock_s, 3.25);

        // ...but, like the timestamp, never blocks duplicate detection:
        // the same measurement at a different speed is still a duplicate.
        let mut slower = stamped.clone();
        slower.wall_clock_s = 9.75;
        assert!(same_measurement(&stamped, &slower));
        // And it is not a diffed metric: no delta mentions it.
        let deltas = diff_entries(&stamped, &slower, 0.10);
        assert!(deltas.iter().all(|d| d.metric != "wall_clock_s"));

        // The span-derived tail columns behave the same way: lenient on
        // legacy files (parsed as 0.0 above), excluded from duplicate
        // detection, and never diffed.
        assert_eq!(e.p99_queue_wait_s, 0.0);
        assert_eq!(e.p99_engine_run_s, 0.0);
        let mut tails = stamped.clone();
        tails.p99_queue_wait_s = 0.125;
        tails.p99_engine_run_s = 0.5;
        assert!(same_measurement(&stamped, &tails));
        let back: TrajectoryEntry =
            serde_json::from_str(&serde_json::to_string(&tails).unwrap()).unwrap();
        assert_eq!(back.p99_queue_wait_s, 0.125);
        assert_eq!(back.p99_engine_run_s, 0.5);
        let deltas = diff_entries(&stamped, &tails, 0.10);
        assert!(deltas
            .iter()
            .all(|d| d.metric != "p99_queue_wait_s" && d.metric != "p99_engine_run_s"));
    }

    #[test]
    fn profile_columns_aggregate_and_respect_machine_dependence() {
        use mdx_campaign::RowProfile;
        let profile = |wall_s: f64, cycles: u64, ticks: u64, idle_ticks: u64| RowProfile {
            wall_s,
            cycles,
            cycles_per_sec: 0.0,
            ticks,
            idle_ticks,
            idle_tick_fraction: idle_ticks as f64 / ticks as f64,
            events_per_cycle: 1.0,
            occupancy: vec![0; 10],
            phases: None,
        };
        let mut a = row_with_latencies(vec![10, 20]);
        let mut b = row_with_latencies(vec![30, 40]);
        a.profile = Some(profile(0.5, 1000, 1000, 600));
        // A replayed/cached row: deterministic ticks, zeroed wall clock —
        // it contributes to the idle fraction but not the speed.
        b.profile = Some(profile(0.0, 500, 500, 150));
        let e = summarize(
            "fig9",
            &CampaignResult {
                reports: vec![a, b],
                skipped: Vec::new(),
            },
        );
        assert_eq!(e.idle_tick_fraction, 750.0 / 1500.0);
        assert_eq!(e.cycles_per_sec, 1000.0 / 0.5);

        // Simulation speed is machine-dependent: two snapshots differing
        // only there are still duplicates...
        let mut x = entry("fig9", 2.0, 0.5);
        x.cycles_per_sec = 1.0e6;
        let mut y = x.clone();
        y.cycles_per_sec = 9.0e6;
        assert!(same_measurement(&x, &y));
        let deltas = diff_entries(&x, &y, 0.10);
        assert!(deltas.iter().all(|d| d.metric != "cycles_per_sec"));
        // ...while the idle-tick fraction is a real measurement.
        let mut z = x.clone();
        z.idle_tick_fraction = 0.9;
        assert!(!same_measurement(&x, &z));

        // Entries from before the profile columns existed still parse.
        let legacy = r#"{"figure":"fig9","recorded_at_epoch_s":5,"scenarios":10,
            "deadlock_rate":0.5,"completed_rate":0.5,"throughput":2.0,
            "mean_latency":40.0,"p95_latency":90.0,"sxb_util":0.2}"#;
        let e: TrajectoryEntry = serde_json::from_str(legacy).unwrap();
        assert_eq!(e.idle_tick_fraction, 0.0);
        assert_eq!(e.cycles_per_sec, 0.0);
    }

    #[test]
    fn zero_baseline_rise_counts_as_full_move() {
        let prev = entry("fig10", 1.0, 0.0);
        let cur = entry("fig10", 1.0, 0.25);
        let deltas = diff_entries(&prev, &cur, 0.10);
        let dl = deltas.iter().find(|d| d.metric == "deadlock_rate").unwrap();
        assert_eq!(dl.delta, 1.0);
        assert!(dl.regression);
    }
}
