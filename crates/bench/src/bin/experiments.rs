//! Experiment driver: regenerates the paper's figure-level results.
//!
//! ```text
//! experiments all             # every experiment, in order
//! experiments fig5-bc-deadlock fig6-sxb-broadcast
//! experiments --list
//! experiments --json results/ all
//! ```

use mdx_bench::{experiment_ids, run_experiment};
use std::io::Write;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for id in experiment_ids() {
            println!("{id}");
        }
        return;
    }
    let json_dir = match args.iter().position(|a| a == "--json") {
        Some(i) => {
            args.remove(i);
            if i < args.len() {
                Some(args.remove(i))
            } else {
                eprintln!("--json requires a directory");
                std::process::exit(2);
            }
        }
        None => None,
    };
    if args.is_empty() {
        eprintln!("usage: experiments [--json DIR] (all | <id>...); --list shows ids");
        std::process::exit(2);
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        experiment_ids()
    } else {
        let known = experiment_ids();
        for a in &args {
            if !known.contains(&a.as_str()) {
                eprintln!("unknown experiment id: {a} (try --list)");
                std::process::exit(2);
            }
        }
        args.iter().map(|s| s.as_str()).collect()
    };
    for id in ids {
        let start = std::time::Instant::now();
        let tables = run_experiment(id);
        for t in &tables {
            println!("{}", t.render());
            if let Some(dir) = &json_dir {
                std::fs::create_dir_all(dir).expect("create json dir");
                let path = format!("{dir}/{}.json", t.id);
                let mut f = std::fs::File::create(&path).expect("create json file");
                let body = serde_json::to_string_pretty(t).expect("serialize table");
                f.write_all(body.as_bytes()).expect("write json");
            }
        }
        eprintln!(
            "[{} finished in {:.1}s]\n",
            id,
            start.elapsed().as_secs_f64()
        );
    }
}
