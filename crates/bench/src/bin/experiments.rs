//! Experiment driver: regenerates the paper's figure-level results.
//!
//! ```text
//! experiments all             # every experiment, in order
//! experiments fig5-bc-deadlock fig6-sxb-broadcast
//! experiments --list
//! experiments --json results/ all
//! experiments trajectory --dir .          # append BENCH_fig9/fig10 snapshots
//! experiments trajectory --fail-on-regression
//! experiments sentinel --dir .            # median/MAD scan of BENCH_*.json
//! experiments sentinel --min-points 6 --mad-k 3.0 file.json
//! ```

use mdx_bench::{experiment_ids, run_experiment};
use std::io::Write;

/// `experiments trajectory [--dir DIR] [--threshold FRAC] [--fail-on-regression]`:
/// runs the scaled-down fig9/fig10 sweeps, the serve-mode session, and
/// the default cross-scheme tournament grid, appends one snapshot each to
/// `BENCH_fig9.json` / `BENCH_fig10.json` / `BENCH_serve.json` /
/// `BENCH_tournament.json` under DIR, and prints the diff against the
/// previous snapshot. Every snapshot records the sweep's wall-clock
/// seconds (reported here, never diffed).
fn cmd_trajectory(args: &[String]) -> ! {
    let mut dir = ".".to_string();
    let mut threshold = mdx_bench::DEFAULT_THRESHOLD;
    let mut fail_on_regression = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dir" => match it.next() {
                Some(d) => dir = d.clone(),
                None => {
                    eprintln!("--dir requires a directory");
                    std::process::exit(2);
                }
            },
            "--threshold" => match it.next().and_then(|t| t.parse::<f64>().ok()) {
                Some(t) => threshold = t,
                None => {
                    eprintln!("--threshold requires a fraction (e.g. 0.10)");
                    std::process::exit(2);
                }
            },
            "--fail-on-regression" => fail_on_regression = true,
            other => {
                eprintln!("unknown trajectory flag: {other}");
                std::process::exit(2);
            }
        }
    }
    std::fs::create_dir_all(&dir).expect("create trajectory dir");
    let mut regressions = 0usize;
    for (file, entry) in [
        ("BENCH_fig9.json", mdx_bench::snapshot_fig9()),
        ("BENCH_fig10.json", mdx_bench::snapshot_fig10()),
        ("BENCH_serve.json", mdx_bench::snapshot_serve()),
        ("BENCH_tournament.json", mdx_bench::snapshot_tournament()),
    ] {
        let path = std::path::Path::new(&dir).join(file);
        let wall = entry.wall_clock_s;
        let diff = mdx_bench::append_snapshot(&path, entry, threshold).expect("append snapshot");
        print!("{}", diff.render());
        println!("  -> {} (sweep took {wall:.1}s)", path.display());
        regressions += diff.regressions;
    }
    if fail_on_regression && regressions > 0 {
        eprintln!("trajectory: {regressions} regression(s) beyond threshold");
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// `experiments sentinel [--dir DIR] [--min-points N] [--mad-k K]
/// [--rel-floor F] [FILE..]`: scans each trajectory file (explicit FILEs,
/// or the four `BENCH_*.json` under DIR, skipping absent ones) with the
/// median/MAD changepoint detector and exits nonzero on any confirmed
/// regression. Unlike `trajectory`, this runs no sweeps — it judges the
/// committed history as it stands, so CI can gate on it cheaply.
fn cmd_sentinel(args: &[String]) -> ! {
    let mut dir = ".".to_string();
    let mut cfg = mdx_bench::SentinelConfig::default();
    let mut files: Vec<String> = Vec::new();
    let mut it = args.iter();
    let missing = |flag: &str, what: &str| -> ! {
        eprintln!("{flag} requires {what}");
        std::process::exit(2);
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dir" => match it.next() {
                Some(d) => dir = d.clone(),
                None => missing("--dir", "a directory"),
            },
            "--min-points" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.min_points = n,
                None => missing("--min-points", "a count"),
            },
            "--mad-k" => match it.next().and_then(|v| v.parse().ok()) {
                Some(k) => cfg.mad_k = k,
                None => missing("--mad-k", "a number (e.g. 4.0)"),
            },
            "--rel-floor" => match it.next().and_then(|v| v.parse().ok()) {
                Some(f) => cfg.rel_floor = f,
                None => missing("--rel-floor", "a fraction (e.g. 0.05)"),
            },
            other if !other.starts_with("--") => files.push(other.to_string()),
            other => {
                eprintln!("unknown sentinel flag: {other}");
                std::process::exit(2);
            }
        }
    }
    if files.is_empty() {
        for f in [
            "BENCH_fig9.json",
            "BENCH_fig10.json",
            "BENCH_serve.json",
            "BENCH_tournament.json",
        ] {
            let p = std::path::Path::new(&dir).join(f);
            if p.exists() {
                files.push(p.display().to_string());
            }
        }
        if files.is_empty() {
            eprintln!("sentinel: no BENCH_*.json under {dir}");
            std::process::exit(2);
        }
    }
    let mut regressions = 0usize;
    for f in &files {
        match mdx_bench::scan_path(std::path::Path::new(f), &cfg) {
            Ok(report) => {
                print!("{}", report.render());
                regressions += report.regressions;
            }
            Err(e) => {
                eprintln!("sentinel: {f}: {e}");
                std::process::exit(2);
            }
        }
    }
    if regressions > 0 {
        eprintln!("sentinel: {regressions} confirmed regression(s)");
        std::process::exit(1);
    }
    println!("sentinel: clean ({} file(s))", files.len());
    std::process::exit(0);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("sentinel") {
        cmd_sentinel(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("trajectory") {
        cmd_trajectory(&args[1..]);
    }
    if args.iter().any(|a| a == "--list") {
        for id in experiment_ids() {
            println!("{id}");
        }
        return;
    }
    let json_dir = match args.iter().position(|a| a == "--json") {
        Some(i) => {
            args.remove(i);
            if i < args.len() {
                Some(args.remove(i))
            } else {
                eprintln!("--json requires a directory");
                std::process::exit(2);
            }
        }
        None => None,
    };
    if args.is_empty() {
        eprintln!("usage: experiments [--json DIR] (all | <id>...); --list shows ids");
        std::process::exit(2);
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        experiment_ids()
    } else {
        let known = experiment_ids();
        for a in &args {
            if !known.contains(&a.as_str()) {
                eprintln!("unknown experiment id: {a} (try --list)");
                std::process::exit(2);
            }
        }
        args.iter().map(|s| s.as_str()).collect()
    };
    for id in ids {
        let start = std::time::Instant::now();
        let tables = run_experiment(id);
        for t in &tables {
            println!("{}", t.render());
            if let Some(dir) = &json_dir {
                std::fs::create_dir_all(dir).expect("create json dir");
                let path = format!("{dir}/{}.json", t.id);
                let mut f = std::fs::File::create(&path).expect("create json file");
                let body = serde_json::to_string_pretty(t).expect("serialize table");
                f.write_all(body.as_bytes()).expect("write json");
            }
        }
        eprintln!(
            "[{} finished in {:.1}s]\n",
            id,
            start.elapsed().as_secs_f64()
        );
    }
}
