//! Reproductions of the paper's figures (Figs. 2-10).

use crate::report::{f3, pct, Table};
use crate::run_schedule;
use mdx_campaign::{
    detour_stress_for, run_campaign_with, ObsOptions, Scenario, ScenarioReport, Workload,
};
use mdx_core::{
    trace_broadcast, trace_unicast, Header, NaiveBroadcast, Packet, RouteChange, RoutingConfig,
    Sr2201Routing,
};
use mdx_deadlock::verify_scheme;
use mdx_deadlock::waitgraph::TrafficFamily;
use mdx_fault::{enumerate_single_faults, FaultSet, FaultSite};
use mdx_sim::{InjectSpec, PacketOutcome, SimConfig, SimOutcome};
use mdx_topology::{
    embed, mesh::DirectNetwork, mesh::Wrap, metrics, Coord, MdCrossbar, Node, Shape,
};
use rayon::prelude::*;
use std::sync::Arc;

fn fig2_net() -> Arc<MdCrossbar> {
    Arc::new(MdCrossbar::build(Shape::fig2()))
}

/// Mean of one per-row telemetry field over instrumented campaign rows;
/// `-` when no row carried telemetry.
fn mean_util<'a>(
    rows: impl Iterator<Item = &'a ScenarioReport>,
    field: impl Fn(&mdx_campaign::RowTelemetry) -> Option<f64>,
) -> String {
    let vals: Vec<f64> = rows
        .filter_map(|r| r.telemetry.as_ref())
        .filter_map(&field)
        .collect();
    if vals.is_empty() {
        "-".to_string()
    } else {
        f3(vals.iter().sum::<f64>() / vals.len() as f64)
    }
}

/// Share of total delivered latency spent in the phases `cycles` selects,
/// pooled over instrumented campaign rows; `-` when no row carried an
/// attribution section or nothing was delivered.
fn phase_share<'a>(
    rows: impl Iterator<Item = &'a ScenarioReport>,
    cycles: impl Fn(&mdx_campaign::RowAttribution) -> u64,
) -> String {
    let (mut num, mut den) = (0u64, 0u64);
    for att in rows.filter_map(|r| r.attribution.as_ref()) {
        num += cycles(att);
        den += att.latency_total;
    }
    if den == 0 {
        "-".to_string()
    } else {
        format!("{:.1}%", 100.0 * num as f64 / den as f64)
    }
}

/// The wait-class cycles of one attribution row: every phase where the
/// packet held resources without moving (queueing, S-XB serialization,
/// blocked behind any holder class, epoch pauses).
fn blocked_cycles(att: &mdx_campaign::RowAttribution) -> u64 {
    att.inject_wait
        + att.epoch_pause
        + att.gather_wait
        + att.blocked_normal
        + att.blocked_gather
        + att.blocked_detour
}

fn bc_request(shape: &Shape, src: usize, flits: usize, at: u64) -> InjectSpec {
    InjectSpec {
        src_pe: src,
        header: Header::broadcast_request(shape.coord_of(src)),
        flits,
        inject_at: at,
    }
}

fn naive_bc(shape: &Shape, src: usize, flits: usize, at: u64) -> InjectSpec {
    let c = shape.coord_of(src);
    InjectSpec {
        src_pe: src,
        header: Header {
            rc: RouteChange::Broadcast,
            dest: c,
            src: c,
        },
        flits,
        inject_at: at,
    }
}

/// Fig. 2 + Sec. 3.1: structure and structural claims of the MD crossbar.
pub fn fig2_topology() -> Vec<Table> {
    let mut t = Table::new(
        "fig2-topology",
        "multi-dimensional crossbar structure vs mesh/torus/hypercube",
        &[
            "topology",
            "PEs",
            "router ports",
            "switches",
            "channels",
            "diameter (xbar hops)",
            "diameter (channel hops)",
            "bisection channels",
        ],
    );
    let mut push = |m: metrics::TopologyMetrics| {
        t.row(vec![
            m.name.clone(),
            m.num_pes.to_string(),
            m.router_ports.to_string(),
            m.num_switches.to_string(),
            m.num_channels.to_string(),
            m.diameter_xbar_hops.to_string(),
            m.diameter_channel_hops.to_string(),
            m.bisection_channels.to_string(),
        ]);
    };
    for dims in [&[4u16, 3][..], &[8, 8], &[16, 16, 8]] {
        push(metrics::md_crossbar_metrics(&MdCrossbar::build(
            Shape::new(dims).unwrap(),
        )));
    }
    for dims in [&[4u16, 3][..], &[8, 8]] {
        let shape = Shape::new(dims).unwrap();
        push(metrics::direct_network_metrics(&DirectNetwork::build(
            shape.clone(),
            Wrap::Mesh,
        )));
        push(metrics::direct_network_metrics(&DirectNetwork::build(
            shape,
            Wrap::Torus,
        )));
    }
    push(metrics::direct_network_metrics(
        &DirectNetwork::hypercube(64).unwrap(),
    ));
    t.note(format!(
        "2048-PE port-count claim: md-crossbar 16x16x8 needs {} router ports; a hypercube needs {}",
        metrics::md_crossbar_router_ports(&Shape::sr2201_full()),
        metrics::hypercube_router_ports(2048),
    ));

    // Conflict-free remapping claims.
    let mut r = Table::new(
        "fig2-remap",
        "conflict-free remapping of workload topologies (Sec. 3.1)",
        &[
            "schedule",
            "phases",
            "conflicts on md-crossbar",
            "conflicts on mesh",
        ],
    );
    let shape = Shape::new(&[8, 8]).unwrap();
    let net = MdCrossbar::build(shape.clone());
    let mesh = DirectNetwork::build(shape.clone(), Wrap::Mesh);
    let schedules: Vec<(&str, Vec<embed::Phase>)> = vec![
        ("ring shifts", embed::ring_phases(64)),
        ("mesh neighbor exchange", embed::mesh_phases(&shape)),
        ("hypercube exchange", embed::hypercube_phases(&shape)),
        ("binary tree (levels)", embed::tree_phases(6)),
    ];
    for (name, phases) in schedules {
        let on_mdx: usize = phases
            .iter()
            .map(|p| embed::phase_conflicts_mdx(&net, p))
            .sum();
        let on_mesh: usize = phases
            .iter()
            .map(|p| embed::phase_conflicts_direct(&mesh, p))
            .sum();
        r.row(vec![
            name.to_string(),
            phases.len().to_string(),
            on_mdx.to_string(),
            on_mesh.to_string(),
        ]);
    }
    vec![t, r]
}

/// Figs. 3 and 4: packet format and RC-bit meanings.
pub fn fig3_packet() -> Vec<Table> {
    let mut t = Table::new(
        "fig3-packet",
        "packet format and RC encoding round-trip",
        &["RC bits", "meaning", "example wire bytes (header, 2D)"],
    );
    let shape = Shape::fig2();
    for bits in 0..=3u8 {
        let rc = RouteChange::from_bits(bits).unwrap();
        let h = Header {
            rc,
            dest: Coord::new(&[3, 2]),
            src: Coord::new(&[1, 0]),
        };
        let wire = Packet::new(h, vec![0u8; 0]).encode(&shape);
        t.row(vec![
            format!("{bits:02b}"),
            rc.to_string(),
            wire.iter()
                .take(9)
                .map(|b| format!("{b:02x}"))
                .collect::<Vec<_>>()
                .join(" "),
        ]);
    }
    t.note("receiving address effective only when RC=0 (paper Fig. 4)");
    vec![t]
}

/// Fig. 5: concurrent unserialized broadcasts deadlock.
pub fn fig5_bc_deadlock() -> Vec<Table> {
    let mut t = Table::new(
        "fig5-bc-deadlock",
        "naive broadcast: deadlock rate vs concurrent broadcasts (4x3, 16-flit packets, 32 seeds)",
        &["concurrent broadcasts", "deadlocks", "rate"],
    );
    let net = fig2_net();
    let shape = net.shape().clone();
    let sources = [0usize, 4, 8, 3, 7, 11];
    for k in 1..=5usize {
        let deadlocks: usize = (0..32u64)
            .into_par_iter()
            .filter(|&seed| {
                let scheme = Arc::new(NaiveBroadcast::new(net.clone()));
                let specs: Vec<InjectSpec> = sources[..k]
                    .iter()
                    .map(|&s| naive_bc(&shape, s, 16, 0))
                    .collect();
                run_schedule(
                    net.graph(),
                    scheme,
                    &specs,
                    SimConfig {
                        arb_seed: seed,
                        ..SimConfig::default()
                    },
                )
                .outcome
                .is_deadlock()
            })
            .count();
        t.row(vec![
            k.to_string(),
            deadlocks.to_string(),
            pct(deadlocks, 32),
        ]);
    }
    // Exhibit one concrete cycle, like the figure.
    let scheme = Arc::new(NaiveBroadcast::new(net.clone()));
    let specs = vec![naive_bc(&shape, 0, 16, 0), naive_bc(&shape, 4, 16, 0)];
    for seed in 0..32 {
        let r = run_schedule(
            net.graph(),
            scheme.clone(),
            &specs,
            SimConfig {
                arb_seed: seed,
                ..SimConfig::default()
            },
        );
        if let SimOutcome::Deadlock(info) = r.outcome {
            t.note(format!("example cyclic wait (seed {seed}):"));
            for e in &info.cycle {
                t.note(format!(
                    "  {} waits for {} held by {}",
                    e.waiter, e.channel, e.holder
                ));
            }
            break;
        }
    }
    vec![t]
}

/// Fig. 6: the S-XB serialized broadcast completes for any concurrency.
pub fn fig6_sxb_broadcast() -> Vec<Table> {
    let mut t = Table::new(
        "fig6-sxb-broadcast",
        "S-XB serialized broadcast: completion and latency vs concurrent broadcasts (4x3)",
        &[
            "concurrent broadcasts",
            "completed",
            "deliveries/bc",
            "mean latency",
            "max latency",
        ],
    );
    let net = fig2_net();
    let shape = net.shape().clone();
    let sources = [0usize, 4, 8, 3, 7, 11];
    for k in 1..=6usize {
        let scheme = Arc::new(Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap());
        let specs: Vec<InjectSpec> = sources[..k]
            .iter()
            .map(|&s| bc_request(&shape, s, 16, 0))
            .collect();
        let r = run_schedule(net.graph(), scheme, &specs, SimConfig::default());
        assert_eq!(r.outcome, SimOutcome::Completed);
        let delivered = r
            .packets
            .iter()
            .filter(|p| p.outcome == PacketOutcome::Delivered)
            .count();
        let deliveries = r.packets[0].deliveries.len();
        t.row(vec![
            k.to_string(),
            format!("{delivered}/{k}"),
            deliveries.to_string(),
            f3(r.stats.mean_latency()),
            r.stats.latency_max.to_string(),
        ]);
    }
    t.note("latency grows ~linearly with concurrency: broadcasts serialize at the S-XB in arrival order (Fig. 6 step 2)");

    // The four-step route trace of Fig. 6.
    let mut steps = Table::new(
        "fig6-trace",
        "broadcast fan-out edges from PE3 (paper Fig. 6 steps)",
        &["stage", "edges"],
    );
    let scheme = Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap();
    let trace = trace_broadcast(&scheme, net.graph(), 3, shape.coord_of(3)).unwrap();
    let sxb = Node::Xbar(scheme.config().sxb());
    let mut stage1 = Vec::new();
    let mut stage2 = Vec::new();
    let mut rest = Vec::new();
    for (a, b) in &trace.edges {
        if *b == sxb {
            stage1.push(format!("{a}->{b}"));
        } else if *a == sxb {
            stage2.push(format!("{a}->{b}"));
        } else {
            rest.push(format!("{a}->{b}"));
        }
    }
    steps.row(vec!["1: request to S-XB".into(), stage1.join(", ")]);
    steps.row(vec!["2: S-XB emission".into(), stage2.join(", ")]);
    steps.row(vec![
        "3-4: fan-out and delivery".into(),
        format!(
            "{} edges, {} PEs delivered",
            rest.len(),
            trace.delivered.len()
        ),
    ]);
    vec![t, steps]
}

/// Figs. 7-8: single-fault detour delivery and overhead.
pub fn fig8_detour() -> Vec<Table> {
    let mut t = Table::new(
        "fig8-detour",
        "hardware detour: delivery and hop overhead under every single fault (8x8)",
        &[
            "fault class",
            "faults",
            "usable pairs",
            "delivered",
            "detoured pairs",
            "mean extra xbar hops (detoured)",
        ],
    );
    let net = Arc::new(MdCrossbar::build(Shape::new(&[8, 8]).unwrap()));
    let shape = net.shape().clone();
    let n = shape.num_pes();
    let mut classes: Vec<(&str, Vec<FaultSite>)> = vec![
        ("router", Vec::new()),
        ("x-crossbar", Vec::new()),
        ("y-crossbar", Vec::new()),
        ("pe", Vec::new()),
    ];
    for site in enumerate_single_faults(&net) {
        let idx = match site {
            FaultSite::Router(_) => 0,
            FaultSite::Xbar(x) if x.dim == 0 => 1,
            FaultSite::Xbar(_) => 2,
            FaultSite::Pe(_) => 3,
        };
        classes[idx].1.push(site);
    }
    for (name, sites) in &classes {
        let results: Vec<(usize, usize, usize, usize)> = sites
            .par_iter()
            .map(|&site| {
                let faults = FaultSet::single(site);
                let s = Sr2201Routing::new(net.clone(), &faults).unwrap();
                let mut pairs = 0;
                let mut delivered = 0;
                let mut detoured = 0;
                let mut extra = 0usize;
                for src in 0..n {
                    for dst in 0..n {
                        if src == dst || !faults.pe_usable(src) || !faults.pe_usable(dst) {
                            continue;
                        }
                        pairs += 1;
                        let h = Header::unicast(shape.coord_of(src), shape.coord_of(dst));
                        if let Ok(tr) = trace_unicast(&s, net.graph(), h, src) {
                            delivered += 1;
                            if tr.used_detour() {
                                detoured += 1;
                                let base =
                                    shape.xbar_hops(shape.coord_of(src), shape.coord_of(dst));
                                extra += tr.xbar_hops() - base;
                            }
                        }
                    }
                }
                (pairs, delivered, detoured, extra)
            })
            .collect();
        let pairs: usize = results.iter().map(|r| r.0).sum();
        let delivered: usize = results.iter().map(|r| r.1).sum();
        let detoured: usize = results.iter().map(|r| r.2).sum();
        let extra: usize = results.iter().map(|r| r.3).sum();
        t.row(vec![
            name.to_string(),
            sites.len().to_string(),
            pairs.to_string(),
            pct(delivered, pairs),
            pct(detoured, pairs),
            if detoured == 0 {
                "-".to_string()
            } else {
                f3(extra as f64 / detoured as f64)
            },
        ]);
    }

    // The exact Fig. 8 step trace.
    let mut steps = Table::new(
        "fig8-trace",
        "the paper's Fig. 8 route: (0,0)->(1,1) with faulty router (1,0) on 4x3",
        &["route"],
    );
    let small = fig2_net();
    let fshape = small.shape().clone();
    let faults = FaultSet::single(FaultSite::Router(fshape.index_of(Coord::new(&[1, 0]))));
    let s = Sr2201Routing::new(small.clone(), &faults).unwrap();
    let h = Header::unicast(Coord::new(&[0, 0]), Coord::new(&[1, 1]));
    let tr = trace_unicast(&s, small.graph(), h, 0).unwrap();
    steps.row(vec![tr.pretty()]);
    steps.note(format!(
        "S-XB = D-XB = {} (the deadlock-free choice); RC resets to normal at the D-XB",
        s.config().dxb()
    ));
    vec![t, steps]
}

/// Fig. 9: D-XB != S-XB deadlocks under combined broadcast + detour traffic.
///
/// The offsets x seeds stress loop runs on the campaign engine, so every
/// deadlock found here comes with a replayable scenario token.
pub fn fig9_combined_deadlock() -> Vec<Table> {
    let mut t = Table::new(
        "fig9-combined-deadlock",
        "broadcast + detoured unicast, faulty router (1,0) on 4x3: deadlock rate over injection offsets x 8 seeds",
        &[
            "configuration",
            "runs",
            "deadlocks",
            "rate",
            "S-XB util",
            "D-XB util",
            "blocked %",
            "detour %",
        ],
    );
    let shape = Shape::fig2();
    let faulty = shape.index_of(Coord::new(&[1, 0]));
    for (label, scheme) in [
        ("D-XB != S-XB (fig9)", "separate-dxb"),
        ("D-XB = S-XB (fig10)", "sr2201"),
    ] {
        let scenarios: Vec<Scenario> = (10..38u64)
            .flat_map(|offset| {
                let shape = &shape;
                (0..8u64).map(move |seed| {
                    Scenario::new(
                        vec![4, 3],
                        scheme,
                        detour_stress_for(shape, 24, offset),
                        seed,
                    )
                    .with_faults([FaultSite::Router(faulty)])
                })
            })
            .collect();
        let result = run_campaign_with(
            scenarios,
            &ObsOptions {
                metrics: true,
                attribution: true,
                ..ObsOptions::default()
            },
        );
        let runs = result.reports.len();
        let deadlocks = result.deadlocks().count();
        t.row(vec![
            label.to_string(),
            runs.to_string(),
            deadlocks.to_string(),
            pct(deadlocks, runs),
            mean_util(result.reports.iter(), |t| t.sxb_util),
            mean_util(result.reports.iter(), |t| t.dxb_util),
            phase_share(result.reports.iter(), blocked_cycles),
            phase_share(result.reports.iter(), |a| a.detour_transfer),
        ]);
        // Exhibit one cycle, with its replay token.
        let witness = result.deadlocks().next();
        if let Some(r) = witness {
            t.note(format!("example cycle ({}):", r.scenario));
            if let Some(info) = &r.deadlock {
                for e in &info.cycle {
                    t.note(format!(
                        "  {} waits for {} held by {}",
                        e.waiter, e.channel, e.holder
                    ));
                }
            }
            t.note(format!("replay: campaign replay {}", r.token));
        }
    }
    t.note(
        "blocked % / detour % = attributed share of delivered-packet latency \
         (wait phases incl. S-XB serialization / RC=3 detour transfer)",
    );
    vec![t]
}

/// Fig. 10: the paper's scheme — randomized stress and static certification.
pub fn fig10_deadlock_free() -> Vec<Table> {
    let mut t = Table::new(
        "fig10-stress",
        "paper scheme (D-XB = S-XB): randomized mixed traffic under faults, 4x3",
        &[
            "fault",
            "runs",
            "deadlocks",
            "undelivered packets",
            "S-XB util",
            "D-XB util",
            "blocked %",
            "detour %",
        ],
    );
    let net = fig2_net();
    let shape = net.shape().clone();
    let mut sites: Vec<Option<FaultSite>> = vec![None];
    sites.extend(enumerate_single_faults(&net).into_iter().map(Some));
    // One campaign over every (fault site, seed) cell; rows regroup by site.
    let scenarios: Vec<Scenario> = sites
        .iter()
        .flat_map(|site| {
            (0..16u64).map(move |seed| {
                Scenario::new(
                    vec![4, 3],
                    "sr2201",
                    Workload::Mixed {
                        pattern: mdx_workloads::TrafficPattern::UniformRandom,
                        rate: 0.02,
                        packet_flits: 12,
                        window: 200,
                        broadcast_rate: 0.002,
                    },
                    seed,
                )
                .with_faults(*site)
            })
        })
        .collect();
    let result = run_campaign_with(
        scenarios,
        &ObsOptions {
            metrics: true,
            attribution: true,
            ..ObsOptions::default()
        },
    );
    for site in &sites {
        let site_faults: Vec<FaultSite> = site.iter().copied().collect();
        let rows: Vec<_> = result
            .reports
            .iter()
            .filter(|r| r.scenario.faults == site_faults)
            .collect();
        let deadlocks = rows.iter().filter(|r| r.is_deadlock()).count();
        let undelivered: usize = rows.iter().map(|r| r.stats.unfinished).sum();
        t.row(vec![
            site.map(|s| s.to_string()).unwrap_or("none".to_string()),
            rows.len().to_string(),
            deadlocks.to_string(),
            undelivered.to_string(),
            mean_util(rows.iter().copied(), |t| t.sxb_util),
            mean_util(rows.iter().copied(), |t| t.dxb_util),
            phase_share(rows.iter().copied(), blocked_cycles),
            phase_share(rows.iter().copied(), |a| a.detour_transfer),
        ]);
    }
    t.note("expected: zero deadlocks and zero undelivered everywhere");
    t.note("S-XB util = mean busy fraction of the serializing crossbar's output ports (D-XB = S-XB under this scheme)");
    t.note(
        "blocked % / detour % = attributed share of delivered-packet latency; \
         detour % is non-zero only on rows whose fault forces RC=3 detours",
    );

    let mut v = Table::new(
        "fig10-static",
        "static wait-graph certification (unicast + broadcast, every single fault)",
        &["scheme", "fault", "instances", "verdict"],
    );
    for site in sites.iter().take(8) {
        let faults = site.map(FaultSet::single).unwrap_or_default();
        let s = Sr2201Routing::new(net.clone(), &faults).unwrap();
        let verdict = verify_scheme(&net, &s, &faults, TrafficFamily::all());
        v.row(vec![
            "D-XB = S-XB".to_string(),
            site.map(|s| s.to_string()).unwrap_or("none".to_string()),
            verdict.instances.to_string(),
            if verdict.report.deadlock_free() {
                "acyclic (deadlock-free)".to_string()
            } else {
                "CYCLE".to_string()
            },
        ]);
    }
    // The two broken variants, for contrast.
    let faults = FaultSet::single(FaultSite::Router(shape.index_of(Coord::new(&[1, 0]))));
    let cfg = RoutingConfig::for_faults(&shape, &faults)
        .unwrap()
        .with_separate_dxb(&faults);
    let bad = Sr2201Routing::with_config(net.clone(), cfg, &faults);
    let verdict = verify_scheme(&net, &bad, &faults, TrafficFamily::all());
    v.row(vec![
        "D-XB != S-XB".to_string(),
        "faulty R1".to_string(),
        verdict.instances.to_string(),
        if verdict.report.deadlock_free() {
            "acyclic".to_string()
        } else {
            "CYCLE (fig9 confirmed)".to_string()
        },
    ]);
    let naive = NaiveBroadcast::new(net.clone());
    let verdict = verify_scheme(
        &net,
        &naive,
        &FaultSet::none(),
        TrafficFamily {
            unicast: false,
            broadcast: true,
        },
    );
    v.row(vec![
        "naive broadcast".to_string(),
        "none".to_string(),
        verdict.instances.to_string(),
        if verdict.report.deadlock_free() {
            "acyclic".to_string()
        } else {
            "CYCLE (fig5 confirmed)".to_string()
        },
    ]);
    vec![t, v]
}
