//! Ablations over the design choices DESIGN.md calls out.

use crate::report::{f3, pct, Table};
use crate::run_schedule;
use mdx_core::{Header, NaiveBroadcast, RouteChange, Sr2201Routing};
use mdx_fault::FaultSet;
use mdx_sim::{InjectSpec, SimConfig, SimOutcome};
use mdx_topology::{Coord, MdCrossbar, Shape};
use rayon::prelude::*;
use std::sync::Arc;

/// Buffer-depth ablation (wormhole vs virtual cut-through): the Fig. 5
/// deadlock is masked once buffers absorb whole blocked packets, and comes
/// back when packets outgrow them; the S-XB scheme needs no buffer at all.
pub fn buffer_depth() -> Vec<Table> {
    let mut t = Table::new(
        "abl-buffer-depth",
        "two concurrent broadcasts (4x3): deadlock rate vs channel buffer depth, 32 seeds",
        &[
            "buffer (flits)",
            "naive bc, 16-flit pkts",
            "naive bc, 96-flit pkts",
            "S-XB bc, 96-flit pkts",
        ],
    );
    let net = Arc::new(MdCrossbar::build(Shape::fig2()));
    let shape = net.shape().clone();
    let bc = |src: usize, flits: usize| InjectSpec {
        src_pe: src,
        header: Header {
            rc: RouteChange::Broadcast,
            dest: shape.coord_of(src),
            src: shape.coord_of(src),
        },
        flits,
        inject_at: 0,
    };
    let req = |src: usize, flits: usize| InjectSpec {
        src_pe: src,
        header: Header::broadcast_request(shape.coord_of(src)),
        flits,
        inject_at: 0,
    };
    for buffer in [1usize, 2, 4, 8, 16, 32, 128] {
        let rate = |specs: Vec<InjectSpec>, scheme: Arc<dyn mdx_core::Scheme>| {
            let deadlocks = (0..32u64)
                .into_par_iter()
                .filter(|&seed| {
                    run_schedule(
                        net.graph(),
                        scheme.clone(),
                        &specs,
                        SimConfig {
                            buffer_flits: buffer,
                            arb_seed: seed,
                            ..SimConfig::default()
                        },
                    )
                    .outcome
                    .is_deadlock()
                })
                .count();
            pct(deadlocks, 32)
        };
        let naive: Arc<dyn mdx_core::Scheme> = Arc::new(NaiveBroadcast::new(net.clone()));
        let sxb: Arc<dyn mdx_core::Scheme> =
            Arc::new(Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap());
        t.row(vec![
            buffer.to_string(),
            rate(vec![bc(0, 16), bc(4, 16)], naive.clone()),
            rate(vec![bc(0, 96), bc(4, 96)], naive),
            rate(vec![req(0, 96), req(4, 96)], sxb),
        ]);
    }
    t.note("deep buffers only mask the naive-broadcast cycle while packets fit; serialization removes it at any depth");
    vec![t]
}

/// S-XB placement sensitivity: which crossbar serializes affects broadcast
/// and detour latency but never correctness.
pub fn sxb_placement() -> Vec<Table> {
    let mut t = Table::new(
        "abl-sxb-placement",
        "S-XB (= D-XB) line choice on 8x8: broadcast + mixed traffic latency",
        &[
            "S-XB line (y)",
            "outcome",
            "mean latency",
            "p99",
            "broadcast latency",
        ],
    );
    let shape = Shape::new(&[8, 8]).unwrap();
    let net = Arc::new(MdCrossbar::build(shape.clone()));
    for y in 0..8u16 {
        let cfg = mdx_core::RoutingConfig::fault_free(shape.clone())
            .with_special_line(Coord::new(&[0, y]));
        let scheme = Arc::new(Sr2201Routing::with_config(
            net.clone(),
            cfg,
            &FaultSet::none(),
        ));
        let mut specs = mdx_workloads::unicast_schedule(
            &shape,
            mdx_workloads::TrafficPattern::UniformRandom,
            mdx_workloads::OpenLoop {
                rate: 0.02,
                packet_flits: 8,
                window: 300,
                seed: 5,
            },
            &FaultSet::none(),
        );
        let bc_idx = specs.len();
        specs.push(InjectSpec {
            src_pe: 0,
            header: Header::broadcast_request(shape.coord_of(0)),
            flits: 8,
            inject_at: 100,
        });
        let r = run_schedule(net.graph(), scheme, &specs, SimConfig::default());
        let bc_lat = r.packets[bc_idx]
            .latency()
            .map(|v| v.to_string())
            .unwrap_or("-".to_string());
        let outcome = match &r.outcome {
            SimOutcome::Completed => "ok".to_string(),
            other => format!("{other:?}"),
        };
        t.row(vec![
            y.to_string(),
            outcome,
            f3(r.stats.mean_latency()),
            r.latency_percentile(99)
                .map(|v| v.to_string())
                .unwrap_or("-".to_string()),
            bc_lat,
        ]);
    }
    t.note("uniform traffic is row-symmetric, so placement barely matters — the freedom the paper exploits when substituting the S-XB under faults");
    vec![t]
}
