//! Criterion bench for the static wait-graph certification (fig10-static).

use criterion::{criterion_group, criterion_main, Criterion};
use mdx_core::Sr2201Routing;
use mdx_deadlock::verify_scheme;
use mdx_deadlock::waitgraph::TrafficFamily;
use mdx_fault::{FaultSet, FaultSite};
use mdx_topology::{MdCrossbar, Shape};
use std::sync::Arc;

fn bench_cdg(c: &mut Criterion) {
    let net = Arc::new(MdCrossbar::build(Shape::fig2()));

    c.bench_function("cdg_verify_fault_free_4x3", |b| {
        let s = Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap();
        b.iter(|| verify_scheme(&net, &s, &FaultSet::none(), TrafficFamily::all()))
    });

    c.bench_function("cdg_verify_router_fault_4x3", |b| {
        let faults = FaultSet::single(FaultSite::Router(1));
        let s = Sr2201Routing::new(net.clone(), &faults).unwrap();
        b.iter(|| verify_scheme(&net, &s, &faults, TrafficFamily::all()))
    });

    let big = Arc::new(MdCrossbar::build(Shape::new(&[8, 8]).unwrap()));
    c.bench_function("cdg_verify_fault_free_8x8", |b| {
        let s = Sr2201Routing::new(big.clone(), &FaultSet::none()).unwrap();
        b.iter(|| verify_scheme(&big, &s, &FaultSet::none(), TrafficFamily::all()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cdg
}
criterion_main!(benches);
