//! Criterion benches for the extension experiments: O1TURN routing,
//! multi-fault configuration, and fault diagnosis.

use criterion::{criterion_group, criterion_main, Criterion};
use mdx_bench::run_schedule;
use mdx_core::{O1TurnRouting, Sr2201Routing};
use mdx_fault::diagnosis::diagnose_all_pairs;
use mdx_fault::{FaultSet, FaultSite};
use mdx_sim::SimConfig;
use mdx_topology::{MdCrossbar, Shape};
use mdx_workloads::{unicast_schedule, OpenLoop, TrafficPattern};
use std::sync::Arc;

fn bench_extensions(c: &mut Criterion) {
    let shape = Shape::new(&[8, 8]).unwrap();
    let net = Arc::new(MdCrossbar::build(shape.clone()));
    let specs = unicast_schedule(
        &shape,
        TrafficPattern::Transpose,
        OpenLoop {
            rate: 0.03,
            packet_flits: 8,
            window: 200,
            seed: 7,
        },
        &FaultSet::none(),
    );

    c.bench_function("ext_transpose_dimension_order", |b| {
        b.iter(|| {
            let scheme = Arc::new(Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap());
            run_schedule(net.graph(), scheme, &specs, SimConfig::default())
        })
    });

    c.bench_function("ext_transpose_o1turn", |b| {
        b.iter(|| {
            let scheme = Arc::new(O1TurnRouting::new(net.clone(), 7));
            run_schedule(net.graph(), scheme, &specs, SimConfig::default())
        })
    });

    c.bench_function("ext_diagnose_all_pairs_8x8", |b| {
        let faults = FaultSet::single(FaultSite::Router(27));
        b.iter(|| diagnose_all_pairs(&net, &faults))
    });

    c.bench_function("ext_multi_fault_configuration", |b| {
        let mut faults = FaultSet::single(FaultSite::Router(27));
        faults.insert(FaultSite::Pe(3));
        faults.insert(FaultSite::Xbar(mdx_topology::XbarRef { dim: 0, line: 5 }));
        b.iter(|| Sr2201Routing::new(net.clone(), &faults).unwrap())
    });

    // The full epoch protocol: fault at cycle 60 mid-workload, drain,
    // reprogram, reinject the victims, watch the transition window.
    c.bench_function("ext_reconfig_reinject_8x8", |b| {
        use mdx_fault::FaultTimeline;
        use mdx_reconfig::{run_reconfig, ReconfigSpec, RecoveryPolicy};

        let site = FaultSite::Xbar(mdx_topology::XbarRef { dim: 1, line: 2 });
        let specs = unicast_schedule(
            &shape,
            TrafficPattern::UniformRandom,
            OpenLoop {
                rate: 0.02,
                packet_flits: 12,
                window: 200,
                seed: 11,
            },
            &FaultSet::single(site),
        );
        let spec = ReconfigSpec::new(FaultTimeline::new().inject(site, 60))
            .with_policy(RecoveryPolicy::Reinject);
        b.iter(|| {
            run_reconfig(
                net.clone(),
                "sr2201",
                &FaultSet::none(),
                &specs,
                SimConfig::default(),
                &spec,
                None,
            )
            .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_extensions
}
criterion_main!(benches);
