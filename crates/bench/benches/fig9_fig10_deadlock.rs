//! Criterion benches for the combined-traffic scenarios (Figs. 9-10): cost
//! of a deadlocking run (detection latency) vs the deadlock-free scheme.

use criterion::{criterion_group, criterion_main, Criterion};
use mdx_bench::run_schedule;
use mdx_core::{Header, RoutingConfig, Sr2201Routing};
use mdx_fault::{FaultSet, FaultSite};
use mdx_sim::{InjectSpec, SimConfig};
use mdx_topology::{Coord, MdCrossbar, Shape};
use std::sync::Arc;

fn specs(shape: &Shape, offset: u64) -> Vec<InjectSpec> {
    vec![
        InjectSpec {
            src_pe: 9,
            header: Header::broadcast_request(shape.coord_of(9)),
            flits: 24,
            inject_at: 0,
        },
        InjectSpec {
            src_pe: 0,
            header: Header::unicast(shape.coord_of(0), shape.coord_of(5)),
            flits: 24,
            inject_at: offset,
        },
    ]
}

fn bench_fig9_fig10(c: &mut Criterion) {
    let net = Arc::new(MdCrossbar::build(Shape::fig2()));
    let shape = net.shape().clone();
    let faulty = shape.index_of(Coord::new(&[1, 0]));
    let faults = FaultSet::single(FaultSite::Router(faulty));

    c.bench_function("fig9_deadlocking_run", |b| {
        b.iter(|| {
            let cfg = RoutingConfig::for_faults(&shape, &faults)
                .unwrap()
                .with_separate_dxb(&faults);
            let scheme = Arc::new(Sr2201Routing::with_config(net.clone(), cfg, &faults));
            run_schedule(
                net.graph(),
                scheme,
                &specs(&shape, 22),
                SimConfig {
                    watchdog: 128,
                    arb_seed: 1,
                    ..SimConfig::default()
                },
            )
        })
    });

    c.bench_function("fig10_same_run_deadlock_free", |b| {
        b.iter(|| {
            let cfg = RoutingConfig::for_faults(&shape, &faults).unwrap();
            let scheme = Arc::new(Sr2201Routing::with_config(net.clone(), cfg, &faults));
            run_schedule(
                net.graph(),
                scheme,
                &specs(&shape, 22),
                SimConfig {
                    watchdog: 128,
                    arb_seed: 1,
                    ..SimConfig::default()
                },
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fig9_fig10
}
criterion_main!(benches);
