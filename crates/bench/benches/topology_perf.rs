//! Criterion bench behind the Sec. 3.1 comparison (claim-mdx-vs-mesh):
//! simulation of the same uniform workload on each topology.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdx_baselines::DirectDor;
use mdx_bench::run_schedule;
use mdx_core::{Scheme, Sr2201Routing};
use mdx_fault::FaultSet;
use mdx_sim::SimConfig;
use mdx_topology::{mesh::DirectNetwork, mesh::Wrap, MdCrossbar, NetworkGraph, Shape};
use mdx_workloads::{unicast_schedule, OpenLoop, TrafficPattern};
use std::sync::Arc;

fn bench_topologies(c: &mut Criterion) {
    let shape = Shape::new(&[8, 8]).unwrap();
    let cfg = OpenLoop {
        rate: 0.02,
        packet_flits: 8,
        window: 200,
        seed: 7,
    };
    let specs = unicast_schedule(
        &shape,
        TrafficPattern::UniformRandom,
        cfg,
        &FaultSet::none(),
    );

    let mdx = Arc::new(MdCrossbar::build(shape.clone()));
    let mesh = Arc::new(DirectNetwork::build(shape.clone(), Wrap::Mesh));
    let torus = Arc::new(DirectNetwork::build(shape.clone(), Wrap::Torus));
    let runs: Vec<(&str, NetworkGraph, Arc<dyn Scheme>)> = vec![
        (
            "md-crossbar",
            mdx.graph().clone(),
            Arc::new(Sr2201Routing::new(mdx.clone(), &FaultSet::none()).unwrap()),
        ),
        (
            "mesh",
            mesh.graph().clone(),
            Arc::new(DirectDor::new(mesh.clone())),
        ),
        (
            "torus",
            torus.graph().clone(),
            Arc::new(DirectDor::new(torus.clone())),
        ),
    ];

    let mut g = c.benchmark_group("uniform_8x8_load0.02");
    for (name, graph, scheme) in runs {
        g.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| run_schedule(&graph, scheme.clone(), &specs, SimConfig::default()))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_topologies
}
criterion_main!(benches);
