//! Criterion benches for the simulator engine itself (supports
//! claim-scale-2048 and abl-buffer-depth): cycles/second on dense traffic
//! and scaling with network size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mdx_bench::run_schedule;
use mdx_core::Sr2201Routing;
use mdx_fault::FaultSet;
use mdx_obs::{AttributionObserver, FlightRecorder, MetricsObserver, DEFAULT_FLIGHT_CAPACITY};
use mdx_sim::{EventCounts, SimConfig, SimObserver, Simulator};
use mdx_topology::{MdCrossbar, Shape};
use mdx_workloads::{unicast_schedule, OpenLoop, TrafficPattern};
use std::sync::Arc;

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_uniform_traffic");
    for dims in [&[4u16, 4][..], &[8, 8], &[16, 16]] {
        let shape = Shape::new(dims).unwrap();
        let net = Arc::new(MdCrossbar::build(shape.clone()));
        let cfg = OpenLoop {
            rate: 0.02,
            packet_flits: 8,
            window: 100,
            seed: 1,
        };
        let specs = unicast_schedule(
            &shape,
            TrafficPattern::UniformRandom,
            cfg,
            &FaultSet::none(),
        );
        g.throughput(Throughput::Elements(specs.len() as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{}x{}", dims[0], dims[1])),
            &specs,
            |b, specs| {
                b.iter(|| {
                    let scheme =
                        Arc::new(Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap());
                    run_schedule(net.graph(), scheme, specs, SimConfig::default())
                })
            },
        );
    }
    g.finish();

    let mut g = c.benchmark_group("engine_buffer_depth");
    let shape = Shape::new(&[8, 8]).unwrap();
    let net = Arc::new(MdCrossbar::build(shape.clone()));
    let specs = unicast_schedule(
        &shape,
        TrafficPattern::UniformRandom,
        OpenLoop {
            rate: 0.03,
            packet_flits: 8,
            window: 100,
            seed: 1,
        },
        &FaultSet::none(),
    );
    for buffer in [1usize, 2, 8, 32] {
        g.bench_with_input(
            BenchmarkId::from_parameter(buffer),
            &buffer,
            |b, &buffer| {
                b.iter(|| {
                    let scheme =
                        Arc::new(Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap());
                    run_schedule(
                        net.graph(),
                        scheme,
                        &specs,
                        SimConfig {
                            buffer_flits: buffer,
                            ..SimConfig::default()
                        },
                    )
                })
            },
        );
    }
    g.finish();

    // Observer-seam overhead: the `none` row is the zero-cost claim — with
    // no observer attached the hook call sites reduce to one `is_some`
    // branch each, so it must track the uninstrumented engine rows above.
    let mut g = c.benchmark_group("engine_observer_overhead");
    let shape = Shape::new(&[8, 8]).unwrap();
    let net = Arc::new(MdCrossbar::build(shape.clone()));
    let specs = unicast_schedule(
        &shape,
        TrafficPattern::UniformRandom,
        OpenLoop {
            rate: 0.03,
            packet_flits: 8,
            window: 100,
            seed: 1,
        },
        &FaultSet::none(),
    );
    let run_with = |observer: Option<Box<dyn SimObserver>>| {
        let scheme = Arc::new(Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap());
        let mut sim = Simulator::new(net.graph().clone(), scheme, SimConfig::default());
        if let Some(obs) = observer {
            sim.set_observer(obs);
        }
        for &spec in &specs {
            sim.schedule(spec);
        }
        sim.run()
    };
    g.bench_function("none", |b| b.iter(|| run_with(None)));
    g.bench_function("event_counts", |b| {
        b.iter(|| run_with(Some(Box::new(EventCounts::default()))))
    });
    // The detached-registry contract: the engine self-profiles on every
    // run, but with no `EngineMeter` attached the profile is dropped on
    // the floor — this row must stay flat against `none`.
    g.bench_function("metrics", |b| {
        let meter: Option<mdx_campaign::EngineMeter> = None;
        b.iter(|| {
            let r = run_with(None);
            if let (Some(m), Some(p)) = (&meter, &r.profile) {
                m.observe(&mdx_campaign::RowProfile::from_engine(p));
            }
            r.stats.cycles
        })
    });
    // ...and what folding the profile into live registry atomics costs.
    g.bench_function("metrics_attached", |b| {
        let reg = mdx_metrics::Registry::new();
        let meter = mdx_campaign::EngineMeter::register(&reg);
        b.iter(|| {
            let r = run_with(None);
            if let Some(p) = &r.profile {
                meter.observe(&mdx_campaign::RowProfile::from_engine(p));
            }
            r.stats.cycles
        })
    });
    // The span pipeline's detached contract, mirroring `metrics`: with no
    // collector attached a run builds no spans at all — the trace-id
    // sampling decision, the builder, and the offer are skipped wholesale
    // — so this row must stay flat against `none`.
    g.bench_function("spans_detached", |b| {
        let spans: Option<std::sync::Arc<mdx_obs::SpanCollector>> = None;
        b.iter(|| {
            let tracing = spans.as_ref().map(|c| (c, c.head_sample()));
            let r = run_with(None);
            if let Some((c, sampled)) = tracing {
                let mut t = mdx_obs::TraceBuilder::new(c.next_trace_id());
                let root = t.add(None, "row", 0, r.stats.cycles, mdx_obs::SpanUnit::Cycles);
                t.attr(root, "outcome", "completed");
                if sampled {
                    c.offer(t.finish());
                } else {
                    c.drop_unsampled();
                }
            }
            r.stats.cycles
        })
    });
    // Per-phase wall-clock splitting adds two `Instant::now()` pairs per
    // step; it's opt-in, and this row pins its price.
    g.bench_function("profile", |b| {
        b.iter(|| {
            let scheme = Arc::new(Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap());
            let mut sim = Simulator::new(net.graph().clone(), scheme, SimConfig::default());
            sim.set_phase_timing(true);
            for &spec in &specs {
                sim.schedule(spec);
            }
            let r = sim.run();
            r.stats.cycles
        })
    });
    g.bench_function("metrics_observer", |b| {
        b.iter(|| {
            let (obs, handle) = MetricsObserver::new(net.graph().clone());
            let r = run_with(Some(Box::new(obs)));
            (r.stats.cycles, handle.report(r.stats.cycles).total_flits)
        })
    });
    // Full latency attribution: per-packet phase tracking during the run
    // plus the decomposition sweep + blame/critical-path reduction after.
    // The detached (`none`) row above is the zero-cost contract; this row
    // pins what opting in actually costs.
    g.bench_function("attribution", |b| {
        b.iter(|| {
            let (obs, handle) = AttributionObserver::new(net.graph().clone());
            let r = run_with(Some(Box::new(obs)));
            let att = handle.report(&r);
            (r.stats.cycles, att.conserved, att.totals.latency)
        })
    });
    // The always-on flight recorder must stay close to `none`: it skips
    // per-flit events and the ring writes are fixed-size stores.
    g.bench_function("flight", |b| {
        b.iter(|| {
            let (obs, handle) =
                FlightRecorder::new(net.graph().clone(), 1, DEFAULT_FLIGHT_CAPACITY);
            let r = run_with(Some(Box::new(obs)));
            (r.stats.cycles, handle.events_recorded())
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engine
}
criterion_main!(benches);
