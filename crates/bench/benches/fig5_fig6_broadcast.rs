//! Criterion benches for the broadcast experiments (Figs. 5 and 6): time to
//! detect the naive-broadcast deadlock and to complete serialized
//! broadcasts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdx_bench::run_schedule;
use mdx_core::{Header, NaiveBroadcast, RouteChange, Sr2201Routing};
use mdx_fault::FaultSet;
use mdx_sim::{InjectSpec, SimConfig};
use mdx_topology::{MdCrossbar, Shape};
use std::sync::Arc;

fn bench_broadcast(c: &mut Criterion) {
    let net = Arc::new(MdCrossbar::build(Shape::fig2()));
    let shape = net.shape().clone();

    let mut g = c.benchmark_group("fig5_naive_deadlock_detection");
    g.bench_function("two_broadcasts_16flits", |b| {
        b.iter(|| {
            let scheme = Arc::new(NaiveBroadcast::new(net.clone()));
            let mk = |src: usize| InjectSpec {
                src_pe: src,
                header: Header {
                    rc: RouteChange::Broadcast,
                    dest: shape.coord_of(src),
                    src: shape.coord_of(src),
                },
                flits: 16,
                inject_at: 0,
            };
            run_schedule(
                net.graph(),
                scheme,
                &[mk(0), mk(4)],
                SimConfig {
                    arb_seed: 3,
                    watchdog: 128,
                    ..SimConfig::default()
                },
            )
        })
    });
    g.finish();

    let mut g = c.benchmark_group("fig6_sxb_broadcast");
    for k in [1usize, 3, 6] {
        g.bench_with_input(BenchmarkId::new("concurrent", k), &k, |b, &k| {
            let sources = [0usize, 4, 8, 3, 7, 11];
            b.iter(|| {
                let scheme = Arc::new(Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap());
                let specs: Vec<InjectSpec> = sources[..k]
                    .iter()
                    .map(|&s| InjectSpec {
                        src_pe: s,
                        header: Header::broadcast_request(shape.coord_of(s)),
                        flits: 16,
                        inject_at: 0,
                    })
                    .collect();
                run_schedule(net.graph(), scheme, &specs, SimConfig::default())
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_broadcast
}
criterion_main!(benches);
