//! Criterion bench for the detour facility (Figs. 7-8): route computation
//! under a fault and the full all-pairs delivery sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use mdx_core::{trace_unicast, Header, Sr2201Routing};
use mdx_fault::{FaultSet, FaultSite};
use mdx_topology::{Coord, MdCrossbar, Shape};
use std::sync::Arc;

fn bench_detour(c: &mut Criterion) {
    let net = Arc::new(MdCrossbar::build(Shape::new(&[8, 8]).unwrap()));
    let shape = net.shape().clone();
    let faulty = shape.index_of(Coord::new(&[3, 2]));
    let faults = FaultSet::single(FaultSite::Router(faulty));
    let scheme = Sr2201Routing::new(net.clone(), &faults).unwrap();

    c.bench_function("fig8_single_detour_route", |b| {
        let h = Header::unicast(Coord::new(&[0, 2]), Coord::new(&[3, 5]));
        b.iter(|| trace_unicast(&scheme, net.graph(), h, shape.index_of(Coord::new(&[0, 2]))))
    });

    c.bench_function("fig8_all_pairs_under_fault", |b| {
        b.iter(|| {
            let mut delivered = 0usize;
            for src in 0..64 {
                for dst in 0..64 {
                    if src == dst || !faults.pe_usable(src) || !faults.pe_usable(dst) {
                        continue;
                    }
                    let h = Header::unicast(shape.coord_of(src), shape.coord_of(dst));
                    if trace_unicast(&scheme, net.graph(), h, src).is_ok() {
                        delivered += 1;
                    }
                }
            }
            delivered
        })
    });

    c.bench_function("fig8_scheme_construction", |b| {
        b.iter(|| Sr2201Routing::new(net.clone(), &faults).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_detour
}
criterion_main!(benches);
