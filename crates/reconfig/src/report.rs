//! Reports: per-epoch phase timings and the whole-run reconfiguration
//! verdict.

use mdx_deadlock::TransitionReport;
use serde::{Deserialize, Serialize};

/// Phase accounting for one reconfiguration epoch (one fault-event group).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochReport {
    /// The epoch number routing decisions carry after this reprogram.
    pub epoch: u32,
    /// Cycle the fault event group activated.
    pub event_at: u64,
    /// The events, rendered (`inject X1-XB @ 400`).
    pub events: Vec<String>,
    /// Packets wounded at activation (plus any wounded during the detect
    /// window by running into the dead region).
    pub victims: usize,
    /// Victim visits revived in place under the new routing function
    /// (reroute policy only).
    pub rerouted: usize,
    /// Victims replayed from their source PE at resume.
    pub reinjected: usize,
    /// Victims left dropped: policy said so, the reinject budget ran out,
    /// or the new configuration cannot deliver them (dead source or
    /// destination, disconnected pair).
    pub abandoned: usize,
    /// Cycles from activation to detection (the modeled latency).
    pub detect_cycles: u64,
    /// Cycles from quiesce to the network settling.
    pub drain_cycles: u64,
    /// Idle cycles the reprogram step cost.
    pub reprogram_cycles: u64,
    /// Cycle the injection gate reopened.
    pub resumed_at: u64,
    /// Usable PE pairs the *graph* can no longer connect under the new
    /// fault set (0 for every single-fault set on a multi-dimensional
    /// crossbar — the paper's reachability claim).
    pub disconnected_pairs: usize,
}

impl EpochReport {
    /// The epoch's five controller phases as contiguous cycle windows
    /// `(name, start, end)`: detect → quiesce → drain → reprogram →
    /// resume, laid end to end from `event_at`. Quiesce is the injection-
    /// gate close — modeled as instantaneous, so its window is empty —
    /// and resume stretches to `resumed_at` (covering any settling slack
    /// the controller waited out beyond the three counted phases). The
    /// windows tile `[event_at, resume end]` exactly; span exporters lean
    /// on that tiling.
    pub fn phase_windows(&self) -> [(&'static str, u64, u64); 5] {
        let detect_end = self.event_at + self.detect_cycles;
        let drain_end = detect_end + self.drain_cycles;
        let reprogram_end = drain_end + self.reprogram_cycles;
        let resume_end = self.resumed_at.max(reprogram_end);
        [
            ("detect", self.event_at, detect_end),
            ("quiesce", detect_end, detect_end),
            ("drain", detect_end, drain_end),
            ("reprogram", drain_end, reprogram_end),
            ("resume", reprogram_end, resume_end),
        ]
    }
}

/// Everything observed across a live-reconfiguration run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReconfigReport {
    /// The recovery policy that ran ([`crate::RecoveryPolicy::name`]).
    pub policy: String,
    /// One entry per fault-event group, in activation order.
    pub epochs: Vec<EpochReport>,
    /// Wait-graph evidence across the transition windows.
    pub transition: TransitionReport,
    /// Distinct packets wounded over the whole run.
    pub victims_total: usize,
    /// Source reinjections performed over the whole run.
    pub reinjected_total: usize,
    /// Wounded packets that nevertheless finished delivered.
    pub recovered: usize,
    /// Wounded packets dropped or unfinished at the end of the run.
    pub lost: usize,
}

impl ReconfigReport {
    /// True when no mixed-epoch wait cycle was observed anywhere.
    pub fn transition_safe(&self) -> bool {
        self.transition.transition_safe()
    }

    /// A human-readable multi-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "reconfiguration: {} epoch(s), policy {}, victims {} (recovered {}, lost {})\n",
            self.epochs.len(),
            self.policy,
            self.victims_total,
            self.recovered,
            self.lost
        ));
        for e in &self.epochs {
            out.push_str(&format!(
                "  epoch {} @ {}: [{}] victims={} rerouted={} reinjected={} abandoned={} \
                 detect={} drain={} reprogram={} resumed@{} disconnected_pairs={}\n",
                e.epoch,
                e.event_at,
                e.events.join(", "),
                e.victims,
                e.rerouted,
                e.reinjected,
                e.abandoned,
                e.detect_cycles,
                e.drain_cycles,
                e.reprogram_cycles,
                e.resumed_at,
                e.disconnected_pairs
            ));
        }
        out.push_str(&format!(
            "  transition: {} snapshot(s), {} mixed edge(s), max {} epoch(s) coexisting, {}\n",
            self.transition.snapshots,
            self.transition.mixed_edges,
            self.transition.max_epochs_coexisting,
            if self.transition_safe() {
                "no mixed-epoch cycle".to_string()
            } else {
                format!("{} VIOLATION(S)", self.transition.violations.len())
            }
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serde_roundtrip_and_render() {
        let r = ReconfigReport {
            policy: "reinject".to_string(),
            epochs: vec![EpochReport {
                epoch: 1,
                event_at: 400,
                events: vec!["inject R5 @ 400".to_string()],
                victims: 2,
                rerouted: 0,
                reinjected: 2,
                abandoned: 0,
                detect_cycles: 8,
                drain_cycles: 57,
                reprogram_cycles: 32,
                resumed_at: 497,
                disconnected_pairs: 0,
            }],
            transition: TransitionReport::default(),
            victims_total: 2,
            reinjected_total: 2,
            recovered: 2,
            lost: 0,
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: ReconfigReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        let text = r.render();
        assert!(text.contains("epoch 1 @ 400"));
        assert!(text.contains("no mixed-epoch cycle"));
    }

    #[test]
    fn phase_windows_tile_the_epoch() {
        let e = EpochReport {
            epoch: 1,
            event_at: 400,
            events: vec![],
            victims: 0,
            rerouted: 0,
            reinjected: 0,
            abandoned: 0,
            detect_cycles: 8,
            drain_cycles: 57,
            reprogram_cycles: 32,
            resumed_at: 510,
            disconnected_pairs: 0,
        };
        let w = e.phase_windows();
        assert_eq!(w[0], ("detect", 400, 408));
        assert_eq!(w[1], ("quiesce", 408, 408));
        assert_eq!(w[2], ("drain", 408, 465));
        assert_eq!(w[3], ("reprogram", 465, 497));
        assert_eq!(w[4], ("resume", 497, 510));
        // Contiguous tiling from event_at to the resume end.
        assert_eq!(w[0].1, e.event_at);
        for pair in w.windows(2) {
            assert_eq!(pair[0].2, pair[1].1);
        }
        // resumed_at earlier than the counted phases clamps resume empty.
        let early = EpochReport {
            resumed_at: 450,
            ..e
        };
        assert_eq!(early.phase_windows()[4], ("resume", 497, 497));
    }
}
