//! Reports: per-epoch phase timings and the whole-run reconfiguration
//! verdict.

use mdx_deadlock::TransitionReport;
use serde::{Deserialize, Serialize};

/// Phase accounting for one reconfiguration epoch (one fault-event group).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochReport {
    /// The epoch number routing decisions carry after this reprogram.
    pub epoch: u32,
    /// Cycle the fault event group activated.
    pub event_at: u64,
    /// The events, rendered (`inject X1-XB @ 400`).
    pub events: Vec<String>,
    /// Packets wounded at activation (plus any wounded during the detect
    /// window by running into the dead region).
    pub victims: usize,
    /// Victim visits revived in place under the new routing function
    /// (reroute policy only).
    pub rerouted: usize,
    /// Victims replayed from their source PE at resume.
    pub reinjected: usize,
    /// Victims left dropped: policy said so, the reinject budget ran out,
    /// or the new configuration cannot deliver them (dead source or
    /// destination, disconnected pair).
    pub abandoned: usize,
    /// Cycles from activation to detection (the modeled latency).
    pub detect_cycles: u64,
    /// Cycles from quiesce to the network settling.
    pub drain_cycles: u64,
    /// Idle cycles the reprogram step cost.
    pub reprogram_cycles: u64,
    /// Cycle the injection gate reopened.
    pub resumed_at: u64,
    /// Usable PE pairs the *graph* can no longer connect under the new
    /// fault set (0 for every single-fault set on a multi-dimensional
    /// crossbar — the paper's reachability claim).
    pub disconnected_pairs: usize,
}

/// Everything observed across a live-reconfiguration run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReconfigReport {
    /// The recovery policy that ran ([`crate::RecoveryPolicy::name`]).
    pub policy: String,
    /// One entry per fault-event group, in activation order.
    pub epochs: Vec<EpochReport>,
    /// Wait-graph evidence across the transition windows.
    pub transition: TransitionReport,
    /// Distinct packets wounded over the whole run.
    pub victims_total: usize,
    /// Source reinjections performed over the whole run.
    pub reinjected_total: usize,
    /// Wounded packets that nevertheless finished delivered.
    pub recovered: usize,
    /// Wounded packets dropped or unfinished at the end of the run.
    pub lost: usize,
}

impl ReconfigReport {
    /// True when no mixed-epoch wait cycle was observed anywhere.
    pub fn transition_safe(&self) -> bool {
        self.transition.transition_safe()
    }

    /// A human-readable multi-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "reconfiguration: {} epoch(s), policy {}, victims {} (recovered {}, lost {})\n",
            self.epochs.len(),
            self.policy,
            self.victims_total,
            self.recovered,
            self.lost
        ));
        for e in &self.epochs {
            out.push_str(&format!(
                "  epoch {} @ {}: [{}] victims={} rerouted={} reinjected={} abandoned={} \
                 detect={} drain={} reprogram={} resumed@{} disconnected_pairs={}\n",
                e.epoch,
                e.event_at,
                e.events.join(", "),
                e.victims,
                e.rerouted,
                e.reinjected,
                e.abandoned,
                e.detect_cycles,
                e.drain_cycles,
                e.reprogram_cycles,
                e.resumed_at,
                e.disconnected_pairs
            ));
        }
        out.push_str(&format!(
            "  transition: {} snapshot(s), {} mixed edge(s), max {} epoch(s) coexisting, {}\n",
            self.transition.snapshots,
            self.transition.mixed_edges,
            self.transition.max_epochs_coexisting,
            if self.transition_safe() {
                "no mixed-epoch cycle".to_string()
            } else {
                format!("{} VIOLATION(S)", self.transition.violations.len())
            }
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serde_roundtrip_and_render() {
        let r = ReconfigReport {
            policy: "reinject".to_string(),
            epochs: vec![EpochReport {
                epoch: 1,
                event_at: 400,
                events: vec!["inject R5 @ 400".to_string()],
                victims: 2,
                rerouted: 0,
                reinjected: 2,
                abandoned: 0,
                detect_cycles: 8,
                drain_cycles: 57,
                reprogram_cycles: 32,
                resumed_at: 497,
                disconnected_pairs: 0,
            }],
            transition: TransitionReport::default(),
            victims_total: 2,
            reinjected_total: 2,
            recovered: 2,
            lost: 0,
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: ReconfigReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        let text = r.render();
        assert!(text.contains("epoch 1 @ 400"));
        assert!(text.contains("no mixed-epoch cycle"));
    }
}
