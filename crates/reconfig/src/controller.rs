//! The epoch controller: drives [`mdx_sim::Simulator`] through the
//! detect → quiesce → drain → reprogram → resume protocol for every event
//! group on the fault timeline, sampling the wait graph for transition
//! hazards along the way.

use crate::report::{EpochReport, ReconfigReport};
use crate::spec::{ReconfigSpec, RecoveryPolicy};
use mdx_core::registry::build_scheme;
use mdx_core::RouteChange;
use mdx_deadlock::{EpochWait, TransitionChecker};
use mdx_fault::connectivity::{pair_connected, reachable_pairs};
use mdx_fault::{FaultEvent, FaultEventKind, FaultSet, TimelineError};
use mdx_sim::{
    EpochPhase, InjectSpec, PacketId, PacketOutcome, PhaseEnd, SimConfig, SimObserver, SimResult,
    Simulator, VictimMode, WaitSnapshot,
};
use mdx_topology::MdCrossbar;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Why a reconfiguration run could not start or complete.
#[derive(Debug, Clone, PartialEq)]
pub enum ReconfigError {
    /// The timeline is inconsistent with the initial fault set.
    BadTimeline(TimelineError),
    /// The initial scheme/fault combination cannot be configured.
    BuildScheme(String),
    /// A mid-run event produced a fault set the scheme cannot be
    /// reconfigured for (e.g. conflicting crossbar faults). The machine
    /// would stay down; the run is aborted at the reprogram step.
    Unconfigurable {
        /// Cycle of the failed reprogram.
        at: u64,
        /// The registry's refusal.
        reason: String,
    },
}

impl std::fmt::Display for ReconfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReconfigError::BadTimeline(e) => write!(f, "bad timeline: {e}"),
            ReconfigError::BuildScheme(e) => write!(f, "cannot build initial scheme: {e}"),
            ReconfigError::Unconfigurable { at, reason } => {
                write!(f, "reprogram at cycle {at} failed: {reason}")
            }
        }
    }
}

impl std::error::Error for ReconfigError {}

/// The engine result plus the reconfiguration evidence.
#[derive(Debug, Clone)]
pub struct ReconfigOutcome {
    /// The engine's terminal result, exactly as a static run would report
    /// it (victim drops appear as [`mdx_core::DropReason::FaultVictim`]).
    pub result: SimResult,
    /// Phase timings, victim accounting, and transition-safety evidence.
    pub report: ReconfigReport,
}

/// Engine wait edges, re-tagged for the epoch-aware cycle checker.
fn to_epoch_waits(waits: &[WaitSnapshot]) -> Vec<EpochWait> {
    waits
        .iter()
        .map(|w| EpochWait {
            waiter: w.waiter.0,
            holder: w.holder.map(|h| h.0),
            epoch: w.epoch,
            holder_epoch: w.holder_epoch,
        })
        .collect()
}

/// Whether replaying `spec` under `faults` can possibly succeed: live
/// source, and (for unicast) a live, graph-reachable destination.
fn replay_viable(net: &MdCrossbar, faults: &FaultSet, spec: &InjectSpec) -> bool {
    if !faults.pe_usable(spec.src_pe) {
        return false;
    }
    match spec.header.rc {
        RouteChange::Normal => {
            let dst = net.shape().index_of(spec.header.dest);
            faults.pe_usable(dst) && pair_connected(net, faults, spec.src_pe, dst)
        }
        // Broadcasts deliver to whatever remains reachable; a live source
        // is enough to be worth replaying.
        _ => true,
    }
}

/// Runs `specs` on `net` under `scheme_id`, activating the fault timeline
/// in `spec` mid-run via the epoch protocol. The observer (if any) sees
/// the usual packet hooks plus [`SimObserver::on_fault_activated`] and
/// [`SimObserver::on_epoch_phase`].
pub fn run_reconfig(
    net: Arc<MdCrossbar>,
    scheme_id: &str,
    initial_faults: &FaultSet,
    specs: &[InjectSpec],
    cfg: SimConfig,
    spec: &ReconfigSpec,
    observer: Option<Box<dyn SimObserver>>,
) -> Result<ReconfigOutcome, ReconfigError> {
    let scheme = build_scheme(scheme_id, net.clone(), initial_faults)
        .map_err(|e| ReconfigError::BuildScheme(e.to_string()))?;
    let mut sim = Simulator::new(net.graph().clone(), scheme, cfg);
    if let Some(obs) = observer {
        sim.set_observer(obs);
    }
    for &s in specs {
        sim.schedule(s);
    }
    drive_reconfig(&mut sim, &net, scheme_id, initial_faults, spec)
}

/// [`run_reconfig`] on a caller-built engine: `sim` must already carry the
/// routing function for `initial_faults` and its injection schedule. The
/// engine is left in its terminal state, so callers can read post-run
/// channel statistics off it.
pub fn drive_reconfig(
    sim: &mut Simulator,
    net: &Arc<MdCrossbar>,
    scheme_id: &str,
    initial_faults: &FaultSet,
    spec: &ReconfigSpec,
) -> Result<ReconfigOutcome, ReconfigError> {
    spec.timeline
        .validate(initial_faults)
        .map_err(ReconfigError::BadTimeline)?;
    sim.set_victim_mode(match spec.policy {
        RecoveryPolicy::Reroute => VictimMode::Pause,
        _ => VictimMode::Abort,
    });
    sim.prepare();

    // Group same-cycle events: one epoch per activation instant.
    let mut groups: Vec<(u64, Vec<FaultEvent>)> = Vec::new();
    for &e in spec.timeline.events() {
        match groups.last_mut() {
            Some((at, g)) if *at == e.at => g.push(e),
            _ => groups.push((e.at, vec![e])),
        }
    }

    let mut checker = TransitionChecker::new();
    let mut epochs: Vec<EpochReport> = Vec::new();
    let mut all_victims: BTreeSet<PacketId> = BTreeSet::new();
    let mut attempts: HashMap<u32, u32> = HashMap::new();
    let mut reinjected_total = 0usize;
    let mut current = initial_faults.clone();
    let mut end: Option<PhaseEnd> = None;

    'events: for gi in 0..groups.len() {
        let (at, events) = &groups[gi];
        let next_event = groups.get(gi + 1).map(|g| g.0);

        match sim.run_phase(Some(*at), false) {
            PhaseEnd::ReachedCycle | PhaseEnd::Completed => {}
            other => {
                end = Some(other);
                break 'events;
            }
        }
        // Traffic may finish before the event's cycle; the machine then
        // sits idle until the component actually fails (or comes back).
        if sim.now() < *at {
            sim.advance_idle(*at - sim.now());
        }

        for e in events {
            match e.kind {
                FaultEventKind::Inject => {
                    current.insert(e.site);
                }
                FaultEventKind::Repair => {
                    current.remove(e.site);
                }
            }
        }
        let epoch = sim.current_epoch() + 1;
        let event_at = sim.now();
        let at_activation = sim.activate_faults(&current);
        all_victims.extend(at_activation.iter().copied());

        // Detect: the service processor notices after its latency, during
        // which traffic keeps running against the stale configuration.
        match sim.run_phase(Some(event_at + spec.detect_latency), false) {
            PhaseEnd::ReachedCycle | PhaseEnd::Completed => {}
            other => {
                end = Some(other);
                break 'events;
            }
        }
        sim.notify_epoch_phase(epoch, EpochPhase::Detected);
        let detect_cycles = sim.now() - event_at;

        // Quiesce: close the injection gate.
        sim.set_injection_open(false);
        sim.notify_epoch_phase(epoch, EpochPhase::Quiesced);
        let quiesced_at = sim.now();

        // Drain: let in-flight traffic settle.
        match sim.run_phase(None, true) {
            PhaseEnd::Drained | PhaseEnd::Completed => {}
            other => {
                end = Some(other);
                break 'events;
            }
        }
        checker.observe(sim.now(), &to_epoch_waits(&sim.wait_snapshot()));
        sim.notify_epoch_phase(epoch, EpochPhase::Drained);
        let drain_cycles = sim.now() - quiesced_at;

        // Reprogram: pay the service-processor cost, re-derive the
        // configuration, validate connectivity, swap the routing function.
        let reprogram_at = sim.now();
        sim.advance_idle(spec.reprogram_cost);
        let new_scheme = build_scheme(scheme_id, net.clone(), &current).map_err(|e| {
            ReconfigError::Unconfigurable {
                at: sim.now(),
                reason: e.to_string(),
            }
        })?;
        let connectivity = reachable_pairs(net, &current);
        sim.begin_epoch();
        sim.set_scheme(new_scheme);
        sim.notify_epoch_phase(epoch, EpochPhase::Reprogrammed);
        let reprogram_cycles = sim.now() - reprogram_at;

        // Resume: revive paused victims under the new function, reopen the
        // gate, replay evacuated victims per the policy. The wounded list
        // covers the whole epoch: packets hit at activation plus packets
        // the stale function steered into the dead region during the
        // detect window (and any failed re-decisions just above).
        let rerouted = if spec.policy == RecoveryPolicy::Reroute {
            sim.redecide_paused()
        } else {
            0
        };
        sim.set_injection_open(true);
        let wounded = sim.take_new_victims();
        all_victims.extend(wounded.iter().copied());
        let mut reinjected = 0usize;
        let mut abandoned = 0usize;
        let mut stagger = 0u64;
        for id in &wounded {
            if sim.packet_finished_at(*id).is_none() {
                continue; // paused and revived in place: recovering already
            }
            if spec.policy == RecoveryPolicy::Drop {
                abandoned += 1;
                continue;
            }
            let tries = attempts.entry(id.0).or_insert(0);
            if *tries >= spec.max_reinjects || !replay_viable(net, &current, sim.packet_spec(*id)) {
                abandoned += 1;
                continue;
            }
            *tries += 1;
            sim.reschedule_packet(*id, sim.now() + 1 + stagger);
            stagger += 1;
            reinjected += 1;
        }
        reinjected_total += reinjected;
        sim.notify_epoch_phase(epoch, EpochPhase::Resumed);
        let resumed_at = sim.now();

        epochs.push(EpochReport {
            epoch,
            event_at,
            events: events.iter().map(|e| e.to_string()).collect(),
            victims: wounded.len(),
            rerouted,
            reinjected,
            abandoned,
            detect_cycles,
            drain_cycles,
            reprogram_cycles,
            resumed_at,
            disconnected_pairs: connectivity.disconnected_pairs,
        });

        // Watch window: sample the wait graph while old-epoch holds drain
        // out alongside new-epoch traffic — where a transition deadlock
        // would show up.
        let watch_until = resumed_at + spec.watch_window;
        while sim.now() < watch_until {
            let stop = (sim.now() + spec.sample_every.max(1))
                .min(watch_until)
                .min(next_event.unwrap_or(u64::MAX));
            match sim.run_phase(Some(stop), false) {
                PhaseEnd::ReachedCycle => {
                    checker.observe(sim.now(), &to_epoch_waits(&sim.wait_snapshot()));
                    if next_event == Some(sim.now()) {
                        break;
                    }
                }
                PhaseEnd::Completed => break,
                other => {
                    end = Some(other);
                    break 'events;
                }
            }
        }
    }

    let end = match end {
        Some(e) => e,
        None => sim.run_phase(None, false),
    };
    // Late wounds (after the last epoch's resume) never get a replay
    // opportunity, but they must still be counted as victims.
    all_victims.extend(sim.take_new_victims());
    let result = sim.finalize(end);

    let mut recovered = 0usize;
    let mut lost = 0usize;
    for id in &all_victims {
        match result.packets[id.0 as usize].outcome {
            PacketOutcome::Delivered => recovered += 1,
            PacketOutcome::Dropped(_) | PacketOutcome::Unfinished => lost += 1,
        }
    }

    Ok(ReconfigOutcome {
        result,
        report: ReconfigReport {
            policy: spec.policy.name().to_string(),
            epochs,
            transition: checker.into_report(),
            victims_total: all_victims.len(),
            reinjected_total,
            recovered,
            lost,
        },
    })
}
