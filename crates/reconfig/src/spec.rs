//! What a reconfiguration run is parameterized by: the fault timeline,
//! the recovery policy, and the modeled service-processor costs.

use mdx_fault::FaultTimeline;
use serde::{Deserialize, Serialize};

/// What happens to packets wounded by a mid-run fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryPolicy {
    /// Evacuate victims and notify the source; nothing is replayed. The
    /// cheapest policy, and the only one that can lose traffic the new
    /// configuration could still deliver.
    Drop,
    /// Evacuate victims, then replay each from its source PE after the
    /// epoch completes (bounded by [`ReconfigSpec::max_reinjects`] per
    /// packet across the whole run).
    Reinject,
    /// Freeze wounded packets in place where the flits have not yet
    /// entered the dead region, re-decide them under the new routing
    /// function at resume, and fall back to source reinjection for the
    /// rest.
    Reroute,
}

impl RecoveryPolicy {
    /// Stable CLI / report name.
    pub fn name(&self) -> &'static str {
        match self {
            RecoveryPolicy::Drop => "drop",
            RecoveryPolicy::Reinject => "reinject",
            RecoveryPolicy::Reroute => "reroute",
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<RecoveryPolicy> {
        match s {
            "drop" => Some(RecoveryPolicy::Drop),
            "reinject" => Some(RecoveryPolicy::Reinject),
            "reroute" => Some(RecoveryPolicy::Reroute),
            _ => None,
        }
    }
}

impl std::fmt::Display for RecoveryPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Full specification of a live-reconfiguration run: *when* components
/// fail or return ([`FaultTimeline`]), *how* victims recover
/// ([`RecoveryPolicy`]), and the modeled service-processor timings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReconfigSpec {
    /// The fault events, by activation cycle.
    pub timeline: FaultTimeline,
    /// Victim handling.
    pub policy: RecoveryPolicy,
    /// Cycles between a fault activating and the service processor
    /// starting the epoch protocol (traffic keeps running blind).
    pub detect_latency: u64,
    /// Idle cycles the reprogram step costs (register rewrites while the
    /// machine sits drained).
    pub reprogram_cost: u64,
    /// How long after resume the wait graph is sampled for mixed-epoch
    /// cycles, in cycles.
    pub watch_window: u64,
    /// Sampling stride inside the watch window, in cycles.
    pub sample_every: u64,
    /// Per-packet cap on source reinjections across the whole run (a
    /// packet re-wounded by a later event counts against the same budget).
    pub max_reinjects: u32,
}

impl ReconfigSpec {
    /// A spec with the default policy (reinject) and timings.
    pub fn new(timeline: FaultTimeline) -> ReconfigSpec {
        ReconfigSpec {
            timeline,
            ..ReconfigSpec::default()
        }
    }

    /// Sets the recovery policy (builder style).
    #[must_use]
    pub fn with_policy(mut self, policy: RecoveryPolicy) -> ReconfigSpec {
        self.policy = policy;
        self
    }
}

impl Default for ReconfigSpec {
    fn default() -> ReconfigSpec {
        ReconfigSpec {
            timeline: FaultTimeline::new(),
            policy: RecoveryPolicy::Reinject,
            detect_latency: 8,
            reprogram_cost: 32,
            watch_window: 256,
            sample_every: 4,
            max_reinjects: 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdx_fault::FaultSite;

    #[test]
    fn policy_names_roundtrip() {
        for p in [
            RecoveryPolicy::Drop,
            RecoveryPolicy::Reinject,
            RecoveryPolicy::Reroute,
        ] {
            assert_eq!(RecoveryPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(RecoveryPolicy::parse("retry"), None);
    }

    #[test]
    fn spec_serde_roundtrip() {
        let spec = ReconfigSpec::new(
            FaultTimeline::new()
                .inject(FaultSite::Router(5), 100)
                .repair(FaultSite::Router(5), 900),
        )
        .with_policy(RecoveryPolicy::Reroute);
        let json = serde_json::to_string(&spec).unwrap();
        let back: ReconfigSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }
}
