//! # mdx-reconfig — live reconfiguration for the SR2201 simulator
//!
//! The paper's fault model is static: the service processor derives the
//! fault registers *before* the machine boots, and the routing function
//! never changes while packets fly. The real SR2201 could not afford that —
//! a crossbar fails mid-job and the service processor must reprogram the
//! machine *around* live traffic. This crate models that lifecycle:
//!
//! 1. **Fault event** — a [`mdx_fault::FaultTimeline`] entry activates
//!    (`inject site @ cycle`, or `repair site @ cycle`). Packets touching
//!    the dead component are *wounded*; the engine handles them per the
//!    [`RecoveryPolicy`].
//! 2. **Detect** — the service processor notices after a modeled latency.
//! 3. **Quiesce** — the injection gate closes; no new packets enter.
//! 4. **Drain** — in-flight traffic runs until the network settles (empty,
//!    or motionless apart from paused victims).
//! 5. **Reprogram** — the clock advances by the modeled service-processor
//!    cost, the fault registers are re-derived, graph connectivity is
//!    re-validated, and the routing function is rebuilt for the new fault
//!    set. Routing decisions from here on carry a new **epoch** number.
//! 6. **Resume** — the gate reopens; victims re-enter per the policy
//!    (re-routed in place, reinjected at the source, or abandoned).
//!
//! Every phase boundary is timestamped into a [`ReconfigReport`], and the
//! wait graph is sampled across the transition window into a
//! [`mdx_deadlock::TransitionReport`]: each routing function is
//! deadlock-free on its own, but a wait cycle mixing old-epoch and
//! new-epoch decisions would be a *transition* deadlock — the hazard the
//! drain phase exists to prevent, and the property this crate checks
//! rather than assumes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;
mod report;
mod spec;

pub use controller::{drive_reconfig, run_reconfig, ReconfigError, ReconfigOutcome};
pub use report::{EpochReport, ReconfigReport};
pub use spec::{ReconfigSpec, RecoveryPolicy};
