//! End-to-end tests of the epoch protocol: mid-run fault activation,
//! drain/reprogram/resume, recovery policies, and transition safety.

use mdx_core::registry::build_scheme;
use mdx_core::Header;
use mdx_fault::{FaultSet, FaultSite, FaultTimeline};
use mdx_reconfig::{run_reconfig, ReconfigSpec, RecoveryPolicy};
use mdx_sim::{InjectSpec, PacketOutcome, SimConfig, SimOutcome, Simulator};
use mdx_topology::{MdCrossbar, Shape, XbarRef};
use std::sync::Arc;

fn fig2() -> Arc<MdCrossbar> {
    Arc::new(MdCrossbar::build(Shape::fig2()))
}

/// Staggered all-to-somewhere unicast traffic: PE i sends to PE (i+5)%n,
/// injected at cycle 4*i, so several packets are mid-flight at any cycle
/// in the first ~100.
fn rolling_unicasts(net: &MdCrossbar, flits: usize) -> Vec<InjectSpec> {
    let shape = net.shape();
    let n = shape.num_pes();
    (0..n)
        .map(|i| InjectSpec {
            src_pe: i,
            header: Header::unicast(shape.coord_of(i), shape.coord_of((i + 5) % n)),
            flits,
            inject_at: 4 * i as u64,
        })
        .collect()
}

fn cfg() -> SimConfig {
    SimConfig {
        max_cycles: 50_000,
        ..SimConfig::default()
    }
}

#[test]
fn empty_timeline_matches_static_run() {
    let net = fig2();
    let specs = rolling_unicasts(&net, 12);
    let spec = ReconfigSpec::default();
    let out = run_reconfig(
        net.clone(),
        "sr2201",
        &FaultSet::none(),
        &specs,
        cfg(),
        &spec,
        None,
    )
    .unwrap();

    let scheme = build_scheme("sr2201", net.clone(), &FaultSet::none()).unwrap();
    let mut sim = Simulator::new(net.graph().clone(), scheme, cfg());
    for &s in &specs {
        sim.schedule(s);
    }
    let plain = sim.run();

    assert_eq!(
        serde_json::to_string(&out.result).unwrap(),
        serde_json::to_string(&plain).unwrap(),
        "an event-free reconfig run must be byte-identical to a static run"
    );
    assert!(out.report.epochs.is_empty());
    assert_eq!(out.report.victims_total, 0);
    assert!(out.report.transition_safe());
}

#[test]
fn xbar_fault_under_reinject_recovers_every_victim() {
    let net = fig2();
    let specs = rolling_unicasts(&net, 12);
    // A Y-crossbar dies while the staggered traffic is in full flight.
    let spec = ReconfigSpec::new(
        FaultTimeline::new().inject(FaultSite::Xbar(XbarRef { dim: 1, line: 2 }), 20),
    );
    let out = run_reconfig(
        net.clone(),
        "sr2201",
        &FaultSet::none(),
        &specs,
        cfg(),
        &spec,
        None,
    )
    .unwrap();

    assert_eq!(out.result.outcome, SimOutcome::Completed);
    assert_eq!(out.report.epochs.len(), 1);
    let e = &out.report.epochs[0];
    assert_eq!(e.event_at, 20);
    assert!(
        e.victims > 0,
        "no packet was in flight through the dead xbar"
    );
    assert_eq!(e.disconnected_pairs, 0);
    assert!(e.drain_cycles > 0);
    assert_eq!(e.reprogram_cycles, spec.reprogram_cost);
    // A crossbar fault kills no PE: every victim is replayable and must
    // arrive under the fault-adapted function.
    assert_eq!(out.report.lost, 0, "{}", out.report.render());
    assert_eq!(out.report.recovered, out.report.victims_total);
    assert!(out.report.reinjected_total > 0);
    assert!(out.report.transition_safe());
    // Every packet delivered in the end.
    for p in &out.result.packets {
        assert_eq!(p.outcome, PacketOutcome::Delivered, "packet {:?}", p.id);
    }
}

#[test]
fn drop_policy_loses_exactly_the_victims() {
    let net = fig2();
    let specs = rolling_unicasts(&net, 12);
    let spec = ReconfigSpec::new(
        FaultTimeline::new().inject(FaultSite::Xbar(XbarRef { dim: 1, line: 2 }), 20),
    )
    .with_policy(RecoveryPolicy::Drop);
    let out = run_reconfig(
        net.clone(),
        "sr2201",
        &FaultSet::none(),
        &specs,
        cfg(),
        &spec,
        None,
    )
    .unwrap();

    assert!(out.report.victims_total > 0);
    assert_eq!(out.report.lost, out.report.victims_total);
    assert_eq!(out.report.reinjected_total, 0);
    assert_eq!(out.report.epochs[0].abandoned, out.report.victims_total);
    // Non-victims still complete under the new function.
    let delivered = out
        .result
        .packets
        .iter()
        .filter(|p| p.outcome == PacketOutcome::Delivered)
        .count();
    assert_eq!(delivered, specs.len() - out.report.victims_total);
}

#[test]
fn reroute_policy_recovers_without_loss() {
    let net = fig2();
    let specs = rolling_unicasts(&net, 12);
    let spec = ReconfigSpec::new(
        FaultTimeline::new().inject(FaultSite::Xbar(XbarRef { dim: 1, line: 2 }), 20),
    )
    .with_policy(RecoveryPolicy::Reroute);
    let out = run_reconfig(
        net.clone(),
        "sr2201",
        &FaultSet::none(),
        &specs,
        cfg(),
        &spec,
        None,
    )
    .unwrap();

    assert_eq!(out.result.outcome, SimOutcome::Completed);
    assert!(out.report.victims_total > 0);
    assert_eq!(out.report.lost, 0, "{}", out.report.render());
    assert!(out.report.transition_safe());
}

#[test]
fn router_fault_abandons_unreachable_destinations() {
    let net = fig2();
    let shape = net.shape().clone();
    // Two packets: one crossing router 5's row, one destined *to* PE 5.
    // The router dies while both are pending/in flight.
    let specs = vec![
        InjectSpec {
            src_pe: 0,
            header: Header::unicast(shape.coord_of(0), shape.coord_of(5)),
            flits: 12,
            inject_at: 30,
        },
        InjectSpec {
            src_pe: 4,
            header: Header::unicast(shape.coord_of(4), shape.coord_of(7)),
            flits: 12,
            inject_at: 0,
        },
    ];
    let spec = ReconfigSpec::new(FaultTimeline::new().inject(FaultSite::Router(5), 10));
    let out = run_reconfig(
        net.clone(),
        "sr2201",
        &FaultSet::none(),
        &specs,
        cfg(),
        &spec,
        None,
    )
    .unwrap();

    // The packet to PE5 can never be replayed usefully: its destination
    // died. Whether it was wounded or scheme-dropped, it must not be
    // delivered; and it must not be endlessly reinjected.
    assert!(matches!(
        out.result.packets[0].outcome,
        PacketOutcome::Dropped(_)
    ));
    assert!(out.report.reinjected_total <= spec.max_reinjects as usize * specs.len());
}

#[test]
fn repair_event_restores_service() {
    let net = fig2();
    let shape = net.shape().clone();
    // Router 5 is faulty from the start; it is repaired at cycle 500.
    // A packet to PE5 injected after the repair must be delivered.
    let initial = FaultSet::single(FaultSite::Router(5));
    let specs = vec![InjectSpec {
        src_pe: 0,
        header: Header::unicast(shape.coord_of(0), shape.coord_of(5)),
        flits: 12,
        inject_at: 1000,
    }];
    let spec = ReconfigSpec::new(FaultTimeline::new().repair(FaultSite::Router(5), 500));
    let out = run_reconfig(net.clone(), "sr2201", &initial, &specs, cfg(), &spec, None).unwrap();

    assert_eq!(out.result.outcome, SimOutcome::Completed);
    assert_eq!(out.result.packets[0].outcome, PacketOutcome::Delivered);
    assert_eq!(out.report.epochs.len(), 1);
    assert_eq!(out.report.victims_total, 0);
}

#[test]
fn inject_then_repair_roundtrip_timeline() {
    let net = fig2();
    let specs = rolling_unicasts(&net, 12);
    let site = FaultSite::Xbar(XbarRef { dim: 1, line: 2 });
    let spec = ReconfigSpec::new(FaultTimeline::new().inject(site, 20).repair(site, 1200));
    let out = run_reconfig(
        net.clone(),
        "sr2201",
        &FaultSet::none(),
        &specs,
        cfg(),
        &spec,
        None,
    )
    .unwrap();
    assert_eq!(out.report.epochs.len(), 2);
    assert!(out.report.transition_safe());
    assert_eq!(out.report.lost, 0, "{}", out.report.render());
}

#[test]
fn reconfig_runs_are_deterministic() {
    let net = fig2();
    let specs = rolling_unicasts(&net, 12);
    let spec = ReconfigSpec::new(
        FaultTimeline::new().inject(FaultSite::Xbar(XbarRef { dim: 1, line: 2 }), 20),
    );
    let run = || {
        run_reconfig(
            net.clone(),
            "sr2201",
            &FaultSet::none(),
            &specs,
            cfg(),
            &spec,
            None,
        )
        .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(
        serde_json::to_string(&a.result).unwrap(),
        serde_json::to_string(&b.result).unwrap()
    );
    assert_eq!(
        serde_json::to_string(&a.report).unwrap(),
        serde_json::to_string(&b.report).unwrap()
    );
}

#[test]
fn conflicting_xbar_faults_report_unconfigurable() {
    let net = fig2();
    let specs = rolling_unicasts(&net, 12);
    // sr2201 cannot be configured with crossbar faults in two dimensions.
    let spec = ReconfigSpec::new(
        FaultTimeline::new().inject(FaultSite::Xbar(XbarRef { dim: 1, line: 2 }), 20),
    );
    let initial = FaultSet::single(FaultSite::Xbar(XbarRef { dim: 0, line: 0 }));
    let err = run_reconfig(net.clone(), "sr2201", &initial, &specs, cfg(), &spec, None)
        .expect_err("two-dimension crossbar faults must be unconfigurable");
    match err {
        mdx_reconfig::ReconfigError::Unconfigurable { at, .. } => assert!(at >= 20),
        other => panic!("unexpected error {other}"),
    }
}
