//! Cycle-level reproductions of the paper's deadlock scenarios (Figs. 5, 6,
//! 9, 10) plus engine sanity checks.

use mdx_core::{Header, NaiveBroadcast, RouteChange, RoutingConfig, Sr2201Routing};
use mdx_fault::{FaultSet, FaultSite};
use mdx_sim::{InjectSpec, PacketOutcome, SimConfig, SimOutcome, Simulator};
use mdx_topology::{Coord, MdCrossbar, Shape};
use std::sync::Arc;

fn fig2_net() -> Arc<MdCrossbar> {
    Arc::new(MdCrossbar::build(Shape::fig2()))
}

fn unicast(net: &MdCrossbar, src: usize, dst: usize, flits: usize, at: u64) -> InjectSpec {
    let shape = net.shape();
    InjectSpec {
        src_pe: src,
        header: Header::unicast(shape.coord_of(src), shape.coord_of(dst)),
        flits,
        inject_at: at,
    }
}

fn bc_request(net: &MdCrossbar, src: usize, flits: usize, at: u64) -> InjectSpec {
    InjectSpec {
        src_pe: src,
        header: Header::broadcast_request(net.shape().coord_of(src)),
        flits,
        inject_at: at,
    }
}

fn naive_bc(net: &MdCrossbar, src: usize, flits: usize, at: u64) -> InjectSpec {
    let c = net.shape().coord_of(src);
    InjectSpec {
        src_pe: src,
        header: Header {
            rc: RouteChange::Broadcast,
            dest: c,
            src: c,
        },
        flits,
        inject_at: at,
    }
}

#[test]
fn single_unicast_delivers_with_pipeline_latency() {
    let net = fig2_net();
    let scheme = Arc::new(Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap());
    let mut sim = Simulator::new(net.graph().clone(), scheme, SimConfig::default());
    sim.schedule(unicast(&net, 0, 11, 5, 0));
    let r = sim.run();
    assert_eq!(r.outcome, SimOutcome::Completed);
    assert_eq!(r.packets[0].outcome, PacketOutcome::Delivered);
    assert_eq!(
        r.packets[0].deliveries,
        vec![(11, r.packets[0].finished_at.unwrap())]
    );
    // 6 channels, 5 flits, per-hop decision delay: strictly more than the
    // flit count, well under a store-and-forward bound.
    let lat = r.packets[0].latency().unwrap();
    assert!((10..60).contains(&lat), "latency {lat}");
}

#[test]
fn longer_packets_take_longer() {
    let net = fig2_net();
    let mut last = 0;
    for flits in [1usize, 4, 16] {
        let scheme = Arc::new(Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap());
        let mut sim = Simulator::new(net.graph().clone(), scheme, SimConfig::default());
        sim.schedule(unicast(&net, 0, 11, flits, 0));
        let r = sim.run();
        let lat = r.packets[0].latency().unwrap();
        assert!(lat > last, "flits {flits}: {lat} !> {last}");
        last = lat;
    }
}

#[test]
fn contending_packets_serialize_on_shared_port() {
    // Two packets crossing the same row crossbar exit port.
    let net = fig2_net();
    let scheme = Arc::new(Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap());
    let mut sim = Simulator::new(net.graph().clone(), scheme, SimConfig::default());
    sim.schedule(unicast(&net, 0, 3, 8, 0));
    sim.schedule(unicast(&net, 1, 3, 8, 0));
    let r = sim.run();
    assert_eq!(r.outcome, SimOutcome::Completed);
    let l0 = r.packets[0].latency().unwrap();
    let l1 = r.packets[1].latency().unwrap();
    // One of them must have waited roughly a packet's worth of cycles.
    assert!((l0 as i64 - l1 as i64).unsigned_abs() >= 4, "{l0} vs {l1}");
}

#[test]
fn deterministic_across_runs() {
    let net = fig2_net();
    let mk = || {
        let scheme = Arc::new(Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap());
        let mut sim = Simulator::new(net.graph().clone(), scheme, SimConfig::default());
        for i in 0..8 {
            sim.schedule(unicast(&net, i, 11 - i, 4, (i % 3) as u64));
        }
        sim.schedule(bc_request(&net, 5, 4, 1));
        sim.run()
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.outcome, b.outcome);
    assert_eq!(a.stats, b.stats);
    for (pa, pb) in a.packets.iter().zip(&b.packets) {
        assert_eq!(pa, pb);
    }
}

#[test]
fn self_send_delivers_locally() {
    let net = fig2_net();
    let scheme = Arc::new(Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap());
    let mut sim = Simulator::new(net.graph().clone(), scheme, SimConfig::default());
    sim.schedule(unicast(&net, 4, 4, 3, 0));
    let r = sim.run();
    assert_eq!(r.outcome, SimOutcome::Completed);
    assert_eq!(r.packets[0].deliveries.len(), 1);
    assert_eq!(r.packets[0].deliveries[0].0, 4);
}

/// Fig. 6: concurrent broadcasts under the S-XB scheme all complete,
/// delivered to every PE, strictly serialized.
#[test]
fn fig6_concurrent_sxb_broadcasts_complete() {
    let net = fig2_net();
    let scheme = Arc::new(Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap());
    let mut sim = Simulator::new(net.graph().clone(), scheme, SimConfig::default());
    for src in [3usize, 4, 8, 11] {
        sim.schedule(bc_request(&net, src, 4, 0));
    }
    let r = sim.run();
    assert_eq!(r.outcome, SimOutcome::Completed, "{:?}", r.outcome);
    for p in &r.packets {
        assert_eq!(p.outcome, PacketOutcome::Delivered);
        assert_eq!(p.deliveries.len(), 12, "broadcast must reach all 12 PEs");
    }
}

/// Fig. 5: simultaneous naive broadcasts deadlock, each holding some
/// Y-dimension crossbar ports while waiting for the rest.
///
/// Two ingredients matter: (a) per-port arbitration splits the contested
/// Y-XB ports between the packets, and (b) the packets are longer than the
/// buffer slack on the blocked paths, so backpressure reaches the fan-out
/// point, the winning columns can never finish streaming, and the held
/// ports are never released — cut-through channel holding, exactly the
/// paper's argument.
#[test]
fn fig5_naive_broadcasts_deadlock() {
    let net = fig2_net();
    let mut deadlocks = 0;
    for seed in 0..16u64 {
        let scheme = Arc::new(NaiveBroadcast::new(net.clone()));
        let mut sim = Simulator::new(
            net.graph().clone(),
            scheme,
            SimConfig {
                arb_seed: seed,
                ..SimConfig::default()
            },
        );
        sim.schedule(naive_bc(&net, 0, 16, 0)); // row 0
        sim.schedule(naive_bc(&net, 4, 16, 0)); // row 1
        let r = sim.run();
        match &r.outcome {
            SimOutcome::Deadlock(info) => {
                deadlocks += 1;
                assert!(!info.cycle.is_empty());
                // The cyclic wait is over Y-dimension crossbar ports, as in
                // the paper's figure.
                assert!(info.cycle.iter().any(|e| e.channel.contains("Y")), "{info}");
            }
            SimOutcome::Completed => {}
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    assert!(deadlocks >= 8, "only {deadlocks}/16 seeds deadlocked");
}

/// A single naive broadcast is fine — the pathology needs concurrency.
#[test]
fn single_naive_broadcast_completes() {
    let net = fig2_net();
    let scheme = Arc::new(NaiveBroadcast::new(net.clone()));
    let mut sim = Simulator::new(net.graph().clone(), scheme, SimConfig::default());
    sim.schedule(naive_bc(&net, 5, 4, 0));
    let r = sim.run();
    assert_eq!(r.outcome, SimOutcome::Completed);
    assert_eq!(r.packets[0].deliveries.len(), 12);
}

/// Fig. 9 vs Fig. 10: broadcast and a detoured point-to-point packet under
/// a single router fault.
///
/// The paper's Fig. 9 scenario: the detoured unicast holds a Y-crossbar
/// port on its way to the D-XB while the broadcast emission holds the
/// destination's PE port; the emission waits for the unicast's Y port, the
/// unicast waits for the emission's PE port — cyclic wait. The cycle only
/// forms in a timing window (the packets must overlap just so), so the test
/// sweeps the unicast's injection offset. With the paper's D-XB = S-XB
/// configuration (Fig. 10) the identical sweep never deadlocks, because the
/// detour serializes behind the broadcast at the S-XB instead of meeting it
/// downstream.
#[test]
fn fig9_vs_fig10_injection_sweep() {
    let net = fig2_net();
    let shape = net.shape().clone();
    let faulty = shape.index_of(Coord::new(&[1, 0]));
    let faults = FaultSet::single(FaultSite::Router(faulty));

    let run = |separate_dxb: bool, offset: u64, seed: u64| {
        let mut cfg = RoutingConfig::for_faults(&shape, &faults).unwrap();
        if separate_dxb {
            cfg = cfg.with_separate_dxb(&faults);
        }
        let scheme = Arc::new(Sr2201Routing::with_config(net.clone(), cfg, &faults));
        let mut sim = Simulator::new(
            net.graph().clone(),
            scheme,
            SimConfig {
                arb_seed: seed,
                ..SimConfig::default()
            },
        );
        // Broadcast from PE9 = (1, 2); unicast (0,0) -> (1,1) must detour
        // around the faulty router (1,0).
        sim.schedule(bc_request(&net, 9, 24, 0));
        sim.schedule(unicast(&net, 0, 5, 24, offset));
        sim.run().outcome
    };

    let mut fig9_deadlocks = 0;
    for offset in 10..38u64 {
        for seed in 0..4u64 {
            match run(true, offset, seed) {
                SimOutcome::Deadlock(info) => {
                    fig9_deadlocks += 1;
                    // The cycle involves exactly the two packets.
                    assert!(!info.cycle.is_empty());
                }
                SimOutcome::Completed => {}
                other => panic!("offset {offset} seed {seed}: {other:?}"),
            }
            // Fig. 10: the paper's scheme never deadlocks on the same sweep.
            assert_eq!(
                run(false, offset, seed),
                SimOutcome::Completed,
                "paper scheme deadlocked at offset {offset} seed {seed}"
            );
        }
    }
    assert!(
        fig9_deadlocks >= 10,
        "only {fig9_deadlocks} deadlocks across the fig9 sweep"
    );
}

/// Dense composite workload (many broadcasts + many detouring unicasts)
/// under the paper's scheme: always completes, everything delivered.
#[test]
fn fig10_composite_workload_completes() {
    let net = fig2_net();
    let shape = net.shape().clone();
    let faulty = shape.index_of(Coord::new(&[1, 0]));
    let faults = FaultSet::single(FaultSite::Router(faulty));
    let cfg = RoutingConfig::for_faults(&shape, &faults).unwrap();
    assert!(cfg.deadlock_free());
    let scheme = Arc::new(Sr2201Routing::with_config(net.clone(), cfg, &faults));
    let mut sim = Simulator::new(net.graph().clone(), scheme, SimConfig::default());
    let mut t = 0;
    for round in 0..6u64 {
        for src in [8usize, 9, 10, 11, 5] {
            sim.schedule(bc_request(&net, src, 24, t + round));
        }
        for (s, d) in [(0usize, 5usize), (2, 9), (3, 5), (0, 9)] {
            sim.schedule(unicast(&net, s, d, 24, t + round * 2));
        }
        t += 5;
    }
    let r = sim.run();
    assert_eq!(r.outcome, SimOutcome::Completed, "{:?}", r.outcome);
    for p in &r.packets {
        assert_eq!(p.outcome, PacketOutcome::Delivered);
    }
}

/// Fig. 10 stress: the paper's scheme never deadlocks across seeds, faults
/// and mixed workloads.
#[test]
fn fig10_stress_never_deadlocks() {
    let net = fig2_net();
    let shape = net.shape().clone();
    for fault_pe in [1usize, 5, 10] {
        let faults = FaultSet::single(FaultSite::Router(fault_pe));
        for seed in 0..4u64 {
            let scheme = Arc::new(Sr2201Routing::new(net.clone(), &faults).unwrap());
            let mut sim = Simulator::new(
                net.graph().clone(),
                scheme,
                SimConfig {
                    arb_seed: seed,
                    ..SimConfig::default()
                },
            );
            let mut k = 0u64;
            for src in 0..12usize {
                if !faults.pe_usable(src) {
                    continue;
                }
                sim.schedule(bc_request(&net, src, 5, k % 7));
                for dst in 0..12usize {
                    if dst != src
                        && faults.pe_usable(dst)
                        && (src + 2 * dst + seed as usize).is_multiple_of(5)
                    {
                        sim.schedule(unicast(&net, src, dst, 5, k % 11));
                    }
                }
                k += 3;
            }
            let r = sim.run();
            assert_eq!(
                r.outcome,
                SimOutcome::Completed,
                "fault R{fault_pe}, seed {seed}: {:?}",
                r.outcome
            );
            let _ = shape.d();
        }
    }
}

/// Detoured packets still arrive under cycle-level contention.
#[test]
fn detour_delivery_under_contention() {
    let net = fig2_net();
    let shape = net.shape().clone();
    let faulty = shape.index_of(Coord::new(&[2, 1]));
    let faults = FaultSet::single(FaultSite::Router(faulty));
    let scheme = Arc::new(Sr2201Routing::new(net.clone(), &faults).unwrap());
    let mut sim = Simulator::new(net.graph().clone(), scheme, SimConfig::default());
    let mut expected = Vec::new();
    for src in 0..12usize {
        for dst in 0..12usize {
            if src != dst && faults.pe_usable(src) && faults.pe_usable(dst) {
                sim.schedule(unicast(&net, src, dst, 3, (src * 12 + dst) as u64 % 17));
                expected.push((src, dst));
            }
        }
    }
    let r = sim.run();
    assert_eq!(r.outcome, SimOutcome::Completed);
    for (i, p) in r.packets.iter().enumerate() {
        assert_eq!(
            p.outcome,
            PacketOutcome::Delivered,
            "packet {i} {:?}",
            expected[i]
        );
        assert_eq!(p.deliveries[0].0, expected[i].1);
    }
}

/// Unicast to a dead PE is dropped, not wedged.
#[test]
fn drop_terminates_cleanly() {
    let net = fig2_net();
    let faults = FaultSet::single(FaultSite::Pe(7));
    let scheme = Arc::new(Sr2201Routing::new(net.clone(), &faults).unwrap());
    let mut sim = Simulator::new(net.graph().clone(), scheme, SimConfig::default());
    sim.schedule(unicast(&net, 0, 7, 4, 0));
    sim.schedule(unicast(&net, 0, 6, 4, 1));
    let r = sim.run();
    assert_eq!(r.outcome, SimOutcome::Completed);
    assert!(matches!(r.packets[0].outcome, PacketOutcome::Dropped(_)));
    assert_eq!(r.packets[1].outcome, PacketOutcome::Delivered);
}

/// Buffer-depth ablation: with buffers at least a packet long (virtual
/// cut-through), a blocked broadcast is fully absorbed, its tail crosses,
/// ports release, and the Fig. 5 deadlock is *masked* — but it returns the
/// moment packets outgrow the buffers. Deep buffers change when the
/// pathology bites; only the S-XB serialization removes it.
#[test]
fn vct_masks_fig5_deadlock_until_packets_outgrow_buffers() {
    let net = fig2_net();
    let run = |flits: usize, buffer: usize, seed: u64| {
        let scheme = Arc::new(NaiveBroadcast::new(net.clone()));
        let mut sim = Simulator::new(
            net.graph().clone(),
            scheme,
            SimConfig {
                buffer_flits: buffer,
                arb_seed: seed,
                ..SimConfig::default()
            },
        );
        sim.schedule(naive_bc(&net, 0, flits, 0));
        sim.schedule(naive_bc(&net, 4, flits, 0));
        sim.run().outcome
    };
    // Short packets, deep buffers: always absorbed, never deadlocks.
    for seed in 0..8 {
        assert_eq!(run(16, 64, seed), SimOutcome::Completed, "seed {seed}");
    }
    // Long packets, same buffers: the cycle comes back for most seeds.
    let deadlocks = (0..8).filter(|&s| run(256, 64, s).is_deadlock()).count();
    assert!(deadlocks >= 4, "only {deadlocks}/8 seeds deadlocked");
}

/// Broadcasts and heavy unicast background traffic on the full-size SR2201
/// shape complete deadlock-free (scaled-down cycle budget).
#[test]
fn three_dim_network_mixed_traffic() {
    let net = Arc::new(MdCrossbar::build(Shape::new(&[4, 4, 2]).unwrap()));
    let scheme = Arc::new(Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap());
    let mut sim = Simulator::new(net.graph().clone(), scheme, SimConfig::default());
    let n = net.shape().num_pes();
    for src in 0..n {
        sim.schedule(unicast(&net, src, (src * 7 + 3) % n, 4, (src % 5) as u64));
    }
    sim.schedule(bc_request(&net, 0, 4, 2));
    sim.schedule(bc_request(&net, 17, 4, 2));
    let r = sim.run();
    assert_eq!(r.outcome, SimOutcome::Completed);
    let bc = &r.packets[n];
    assert_eq!(bc.deliveries.len(), n);
}

/// Store-and-forward interoperates with the full scheme: broadcasts and
/// detours still complete (slower), and the Fig. 5 deadlock still occurs —
/// switching technique changes latency, not the port-holding hazard.
#[test]
fn store_and_forward_full_scheme() {
    let net = fig2_net();
    let shape = net.shape().clone();
    let faulty = shape.index_of(Coord::new(&[1, 0]));
    let faults = FaultSet::single(FaultSite::Router(faulty));
    let scheme = Arc::new(Sr2201Routing::new(net.clone(), &faults).unwrap());
    let cfg = SimConfig {
        store_and_forward: true,
        buffer_flits: 64,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(net.graph().clone(), scheme, cfg);
    sim.schedule(bc_request(&net, 9, 8, 0));
    sim.schedule(unicast(&net, 0, 5, 8, 1)); // detours around (1,0)
    sim.schedule(unicast(&net, 3, 8, 8, 2));
    let r = sim.run();
    assert_eq!(r.outcome, SimOutcome::Completed);
    for p in &r.packets {
        assert_eq!(p.outcome, PacketOutcome::Delivered);
    }
    assert_eq!(r.packets[0].deliveries.len(), 11); // all but the dead PE
}

/// Virtual channels carry independent traffic without interference bugs:
/// packets restricted to lane 1 deliver exactly like lane 0 packets.
#[test]
fn vc_lanes_operate_independently() {
    use mdx_core::{Action, Branch, Scheme};
    use mdx_topology::Node;

    /// Wraps the SR2201 scheme, moving all traffic to a fixed lane.
    struct OnLane(Sr2201Routing, u8);
    impl Scheme for OnLane {
        fn name(&self) -> String {
            format!("lane {}", self.1)
        }
        fn max_vcs(&self) -> u8 {
            2
        }
        fn decide(&self, at: Node, came: Option<Node>, h: &Header) -> Action {
            match self.0.decide(at, came, h) {
                Action::Forward(b) => Action::Forward(
                    b.into_iter()
                        .map(|br| Branch::on_vc(br.to, br.header, self.1))
                        .collect(),
                ),
                other => other,
            }
        }
    }

    let net = fig2_net();
    for lane in [0u8, 1] {
        let inner = Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap();
        let scheme = Arc::new(OnLane(inner, lane));
        let mut sim = Simulator::new(net.graph().clone(), scheme, SimConfig::default());
        for src in 0..12usize {
            sim.schedule(unicast(&net, src, (src + 5) % 12, 6, (src % 3) as u64));
        }
        let r = sim.run();
        assert_eq!(r.outcome, SimOutcome::Completed, "lane {lane}");
        assert_eq!(r.stats.delivered, 12);
    }
}

/// Two flows pinned to different lanes of the same congested physical link
/// share its bandwidth: each gets roughly half.
#[test]
fn vc_lanes_share_physical_bandwidth() {
    use mdx_core::{Action, Branch, Scheme};
    use mdx_topology::Node;

    struct LaneByPacket(Sr2201Routing);
    impl Scheme for LaneByPacket {
        fn name(&self) -> String {
            "lane-by-src".into()
        }
        fn max_vcs(&self) -> u8 {
            2
        }
        fn decide(&self, at: Node, came: Option<Node>, h: &Header) -> Action {
            // Lane = parity of the source row: the two flows below differ.
            let lane = (h.src.get(1) % 2) as u8;
            match self.0.decide(at, came, h) {
                Action::Forward(b) => Action::Forward(
                    b.into_iter()
                        .map(|br| Branch::on_vc(br.to, br.header, lane))
                        .collect(),
                ),
                other => other,
            }
        }
    }

    let net = fig2_net();
    let inner = Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap();
    let scheme = Arc::new(LaneByPacket(inner));
    let mut sim = Simulator::new(net.graph().clone(), scheme, SimConfig::default());
    // Both flows end at PE (3,2): they share the Y3-XB -> R11 link on
    // different lanes. Long packets so the sharing window is wide.
    sim.schedule(unicast(&net, 3, 11, 40, 0)); // src row 0 -> lane 0
    sim.schedule(unicast(&net, 7, 11, 40, 0)); // src row 1 -> lane 1
    let r = sim.run();
    assert_eq!(r.outcome, SimOutcome::Completed);
    let l0 = r.packets[0].latency().unwrap();
    let l1 = r.packets[1].latency().unwrap();
    // With bandwidth sharing both take roughly 2x a solo run (~50+), and
    // neither is starved; without sharing one would finish in ~50 and the
    // other in ~100.
    assert!(l0 > 70 && l1 > 70, "sharing missing: {l0} {l1}");
    assert!((l0 as i64 - l1 as i64).abs() < 20, "starved: {l0} {l1}");
}

/// Exhaustive cycle-level counterpart of the static all-pairs sweep: under
/// EVERY single fault, all usable pairs delivered simultaneously with
/// contention, plus one broadcast — no deadlock anywhere.
#[test]
fn every_single_fault_all_pairs_cycle_level() {
    use mdx_fault::enumerate_single_faults;
    let net = fig2_net();
    let shape = net.shape().clone();
    let n = shape.num_pes();
    for site in enumerate_single_faults(&net) {
        let faults = FaultSet::single(site);
        let scheme = Arc::new(Sr2201Routing::new(net.clone(), &faults).unwrap());
        let mut sim = Simulator::new(net.graph().clone(), scheme, SimConfig::default());
        let mut expected_unicasts = 0;
        for src in 0..n {
            for dst in 0..n {
                if src != dst && faults.pe_usable(src) && faults.pe_usable(dst) {
                    sim.schedule(unicast(&net, src, dst, 4, ((src * n + dst) % 23) as u64));
                    expected_unicasts += 1;
                }
            }
        }
        let bc_src = (0..n).find(|&p| faults.pe_usable(p)).unwrap();
        sim.schedule(bc_request(&net, bc_src, 4, 5));
        let r = sim.run();
        assert_eq!(r.outcome, SimOutcome::Completed, "{site}");
        assert_eq!(r.stats.delivered, expected_unicasts + 1, "{site}");
        let bc = r.packets.last().unwrap();
        assert_eq!(
            bc.deliveries.len(),
            (0..n).filter(|&p| faults.pe_usable(p)).count(),
            "{site}"
        );
    }
}
