//! The extended per-VC channel model: lane-granular occupancy, round-robin
//! lane arbitration on the physical link, and per-lane flit accounting.
//!
//! The engine has always sized its port arrays `channels x max_vcs`; these
//! tests pin the semantics the multi-lane schemes (O1TURN, `hyperx-ft`)
//! rely on, and that the per-lane statistics never perturb results — the
//! same schedule must produce the same `SimResult` digest surface whether
//! or not anyone reads `lane_flits`.

use mdx_core::{build_scheme_for, Header, O1TurnRouting};
use mdx_fault::{FaultSet, FaultSite};
use mdx_sim::{InjectSpec, SimConfig, SimOutcome, Simulator};
use mdx_topology::{Coord, MdCrossbar, Network, Shape};
use std::sync::Arc;

fn o1turn_sim() -> (Arc<MdCrossbar>, Simulator) {
    let net = Arc::new(MdCrossbar::build(Shape::new(&[4, 4]).unwrap()));
    let scheme = Arc::new(O1TurnRouting::new(net.clone(), 7));
    let sim = Simulator::new(net.graph().clone(), scheme, SimConfig::default());
    (net, sim)
}

fn all_pairs(net: &MdCrossbar) -> Vec<InjectSpec> {
    let shape = net.shape();
    let mut specs = Vec::new();
    for src in 0..shape.num_pes() {
        for dst in 0..shape.num_pes() {
            if src == dst {
                continue;
            }
            specs.push(InjectSpec {
                src_pe: src,
                header: Header::unicast(shape.coord_of(src), shape.coord_of(dst)),
                flits: 6,
                inject_at: (src % 4) as u64,
            });
        }
    }
    specs
}

#[test]
fn lane_flits_partition_channel_flits() {
    let (net, mut sim) = o1turn_sim();
    for spec in all_pairs(&net) {
        sim.schedule(spec);
    }
    let r = sim.run();
    assert_eq!(r.outcome, SimOutcome::Completed);
    assert_eq!(sim.vcs(), 2);
    let lanes = sim.lane_flits();
    let chans = sim.channel_flits();
    assert_eq!(lanes.len(), chans.len() * sim.vcs());
    for (ch, &total) in chans.iter().enumerate() {
        let split: u64 = lanes[ch * sim.vcs()..(ch + 1) * sim.vcs()].iter().sum();
        assert_eq!(split, total, "channel {ch}: lanes must partition flits");
    }
}

#[test]
fn both_lanes_carry_traffic_under_o1turn() {
    let (net, mut sim) = o1turn_sim();
    for spec in all_pairs(&net) {
        sim.schedule(spec);
    }
    sim.run();
    let vcs = sim.vcs();
    let per_lane: Vec<u64> = (0..vcs)
        .map(|vc| {
            sim.lane_flits()
                .iter()
                .enumerate()
                .filter(|(p, _)| p % vcs == vc)
                .map(|(_, &f)| f)
                .sum()
        })
        .collect();
    assert!(
        per_lane.iter().all(|&f| f > 0),
        "both O1TURN orders must move flits: {per_lane:?}"
    );
}

#[test]
fn single_vc_run_has_one_lane_per_channel() {
    let net = Arc::new(MdCrossbar::build(Shape::fig2()));
    let scheme = build_scheme_for("sr2201", &Network::Mdx(net.clone()), &FaultSet::none()).unwrap();
    let mut sim = Simulator::new(net.graph().clone(), scheme, SimConfig::default());
    sim.schedule(InjectSpec {
        src_pe: 0,
        header: Header::unicast(net.shape().coord_of(0), net.shape().coord_of(11)),
        flits: 5,
        inject_at: 0,
    });
    let r = sim.run();
    assert_eq!(r.outcome, SimOutcome::Completed);
    assert_eq!(sim.vcs(), 1);
    assert_eq!(sim.lane_flits(), sim.channel_flits());
}

#[test]
fn lane_accounting_does_not_perturb_results() {
    // Two identical runs; reading the lane statistics on one of them must
    // not change the simulation outcome surface.
    let run = || {
        let (net, mut sim) = o1turn_sim();
        for spec in all_pairs(&net) {
            sim.schedule(spec);
        }
        (sim.run(), sim)
    };
    let (a, sim_a) = run();
    let (b, _) = run();
    let _ = sim_a.lane_flits();
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.outcome, b.outcome);
    assert_eq!(
        a.packets.iter().map(|p| p.finished_at).collect::<Vec<_>>(),
        b.packets.iter().map(|p| p.finished_at).collect::<Vec<_>>()
    );
}

#[test]
fn hyperx_ft_escape_lane_flows_under_fault() {
    // The multi-VC comparator on its own substrate: a dead in-order
    // target forces dimension reordering, whose first hop rides lane 1.
    let shape = Shape::new(&[3, 3]).unwrap();
    let net = Network::build("hyperx", shape.clone()).unwrap();
    let blocked = shape.index_of(Coord::new(&[2, 0]));
    let faults = FaultSet::single(FaultSite::Router(blocked));
    let scheme = build_scheme_for("hyperx-ft", &net, &faults).unwrap();
    let mut sim = Simulator::new(net.graph().clone(), scheme, SimConfig::default());
    sim.schedule(InjectSpec {
        src_pe: shape.index_of(Coord::new(&[0, 0])),
        header: Header::unicast(Coord::new(&[0, 0]), Coord::new(&[2, 2])),
        flits: 6,
        inject_at: 0,
    });
    let r = sim.run();
    assert_eq!(r.outcome, SimOutcome::Completed);
    assert_eq!(sim.vcs(), 2);
    let vcs = sim.vcs();
    let lane1: u64 = sim
        .lane_flits()
        .iter()
        .enumerate()
        .filter(|(p, _)| p % vcs == 1)
        .map(|(_, &f)| f)
        .sum();
    assert!(lane1 > 0, "the detour hop must use the escape lane");
}
