//! The streaming seam: a [`TrafficSource`]-fed run is bit-identical to the
//! same schedule handed over up front, and idle gaps between arrivals
//! fast-forward instead of stepping cycle by cycle.

use mdx_core::{Header, Sr2201Routing};
use mdx_fault::FaultSet;
use mdx_sim::{InjectSpec, ScheduleSource, SimConfig, SimOutcome, Simulator};
use mdx_topology::{MdCrossbar, Shape};
use std::sync::Arc;

fn fig2_net() -> Arc<MdCrossbar> {
    Arc::new(MdCrossbar::build(Shape::fig2()))
}

fn sim(net: &Arc<MdCrossbar>, cfg: SimConfig) -> Simulator {
    let scheme = Arc::new(Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap());
    Simulator::new(net.graph().clone(), scheme, cfg)
}

fn unicast(net: &MdCrossbar, src: usize, dst: usize, flits: usize, at: u64) -> InjectSpec {
    let shape = net.shape();
    InjectSpec {
        src_pe: src,
        header: Header::unicast(shape.coord_of(src), shape.coord_of(dst)),
        flits,
        inject_at: at,
    }
}

/// A contended, staggered schedule: several sources, overlapping windows,
/// same-cycle ties — everything arbitration order is sensitive to.
fn staggered_schedule(net: &MdCrossbar) -> Vec<InjectSpec> {
    let n = net.shape().num_pes();
    let mut specs = Vec::new();
    for i in 0..n {
        specs.push(unicast(net, i, (i + 5) % n, 6, (i as u64 % 4) * 3));
        specs.push(unicast(net, i, (i + n / 2) % n, 4, 20 + (i as u64 % 7)));
    }
    specs
}

#[test]
fn source_run_is_bit_identical_to_batch_run() {
    let net = fig2_net();
    // Time-sorted so both paths number packets identically: the source
    // assigns ids at pull time (arrival order), the batch path at
    // schedule() time. Same-cycle ties keep their relative order (both
    // sorts are stable), so arbitration tie-breaks line up exactly.
    let mut specs = staggered_schedule(&net);
    specs.sort_by_key(|s| s.inject_at);

    let mut batch = sim(&net, SimConfig::default());
    for &s in &specs {
        batch.schedule(s);
    }
    let batch_result = batch.run();

    let mut streamed = sim(&net, SimConfig::default());
    streamed.set_traffic_source(Box::new(ScheduleSource::new(specs.clone())));
    let stream_result = streamed.run();

    assert_eq!(batch_result.outcome, SimOutcome::Completed);
    assert_eq!(batch_result, stream_result);
    assert_eq!(streamed.source_offered(), specs.len());
}

#[test]
fn idle_gaps_fast_forward_to_the_next_arrival() {
    let net = fig2_net();
    // Two bursts separated by a dead window far longer than the watchdog.
    let mut specs = vec![unicast(&net, 0, 11, 5, 0)];
    specs.push(unicast(&net, 3, 8, 5, 50_000));

    let mut s = sim(&net, SimConfig::default());
    s.set_traffic_source(Box::new(ScheduleSource::new(specs)));
    let r = s.run();

    assert_eq!(r.outcome, SimOutcome::Completed);
    assert_eq!(r.stats.delivered, 2);
    // The clock really crossed the gap (no early watchdog stall)...
    assert!(r.stats.cycles >= 50_000, "cycles {}", r.stats.cycles);
    // ...and the second packet kept its scheduled injection instant.
    assert_eq!(r.packets[1].injected_at, 50_000);
    // The self-profile sees the gap for what it is: almost all of this
    // run's ticks were idle (fast-forwarded), which is exactly the
    // headroom an event-driven engine core would reclaim.
    let prof = r.profile.expect("engine runs always carry a profile");
    assert!(
        prof.jumped_cycles >= 45_000,
        "jumped {}",
        prof.jumped_cycles
    );
    assert!(
        prof.idle_tick_fraction() > 0.9,
        "idle fraction {}",
        prof.idle_tick_fraction()
    );
    assert!(prof.ticks() >= prof.steps);
    // Occupancy histogram covers every tick.
    assert_eq!(prof.occupancy.iter().sum::<u64>(), prof.ticks());
    assert!(prof.events > 0);
    // Phase timing was not requested.
    assert!(prof.phases.is_none());
}

#[test]
fn phase_timing_splits_the_run_loop_wall_clock() {
    let net = fig2_net();
    let mut s = sim(&net, SimConfig::default());
    for &spec in &staggered_schedule(&net) {
        s.schedule(spec);
    }
    s.set_phase_timing(true);
    let r = s.run();
    assert_eq!(r.outcome, SimOutcome::Completed);
    let prof = r.profile.expect("profile is always populated");
    let phases = prof.phases.expect("phase timing was enabled");
    // The step loop dominates; every component is non-negative and the
    // split stays within the total run-loop wall clock.
    assert!(phases.step_s > 0.0);
    assert!(phases.source_s >= 0.0 && phases.probe_s >= 0.0);
    assert!(phases.source_s + phases.step_s + phases.probe_s <= prof.wall_s + 1e-3);
}

#[test]
fn exhausted_source_with_no_schedule_completes_empty() {
    let net = fig2_net();
    let mut s = sim(&net, SimConfig::default());
    s.set_traffic_source(Box::new(ScheduleSource::new(Vec::new())));
    let r = s.run();
    assert_eq!(r.outcome, SimOutcome::Completed);
    assert_eq!(r.packets.len(), 0);
}
