//! The cycle-level simulation engine.
//!
//! ## Resource model
//!
//! Every directed channel is the *output port* of its source switch.
//!
//! * **Ownership** — a packet's header requests a port; FIFO arbitration
//!   grants a free port to the oldest requester. The owner streams flits and
//!   releases the port when its tail flit crosses (cut-through).
//! * **Buffers** — each channel's downstream input buffer holds
//!   `buffer_flits` flits, FIFO across packets: a later packet's flits queue
//!   behind an earlier packet's until the earlier one drains. The *resident
//!   run* queue tracks this; only the front run's header is visible to the
//!   downstream switch.
//! * **Multi-port forwards** (broadcast fan-out) acquire ports incrementally
//!   but stream only once all are held — the Fig. 5 acquisition pattern.
//! * **Serialization** — the scheme's S-XB gathers RC=1 requests into a
//!   FIFO; one packet at a time is re-emitted on all S-XB ports (Fig. 6).

use crate::observer::{SimObserver, WaitSnapshot};
use crate::result::{
    DeadlockInfo, EngineDiagnostic, EngineProfile, InjectSpec, PacketId, PacketOutcome,
    PacketResult, PhaseSplit, SimOutcome, SimResult, SimStats, WaitEdge, OCCUPANCY_BUCKETS,
};
use crate::source::TrafficSource;
use mdx_core::{Action, DropReason, Header, Scheme};
use mdx_fault::FaultSet;
use mdx_topology::{ChannelId, NetworkGraph, Node, NodeId};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cycles without any flit movement before a drain phase (injection closed,
/// [`Simulator::run_phase`] with `drain = true`) is declared settled. Small
/// and fixed: with injection gated, the engine's event gaps (grant →
/// first flit, gather → emission) span at most a few cycles, so a quiet
/// window this long means the network has reached a fixed point.
const DRAIN_QUIET: u64 = 16;

/// How a phase of [`Simulator::run_phase`] ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhaseEnd {
    /// Every scheduled packet reached a terminal state.
    Completed,
    /// The hard cycle limit was hit.
    CycleLimit,
    /// The watchdog extracted a cyclic wait.
    Deadlock(DeadlockInfo),
    /// The watchdog fired but no cycle was found.
    Stalled,
    /// The requested `stop_at` cycle was reached (work remains).
    ReachedCycle,
    /// Drain mode only: in-flight traffic settled — nothing moves and no
    /// wait cycle exists (remaining activity, if any, is paused victims
    /// and the traffic backed up behind them).
    Drained,
}

/// What the engine does to packets wounded by a mid-run fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VictimMode {
    /// Evacuate: flush the packet's flits everywhere, settle it as
    /// [`DropReason::FaultVictim`]. The recovery policy decides afterwards
    /// whether the settled packet is re-injected.
    #[default]
    Abort,
    /// Pause in place: a wounded visit that has not streamed any flit is
    /// frozen at its switch (holding its input buffer, releasing its output
    /// ports) to be re-decided under the post-reprogram routing function.
    /// Visits already streaming through the dead component fall back to
    /// [`VictimMode::Abort`].
    Pause,
}

/// Mixes (seed, channel, packet) into an arbitration priority — a cheap
/// splitmix-style hash, deterministic but uncorrelated across ports.
fn arb_hash(seed: u64, channel: u32, packet: u32) -> u64 {
    let mut x = seed ^ ((channel as u64) << 32) ^ (packet as u64);
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Engine parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Flit capacity of each channel's downstream input buffer. Small values
    /// (the default, 2) give wormhole behavior — a blocked packet strings
    /// across switches holding every acquired port; values at least the
    /// packet length give virtual cut-through — a blocked packet is absorbed
    /// at the blocking switch and upstream ports free as its tail passes.
    pub buffer_flits: usize,
    /// Cycles without any flit movement (while work remains) before the
    /// watchdog declares a stall and runs deadlock analysis.
    pub watchdog: u64,
    /// Hard cycle limit.
    pub max_cycles: u64,
    /// Seed for same-cycle arbitration tie-breaking. Requests that arrive at
    /// a port on different cycles are served oldest-first; requests arriving
    /// on the *same* cycle are ordered by a seeded per-port hash, modeling
    /// the uncoordinated round-robin pointers of independent hardware port
    /// arbiters. (With a global deterministic order, two simultaneous
    /// broadcasts would always resolve in favor of the same packet at every
    /// crossbar and the Fig. 5 cyclic split could never form.)
    pub arb_seed: u64,
    /// Record each packet's per-switch route (switch name, header-arrival
    /// cycle) into [`PacketResult::route`]. Off by default — it allocates
    /// per hop and is meant for debugging and route inspection, not load
    /// sweeps.
    pub record_routes: bool,
    /// Store-and-forward mode: a switch starts forwarding only after the
    /// *whole* packet has arrived in its input buffer (which must therefore
    /// be at least the packet length). The contrast the paper's cut-through
    /// citations (Kermani/Kleinrock, Dally/Seitz) are about: per-hop
    /// latency becomes packet-serialization x hops instead of one pipeline
    /// pass.
    pub store_and_forward: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            buffer_flits: 2,
            watchdog: 1024,
            max_cycles: 1_000_000,
            arb_seed: 0x5EED_CAFE,
            record_routes: false,
            store_and_forward: false,
        }
    }
}

#[derive(Debug, Clone)]
struct BranchState {
    channel: ChannelId,
    vc: u8,
    header: Header,
    granted: bool,
    crossed: usize,
    /// Cycle this branch's port request entered a blocked episode.
    /// Maintained only while an observer is attached (it feeds the
    /// `on_blocked`/`on_unblocked`/`on_probe` hooks, not engine semantics).
    blocked_since: Option<u64>,
}

#[derive(Debug, Clone)]
enum SinkKind {
    Deliver(usize),
    Gather,
    Drop(DropReason),
}

#[derive(Debug, Clone)]
enum VKind {
    Forward {
        branches: Vec<BranchState>,
        streaming: bool,
    },
    Sink {
        consumed: usize,
        sink: SinkKind,
    },
}

#[derive(Debug, Clone)]
struct Visit {
    packet: u32,
    /// The switch this visit sits at.
    at: NodeId,
    /// Port (channel lane) whose buffer feeds this visit (`None` for
    /// injection and S-XB emission, which read from local memory).
    in_port: Option<u32>,
    /// The upstream (visit, branch) writing into `in_channel`.
    up_run: Option<(u32, u32)>,
    /// Header as it arrived at this switch.
    header: Header,
    total: usize,
    kind: VKind,
    complete: bool,
    /// Reconfiguration epoch of the routing decision behind this visit.
    epoch: u32,
    /// Frozen by a mid-run fault, awaiting [`Simulator::redecide_paused`].
    /// A paused visit holds its input buffer but requests no ports and
    /// never streams or completes.
    paused: bool,
}

/// The engine's always-on self-profiling counters (see [`EngineProfile`]).
///
/// The unconditional part is a handful of integer adds per executed step —
/// noise next to the step itself. The per-phase `Instant` reads are gated
/// behind `timing` ([`Simulator::set_phase_timing`]) because three clock
/// reads per cycle are measurable on short runs.
#[derive(Debug, Default)]
struct Profiler {
    /// Wall clock accumulated across `run_phase` calls.
    wall: Duration,
    /// Engine loop iterations executed.
    steps: u64,
    /// Executed steps that made no progress.
    idle_steps: u64,
    /// Cycles skipped by the idle fast-forward plus quiescent
    /// `advance_idle` dead time.
    jumped_cycles: u64,
    /// In-flight packet count per tick, bucketed by
    /// [`crate::result::OCCUPANCY_BOUNDS`].
    occupancy: [u64; OCCUPANCY_BUCKETS],
    /// Phase timing enabled?
    timing: bool,
    source: Duration,
    step: Duration,
    probe: Duration,
}

#[derive(Debug, Clone)]
struct PacketRt {
    spec: InjectSpec,
    started: bool,
    /// Open elements: live visits plus a slot while queued at the S-XB.
    open: u32,
    finished_at: Option<u64>,
    deliveries: Vec<(usize, u64)>,
    dropped: Option<DropReason>,
    /// (graph node id, header-arrival cycle) per hop — interned into the
    /// run-level name table by `collect_result`.
    route: Vec<(u32, u64)>,
}

/// The simulator. Feed it a schedule with [`Simulator::schedule`], then call
/// [`Simulator::run`].
pub struct Simulator {
    graph: NetworkGraph,
    scheme: Arc<dyn Scheme>,
    cfg: SimConfig,
    serial_node: Option<NodeId>,

    packets: Vec<PacketRt>,
    inject_order: Vec<u32>,
    next_inject: usize,
    /// Incremental packet source for open-loop (streaming) runs; pulled at
    /// the top of every [`Simulator::run_phase`] iteration.
    source: Option<Box<dyn TrafficSource>>,
    /// Cached [`TrafficSource::next_arrival`] so `work_remaining` (which
    /// takes `&self`) can see pending arrivals without consulting the
    /// source.
    source_next: Option<u64>,

    visits: Vec<Visit>,
    active: Vec<u32>,
    /// Virtual channel lanes per physical channel (from the scheme).
    vcs: usize,
    /// Current writer of each port (lane) — the owner until its tail
    /// crosses.
    chan_owner: Vec<Option<(u32, u32)>>,
    /// Port request queues: (visit, branch, request cycle).
    chan_requests: Vec<VecDeque<(u32, u32, u64)>>,
    /// Runs whose flits occupy the port's downstream buffer, oldest
    /// first. Only the front run's header is visible downstream.
    chan_resident: Vec<VecDeque<(u32, u32)>>,
    /// The downstream visit consuming the front resident run, if created.
    chan_downstream: Vec<Option<u32>>,
    request_chans: BTreeSet<u32>,
    resident_chans: BTreeSet<u32>,
    /// Per physical channel: the lane served last cycle (round-robin share
    /// of the link's one-flit-per-cycle bandwidth).
    chan_last_vc: Vec<u8>,

    serial_queue: VecDeque<(u32, Header)>,
    emission_active: Option<u32>,

    now: u64,
    last_progress: u64,
    flit_hops: u64,
    /// Flits crossed per channel (utilization statistics).
    chan_flits: Vec<u64>,
    /// Flits crossed per port (channel x lane) — the per-VC split of
    /// `chan_flits`. Engine-side statistics only: deliberately not part of
    /// [`SimResult`], so replay digests of single-VC tokens are untouched.
    port_flits: Vec<u64>,
    finished_packets: usize,
    /// Packets injected so far (counter twin of the per-packet `started`
    /// flags): `started_packets - finished_packets` is the in-flight count
    /// the profiler buckets each tick.
    started_packets: usize,
    prof: Profiler,
    observer: Option<Box<dyn SimObserver>>,
    /// Invariant violations recorded instead of panicking (see
    /// [`EngineDiagnostic`]); copied into [`SimResult::diagnostics`].
    diagnostics: Vec<EngineDiagnostic>,

    // --- live-reconfiguration state (inert on a static run) ---
    /// Injection gate; closed during an epoch's quiesce/drain/reprogram.
    injection_open: bool,
    /// Per graph node: currently disabled by an activated fault.
    dead_nodes: Vec<bool>,
    /// Per physical channel: an endpoint is a dead node.
    dead_channels: Vec<bool>,
    /// Fast path: skip all dead checks while no fault is active.
    any_dead: bool,
    /// Bumped by [`Simulator::begin_epoch`] at each reprogram; stamps every
    /// routing decision (visit) made under the current routing function.
    current_epoch: u32,
    victim_mode: VictimMode,
    /// Packets wounded since the last [`Simulator::take_new_victims`] —
    /// activation-time victims plus drain-time victims (packets whose next
    /// hop entered the dead region after activation).
    victim_log: Vec<PacketId>,
}

impl Simulator {
    /// Creates a simulator over `graph` running `scheme`.
    pub fn new(graph: NetworkGraph, scheme: Arc<dyn Scheme>, cfg: SimConfig) -> Simulator {
        assert!(cfg.buffer_flits >= 1, "buffers hold at least one flit");
        let serial_node = scheme.serializing_node().and_then(|n| graph.id_of(n));
        let channels = graph.num_channels();
        let vcs = scheme.max_vcs().max(1) as usize;
        let ports = channels * vcs;
        Simulator {
            graph,
            scheme,
            cfg,
            serial_node,
            packets: Vec::new(),
            inject_order: Vec::new(),
            next_inject: 0,
            source: None,
            source_next: None,
            visits: Vec::new(),
            active: Vec::new(),
            vcs,
            chan_owner: vec![None; ports],
            chan_requests: vec![VecDeque::new(); ports],
            chan_resident: vec![VecDeque::new(); ports],
            chan_downstream: vec![None; ports],
            request_chans: BTreeSet::new(),
            resident_chans: BTreeSet::new(),
            chan_last_vc: vec![0; channels],
            serial_queue: VecDeque::new(),
            emission_active: None,
            now: 0,
            last_progress: 0,
            flit_hops: 0,
            chan_flits: vec![0; channels],
            port_flits: vec![0; ports],
            finished_packets: 0,
            started_packets: 0,
            prof: Profiler::default(),
            observer: None,
            diagnostics: Vec::new(),
            injection_open: true,
            dead_nodes: Vec::new(),
            dead_channels: Vec::new(),
            any_dead: false,
            current_epoch: 0,
            victim_mode: VictimMode::default(),
            victim_log: Vec::new(),
        }
    }

    /// Attaches an event observer (replacing any previous one). The engine
    /// calls its hooks at packet-lifecycle transitions; see
    /// [`SimObserver`].
    pub fn set_observer(&mut self, observer: Box<dyn SimObserver>) {
        self.observer = Some(observer);
    }

    /// Detaches and returns the current observer, if any — typically after
    /// [`Simulator::run`], to read back what it accumulated.
    pub fn take_observer(&mut self) -> Option<Box<dyn SimObserver>> {
        self.observer.take()
    }

    /// Enables per-phase wall-clock timing in the self-profile
    /// ([`EngineProfile::phases`]). Off by default: the split needs three
    /// monotonic-clock reads per engine cycle, which is measurable on
    /// short runs (the aggregate counters are always on and cost a few
    /// integer adds). A runtime setter rather than a [`SimConfig`] field
    /// so replayable scenario tokens never encode it.
    pub fn set_phase_timing(&mut self, on: bool) {
        self.prof.timing = on;
    }

    /// Port (lane) index of a channel + virtual channel pair.
    #[inline]
    fn port(&self, ch: ChannelId, vc: u8) -> usize {
        ch.idx() * self.vcs + vc as usize
    }

    /// Human-readable port description (channel plus lane when VCs are in
    /// use).
    fn describe_port(&self, port: usize) -> String {
        let ch = ChannelId((port / self.vcs) as u32);
        let vc = port % self.vcs;
        if self.vcs > 1 {
            format!("{} (vc{vc})", self.graph.describe_channel(ch))
        } else {
            self.graph.describe_channel(ch)
        }
    }

    /// Adds a packet to the schedule. Must be called before [`Simulator::run`].
    ///
    /// # Panics
    /// Panics on zero-length packets.
    pub fn schedule(&mut self, spec: InjectSpec) -> PacketId {
        assert!(spec.flits >= 1, "packets carry at least the header flit");
        let id = PacketId(self.packets.len() as u32);
        self.packets.push(PacketRt {
            spec,
            started: false,
            open: 0,
            finished_at: None,
            deliveries: Vec::new(),
            dropped: None,
            route: Vec::new(),
        });
        id
    }

    /// Attaches an incremental packet source for an open-loop (streaming)
    /// run, replacing any previous one. [`Simulator::run_phase`] pulls due
    /// packets from it each cycle and merges them into the same injection
    /// path an up-front schedule uses, so determinism and arbitration
    /// order are unaffected. A run keeps going (and fast-forwards across
    /// idle gaps) until both the schedule and the source are exhausted.
    pub fn set_traffic_source(&mut self, mut source: Box<dyn TrafficSource>) {
        self.source_next = source.next_arrival();
        self.source = Some(source);
    }

    /// Packets the attached traffic source has handed over so far
    /// (offered-load accounting); 0 without a source.
    pub fn source_offered(&self) -> usize {
        self.source.as_ref().map_or(0, |s| s.offered())
    }

    /// Moves due packets from the traffic source into the schedule,
    /// keeping `inject_order` sorted by `(inject_at, id)` — the same
    /// sorted insert [`Simulator::reschedule_packet`] uses.
    fn pull_source(&mut self) {
        match self.source_next {
            Some(t) if t <= self.now => {}
            _ => return,
        }
        let source = self.source.as_mut().expect("source_next implies a source");
        let specs = source.pull(self.now);
        self.source_next = source.next_arrival();
        debug_assert!(
            self.source_next.is_none_or(|t| t > self.now),
            "source must advance past the pulled cycle"
        );
        for spec in specs {
            let id = self.schedule(spec);
            let key = (spec.inject_at, id.0);
            let packets = &self.packets;
            let pos = self.inject_order[self.next_inject..]
                .partition_point(|&i| (packets[i as usize].spec.inject_at, i) <= key);
            self.inject_order.insert(self.next_inject + pos, id.0);
        }
    }

    /// If the network is empty and the only remaining work is a future
    /// source arrival, the cycle the clock can jump straight to (the
    /// arrival, clamped to this phase's stopping points). `None` while any
    /// packet is in flight or the injection gate is closed.
    fn idle_jump(&self, stop_at: Option<u64>) -> Option<u64> {
        if !self.injection_open || self.finished_packets < self.packets.len() {
            return None;
        }
        let mut target = self.source_next?;
        if let Some(t) = stop_at {
            target = target.min(t);
        }
        target = target.min(self.cfg.max_cycles);
        (target > self.now).then_some(target)
    }

    /// Current simulation cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Flits that crossed each channel (indexed by [`ChannelId`]).
    pub fn channel_flits(&self) -> &[u64] {
        &self.chan_flits
    }

    /// Virtual lanes per physical channel this run was sized for
    /// (`max(1, scheme.max_vcs())`).
    pub fn vcs(&self) -> usize {
        self.vcs
    }

    /// Flits that crossed each port, indexed `channel * vcs + lane` — the
    /// per-virtual-lane split of [`Simulator::channel_flits`]. Summing a
    /// channel's lane slots always reproduces its `channel_flits` entry
    /// (the link moves one flit per cycle regardless of lane count).
    pub fn lane_flits(&self) -> &[u64] {
        &self.port_flits
    }

    /// Engine bookkeeping anomalies recorded so far (also carried by
    /// [`SimResult::diagnostics`] after the run). Empty on a healthy run.
    pub fn diagnostics(&self) -> &[EngineDiagnostic] {
        &self.diagnostics
    }

    fn channel_of(&self, from: NodeId, to: Node) -> Option<ChannelId> {
        let to_id = self.graph.id_of(to)?;
        self.graph.channel_between(from, to_id)
    }

    fn branch(&self, run: (u32, u32)) -> &BranchState {
        match &self.visits[run.0 as usize].kind {
            VKind::Forward { branches, .. } => &branches[run.1 as usize],
            VKind::Sink { .. } => unreachable!("runs always come from forward visits"),
        }
    }

    /// Flits of the port's *front* resident run that have left the buffer.
    fn front_drained(&self, port: usize) -> usize {
        match self.chan_downstream[port] {
            Some(d) => match &self.visits[d as usize].kind {
                VKind::Forward { branches, .. } => {
                    branches.iter().map(|b| b.crossed).min().unwrap_or(0)
                }
                VKind::Sink { consumed, .. } => *consumed,
            },
            None => 0,
        }
    }

    /// Total flits currently in the port's downstream buffer.
    fn occupancy(&self, port: usize) -> usize {
        let total: usize = self.chan_resident[port]
            .iter()
            .map(|&run| self.branch(run).crossed)
            .sum();
        total - self.front_drained(port)
    }

    /// Flits available to visit `v` for pushing onward.
    fn avail(&self, v: &Visit) -> usize {
        match v.up_run {
            None => v.total, // injection or S-XB emission: all flits local
            Some(run) => {
                let crossed = self.branch(run).crossed;
                if self.cfg.store_and_forward && crossed < v.total {
                    // Store-and-forward: nothing leaves until the whole
                    // packet has arrived.
                    0
                } else {
                    crossed
                }
            }
        }
    }

    fn mk_drop(&self, reason: DropReason) -> VKind {
        VKind::Sink {
            consumed: 0,
            sink: SinkKind::Drop(reason),
        }
    }

    /// Converts a scheme decision into a visit kind, validating branches.
    fn action_to_kind(&mut self, at: NodeId, action: Action) -> VKind {
        let at_node = self.graph.node(at);
        match action {
            Action::Deliver => match at_node {
                Node::Pe(p) => VKind::Sink {
                    consumed: 0,
                    sink: SinkKind::Deliver(p),
                },
                // Delivering away from a PE is a scheme bug; surface it as a
                // protocol-violation drop rather than corrupting state.
                _ => self.mk_drop(DropReason::ProtocolViolation),
            },
            Action::Gather => {
                if Some(at) == self.serial_node {
                    VKind::Sink {
                        consumed: 0,
                        sink: SinkKind::Gather,
                    }
                } else {
                    self.mk_drop(DropReason::ProtocolViolation)
                }
            }
            Action::Drop(r) => self.mk_drop(r),
            Action::Forward(branches) if branches.is_empty() => {
                self.mk_drop(DropReason::ProtocolViolation)
            }
            Action::Forward(branches) => {
                let mut states = Vec::with_capacity(branches.len());
                let mut bad = false;
                for b in &branches {
                    if b.vc as usize >= self.vcs {
                        bad = true;
                        continue;
                    }
                    match self.channel_of(at, b.to) {
                        Some(ch) => states.push(BranchState {
                            channel: ch,
                            vc: b.vc,
                            header: b.header,
                            granted: false,
                            crossed: 0,
                            blocked_since: None,
                        }),
                        None => bad = true,
                    }
                }
                if bad {
                    self.mk_drop(DropReason::ProtocolViolation)
                } else {
                    VKind::Forward {
                        branches: states,
                        streaming: false,
                    }
                }
            }
        }
    }

    /// Whether a forward kind routes into a currently-dead channel.
    fn kind_hits_dead_channel(&self, kind: &VKind) -> bool {
        match kind {
            VKind::Forward { branches, .. } => {
                branches.iter().any(|b| self.dead_channels[b.channel.idx()])
            }
            VKind::Sink { .. } => false,
        }
    }

    fn log_victim(&mut self, packet: u32) {
        let id = PacketId(packet);
        if !self.victim_log.contains(&id) {
            self.victim_log.push(id);
        }
    }

    /// Creates a visit by asking the scheme for a decision.
    fn create_visit(
        &mut self,
        packet: u32,
        at: NodeId,
        came_from: Option<NodeId>,
        in_port: Option<u32>,
        up_run: Option<(u32, u32)>,
        header: Header,
    ) {
        // Headers arriving at a dead switch cannot be routed: the switch's
        // decision logic is gone. The flits are flushed (evacuated) and the
        // packet becomes a fault victim for the recovery policy to replay.
        if self.any_dead && self.dead_nodes[at.0 as usize] {
            self.log_victim(packet);
            let kind = self.mk_drop(DropReason::FaultVictim);
            self.install_visit(packet, at, in_port, up_run, header, kind, false);
            return;
        }
        let at_node = self.graph.node(at);
        let from_node = came_from.map(|id| self.graph.node(id));
        if self.cfg.record_routes {
            self.packets[packet as usize].route.push((at.0, self.now));
        }
        let action = self.scheme.decide(at_node, from_node, &header);
        if self.observer.is_some() {
            let in_channel = in_port.map(|p| ChannelId(p / self.vcs as u32));
            let rc_change = match &action {
                Action::Forward(branches) => branches
                    .iter()
                    .map(|b| b.header.rc)
                    .find(|&rc| rc != header.rc),
                _ => None,
            };
            if let Some(obs) = self.observer.as_deref_mut() {
                obs.on_hop(PacketId(packet), at_node, in_channel, self.now);
                if let Some(to) = rc_change {
                    obs.on_rc_change(PacketId(packet), at_node, header.rc, to, self.now);
                }
            }
        }
        let kind = self.action_to_kind(at, action);
        // The (pre-reprogram) scheme routed into a dead component: the
        // packet's next hop is gone. Pause it at this live switch for a
        // post-reprogram re-decision, or evacuate it, per the victim mode.
        if self.any_dead && self.kind_hits_dead_channel(&kind) {
            self.log_victim(packet);
            match self.victim_mode {
                VictimMode::Abort => {
                    let kind = self.mk_drop(DropReason::FaultVictim);
                    self.install_visit(packet, at, in_port, up_run, header, kind, false);
                }
                VictimMode::Pause => {
                    let kind = VKind::Forward {
                        branches: Vec::new(),
                        streaming: false,
                    };
                    self.install_visit(packet, at, in_port, up_run, header, kind, true);
                }
            }
            return;
        }
        self.install_visit(packet, at, in_port, up_run, header, kind, false);
    }

    #[allow(clippy::too_many_arguments)]
    fn install_visit(
        &mut self,
        packet: u32,
        at: NodeId,
        in_port: Option<u32>,
        up_run: Option<(u32, u32)>,
        header: Header,
        kind: VKind,
        paused: bool,
    ) -> u32 {
        let total = self.packets[packet as usize].spec.flits;
        let idx = self.visits.len() as u32;
        if !paused {
            if let VKind::Forward { branches, .. } = &kind {
                for (bi, b) in branches.iter().enumerate() {
                    let port = self.port(b.channel, b.vc);
                    self.chan_requests[port].push_back((idx, bi as u32, self.now));
                    self.request_chans.insert(port as u32);
                }
            }
        }
        self.visits.push(Visit {
            packet,
            at,
            in_port,
            up_run,
            header,
            total,
            kind,
            complete: false,
            epoch: self.current_epoch,
            paused,
        });
        self.active.push(idx);
        if let Some(port) = in_port {
            debug_assert!(self.chan_downstream[port as usize].is_none());
            self.chan_downstream[port as usize] = Some(idx);
        }
        self.packets[packet as usize].open += 1;
        idx
    }

    fn step(&mut self) -> bool {
        let mut progress = false;

        // 1. Injections due this cycle (unless the epoch protocol has the
        //    gate closed).
        while self.injection_open && self.next_inject < self.inject_order.len() {
            let pidx = self.inject_order[self.next_inject];
            let spec = self.packets[pidx as usize].spec;
            if spec.inject_at > self.now {
                break;
            }
            self.next_inject += 1;
            let at = self.graph.expect_id(Node::Pe(spec.src_pe));
            if self.any_dead && self.dead_nodes[at.0 as usize] {
                // The source PE died before this packet could enter: it can
                // never be injected. Settle it as a fault victim.
                let p = &mut self.packets[pidx as usize];
                p.started = true;
                p.dropped = Some(DropReason::FaultVictim);
                p.finished_at = Some(self.now);
                self.started_packets += 1;
                self.finished_packets += 1;
                self.log_victim(pidx);
                if let Some(obs) = self.observer.as_deref_mut() {
                    obs.on_packet_finished(PacketId(pidx), self.now);
                }
                progress = true;
                continue;
            }
            self.packets[pidx as usize].started = true;
            self.started_packets += 1;
            if let Some(obs) = self.observer.as_deref_mut() {
                obs.on_inject(PacketId(pidx), &spec, self.now);
            }
            self.create_visit(pidx, at, None, None, None, spec.header);
        }

        // 2. Create downstream visits where a header flit sits at a buffer
        //    head.
        let heads: Vec<u32> = self.resident_chans.iter().copied().collect();
        for port in heads {
            let pu = port as usize;
            if self.chan_downstream[pu].is_some() {
                continue;
            }
            let Some(&run) = self.chan_resident[pu].front() else {
                continue;
            };
            if self.branch(run).crossed == 0 {
                continue; // header still crossing
            }
            let packet = self.visits[run.0 as usize].packet;
            let header = self.branch(run).header;
            let info = self.graph.channel(ChannelId((pu / self.vcs) as u32));
            self.create_visit(
                packet,
                info.dst,
                Some(info.src),
                Some(port),
                Some(run),
                header,
            );
        }

        // 3. S-XB emission: strictly one broadcast at a time, in order of
        //    arrival (paper Fig. 6 step 2).
        if self.emission_active.is_none() {
            if let (Some(serial), Some(&(pidx, header))) =
                (self.serial_node, self.serial_queue.front())
            {
                self.serial_queue.pop_front();
                let branches = self.scheme.emission(&header);
                let mut states = Vec::with_capacity(branches.len());
                let mut bad = branches.is_empty();
                for b in &branches {
                    if b.vc as usize >= self.vcs {
                        bad = true;
                        continue;
                    }
                    match self.channel_of(serial, b.to) {
                        Some(ch) => states.push(BranchState {
                            channel: ch,
                            vc: b.vc,
                            header: b.header,
                            granted: false,
                            crossed: 0,
                            blocked_since: None,
                        }),
                        None => bad = true,
                    }
                }
                if self.observer.is_some() {
                    let at = self.graph.node(serial);
                    let depth = self.serial_queue.len();
                    let rc_change = states
                        .iter()
                        .map(|b| b.header.rc)
                        .find(|&rc| rc != header.rc);
                    if let Some(obs) = self.observer.as_deref_mut() {
                        obs.on_emission(PacketId(pidx), depth, self.now);
                        obs.on_hop(PacketId(pidx), at, None, self.now);
                        if let Some(to) = rc_change {
                            obs.on_rc_change(PacketId(pidx), at, header.rc, to, self.now);
                        }
                    }
                }
                let kind = if bad {
                    self.mk_drop(DropReason::NoUsablePath)
                } else {
                    VKind::Forward {
                        branches: states,
                        streaming: false,
                    }
                };
                // An emission fan touching a dead component cannot be
                // paused (re-emission is the S-XB's job, not a switch
                // re-decision): flush it and let the policy replay it.
                let kind = if self.any_dead && self.kind_hits_dead_channel(&kind) {
                    self.log_victim(pidx);
                    self.mk_drop(DropReason::FaultVictim)
                } else {
                    kind
                };
                let is_forward = matches!(kind, VKind::Forward { .. });
                let vi = self.install_visit(pidx, serial, None, None, header, kind, false);
                if is_forward {
                    self.emission_active = Some(vi);
                }
                // The queue slot is closed either way.
                self.packets[pidx as usize].open -= 1;
            }
        }

        // 4. Arbitration: grant free ports oldest-request-first, breaking
        //    same-cycle ties with the seeded per-port hash.
        let pending: Vec<u32> = self.request_chans.iter().copied().collect();
        for port in pending {
            let pu = port as usize;
            // Purge stale requests from visits that were dropped.
            let visits = &self.visits;
            self.chan_requests[pu].retain(|&(vidx, _, _)| !visits[vidx as usize].complete);
            if self.chan_owner[pu].is_none() {
                let seed = self.cfg.arb_seed;
                let winner = self.chan_requests[pu]
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &(vidx, _, cycle))| {
                        let packet = self.visits[vidx as usize].packet;
                        (cycle, arb_hash(seed, port, packet))
                    })
                    .map(|(i, &(vidx, _, _))| (i, self.visits[vidx as usize].packet));
                if let Some((i, winner_packet)) = winner {
                    let Some((vidx, bidx, _)) = self.chan_requests[pu].remove(i) else {
                        // Unreachable by construction — the winner index came
                        // from enumerating this very queue — but a panic here
                        // would cut an abnormal run's post-mortem short, so
                        // record the anomaly and skip the grant this cycle.
                        self.diagnostics.push(EngineDiagnostic {
                            at: self.now,
                            packet: PacketId(winner_packet),
                            channel: self.describe_port(pu),
                            note: "arbitration winner vanished from the request queue".to_string(),
                        });
                        continue;
                    };
                    self.chan_owner[pu] = Some((vidx, bidx));
                    self.chan_resident[pu].push_back((vidx, bidx));
                    self.resident_chans.insert(port);
                    // The run holds the packet open until it drains out of
                    // the downstream buffer (step 9), so a packet can never
                    // look finished while flits are queued behind another
                    // packet's resident run.
                    let packet = self.visits[vidx as usize].packet;
                    self.packets[packet as usize].open += 1;
                    let mut was_blocked = None;
                    if let VKind::Forward { branches, .. } = &mut self.visits[vidx as usize].kind {
                        let b = &mut branches[bidx as usize];
                        b.granted = true;
                        was_blocked = b.blocked_since.take();
                    }
                    if let (Some(since), Some(obs)) = (was_blocked, self.observer.as_deref_mut()) {
                        let ch = ChannelId((pu / self.vcs) as u32);
                        let vc = (pu % self.vcs) as u8;
                        obs.on_unblocked(PacketId(packet), ch, vc, self.now - since, self.now);
                    }
                }
            }
            // Requests still queued after arbitration transition to
            // *blocked* (once per episode) — observer bookkeeping only.
            if self.observer.is_some() && !self.chan_requests[pu].is_empty() {
                let holder =
                    self.chan_owner[pu].map(|(ovi, _)| PacketId(self.visits[ovi as usize].packet));
                let waiting: Vec<(u32, u32)> = self.chan_requests[pu]
                    .iter()
                    .map(|&(v, b, _)| (v, b))
                    .collect();
                for (vidx, bidx) in waiting {
                    let packet = self.visits[vidx as usize].packet;
                    let mut newly = false;
                    if let VKind::Forward { branches, .. } = &mut self.visits[vidx as usize].kind {
                        let b = &mut branches[bidx as usize];
                        if b.blocked_since.is_none() {
                            b.blocked_since = Some(self.now);
                            newly = true;
                        }
                    }
                    if newly {
                        if let Some(obs) = self.observer.as_deref_mut() {
                            let ch = ChannelId((pu / self.vcs) as u32);
                            let vc = (pu % self.vcs) as u8;
                            obs.on_blocked(PacketId(packet), ch, vc, holder, self.now);
                        }
                    }
                }
            }
            if self.chan_requests[pu].is_empty() {
                self.request_chans.remove(&port);
            }
        }

        // 5. Streaming: a forward visit streams once every port is held.
        for &vi in &self.active {
            let v = &mut self.visits[vi as usize];
            if v.paused {
                continue;
            }
            if let VKind::Forward {
                branches,
                streaming,
            } = &mut v.kind
            {
                if !*streaming && branches.iter().all(|b| b.granted) {
                    *streaming = true;
                }
            }
        }

        // 6. Collect moves against the start-of-cycle state.
        let mut branch_moves: Vec<(u32, u32, ChannelId, u8)> = Vec::new();
        let mut sink_moves: Vec<u32> = Vec::new();
        for &vi in &self.active {
            let v = &self.visits[vi as usize];
            if v.complete || v.paused {
                continue;
            }
            let avail = self.avail(v);
            match &v.kind {
                VKind::Forward {
                    branches,
                    streaming,
                } => {
                    if !*streaming {
                        continue;
                    }
                    // A source visit (injection or S-XB emission) reads the
                    // packet from local memory once and copies each flit to
                    // all its ports in lockstep — one stalled port
                    // backpressures the others, just like a fan fed from a
                    // channel buffer.
                    let lockstep = if v.in_port.is_none() {
                        branches.iter().map(|b| b.crossed).min().unwrap_or(0) + 1
                    } else {
                        usize::MAX
                    };
                    for (bi, b) in branches.iter().enumerate() {
                        if b.crossed >= v.total || b.crossed >= avail || b.crossed >= lockstep {
                            continue;
                        }
                        if self.occupancy(self.port(b.channel, b.vc)) < self.cfg.buffer_flits {
                            branch_moves.push((vi, bi as u32, b.channel, b.vc));
                        }
                    }
                }
                VKind::Sink { consumed, .. } => {
                    if *consumed < v.total && *consumed < avail {
                        sink_moves.push(vi);
                    }
                }
            }
        }

        // 7. Apply moves; the physical link carries one flit per cycle,
        //    shared round-robin among its lanes; release ports whose tail
        //    just crossed.
        let selected: Vec<(u32, u32, ChannelId, u8)> = if self.vcs == 1 {
            branch_moves
        } else {
            let mut by_channel: HashMap<u32, Vec<(u32, u32, ChannelId, u8)>> = HashMap::new();
            for m in branch_moves {
                by_channel.entry(m.2 .0).or_default().push(m);
            }
            let mut chans: Vec<u32> = by_channel.keys().copied().collect();
            chans.sort_unstable();
            let mut picked = Vec::with_capacity(chans.len());
            for ch in chans {
                let cands = &by_channel[&ch];
                let last = self.chan_last_vc[ch as usize];
                let vcs = self.vcs as u8;
                let win = cands
                    .iter()
                    .min_by_key(|&&(_, _, _, vc)| (vc + vcs - last - 1) % vcs)
                    .copied()
                    .expect("non-empty candidate set");
                self.chan_last_vc[ch as usize] = win.3;
                picked.push(win);
            }
            picked
        };
        for (vi, bi, ch, vc) in selected {
            let total = self.visits[vi as usize].total;
            let port = self.port(ch, vc);
            if let VKind::Forward { branches, .. } = &mut self.visits[vi as usize].kind {
                let b = &mut branches[bi as usize];
                b.crossed += 1;
                if b.crossed == total {
                    // Tail crossed: the output port frees (cut-through).
                    debug_assert_eq!(self.chan_owner[port], Some((vi, bi)));
                    self.chan_owner[port] = None;
                }
            }
            self.chan_flits[ch.idx()] += 1;
            self.port_flits[port] += 1;
            self.flit_hops += 1;
            if self.observer.is_some() {
                let occupancy = self.occupancy(port);
                if let Some(obs) = self.observer.as_deref_mut() {
                    obs.on_flit(ch, vc, occupancy, self.now);
                }
            }
            progress = true;
        }
        for vi in sink_moves {
            if let VKind::Sink { consumed, .. } = &mut self.visits[vi as usize].kind {
                *consumed += 1;
            }
            progress = true;
        }

        // 8. Completions.
        let active_snapshot = self.active.clone();
        for &vi in &active_snapshot {
            let v = &self.visits[vi as usize];
            if v.complete || v.paused {
                continue;
            }
            match &v.kind {
                VKind::Sink { consumed, sink } if *consumed == v.total => {
                    let packet = v.packet;
                    match sink.clone() {
                        SinkKind::Deliver(pe) => {
                            self.packets[packet as usize]
                                .deliveries
                                .push((pe, self.now));
                            if let Some(obs) = self.observer.as_deref_mut() {
                                obs.on_delivery(PacketId(packet), pe, self.now);
                            }
                        }
                        SinkKind::Gather => {
                            // Queue slot stays open until emission starts.
                            self.packets[packet as usize].open += 1;
                            let header = v.header;
                            self.serial_queue.push_back((packet, header));
                            let depth = self.serial_queue.len();
                            if let Some(obs) = self.observer.as_deref_mut() {
                                obs.on_gather(PacketId(packet), depth, self.now);
                            }
                        }
                        SinkKind::Drop(r) => {
                            let p = &mut self.packets[packet as usize];
                            if p.dropped.is_none() {
                                p.dropped = Some(r);
                            }
                        }
                    }
                    self.complete_visit(vi);
                    progress = true;
                }
                VKind::Forward { branches, .. }
                    if branches.iter().all(|b| b.crossed == v.total) =>
                {
                    if self.emission_active == Some(vi) {
                        self.emission_active = None;
                    }
                    self.complete_visit(vi);
                    progress = true;
                }
                _ => {}
            }
        }

        // 9. Retire fully-drained front runs so the next resident packet's
        //    header becomes visible.
        let residents: Vec<u32> = self.resident_chans.iter().copied().collect();
        for port in residents {
            let pu = port as usize;
            let Some(d) = self.chan_downstream[pu] else {
                continue;
            };
            if self.visits[d as usize].complete {
                let run = self.chan_resident[pu]
                    .pop_front()
                    .expect("front run exists while its visit is live");
                debug_assert_eq!(
                    self.visits[run.0 as usize].packet,
                    self.visits[d as usize].packet
                );
                self.chan_downstream[pu] = None;
                if self.chan_resident[pu].is_empty() {
                    self.resident_chans.remove(&port);
                }
                self.dec_open(self.visits[run.0 as usize].packet);
                progress = true;
            }
        }

        // Prune the active list.
        let visits = &self.visits;
        self.active.retain(|&vi| !visits[vi as usize].complete);

        progress
    }

    fn complete_visit(&mut self, vi: u32) {
        let v = &mut self.visits[vi as usize];
        if v.complete {
            return;
        }
        v.complete = true;
        let packet = v.packet;
        self.dec_open(packet);
    }

    fn dec_open(&mut self, packet: u32) {
        let p = &mut self.packets[packet as usize];
        p.open -= 1;
        if p.open == 0 && p.started && p.finished_at.is_none() {
            p.finished_at = Some(self.now);
            self.finished_packets += 1;
            if let Some(obs) = self.observer.as_deref_mut() {
                obs.on_packet_finished(PacketId(packet), self.now);
            }
        }
    }

    fn work_remaining(&self) -> bool {
        self.finished_packets < self.packets.len() || self.source_next.is_some()
    }

    /// Builds the packet wait-for graph over ungranted port wants and
    /// extracts a cyclic wait, if any.
    fn analyze_deadlock(&self) -> Option<DeadlockInfo> {
        let mut adj: HashMap<u32, Vec<(u32, u32)>> = HashMap::new();
        for &vi in &self.active {
            let v = &self.visits[vi as usize];
            if v.paused {
                continue; // paused visits request nothing
            }
            if let VKind::Forward { branches, .. } = &v.kind {
                for b in branches {
                    if !b.granted {
                        let port = self.port(b.channel, b.vc);
                        if let Some((ovi, _)) = self.chan_owner[port] {
                            let holder = self.visits[ovi as usize].packet;
                            adj.entry(v.packet).or_default().push((holder, port as u32));
                        }
                    }
                }
            }
        }
        let mut state: HashMap<u32, u8> = HashMap::new();
        let mut stack: Vec<(u32, u32)> = Vec::new();
        fn dfs(
            u: u32,
            adj: &HashMap<u32, Vec<(u32, u32)>>,
            state: &mut HashMap<u32, u8>,
            stack: &mut Vec<(u32, u32)>,
        ) -> Option<u32> {
            state.insert(u, 1);
            if let Some(next) = adj.get(&u) {
                for &(v, port) in next {
                    match state.get(&v).copied() {
                        Some(1) => {
                            stack.push((u, port));
                            return Some(v);
                        }
                        Some(_) => {}
                        None => {
                            stack.push((u, port));
                            if let Some(hit) = dfs(v, adj, state, stack) {
                                return Some(hit);
                            }
                            stack.pop();
                        }
                    }
                }
            }
            state.insert(u, 2);
            None
        }
        let mut starts: Vec<u32> = adj.keys().copied().collect();
        starts.sort_unstable();
        for s in starts {
            if state.contains_key(&s) {
                continue;
            }
            stack.clear();
            if let Some(entry) = dfs(s, &adj, &mut state, &mut stack) {
                let pos = stack.iter().position(|&(u, _)| u == entry).unwrap_or(0);
                let cycle_edges = &stack[pos..];
                let mut cycle = Vec::new();
                for (i, &(waiter, port)) in cycle_edges.iter().enumerate() {
                    let holder = if i + 1 < cycle_edges.len() {
                        cycle_edges[i + 1].0
                    } else {
                        entry
                    };
                    cycle.push(WaitEdge {
                        waiter: PacketId(waiter),
                        holder: PacketId(holder),
                        channel: self.describe_port(port as usize),
                    });
                }
                return Some(DeadlockInfo {
                    detected_at: self.now,
                    cycle,
                });
            }
        }
        None
    }

    /// Snapshot of every ungranted port want — the same edges the
    /// watchdog's deadlock analysis walks, each tagged with the
    /// reconfiguration epochs of the waiting and holding routing
    /// decisions. Public so a reconfiguration controller can feed the
    /// transition-safety checker between phases; also delivered to
    /// [`SimObserver::on_probe`] / [`SimObserver::on_final_waits`].
    pub fn wait_snapshot(&self) -> Vec<WaitSnapshot> {
        let mut waits = Vec::new();
        for &vi in &self.active {
            let v = &self.visits[vi as usize];
            if v.paused {
                continue; // paused visits request nothing
            }
            if let VKind::Forward { branches, .. } = &v.kind {
                for b in branches {
                    if b.granted {
                        continue;
                    }
                    let port = self.port(b.channel, b.vc);
                    let owner = self.chan_owner[port];
                    waits.push(WaitSnapshot {
                        waiter: PacketId(v.packet),
                        holder: owner.map(|(ovi, _)| PacketId(self.visits[ovi as usize].packet)),
                        channel: b.channel,
                        vc: b.vc,
                        since: b.blocked_since.unwrap_or(self.now),
                        epoch: v.epoch,
                        holder_epoch: owner.map(|(ovi, _)| self.visits[ovi as usize].epoch),
                    });
                }
            }
        }
        waits
    }

    /// Sorts the schedule into injection order. Called by
    /// [`Simulator::run`]; a reconfiguration controller driving the engine
    /// through [`Simulator::run_phase`] must call it once before the first
    /// phase.
    pub fn prepare(&mut self) {
        let mut order: Vec<u32> = (0..self.packets.len() as u32).collect();
        order.sort_by_key(|&i| (self.packets[i as usize].spec.inject_at, i));
        self.inject_order = order;
        self.next_inject = 0;
    }

    /// Whether the network is empty of in-flight, non-paused work (packets
    /// may still be waiting behind a closed injection gate).
    pub fn idle(&self) -> bool {
        self.serial_queue.is_empty()
            && self.emission_active.is_none()
            && self
                .active
                .iter()
                .all(|&vi| self.visits[vi as usize].paused)
    }

    /// Advances the simulation until a stopping condition.
    ///
    /// * `stop_at` — pause (returning [`PhaseEnd::ReachedCycle`]) once
    ///   `now` reaches this cycle, so a controller can regain control at a
    ///   scheduled event.
    /// * `drain` — stop once in-flight traffic settles: immediately when
    ///   [`Simulator::idle`], or after [`DRAIN_QUIET`] motionless cycles
    ///   with no wait cycle (paused victims and traffic backed up behind
    ///   them legitimately cannot drain). A motionless network *with* a
    ///   wait cycle ends the phase as [`PhaseEnd::Deadlock`].
    ///
    /// Completion, the cycle limit, and the watchdog end the phase
    /// regardless of the stopping parameters.
    pub fn run_phase(&mut self, stop_at: Option<u64>, drain: bool) -> PhaseEnd {
        // The self-profiler's wall clock wraps the whole loop (one Instant
        // pair per phase, not per cycle); the per-cycle counters inside the
        // loop are integer adds. See [`EngineProfile`].
        let t0 = Instant::now();
        let end = self.run_phase_inner(stop_at, drain);
        self.prof.wall += t0.elapsed();
        end
    }

    fn run_phase_inner(&mut self, stop_at: Option<u64>, drain: bool) -> PhaseEnd {
        let probe_every = self
            .observer
            .as_deref()
            .and_then(|o| o.probe_interval())
            .filter(|&iv| iv > 0);
        let timing = self.prof.timing;

        loop {
            if timing {
                let t = Instant::now();
                self.pull_source();
                self.prof.source += t.elapsed();
            } else {
                self.pull_source();
            }
            if !self.work_remaining() {
                return PhaseEnd::Completed;
            }
            if self.now >= self.cfg.max_cycles {
                return PhaseEnd::CycleLimit;
            }
            if let Some(t) = stop_at {
                if self.now >= t {
                    return PhaseEnd::ReachedCycle;
                }
            }
            if drain && self.idle() {
                return PhaseEnd::Drained;
            }
            let progress = if timing {
                let t = Instant::now();
                let p = self.step();
                self.prof.step += t.elapsed();
                p
            } else {
                self.step()
            };
            self.prof.steps += 1;
            if !progress {
                self.prof.idle_steps += 1;
            }
            self.prof.occupancy[EngineProfile::occupancy_bucket(
                self.started_packets.saturating_sub(self.finished_packets),
            )] += 1;
            if let Some(iv) = probe_every {
                if self.now.is_multiple_of(iv) {
                    let t = timing.then(Instant::now);
                    let waits = self.wait_snapshot();
                    if let Some(obs) = self.observer.as_deref_mut() {
                        obs.on_probe(self.now, &waits);
                    }
                    if let Some(t) = t {
                        self.prof.probe += t.elapsed();
                    }
                }
            }
            if progress {
                self.last_progress = self.now;
            } else if let Some(target) = self.idle_jump(stop_at) {
                // Open-loop fast-forward: the network is empty and the
                // next source arrival is known, so hop the clock straight
                // to it instead of idling cycle by cycle. The skipped span
                // still counts as idle ticks in the self-profile — the
                // cycle-driven loop only avoids burning it thanks to this
                // special case, and an event-driven core would get it for
                // free.
                self.prof.jumped_cycles += target - self.now;
                self.prof.occupancy[0] += target - self.now;
                self.now = target;
                self.last_progress = target;
                continue;
            } else if drain && self.now - self.last_progress >= DRAIN_QUIET {
                return match self.analyze_deadlock() {
                    Some(info) => PhaseEnd::Deadlock(info),
                    None => PhaseEnd::Drained,
                };
            } else if (!self.injection_open || self.next_inject >= self.inject_order.len())
                && self.now - self.last_progress >= self.cfg.watchdog
            {
                return match self.analyze_deadlock() {
                    Some(info) => PhaseEnd::Deadlock(info),
                    None => PhaseEnd::Stalled,
                };
            }
            self.now += 1;
        }
    }

    /// Fires the end-of-run observer hooks and collects the result.
    /// [`PhaseEnd::ReachedCycle`] / [`PhaseEnd::Drained`] are not terminal
    /// states; a controller finalizing on one (e.g. bailing out mid-epoch)
    /// maps to [`SimOutcome::CycleLimit`] / [`SimOutcome::Stalled`].
    pub fn finalize(&mut self, end: PhaseEnd) -> SimResult {
        let outcome = match end {
            PhaseEnd::Completed => SimOutcome::Completed,
            PhaseEnd::CycleLimit | PhaseEnd::ReachedCycle => SimOutcome::CycleLimit,
            PhaseEnd::Deadlock(info) => SimOutcome::Deadlock(info),
            PhaseEnd::Stalled | PhaseEnd::Drained => SimOutcome::Stalled,
        };
        // Abnormal endings drain the terminal wait graph to the observer
        // (the flight-recorder/post-mortem hook), then — for deadlocks —
        // hand over the extracted cycle. See the firing-order contract in
        // [`crate::observer`].
        if self.observer.is_some() && !matches!(outcome, SimOutcome::Completed) {
            let waits = self.wait_snapshot();
            if let Some(obs) = self.observer.as_deref_mut() {
                obs.on_final_waits(self.now, &waits);
            }
        }
        if let SimOutcome::Deadlock(info) = &outcome {
            if let Some(obs) = self.observer.as_deref_mut() {
                obs.on_deadlock(info);
            }
        }
        self.collect_result(outcome)
    }

    /// Runs to completion, deadlock, stall, or the cycle limit.
    pub fn run(&mut self) -> SimResult {
        self.prepare();
        let end = self.run_phase(None, false);
        self.finalize(end)
    }

    // ------------------------------------------------------------------
    // Live reconfiguration: mid-run fault activation, victim handling,
    // and reprogramming. Driven by the `mdx-reconfig` epoch controller;
    // inert (zero-cost fast paths) on a static run.
    // ------------------------------------------------------------------

    /// Advances the clock by `cycles` without stepping the network — the
    /// modeled cost of service-processor work (register rewrites) while
    /// the machine sits quiescent. The network need not be fully idle: a
    /// drain can go *quiet* rather than empty when wounded (paused)
    /// packets hold buffer space that healthy traffic is queued behind;
    /// nothing moves during the dead time either way. Resets the
    /// watchdog so the gap is not mistaken for a stall.
    pub fn advance_idle(&mut self, cycles: u64) {
        self.now += cycles;
        self.last_progress = self.now;
        // Dead time is idle time: nothing moves while the service
        // processor rewrites registers. Bucket the span at the frozen
        // in-flight level (a quiet — not empty — drain can hold wounded
        // packets in place).
        self.prof.jumped_cycles += cycles;
        self.prof.occupancy[EngineProfile::occupancy_bucket(
            self.started_packets.saturating_sub(self.finished_packets),
        )] += cycles;
    }

    /// Opens or closes the injection gate. While closed, due injections
    /// wait (the quiesce step of the epoch protocol) and the watchdog
    /// treats pending injections as ineligible.
    pub fn set_injection_open(&mut self, open: bool) {
        self.injection_open = open;
    }

    /// Whether the injection gate is open.
    pub fn injection_open(&self) -> bool {
        self.injection_open
    }

    /// Scheduled packets not yet injected (or settled pre-injection).
    pub fn pending_injections(&self) -> usize {
        self.inject_order.len() - self.next_inject
    }

    /// How wounded packets are handled; see [`VictimMode`].
    pub fn set_victim_mode(&mut self, mode: VictimMode) {
        self.victim_mode = mode;
    }

    /// Starts a new reconfiguration epoch: routing decisions made from now
    /// on are stamped with the returned epoch number.
    pub fn begin_epoch(&mut self) -> u32 {
        self.current_epoch += 1;
        self.current_epoch
    }

    /// The current reconfiguration epoch (0 before any reprogram).
    pub fn current_epoch(&self) -> u32 {
        self.current_epoch
    }

    /// Drains the log of packets wounded since the last call —
    /// activation-time victims plus packets victimized afterwards (their
    /// next hop entered the dead region while draining).
    pub fn take_new_victims(&mut self) -> Vec<PacketId> {
        std::mem::take(&mut self.victim_log)
    }

    /// The packet's schedule entry.
    pub fn packet_spec(&self, id: PacketId) -> &InjectSpec {
        &self.packets[id.0 as usize].spec
    }

    /// When the packet settled (finished or was evacuated), if it has.
    pub fn packet_finished_at(&self, id: PacketId) -> Option<u64> {
        self.packets[id.0 as usize].finished_at
    }

    /// The packet's recorded drop reason, if any.
    pub fn packet_dropped(&self, id: PacketId) -> Option<DropReason> {
        self.packets[id.0 as usize].dropped
    }

    /// Number of deliveries the packet has made so far.
    pub fn packet_deliveries(&self, id: PacketId) -> usize {
        self.packets[id.0 as usize].deliveries.len()
    }

    /// Forwards an epoch-phase transition to the attached observer (the
    /// controller owns the protocol but the engine owns the observer).
    pub fn notify_epoch_phase(&mut self, epoch: u32, phase: crate::observer::EpochPhase) {
        let now = self.now;
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.on_epoch_phase(epoch, phase, now);
        }
    }

    /// Applies a fault set mid-run: recomputes the dead node/channel maps
    /// (a repair event shrinks them) and victimizes in-flight packets
    /// touching newly-dead components per the current [`VictimMode`].
    /// Returns the wounded packets; fires
    /// [`SimObserver::on_fault_activated`].
    pub fn activate_faults(&mut self, faults: &FaultSet) -> Vec<PacketId> {
        let mut dead_nodes = vec![false; self.graph.num_nodes()];
        for id in self.graph.node_ids() {
            dead_nodes[id.0 as usize] = faults.disables(self.graph.node(id));
        }
        let mut dead_channels = vec![false; self.graph.num_channels()];
        for ch in self.graph.channel_ids() {
            let info = self.graph.channel(ch);
            dead_channels[ch.idx()] =
                dead_nodes[info.src.0 as usize] || dead_nodes[info.dst.0 as usize];
        }
        self.any_dead = dead_nodes.iter().any(|&d| d);
        self.dead_nodes = dead_nodes;
        self.dead_channels = dead_channels;

        // Wounded packets: a visit at a dead switch, a forward branch into
        // a dead channel, or a slot in a dead S-XB's serialization queue.
        let mut victims: BTreeSet<u32> = BTreeSet::new();
        // Packets that cannot be paused (flits already inside the dead
        // region, or wounded somewhere pause semantics cannot reach).
        let mut must_abort: BTreeSet<u32> = BTreeSet::new();
        let mut pausable_visits: Vec<u32> = Vec::new();
        for &vi in &self.active {
            let v = &self.visits[vi as usize];
            if v.complete {
                continue;
            }
            if self.dead_nodes[v.at.0 as usize] {
                victims.insert(v.packet);
                must_abort.insert(v.packet);
                continue;
            }
            if v.paused {
                continue; // still parked at a live switch; redecide later
            }
            if let VKind::Forward { branches, .. } = &v.kind {
                if !branches.iter().any(|b| self.dead_channels[b.channel.idx()]) {
                    continue;
                }
                victims.insert(v.packet);
                if branches.iter().any(|b| b.crossed > 0) {
                    must_abort.insert(v.packet);
                } else {
                    pausable_visits.push(vi);
                }
            }
        }
        if let Some(sn) = self.serial_node {
            if self.dead_nodes[sn.0 as usize] {
                for &(p, _) in &self.serial_queue {
                    victims.insert(p);
                    must_abort.insert(p);
                }
            }
        }

        match self.victim_mode {
            VictimMode::Abort => {
                for &p in &victims {
                    self.abort_packet(p);
                }
            }
            VictimMode::Pause => {
                for vi in pausable_visits {
                    let p = self.visits[vi as usize].packet;
                    if !must_abort.contains(&p) {
                        self.pause_visit(vi);
                    }
                }
                for &p in &must_abort {
                    self.abort_packet(p);
                }
            }
        }

        let out: Vec<PacketId> = victims.iter().map(|&p| PacketId(p)).collect();
        for &p in &out {
            if !self.victim_log.contains(&p) {
                self.victim_log.push(p);
            }
        }
        let now = self.now;
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.on_fault_activated(now, &out);
        }
        out
    }

    /// Freezes a wounded forward visit in place: releases its output-port
    /// claims (nothing has streamed, so no flits move) while it keeps its
    /// input buffer — the transient old-epoch hold the transition-safety
    /// checker watches. [`Simulator::redecide_paused`] revives it.
    fn pause_visit(&mut self, vi: u32) {
        let packet = self.visits[vi as usize].packet;
        let branch_ports: Vec<(usize, u32)> = match &self.visits[vi as usize].kind {
            VKind::Forward { branches, .. } => branches
                .iter()
                .enumerate()
                .map(|(bi, b)| (self.port(b.channel, b.vc), bi as u32))
                .collect(),
            VKind::Sink { .. } => Vec::new(),
        };
        let mut released_runs = 0u32;
        for &(port, bi) in &branch_ports {
            self.chan_requests[port].retain(|&(v, b, _)| !(v == vi && b == bi));
            if self.chan_requests[port].is_empty() {
                self.request_chans.remove(&(port as u32));
            }
            if self.chan_owner[port] == Some((vi, bi)) {
                self.chan_owner[port] = None;
            }
            let before = self.chan_resident[port].len();
            self.chan_resident[port].retain(|&run| run != (vi, bi));
            released_runs += (before - self.chan_resident[port].len()) as u32;
            if self.chan_resident[port].is_empty() {
                self.resident_chans.remove(&(port as u32));
            }
        }
        self.packets[packet as usize].open -= released_runs;
        let v = &mut self.visits[vi as usize];
        v.kind = VKind::Forward {
            branches: Vec::new(),
            streaming: false,
        };
        v.paused = true;
    }

    /// Evacuates a wounded packet: flushes its flits from every buffer,
    /// releases every port it holds or wants, and settles it as
    /// [`DropReason::FaultVictim`]. The recovery policy may later replay
    /// it via [`Simulator::reschedule_packet`].
    fn abort_packet(&mut self, pid: u32) {
        if self.packets[pid as usize].finished_at.is_some() {
            return;
        }
        let before = self.serial_queue.len();
        self.serial_queue.retain(|&(p, _)| p != pid);
        let removed_slots = (before - self.serial_queue.len()) as u32;
        if let Some(ea) = self.emission_active {
            if self.visits[ea as usize].packet == pid {
                self.emission_active = None;
            }
        }
        let mut closed_visits = 0u32;
        for vi in 0..self.visits.len() as u32 {
            if self.visits[vi as usize].packet != pid || self.visits[vi as usize].complete {
                continue;
            }
            if let Some(p) = self.visits[vi as usize].in_port {
                if self.chan_downstream[p as usize] == Some(vi) {
                    self.chan_downstream[p as usize] = None;
                }
            }
            let branch_ports: Vec<(usize, u32)> = match &self.visits[vi as usize].kind {
                VKind::Forward { branches, .. } => branches
                    .iter()
                    .enumerate()
                    .map(|(bi, b)| (self.port(b.channel, b.vc), bi as u32))
                    .collect(),
                VKind::Sink { .. } => Vec::new(),
            };
            for (port, bi) in branch_ports {
                self.chan_requests[port].retain(|&(v, b, _)| !(v == vi && b == bi));
                if self.chan_requests[port].is_empty() {
                    self.request_chans.remove(&(port as u32));
                }
                if self.chan_owner[port] == Some((vi, bi)) {
                    self.chan_owner[port] = None;
                }
            }
            let v = &mut self.visits[vi as usize];
            v.complete = true;
            v.paused = false;
            closed_visits += 1;
        }
        // Flush resident runs (buffered flits) of the packet everywhere.
        let mut flushed_runs = 0u32;
        let resident_ports: Vec<u32> = self.resident_chans.iter().copied().collect();
        for port in resident_ports {
            let pu = port as usize;
            let visits = &self.visits;
            let before = self.chan_resident[pu].len();
            self.chan_resident[pu].retain(|&(v, _)| visits[v as usize].packet != pid);
            flushed_runs += (before - self.chan_resident[pu].len()) as u32;
            if self.chan_resident[pu].is_empty() {
                self.resident_chans.remove(&port);
            }
        }
        let expected = closed_visits + flushed_runs + removed_slots;
        if self.packets[pid as usize].open != expected {
            let found = self.packets[pid as usize].open;
            self.diagnostics.push(EngineDiagnostic {
                at: self.now,
                packet: PacketId(pid),
                channel: String::new(),
                note: format!("abort accounting mismatch: open {found}, released {expected}"),
            });
        }
        let p = &mut self.packets[pid as usize];
        p.open = 0;
        if p.dropped.is_none() {
            p.dropped = Some(DropReason::FaultVictim);
        }
        if p.started && p.finished_at.is_none() {
            p.finished_at = Some(self.now);
            self.finished_packets += 1;
            if let Some(obs) = self.observer.as_deref_mut() {
                obs.on_packet_finished(PacketId(pid), self.now);
            }
        }
        let visits = &self.visits;
        self.active.retain(|&vi| !visits[vi as usize].complete);
    }

    /// Replaces the routing function (the reprogram step). The engine must
    /// be drained of S-XB state; the new scheme must keep the virtual-
    /// channel layout (ports are sized at construction).
    pub fn set_scheme(&mut self, scheme: Arc<dyn Scheme>) {
        assert_eq!(
            scheme.max_vcs().max(1) as usize,
            self.vcs,
            "reprogram must preserve the virtual-channel layout"
        );
        // A drain that went quiet (rather than empty) can leave queued or
        // even mid-emission broadcasts behind a wounded packet. Those keep
        // their old-function fan; only *new* emissions use the new scheme.
        // The transition checker watches exactly this mixed-epoch overlap.
        self.serial_node = scheme.serializing_node().and_then(|n| self.graph.id_of(n));
        self.scheme = scheme;
    }

    /// Re-decides every paused visit under the current routing function
    /// (stamping it with the current epoch) and re-enters port
    /// arbitration. Returns how many visits were revived.
    pub fn redecide_paused(&mut self) -> usize {
        let paused: Vec<u32> = self
            .active
            .iter()
            .copied()
            .filter(|&vi| {
                let v = &self.visits[vi as usize];
                v.paused && !v.complete
            })
            .collect();
        let mut revived = 0;
        for vi in paused {
            let (packet, at, in_port, header) = {
                let v = &self.visits[vi as usize];
                (v.packet, v.at, v.in_port, v.header)
            };
            let kind = if self.any_dead && self.dead_nodes[at.0 as usize] {
                // The switch itself died while the visit was parked there:
                // nothing to re-decide, evacuate.
                self.log_victim(packet);
                self.mk_drop(DropReason::FaultVictim)
            } else {
                let at_node = self.graph.node(at);
                let from_node = in_port.map(|p| {
                    let info = self.graph.channel(ChannelId(p / self.vcs as u32));
                    self.graph.node(info.src)
                });
                let action = self.scheme.decide(at_node, from_node, &header);
                if let Some(obs) = self.observer.as_deref_mut() {
                    let in_channel = in_port.map(|p| ChannelId(p / self.vcs as u32));
                    obs.on_hop(PacketId(packet), at_node, in_channel, self.now);
                }
                let kind = self.action_to_kind(at, action);
                if self.any_dead && self.kind_hits_dead_channel(&kind) {
                    // Still routed into the dead region under the new
                    // function — the detour cannot help; evacuate.
                    self.log_victim(packet);
                    self.mk_drop(DropReason::FaultVictim)
                } else {
                    kind
                }
            };
            if let VKind::Forward { branches, .. } = &kind {
                for (bi, b) in branches.iter().enumerate() {
                    let port = self.port(b.channel, b.vc);
                    self.chan_requests[port].push_back((vi, bi as u32, self.now));
                    self.request_chans.insert(port as u32);
                }
            }
            let epoch = self.current_epoch;
            let v = &mut self.visits[vi as usize];
            v.kind = kind;
            v.paused = false;
            v.epoch = epoch;
            revived += 1;
        }
        revived
    }

    /// Re-enters a settled (evacuated) packet into the schedule at cycle
    /// `at` — the reinject recovery policy. The replay starts from
    /// scratch: prior partial deliveries and the drop mark are cleared.
    ///
    /// # Panics
    /// Panics if the packet has not settled or `at` is in the past.
    pub fn reschedule_packet(&mut self, id: PacketId, at: u64) {
        assert!(at >= self.now, "cannot reschedule into the past");
        {
            let p = &mut self.packets[id.0 as usize];
            assert!(
                p.finished_at.is_some(),
                "only settled packets can be rescheduled"
            );
            p.started = false;
            p.open = 0;
            p.finished_at = None;
            p.dropped = None;
            p.deliveries.clear();
            p.spec.inject_at = at;
        }
        self.finished_packets -= 1;
        self.started_packets -= 1;
        let key = (at, id.0);
        let packets = &self.packets;
        let pos = self.inject_order[self.next_inject..]
            .partition_point(|&i| (packets[i as usize].spec.inject_at, i) <= key);
        self.inject_order.insert(self.next_inject + pos, id.0);
    }

    fn collect_result(&self, outcome: SimOutcome) -> SimResult {
        // Intern route node names: one table entry per distinct switch, one
        // u32 per hop — `record_routes` no longer allocates per hop.
        let mut name_of: HashMap<u32, u32> = HashMap::new();
        let mut route_names: Vec<String> = Vec::new();
        let mut intern = |node: u32| -> u32 {
            *name_of.entry(node).or_insert_with(|| {
                let idx = route_names.len() as u32;
                route_names.push(self.graph.node(NodeId(node)).to_string());
                idx
            })
        };
        let mut packets = Vec::with_capacity(self.packets.len());
        let mut stats = SimStats {
            cycles: self.now,
            flit_hops: self.flit_hops,
            delivered: 0,
            dropped: 0,
            unfinished: 0,
            latency_sum: 0,
            latency_max: 0,
        };
        let mut deliveries: u64 = 0;
        for (i, p) in self.packets.iter().enumerate() {
            deliveries += p.deliveries.len() as u64;
            // A broadcast that skipped a faulty leaf records a drop but
            // still counts as delivered when anyone received it.
            let outcome_p = match (p.finished_at, &p.dropped) {
                (Some(_), None) => PacketOutcome::Delivered,
                (Some(_), Some(_)) if !p.deliveries.is_empty() => PacketOutcome::Delivered,
                (Some(_), Some(r)) => PacketOutcome::Dropped(*r),
                (None, _) => PacketOutcome::Unfinished,
            };
            match &outcome_p {
                PacketOutcome::Delivered => {
                    stats.delivered += 1;
                    let lat = p.finished_at.unwrap() - p.spec.inject_at;
                    stats.latency_sum += lat;
                    stats.latency_max = stats.latency_max.max(lat);
                }
                PacketOutcome::Dropped(_) => stats.dropped += 1,
                PacketOutcome::Unfinished => stats.unfinished += 1,
            }
            packets.push(PacketResult {
                id: PacketId(i as u32),
                injected_at: p.spec.inject_at,
                finished_at: p.finished_at,
                deliveries: p.deliveries.clone(),
                outcome: outcome_p,
                route: p.route.iter().map(|&(n, t)| (intern(n), t)).collect(),
            });
        }
        let retired = (stats.delivered + stats.dropped) as u64;
        let profile = EngineProfile {
            wall_s: self.prof.wall.as_secs_f64(),
            cycles: self.now,
            steps: self.prof.steps,
            idle_steps: self.prof.idle_steps,
            jumped_cycles: self.prof.jumped_cycles,
            events: self.flit_hops + self.started_packets as u64 + deliveries + retired,
            occupancy: self.prof.occupancy,
            phases: self.prof.timing.then_some(PhaseSplit {
                source_s: self.prof.source.as_secs_f64(),
                step_s: self.prof.step.as_secs_f64(),
                probe_s: self.prof.probe.as_secs_f64(),
            }),
        };
        SimResult {
            outcome,
            stats,
            packets,
            route_names,
            diagnostics: self.diagnostics.clone(),
            profile: Some(profile),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdx_core::Sr2201Routing;
    use mdx_fault::FaultSet;
    use mdx_topology::{Coord, MdCrossbar, Shape};

    fn fig2() -> Arc<MdCrossbar> {
        Arc::new(MdCrossbar::build(Shape::fig2()))
    }

    fn sim_with(net: &Arc<MdCrossbar>, cfg: SimConfig) -> Simulator {
        let scheme = Arc::new(Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap());
        Simulator::new(net.graph().clone(), scheme, cfg)
    }

    fn spec(net: &MdCrossbar, src: usize, dst: usize, flits: usize, at: u64) -> InjectSpec {
        let shape = net.shape();
        InjectSpec {
            src_pe: src,
            header: Header::unicast(shape.coord_of(src), shape.coord_of(dst)),
            flits,
            inject_at: at,
        }
    }

    #[test]
    #[should_panic(expected = "at least the header flit")]
    fn zero_flit_packets_rejected() {
        let net = fig2();
        let mut sim = sim_with(&net, SimConfig::default());
        sim.schedule(spec(&net, 0, 1, 0, 0));
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_buffer_rejected() {
        let net = fig2();
        sim_with(
            &net,
            SimConfig {
                buffer_flits: 0,
                ..SimConfig::default()
            },
        );
    }

    #[test]
    fn empty_schedule_completes_immediately() {
        let net = fig2();
        let mut sim = sim_with(&net, SimConfig::default());
        let r = sim.run();
        assert_eq!(r.outcome, SimOutcome::Completed);
        assert_eq!(r.stats.cycles, 0);
        assert!(r.packets.is_empty());
    }

    #[test]
    fn cycle_limit_reported() {
        let net = fig2();
        let mut sim = sim_with(
            &net,
            SimConfig {
                max_cycles: 3,
                ..SimConfig::default()
            },
        );
        sim.schedule(spec(&net, 0, 11, 20, 0));
        let r = sim.run();
        assert_eq!(r.outcome, SimOutcome::CycleLimit);
        assert_eq!(r.packets[0].outcome, PacketOutcome::Unfinished);
    }

    #[test]
    fn channel_flits_account_every_hop() {
        let net = fig2();
        let mut sim = sim_with(&net, SimConfig::default());
        // (0,0)->(3,0): same row, 4 channels, 5 flits each.
        sim.schedule(spec(&net, 0, 3, 5, 0));
        let r = sim.run();
        assert_eq!(r.outcome, SimOutcome::Completed);
        assert_eq!(r.stats.flit_hops, 4 * 5);
        let crossed: u64 = sim.channel_flits().iter().sum();
        assert_eq!(crossed, 20);
        // Exactly 4 channels saw traffic, each 5 flits.
        let used: Vec<u64> = sim
            .channel_flits()
            .iter()
            .copied()
            .filter(|&f| f > 0)
            .collect();
        assert_eq!(used, vec![5, 5, 5, 5]);
    }

    #[test]
    fn fifo_buffer_keeps_packet_order_on_shared_path() {
        // Two same-route packets: the second is injected later and must
        // arrive later (FIFO channel buffers cannot reorder).
        let net = fig2();
        let mut sim = sim_with(&net, SimConfig::default());
        sim.schedule(spec(&net, 0, 3, 6, 0));
        sim.schedule(spec(&net, 0, 3, 6, 1));
        let r = sim.run();
        assert_eq!(r.outcome, SimOutcome::Completed);
        assert!(r.packets[0].finished_at.unwrap() < r.packets[1].finished_at.unwrap());
    }

    #[test]
    fn arbitration_is_fifo_across_cycles() {
        // A packet requesting a port one cycle earlier always wins it.
        let net = fig2();
        for seed in 0..8u64 {
            let mut sim = sim_with(
                &net,
                SimConfig {
                    arb_seed: seed,
                    ..SimConfig::default()
                },
            );
            // Both head for PE3's router exit of the row-0 crossbar.
            sim.schedule(spec(&net, 0, 3, 12, 0));
            sim.schedule(spec(&net, 1, 3, 12, 4));
            let r = sim.run();
            assert!(
                r.packets[0].finished_at.unwrap() < r.packets[1].finished_at.unwrap(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn deep_buffers_reduce_blocking_latency() {
        // Virtual cut-through absorbs a blocked packet; with a long packet
        // hogging the shared exit, the follower's latency shrinks (or at
        // least never grows) as buffers deepen.
        let net = fig2();
        let mut latencies = Vec::new();
        for buffer in [1usize, 4, 32] {
            let mut sim = sim_with(
                &net,
                SimConfig {
                    buffer_flits: buffer,
                    ..SimConfig::default()
                },
            );
            sim.schedule(spec(&net, 0, 3, 24, 0)); // hog
            sim.schedule(spec(&net, 1, 7, 8, 2)); // crosses the hog's row exit? no:
                                                  // (1,0)->(3,1): X to column 3 on row 0 (contends with the hog's
                                                  // exit), then Y.
            sim.schedule(spec(&net, 1, 3, 8, 2));
            let r = sim.run();
            assert_eq!(r.outcome, SimOutcome::Completed);
            latencies.push(r.packets[2].latency().unwrap());
        }
        assert!(
            latencies[0] >= latencies[1] && latencies[1] >= latencies[2],
            "{latencies:?}"
        );
    }

    #[test]
    fn watchdog_cycle_report_names_real_channels() {
        use mdx_core::NaiveBroadcast;
        let net = fig2();
        let scheme = Arc::new(NaiveBroadcast::new(net.clone()));
        let mut sim = Simulator::new(
            net.graph().clone(),
            scheme,
            SimConfig {
                watchdog: 64,
                arb_seed: 3,
                ..SimConfig::default()
            },
        );
        let shape = net.shape();
        for src in [0usize, 4] {
            let c = shape.coord_of(src);
            sim.schedule(InjectSpec {
                src_pe: src,
                header: Header {
                    rc: mdx_core::RouteChange::Broadcast,
                    dest: c,
                    src: c,
                },
                flits: 16,
                inject_at: 0,
            });
        }
        match sim.run().outcome {
            SimOutcome::Deadlock(info) => {
                assert!(!info.cycle.is_empty());
                for e in &info.cycle {
                    assert!(e.channel.contains("->"), "{}", e.channel);
                    assert_ne!(e.waiter, e.holder);
                }
                // The cycle is closed: each holder is the next waiter.
                for w in info.cycle.windows(2) {
                    assert_eq!(w[0].holder, w[1].waiter);
                }
                assert_eq!(
                    info.cycle.last().unwrap().holder,
                    info.cycle.first().unwrap().waiter
                );
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn latency_includes_injection_delay() {
        let net = fig2();
        let mut a = sim_with(&net, SimConfig::default());
        a.schedule(spec(&net, 0, 3, 5, 0));
        let la = a.run().packets[0].latency().unwrap();
        let mut b = sim_with(&net, SimConfig::default());
        b.schedule(spec(&net, 0, 3, 5, 100));
        let rb = b.run();
        // Same latency relative to its own injection time.
        assert_eq!(rb.packets[0].latency().unwrap(), la);
        assert_eq!(rb.packets[0].injected_at, 100);
    }

    #[test]
    fn broadcast_finish_time_is_last_delivery() {
        let net = fig2();
        let shape = net.shape().clone();
        let mut sim = sim_with(&net, SimConfig::default());
        sim.schedule(InjectSpec {
            src_pe: 5,
            header: Header::broadcast_request(shape.coord_of(5)),
            flits: 6,
            inject_at: 0,
        });
        let r = sim.run();
        let p = &r.packets[0];
        assert_eq!(p.deliveries.len(), 12);
        let last_delivery = p.deliveries.iter().map(|&(_, t)| t).max().unwrap();
        // finished_at is when the last flit leaves the last buffer — at or
        // just after the last PE delivery.
        assert!(p.finished_at.unwrap() >= last_delivery);
    }

    #[test]
    fn self_send_latency_is_minimal() {
        let net = fig2();
        let mut sim = sim_with(&net, SimConfig::default());
        sim.schedule(spec(&net, 4, 4, 3, 0));
        let r = sim.run();
        // PE -> router -> PE: two channels plus sink drain.
        let lat = r.packets[0].latency().unwrap();
        assert!(lat <= 12, "self-send latency {lat}");
    }

    #[test]
    fn arb_hash_spreads_winners_across_ports() {
        // The per-port tie-break must not systematically favor one packet:
        // over many channels, both packets win some.
        let mut wins = [0usize; 2];
        for ch in 0..64u32 {
            let a = arb_hash(1, ch, 0);
            let b = arb_hash(1, ch, 1);
            wins[if a < b { 0 } else { 1 }] += 1;
        }
        assert!(wins[0] >= 16 && wins[1] >= 16, "{wins:?}");
    }

    #[test]
    fn recorded_route_matches_static_trace() {
        let net = fig2();
        let mut sim = sim_with(
            &net,
            SimConfig {
                record_routes: true,
                ..SimConfig::default()
            },
        );
        sim.schedule(spec(&net, 0, 11, 4, 0));
        let r = sim.run();
        let named = r.route_of(PacketId(0));
        let route: Vec<&str> = named.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            route,
            vec!["PE0", "R0", "X0-XB", "R3", "Y3-XB", "R11", "PE11"]
        );
        // The name table holds each switch once.
        assert_eq!(r.route_names.len(), 7);
        // Arrival cycles strictly increase along the path.
        let cycles: Vec<u64> = r.packets[0].route.iter().map(|&(_, c)| c).collect();
        assert!(cycles.windows(2).all(|w| w[0] < w[1]), "{cycles:?}");
        // Off by default: no allocation.
        let mut sim = sim_with(&net, SimConfig::default());
        sim.schedule(spec(&net, 0, 11, 4, 0));
        let r = sim.run();
        assert!(r.packets[0].route.is_empty());
    }

    #[test]
    fn store_and_forward_costs_hops_times_serialization() {
        let net = fig2();
        let run = |saf: bool| {
            let mut sim = sim_with(
                &net,
                SimConfig {
                    store_and_forward: saf,
                    buffer_flits: 64,
                    ..SimConfig::default()
                },
            );
            sim.schedule(spec(&net, 0, 11, 16, 0));
            let r = sim.run();
            assert_eq!(r.outcome, SimOutcome::Completed);
            r.packets[0].latency().unwrap()
        };
        let ct = run(false);
        let saf = run(true);
        // Cut-through pipelines (~hops + flits); SAF pays ~hops x flits.
        assert!(saf > 2 * ct, "saf {saf} !>> cut-through {ct}");
        assert!(saf >= 6 * 16, "saf {saf} below the serialization bound");
    }

    #[test]
    fn faulty_coord_placeholder() {
        // Keep Coord in scope for the helper imports above.
        let _ = Coord::ORIGIN;
    }
}
