//! The cycle-level simulation engine.
//!
//! ## Resource model
//!
//! Every directed channel is the *output port* of its source switch.
//!
//! * **Ownership** — a packet's header requests a port; FIFO arbitration
//!   grants a free port to the oldest requester. The owner streams flits and
//!   releases the port when its tail flit crosses (cut-through).
//! * **Buffers** — each channel's downstream input buffer holds
//!   `buffer_flits` flits, FIFO across packets: a later packet's flits queue
//!   behind an earlier packet's until the earlier one drains. The *resident
//!   run* queue tracks this; only the front run's header is visible to the
//!   downstream switch.
//! * **Multi-port forwards** (broadcast fan-out) acquire ports incrementally
//!   but stream only once all are held — the Fig. 5 acquisition pattern.
//! * **Serialization** — the scheme's S-XB gathers RC=1 requests into a
//!   FIFO; one packet at a time is re-emitted on all S-XB ports (Fig. 6).

use crate::observer::{SimObserver, WaitSnapshot};
use crate::result::{
    DeadlockInfo, EngineDiagnostic, InjectSpec, PacketId, PacketOutcome, PacketResult, SimOutcome,
    SimResult, SimStats, WaitEdge,
};
use mdx_core::{Action, DropReason, Header, Scheme};
use mdx_topology::{ChannelId, NetworkGraph, Node, NodeId};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::Arc;

/// Mixes (seed, channel, packet) into an arbitration priority — a cheap
/// splitmix-style hash, deterministic but uncorrelated across ports.
fn arb_hash(seed: u64, channel: u32, packet: u32) -> u64 {
    let mut x = seed ^ ((channel as u64) << 32) ^ (packet as u64);
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Engine parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Flit capacity of each channel's downstream input buffer. Small values
    /// (the default, 2) give wormhole behavior — a blocked packet strings
    /// across switches holding every acquired port; values at least the
    /// packet length give virtual cut-through — a blocked packet is absorbed
    /// at the blocking switch and upstream ports free as its tail passes.
    pub buffer_flits: usize,
    /// Cycles without any flit movement (while work remains) before the
    /// watchdog declares a stall and runs deadlock analysis.
    pub watchdog: u64,
    /// Hard cycle limit.
    pub max_cycles: u64,
    /// Seed for same-cycle arbitration tie-breaking. Requests that arrive at
    /// a port on different cycles are served oldest-first; requests arriving
    /// on the *same* cycle are ordered by a seeded per-port hash, modeling
    /// the uncoordinated round-robin pointers of independent hardware port
    /// arbiters. (With a global deterministic order, two simultaneous
    /// broadcasts would always resolve in favor of the same packet at every
    /// crossbar and the Fig. 5 cyclic split could never form.)
    pub arb_seed: u64,
    /// Record each packet's per-switch route (switch name, header-arrival
    /// cycle) into [`PacketResult::route`]. Off by default — it allocates
    /// per hop and is meant for debugging and route inspection, not load
    /// sweeps.
    pub record_routes: bool,
    /// Store-and-forward mode: a switch starts forwarding only after the
    /// *whole* packet has arrived in its input buffer (which must therefore
    /// be at least the packet length). The contrast the paper's cut-through
    /// citations (Kermani/Kleinrock, Dally/Seitz) are about: per-hop
    /// latency becomes packet-serialization x hops instead of one pipeline
    /// pass.
    pub store_and_forward: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            buffer_flits: 2,
            watchdog: 1024,
            max_cycles: 1_000_000,
            arb_seed: 0x5EED_CAFE,
            record_routes: false,
            store_and_forward: false,
        }
    }
}

#[derive(Debug, Clone)]
struct BranchState {
    channel: ChannelId,
    vc: u8,
    header: Header,
    granted: bool,
    crossed: usize,
    /// Cycle this branch's port request entered a blocked episode.
    /// Maintained only while an observer is attached (it feeds the
    /// `on_blocked`/`on_unblocked`/`on_probe` hooks, not engine semantics).
    blocked_since: Option<u64>,
}

#[derive(Debug, Clone)]
enum SinkKind {
    Deliver(usize),
    Gather,
    Drop(DropReason),
}

#[derive(Debug, Clone)]
enum VKind {
    Forward {
        branches: Vec<BranchState>,
        streaming: bool,
    },
    Sink {
        consumed: usize,
        sink: SinkKind,
    },
}

#[derive(Debug, Clone)]
struct Visit {
    packet: u32,
    /// Port (channel lane) whose buffer feeds this visit (`None` for
    /// injection and S-XB emission, which read from local memory).
    in_port: Option<u32>,
    /// The upstream (visit, branch) writing into `in_channel`.
    up_run: Option<(u32, u32)>,
    /// Header as it arrived at this switch.
    header: Header,
    total: usize,
    kind: VKind,
    complete: bool,
}

#[derive(Debug, Clone)]
struct PacketRt {
    spec: InjectSpec,
    started: bool,
    /// Open elements: live visits plus a slot while queued at the S-XB.
    open: u32,
    finished_at: Option<u64>,
    deliveries: Vec<(usize, u64)>,
    dropped: Option<DropReason>,
    /// (graph node id, header-arrival cycle) per hop — interned into the
    /// run-level name table by `collect_result`.
    route: Vec<(u32, u64)>,
}

/// The simulator. Feed it a schedule with [`Simulator::schedule`], then call
/// [`Simulator::run`].
pub struct Simulator {
    graph: NetworkGraph,
    scheme: Arc<dyn Scheme>,
    cfg: SimConfig,
    serial_node: Option<NodeId>,

    packets: Vec<PacketRt>,
    inject_order: Vec<u32>,
    next_inject: usize,

    visits: Vec<Visit>,
    active: Vec<u32>,
    /// Virtual channel lanes per physical channel (from the scheme).
    vcs: usize,
    /// Current writer of each port (lane) — the owner until its tail
    /// crosses.
    chan_owner: Vec<Option<(u32, u32)>>,
    /// Port request queues: (visit, branch, request cycle).
    chan_requests: Vec<VecDeque<(u32, u32, u64)>>,
    /// Runs whose flits occupy the port's downstream buffer, oldest
    /// first. Only the front run's header is visible downstream.
    chan_resident: Vec<VecDeque<(u32, u32)>>,
    /// The downstream visit consuming the front resident run, if created.
    chan_downstream: Vec<Option<u32>>,
    request_chans: BTreeSet<u32>,
    resident_chans: BTreeSet<u32>,
    /// Per physical channel: the lane served last cycle (round-robin share
    /// of the link's one-flit-per-cycle bandwidth).
    chan_last_vc: Vec<u8>,

    serial_queue: VecDeque<(u32, Header)>,
    emission_active: Option<u32>,

    now: u64,
    last_progress: u64,
    flit_hops: u64,
    /// Flits crossed per channel (utilization statistics).
    chan_flits: Vec<u64>,
    finished_packets: usize,
    observer: Option<Box<dyn SimObserver>>,
    /// Invariant violations recorded instead of panicking (see
    /// [`EngineDiagnostic`]); copied into [`SimResult::diagnostics`].
    diagnostics: Vec<EngineDiagnostic>,
}

impl Simulator {
    /// Creates a simulator over `graph` running `scheme`.
    pub fn new(graph: NetworkGraph, scheme: Arc<dyn Scheme>, cfg: SimConfig) -> Simulator {
        assert!(cfg.buffer_flits >= 1, "buffers hold at least one flit");
        let serial_node = scheme.serializing_node().and_then(|n| graph.id_of(n));
        let channels = graph.num_channels();
        let vcs = scheme.max_vcs().max(1) as usize;
        let ports = channels * vcs;
        Simulator {
            graph,
            scheme,
            cfg,
            serial_node,
            packets: Vec::new(),
            inject_order: Vec::new(),
            next_inject: 0,
            visits: Vec::new(),
            active: Vec::new(),
            vcs,
            chan_owner: vec![None; ports],
            chan_requests: vec![VecDeque::new(); ports],
            chan_resident: vec![VecDeque::new(); ports],
            chan_downstream: vec![None; ports],
            request_chans: BTreeSet::new(),
            resident_chans: BTreeSet::new(),
            chan_last_vc: vec![0; channels],
            serial_queue: VecDeque::new(),
            emission_active: None,
            now: 0,
            last_progress: 0,
            flit_hops: 0,
            chan_flits: vec![0; channels],
            finished_packets: 0,
            observer: None,
            diagnostics: Vec::new(),
        }
    }

    /// Attaches an event observer (replacing any previous one). The engine
    /// calls its hooks at packet-lifecycle transitions; see
    /// [`SimObserver`].
    pub fn set_observer(&mut self, observer: Box<dyn SimObserver>) {
        self.observer = Some(observer);
    }

    /// Detaches and returns the current observer, if any — typically after
    /// [`Simulator::run`], to read back what it accumulated.
    pub fn take_observer(&mut self) -> Option<Box<dyn SimObserver>> {
        self.observer.take()
    }

    /// Port (lane) index of a channel + virtual channel pair.
    #[inline]
    fn port(&self, ch: ChannelId, vc: u8) -> usize {
        ch.idx() * self.vcs + vc as usize
    }

    /// Human-readable port description (channel plus lane when VCs are in
    /// use).
    fn describe_port(&self, port: usize) -> String {
        let ch = ChannelId((port / self.vcs) as u32);
        let vc = port % self.vcs;
        if self.vcs > 1 {
            format!("{} (vc{vc})", self.graph.describe_channel(ch))
        } else {
            self.graph.describe_channel(ch)
        }
    }

    /// Adds a packet to the schedule. Must be called before [`Simulator::run`].
    ///
    /// # Panics
    /// Panics on zero-length packets.
    pub fn schedule(&mut self, spec: InjectSpec) -> PacketId {
        assert!(spec.flits >= 1, "packets carry at least the header flit");
        let id = PacketId(self.packets.len() as u32);
        self.packets.push(PacketRt {
            spec,
            started: false,
            open: 0,
            finished_at: None,
            deliveries: Vec::new(),
            dropped: None,
            route: Vec::new(),
        });
        id
    }

    /// Current simulation cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Flits that crossed each channel (indexed by [`ChannelId`]).
    pub fn channel_flits(&self) -> &[u64] {
        &self.chan_flits
    }

    /// Engine bookkeeping anomalies recorded so far (also carried by
    /// [`SimResult::diagnostics`] after the run). Empty on a healthy run.
    pub fn diagnostics(&self) -> &[EngineDiagnostic] {
        &self.diagnostics
    }

    fn channel_of(&self, from: NodeId, to: Node) -> Option<ChannelId> {
        let to_id = self.graph.id_of(to)?;
        self.graph.channel_between(from, to_id)
    }

    fn branch(&self, run: (u32, u32)) -> &BranchState {
        match &self.visits[run.0 as usize].kind {
            VKind::Forward { branches, .. } => &branches[run.1 as usize],
            VKind::Sink { .. } => unreachable!("runs always come from forward visits"),
        }
    }

    /// Flits of the port's *front* resident run that have left the buffer.
    fn front_drained(&self, port: usize) -> usize {
        match self.chan_downstream[port] {
            Some(d) => match &self.visits[d as usize].kind {
                VKind::Forward { branches, .. } => {
                    branches.iter().map(|b| b.crossed).min().unwrap_or(0)
                }
                VKind::Sink { consumed, .. } => *consumed,
            },
            None => 0,
        }
    }

    /// Total flits currently in the port's downstream buffer.
    fn occupancy(&self, port: usize) -> usize {
        let total: usize = self.chan_resident[port]
            .iter()
            .map(|&run| self.branch(run).crossed)
            .sum();
        total - self.front_drained(port)
    }

    /// Flits available to visit `v` for pushing onward.
    fn avail(&self, v: &Visit) -> usize {
        match v.up_run {
            None => v.total, // injection or S-XB emission: all flits local
            Some(run) => {
                let crossed = self.branch(run).crossed;
                if self.cfg.store_and_forward && crossed < v.total {
                    // Store-and-forward: nothing leaves until the whole
                    // packet has arrived.
                    0
                } else {
                    crossed
                }
            }
        }
    }

    fn mk_drop(&self, reason: DropReason) -> VKind {
        VKind::Sink {
            consumed: 0,
            sink: SinkKind::Drop(reason),
        }
    }

    /// Creates a visit by asking the scheme for a decision.
    fn create_visit(
        &mut self,
        packet: u32,
        at: NodeId,
        came_from: Option<NodeId>,
        in_port: Option<u32>,
        up_run: Option<(u32, u32)>,
        header: Header,
    ) {
        let at_node = self.graph.node(at);
        let from_node = came_from.map(|id| self.graph.node(id));
        if self.cfg.record_routes {
            self.packets[packet as usize].route.push((at.0, self.now));
        }
        let action = self.scheme.decide(at_node, from_node, &header);
        if self.observer.is_some() {
            let in_channel = in_port.map(|p| ChannelId(p / self.vcs as u32));
            let rc_change = match &action {
                Action::Forward(branches) => branches
                    .iter()
                    .map(|b| b.header.rc)
                    .find(|&rc| rc != header.rc),
                _ => None,
            };
            if let Some(obs) = self.observer.as_deref_mut() {
                obs.on_hop(PacketId(packet), at_node, in_channel, self.now);
                if let Some(to) = rc_change {
                    obs.on_rc_change(PacketId(packet), at_node, header.rc, to, self.now);
                }
            }
        }
        let kind = match action {
            Action::Deliver => match at_node {
                Node::Pe(p) => VKind::Sink {
                    consumed: 0,
                    sink: SinkKind::Deliver(p),
                },
                // Delivering away from a PE is a scheme bug; surface it as a
                // protocol-violation drop rather than corrupting state.
                _ => self.mk_drop(DropReason::ProtocolViolation),
            },
            Action::Gather => {
                if Some(at) == self.serial_node {
                    VKind::Sink {
                        consumed: 0,
                        sink: SinkKind::Gather,
                    }
                } else {
                    self.mk_drop(DropReason::ProtocolViolation)
                }
            }
            Action::Drop(r) => self.mk_drop(r),
            Action::Forward(branches) if branches.is_empty() => {
                self.mk_drop(DropReason::ProtocolViolation)
            }
            Action::Forward(branches) => {
                let mut states = Vec::with_capacity(branches.len());
                let mut bad = false;
                for b in &branches {
                    if b.vc as usize >= self.vcs {
                        bad = true;
                        continue;
                    }
                    match self.channel_of(at, b.to) {
                        Some(ch) => states.push(BranchState {
                            channel: ch,
                            vc: b.vc,
                            header: b.header,
                            granted: false,
                            crossed: 0,
                            blocked_since: None,
                        }),
                        None => bad = true,
                    }
                }
                if bad {
                    self.mk_drop(DropReason::ProtocolViolation)
                } else {
                    VKind::Forward {
                        branches: states,
                        streaming: false,
                    }
                }
            }
        };
        self.install_visit(packet, in_port, up_run, header, kind);
    }

    fn install_visit(
        &mut self,
        packet: u32,
        in_port: Option<u32>,
        up_run: Option<(u32, u32)>,
        header: Header,
        kind: VKind,
    ) -> u32 {
        let total = self.packets[packet as usize].spec.flits;
        let idx = self.visits.len() as u32;
        if let VKind::Forward { branches, .. } = &kind {
            for (bi, b) in branches.iter().enumerate() {
                let port = self.port(b.channel, b.vc);
                self.chan_requests[port].push_back((idx, bi as u32, self.now));
                self.request_chans.insert(port as u32);
            }
        }
        self.visits.push(Visit {
            packet,
            in_port,
            up_run,
            header,
            total,
            kind,
            complete: false,
        });
        self.active.push(idx);
        if let Some(port) = in_port {
            debug_assert!(self.chan_downstream[port as usize].is_none());
            self.chan_downstream[port as usize] = Some(idx);
        }
        self.packets[packet as usize].open += 1;
        idx
    }

    fn step(&mut self) -> bool {
        let mut progress = false;

        // 1. Injections due this cycle.
        while self.next_inject < self.inject_order.len() {
            let pidx = self.inject_order[self.next_inject];
            let spec = self.packets[pidx as usize].spec;
            if spec.inject_at > self.now {
                break;
            }
            self.next_inject += 1;
            self.packets[pidx as usize].started = true;
            if let Some(obs) = self.observer.as_deref_mut() {
                obs.on_inject(PacketId(pidx), &spec, self.now);
            }
            let at = self.graph.expect_id(Node::Pe(spec.src_pe));
            self.create_visit(pidx, at, None, None, None, spec.header);
        }

        // 2. Create downstream visits where a header flit sits at a buffer
        //    head.
        let heads: Vec<u32> = self.resident_chans.iter().copied().collect();
        for port in heads {
            let pu = port as usize;
            if self.chan_downstream[pu].is_some() {
                continue;
            }
            let Some(&run) = self.chan_resident[pu].front() else {
                continue;
            };
            if self.branch(run).crossed == 0 {
                continue; // header still crossing
            }
            let packet = self.visits[run.0 as usize].packet;
            let header = self.branch(run).header;
            let info = self.graph.channel(ChannelId((pu / self.vcs) as u32));
            self.create_visit(
                packet,
                info.dst,
                Some(info.src),
                Some(port),
                Some(run),
                header,
            );
        }

        // 3. S-XB emission: strictly one broadcast at a time, in order of
        //    arrival (paper Fig. 6 step 2).
        if self.emission_active.is_none() {
            if let (Some(serial), Some(&(pidx, header))) =
                (self.serial_node, self.serial_queue.front())
            {
                self.serial_queue.pop_front();
                let branches = self.scheme.emission(&header);
                let mut states = Vec::with_capacity(branches.len());
                let mut bad = branches.is_empty();
                for b in &branches {
                    if b.vc as usize >= self.vcs {
                        bad = true;
                        continue;
                    }
                    match self.channel_of(serial, b.to) {
                        Some(ch) => states.push(BranchState {
                            channel: ch,
                            vc: b.vc,
                            header: b.header,
                            granted: false,
                            crossed: 0,
                            blocked_since: None,
                        }),
                        None => bad = true,
                    }
                }
                if self.observer.is_some() {
                    let at = self.graph.node(serial);
                    let depth = self.serial_queue.len();
                    let rc_change = states
                        .iter()
                        .map(|b| b.header.rc)
                        .find(|&rc| rc != header.rc);
                    if let Some(obs) = self.observer.as_deref_mut() {
                        obs.on_emission(PacketId(pidx), depth, self.now);
                        obs.on_hop(PacketId(pidx), at, None, self.now);
                        if let Some(to) = rc_change {
                            obs.on_rc_change(PacketId(pidx), at, header.rc, to, self.now);
                        }
                    }
                }
                let kind = if bad {
                    self.mk_drop(DropReason::NoUsablePath)
                } else {
                    VKind::Forward {
                        branches: states,
                        streaming: false,
                    }
                };
                let is_forward = matches!(kind, VKind::Forward { .. });
                let vi = self.install_visit(pidx, None, None, header, kind);
                if is_forward {
                    self.emission_active = Some(vi);
                }
                // The queue slot is closed either way.
                self.packets[pidx as usize].open -= 1;
            }
        }

        // 4. Arbitration: grant free ports oldest-request-first, breaking
        //    same-cycle ties with the seeded per-port hash.
        let pending: Vec<u32> = self.request_chans.iter().copied().collect();
        for port in pending {
            let pu = port as usize;
            // Purge stale requests from visits that were dropped.
            let visits = &self.visits;
            self.chan_requests[pu].retain(|&(vidx, _, _)| !visits[vidx as usize].complete);
            if self.chan_owner[pu].is_none() {
                let seed = self.cfg.arb_seed;
                let winner = self.chan_requests[pu]
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &(vidx, _, cycle))| {
                        let packet = self.visits[vidx as usize].packet;
                        (cycle, arb_hash(seed, port, packet))
                    })
                    .map(|(i, &(vidx, _, _))| (i, self.visits[vidx as usize].packet));
                if let Some((i, winner_packet)) = winner {
                    let Some((vidx, bidx, _)) = self.chan_requests[pu].remove(i) else {
                        // Unreachable by construction — the winner index came
                        // from enumerating this very queue — but a panic here
                        // would cut an abnormal run's post-mortem short, so
                        // record the anomaly and skip the grant this cycle.
                        self.diagnostics.push(EngineDiagnostic {
                            at: self.now,
                            packet: PacketId(winner_packet),
                            channel: self.describe_port(pu),
                            note: "arbitration winner vanished from the request queue".to_string(),
                        });
                        continue;
                    };
                    self.chan_owner[pu] = Some((vidx, bidx));
                    self.chan_resident[pu].push_back((vidx, bidx));
                    self.resident_chans.insert(port);
                    // The run holds the packet open until it drains out of
                    // the downstream buffer (step 9), so a packet can never
                    // look finished while flits are queued behind another
                    // packet's resident run.
                    let packet = self.visits[vidx as usize].packet;
                    self.packets[packet as usize].open += 1;
                    let mut was_blocked = None;
                    if let VKind::Forward { branches, .. } = &mut self.visits[vidx as usize].kind {
                        let b = &mut branches[bidx as usize];
                        b.granted = true;
                        was_blocked = b.blocked_since.take();
                    }
                    if let (Some(since), Some(obs)) = (was_blocked, self.observer.as_deref_mut()) {
                        let ch = ChannelId((pu / self.vcs) as u32);
                        let vc = (pu % self.vcs) as u8;
                        obs.on_unblocked(PacketId(packet), ch, vc, self.now - since, self.now);
                    }
                }
            }
            // Requests still queued after arbitration transition to
            // *blocked* (once per episode) — observer bookkeeping only.
            if self.observer.is_some() && !self.chan_requests[pu].is_empty() {
                let holder =
                    self.chan_owner[pu].map(|(ovi, _)| PacketId(self.visits[ovi as usize].packet));
                let waiting: Vec<(u32, u32)> = self.chan_requests[pu]
                    .iter()
                    .map(|&(v, b, _)| (v, b))
                    .collect();
                for (vidx, bidx) in waiting {
                    let packet = self.visits[vidx as usize].packet;
                    let mut newly = false;
                    if let VKind::Forward { branches, .. } = &mut self.visits[vidx as usize].kind {
                        let b = &mut branches[bidx as usize];
                        if b.blocked_since.is_none() {
                            b.blocked_since = Some(self.now);
                            newly = true;
                        }
                    }
                    if newly {
                        if let Some(obs) = self.observer.as_deref_mut() {
                            let ch = ChannelId((pu / self.vcs) as u32);
                            let vc = (pu % self.vcs) as u8;
                            obs.on_blocked(PacketId(packet), ch, vc, holder, self.now);
                        }
                    }
                }
            }
            if self.chan_requests[pu].is_empty() {
                self.request_chans.remove(&port);
            }
        }

        // 5. Streaming: a forward visit streams once every port is held.
        for &vi in &self.active {
            if let VKind::Forward {
                branches,
                streaming,
            } = &mut self.visits[vi as usize].kind
            {
                if !*streaming && branches.iter().all(|b| b.granted) {
                    *streaming = true;
                }
            }
        }

        // 6. Collect moves against the start-of-cycle state.
        let mut branch_moves: Vec<(u32, u32, ChannelId, u8)> = Vec::new();
        let mut sink_moves: Vec<u32> = Vec::new();
        for &vi in &self.active {
            let v = &self.visits[vi as usize];
            if v.complete {
                continue;
            }
            let avail = self.avail(v);
            match &v.kind {
                VKind::Forward {
                    branches,
                    streaming,
                } => {
                    if !*streaming {
                        continue;
                    }
                    // A source visit (injection or S-XB emission) reads the
                    // packet from local memory once and copies each flit to
                    // all its ports in lockstep — one stalled port
                    // backpressures the others, just like a fan fed from a
                    // channel buffer.
                    let lockstep = if v.in_port.is_none() {
                        branches.iter().map(|b| b.crossed).min().unwrap_or(0) + 1
                    } else {
                        usize::MAX
                    };
                    for (bi, b) in branches.iter().enumerate() {
                        if b.crossed >= v.total || b.crossed >= avail || b.crossed >= lockstep {
                            continue;
                        }
                        if self.occupancy(self.port(b.channel, b.vc)) < self.cfg.buffer_flits {
                            branch_moves.push((vi, bi as u32, b.channel, b.vc));
                        }
                    }
                }
                VKind::Sink { consumed, .. } => {
                    if *consumed < v.total && *consumed < avail {
                        sink_moves.push(vi);
                    }
                }
            }
        }

        // 7. Apply moves; the physical link carries one flit per cycle,
        //    shared round-robin among its lanes; release ports whose tail
        //    just crossed.
        let selected: Vec<(u32, u32, ChannelId, u8)> = if self.vcs == 1 {
            branch_moves
        } else {
            let mut by_channel: HashMap<u32, Vec<(u32, u32, ChannelId, u8)>> = HashMap::new();
            for m in branch_moves {
                by_channel.entry(m.2 .0).or_default().push(m);
            }
            let mut chans: Vec<u32> = by_channel.keys().copied().collect();
            chans.sort_unstable();
            let mut picked = Vec::with_capacity(chans.len());
            for ch in chans {
                let cands = &by_channel[&ch];
                let last = self.chan_last_vc[ch as usize];
                let vcs = self.vcs as u8;
                let win = cands
                    .iter()
                    .min_by_key(|&&(_, _, _, vc)| (vc + vcs - last - 1) % vcs)
                    .copied()
                    .expect("non-empty candidate set");
                self.chan_last_vc[ch as usize] = win.3;
                picked.push(win);
            }
            picked
        };
        for (vi, bi, ch, vc) in selected {
            let total = self.visits[vi as usize].total;
            let port = self.port(ch, vc);
            if let VKind::Forward { branches, .. } = &mut self.visits[vi as usize].kind {
                let b = &mut branches[bi as usize];
                b.crossed += 1;
                if b.crossed == total {
                    // Tail crossed: the output port frees (cut-through).
                    debug_assert_eq!(self.chan_owner[port], Some((vi, bi)));
                    self.chan_owner[port] = None;
                }
            }
            self.chan_flits[ch.idx()] += 1;
            self.flit_hops += 1;
            if self.observer.is_some() {
                let occupancy = self.occupancy(port);
                if let Some(obs) = self.observer.as_deref_mut() {
                    obs.on_flit(ch, vc, occupancy, self.now);
                }
            }
            progress = true;
        }
        for vi in sink_moves {
            if let VKind::Sink { consumed, .. } = &mut self.visits[vi as usize].kind {
                *consumed += 1;
            }
            progress = true;
        }

        // 8. Completions.
        let active_snapshot = self.active.clone();
        for &vi in &active_snapshot {
            let v = &self.visits[vi as usize];
            if v.complete {
                continue;
            }
            match &v.kind {
                VKind::Sink { consumed, sink } if *consumed == v.total => {
                    let packet = v.packet;
                    match sink.clone() {
                        SinkKind::Deliver(pe) => {
                            self.packets[packet as usize]
                                .deliveries
                                .push((pe, self.now));
                            if let Some(obs) = self.observer.as_deref_mut() {
                                obs.on_delivery(PacketId(packet), pe, self.now);
                            }
                        }
                        SinkKind::Gather => {
                            // Queue slot stays open until emission starts.
                            self.packets[packet as usize].open += 1;
                            let header = v.header;
                            self.serial_queue.push_back((packet, header));
                            let depth = self.serial_queue.len();
                            if let Some(obs) = self.observer.as_deref_mut() {
                                obs.on_gather(PacketId(packet), depth, self.now);
                            }
                        }
                        SinkKind::Drop(r) => {
                            let p = &mut self.packets[packet as usize];
                            if p.dropped.is_none() {
                                p.dropped = Some(r);
                            }
                        }
                    }
                    self.complete_visit(vi);
                    progress = true;
                }
                VKind::Forward { branches, .. }
                    if branches.iter().all(|b| b.crossed == v.total) =>
                {
                    if self.emission_active == Some(vi) {
                        self.emission_active = None;
                    }
                    self.complete_visit(vi);
                    progress = true;
                }
                _ => {}
            }
        }

        // 9. Retire fully-drained front runs so the next resident packet's
        //    header becomes visible.
        let residents: Vec<u32> = self.resident_chans.iter().copied().collect();
        for port in residents {
            let pu = port as usize;
            let Some(d) = self.chan_downstream[pu] else {
                continue;
            };
            if self.visits[d as usize].complete {
                let run = self.chan_resident[pu]
                    .pop_front()
                    .expect("front run exists while its visit is live");
                debug_assert_eq!(
                    self.visits[run.0 as usize].packet,
                    self.visits[d as usize].packet
                );
                self.chan_downstream[pu] = None;
                if self.chan_resident[pu].is_empty() {
                    self.resident_chans.remove(&port);
                }
                self.dec_open(self.visits[run.0 as usize].packet);
                progress = true;
            }
        }

        // Prune the active list.
        let visits = &self.visits;
        self.active.retain(|&vi| !visits[vi as usize].complete);

        progress
    }

    fn complete_visit(&mut self, vi: u32) {
        let v = &mut self.visits[vi as usize];
        if v.complete {
            return;
        }
        v.complete = true;
        let packet = v.packet;
        self.dec_open(packet);
    }

    fn dec_open(&mut self, packet: u32) {
        let p = &mut self.packets[packet as usize];
        p.open -= 1;
        if p.open == 0 && p.started && p.finished_at.is_none() {
            p.finished_at = Some(self.now);
            self.finished_packets += 1;
            if let Some(obs) = self.observer.as_deref_mut() {
                obs.on_packet_finished(PacketId(packet), self.now);
            }
        }
    }

    fn work_remaining(&self) -> bool {
        self.finished_packets < self.packets.len()
    }

    /// Builds the packet wait-for graph over ungranted port wants and
    /// extracts a cyclic wait, if any.
    fn analyze_deadlock(&self) -> Option<DeadlockInfo> {
        let mut adj: HashMap<u32, Vec<(u32, u32)>> = HashMap::new();
        for &vi in &self.active {
            let v = &self.visits[vi as usize];
            if let VKind::Forward { branches, .. } = &v.kind {
                for b in branches {
                    if !b.granted {
                        let port = self.port(b.channel, b.vc);
                        if let Some((ovi, _)) = self.chan_owner[port] {
                            let holder = self.visits[ovi as usize].packet;
                            adj.entry(v.packet).or_default().push((holder, port as u32));
                        }
                    }
                }
            }
        }
        let mut state: HashMap<u32, u8> = HashMap::new();
        let mut stack: Vec<(u32, u32)> = Vec::new();
        fn dfs(
            u: u32,
            adj: &HashMap<u32, Vec<(u32, u32)>>,
            state: &mut HashMap<u32, u8>,
            stack: &mut Vec<(u32, u32)>,
        ) -> Option<u32> {
            state.insert(u, 1);
            if let Some(next) = adj.get(&u) {
                for &(v, port) in next {
                    match state.get(&v).copied() {
                        Some(1) => {
                            stack.push((u, port));
                            return Some(v);
                        }
                        Some(_) => {}
                        None => {
                            stack.push((u, port));
                            if let Some(hit) = dfs(v, adj, state, stack) {
                                return Some(hit);
                            }
                            stack.pop();
                        }
                    }
                }
            }
            state.insert(u, 2);
            None
        }
        let mut starts: Vec<u32> = adj.keys().copied().collect();
        starts.sort_unstable();
        for s in starts {
            if state.contains_key(&s) {
                continue;
            }
            stack.clear();
            if let Some(entry) = dfs(s, &adj, &mut state, &mut stack) {
                let pos = stack.iter().position(|&(u, _)| u == entry).unwrap_or(0);
                let cycle_edges = &stack[pos..];
                let mut cycle = Vec::new();
                for (i, &(waiter, port)) in cycle_edges.iter().enumerate() {
                    let holder = if i + 1 < cycle_edges.len() {
                        cycle_edges[i + 1].0
                    } else {
                        entry
                    };
                    cycle.push(WaitEdge {
                        waiter: PacketId(waiter),
                        holder: PacketId(holder),
                        channel: self.describe_port(port as usize),
                    });
                }
                return Some(DeadlockInfo {
                    detected_at: self.now,
                    cycle,
                });
            }
        }
        None
    }

    /// Snapshot of every ungranted port want, for [`SimObserver::on_probe`].
    fn wait_snapshot(&self) -> Vec<WaitSnapshot> {
        let mut waits = Vec::new();
        for &vi in &self.active {
            let v = &self.visits[vi as usize];
            if let VKind::Forward { branches, .. } = &v.kind {
                for b in branches {
                    if b.granted {
                        continue;
                    }
                    let port = self.port(b.channel, b.vc);
                    waits.push(WaitSnapshot {
                        waiter: PacketId(v.packet),
                        holder: self.chan_owner[port]
                            .map(|(ovi, _)| PacketId(self.visits[ovi as usize].packet)),
                        channel: b.channel,
                        vc: b.vc,
                        since: b.blocked_since.unwrap_or(self.now),
                    });
                }
            }
        }
        waits
    }

    /// Runs to completion, deadlock, stall, or the cycle limit.
    pub fn run(&mut self) -> SimResult {
        let mut order: Vec<u32> = (0..self.packets.len() as u32).collect();
        order.sort_by_key(|&i| (self.packets[i as usize].spec.inject_at, i));
        self.inject_order = order;
        self.next_inject = 0;
        let probe_every = self
            .observer
            .as_deref()
            .and_then(|o| o.probe_interval())
            .filter(|&iv| iv > 0);

        let outcome = loop {
            if !self.work_remaining() {
                break SimOutcome::Completed;
            }
            if self.now >= self.cfg.max_cycles {
                break SimOutcome::CycleLimit;
            }
            let progress = self.step();
            if let Some(iv) = probe_every {
                if self.now.is_multiple_of(iv) {
                    let waits = self.wait_snapshot();
                    if let Some(obs) = self.observer.as_deref_mut() {
                        obs.on_probe(self.now, &waits);
                    }
                }
            }
            if progress {
                self.last_progress = self.now;
            } else if self.next_inject >= self.inject_order.len()
                && self.now - self.last_progress >= self.cfg.watchdog
            {
                break match self.analyze_deadlock() {
                    Some(info) => SimOutcome::Deadlock(info),
                    None => SimOutcome::Stalled,
                };
            }
            self.now += 1;
        };
        // Abnormal endings drain the terminal wait graph to the observer
        // (the flight-recorder/post-mortem hook), then — for deadlocks —
        // hand over the extracted cycle. See the firing-order contract in
        // [`crate::observer`].
        if self.observer.is_some() && !matches!(outcome, SimOutcome::Completed) {
            let waits = self.wait_snapshot();
            if let Some(obs) = self.observer.as_deref_mut() {
                obs.on_final_waits(self.now, &waits);
            }
        }
        if let SimOutcome::Deadlock(info) = &outcome {
            if let Some(obs) = self.observer.as_deref_mut() {
                obs.on_deadlock(info);
            }
        }
        self.collect_result(outcome)
    }

    fn collect_result(&self, outcome: SimOutcome) -> SimResult {
        // Intern route node names: one table entry per distinct switch, one
        // u32 per hop — `record_routes` no longer allocates per hop.
        let mut name_of: HashMap<u32, u32> = HashMap::new();
        let mut route_names: Vec<String> = Vec::new();
        let mut intern = |node: u32| -> u32 {
            *name_of.entry(node).or_insert_with(|| {
                let idx = route_names.len() as u32;
                route_names.push(self.graph.node(NodeId(node)).to_string());
                idx
            })
        };
        let mut packets = Vec::with_capacity(self.packets.len());
        let mut stats = SimStats {
            cycles: self.now,
            flit_hops: self.flit_hops,
            delivered: 0,
            dropped: 0,
            unfinished: 0,
            latency_sum: 0,
            latency_max: 0,
        };
        for (i, p) in self.packets.iter().enumerate() {
            // A broadcast that skipped a faulty leaf records a drop but
            // still counts as delivered when anyone received it.
            let outcome_p = match (p.finished_at, &p.dropped) {
                (Some(_), None) => PacketOutcome::Delivered,
                (Some(_), Some(_)) if !p.deliveries.is_empty() => PacketOutcome::Delivered,
                (Some(_), Some(r)) => PacketOutcome::Dropped(*r),
                (None, _) => PacketOutcome::Unfinished,
            };
            match &outcome_p {
                PacketOutcome::Delivered => {
                    stats.delivered += 1;
                    let lat = p.finished_at.unwrap() - p.spec.inject_at;
                    stats.latency_sum += lat;
                    stats.latency_max = stats.latency_max.max(lat);
                }
                PacketOutcome::Dropped(_) => stats.dropped += 1,
                PacketOutcome::Unfinished => stats.unfinished += 1,
            }
            packets.push(PacketResult {
                id: PacketId(i as u32),
                injected_at: p.spec.inject_at,
                finished_at: p.finished_at,
                deliveries: p.deliveries.clone(),
                outcome: outcome_p,
                route: p.route.iter().map(|&(n, t)| (intern(n), t)).collect(),
            });
        }
        SimResult {
            outcome,
            stats,
            packets,
            route_names,
            diagnostics: self.diagnostics.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdx_core::Sr2201Routing;
    use mdx_fault::FaultSet;
    use mdx_topology::{Coord, MdCrossbar, Shape};

    fn fig2() -> Arc<MdCrossbar> {
        Arc::new(MdCrossbar::build(Shape::fig2()))
    }

    fn sim_with(net: &Arc<MdCrossbar>, cfg: SimConfig) -> Simulator {
        let scheme = Arc::new(Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap());
        Simulator::new(net.graph().clone(), scheme, cfg)
    }

    fn spec(net: &MdCrossbar, src: usize, dst: usize, flits: usize, at: u64) -> InjectSpec {
        let shape = net.shape();
        InjectSpec {
            src_pe: src,
            header: Header::unicast(shape.coord_of(src), shape.coord_of(dst)),
            flits,
            inject_at: at,
        }
    }

    #[test]
    #[should_panic(expected = "at least the header flit")]
    fn zero_flit_packets_rejected() {
        let net = fig2();
        let mut sim = sim_with(&net, SimConfig::default());
        sim.schedule(spec(&net, 0, 1, 0, 0));
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_buffer_rejected() {
        let net = fig2();
        sim_with(
            &net,
            SimConfig {
                buffer_flits: 0,
                ..SimConfig::default()
            },
        );
    }

    #[test]
    fn empty_schedule_completes_immediately() {
        let net = fig2();
        let mut sim = sim_with(&net, SimConfig::default());
        let r = sim.run();
        assert_eq!(r.outcome, SimOutcome::Completed);
        assert_eq!(r.stats.cycles, 0);
        assert!(r.packets.is_empty());
    }

    #[test]
    fn cycle_limit_reported() {
        let net = fig2();
        let mut sim = sim_with(
            &net,
            SimConfig {
                max_cycles: 3,
                ..SimConfig::default()
            },
        );
        sim.schedule(spec(&net, 0, 11, 20, 0));
        let r = sim.run();
        assert_eq!(r.outcome, SimOutcome::CycleLimit);
        assert_eq!(r.packets[0].outcome, PacketOutcome::Unfinished);
    }

    #[test]
    fn channel_flits_account_every_hop() {
        let net = fig2();
        let mut sim = sim_with(&net, SimConfig::default());
        // (0,0)->(3,0): same row, 4 channels, 5 flits each.
        sim.schedule(spec(&net, 0, 3, 5, 0));
        let r = sim.run();
        assert_eq!(r.outcome, SimOutcome::Completed);
        assert_eq!(r.stats.flit_hops, 4 * 5);
        let crossed: u64 = sim.channel_flits().iter().sum();
        assert_eq!(crossed, 20);
        // Exactly 4 channels saw traffic, each 5 flits.
        let used: Vec<u64> = sim
            .channel_flits()
            .iter()
            .copied()
            .filter(|&f| f > 0)
            .collect();
        assert_eq!(used, vec![5, 5, 5, 5]);
    }

    #[test]
    fn fifo_buffer_keeps_packet_order_on_shared_path() {
        // Two same-route packets: the second is injected later and must
        // arrive later (FIFO channel buffers cannot reorder).
        let net = fig2();
        let mut sim = sim_with(&net, SimConfig::default());
        sim.schedule(spec(&net, 0, 3, 6, 0));
        sim.schedule(spec(&net, 0, 3, 6, 1));
        let r = sim.run();
        assert_eq!(r.outcome, SimOutcome::Completed);
        assert!(r.packets[0].finished_at.unwrap() < r.packets[1].finished_at.unwrap());
    }

    #[test]
    fn arbitration_is_fifo_across_cycles() {
        // A packet requesting a port one cycle earlier always wins it.
        let net = fig2();
        for seed in 0..8u64 {
            let mut sim = sim_with(
                &net,
                SimConfig {
                    arb_seed: seed,
                    ..SimConfig::default()
                },
            );
            // Both head for PE3's router exit of the row-0 crossbar.
            sim.schedule(spec(&net, 0, 3, 12, 0));
            sim.schedule(spec(&net, 1, 3, 12, 4));
            let r = sim.run();
            assert!(
                r.packets[0].finished_at.unwrap() < r.packets[1].finished_at.unwrap(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn deep_buffers_reduce_blocking_latency() {
        // Virtual cut-through absorbs a blocked packet; with a long packet
        // hogging the shared exit, the follower's latency shrinks (or at
        // least never grows) as buffers deepen.
        let net = fig2();
        let mut latencies = Vec::new();
        for buffer in [1usize, 4, 32] {
            let mut sim = sim_with(
                &net,
                SimConfig {
                    buffer_flits: buffer,
                    ..SimConfig::default()
                },
            );
            sim.schedule(spec(&net, 0, 3, 24, 0)); // hog
            sim.schedule(spec(&net, 1, 7, 8, 2)); // crosses the hog's row exit? no:
                                                  // (1,0)->(3,1): X to column 3 on row 0 (contends with the hog's
                                                  // exit), then Y.
            sim.schedule(spec(&net, 1, 3, 8, 2));
            let r = sim.run();
            assert_eq!(r.outcome, SimOutcome::Completed);
            latencies.push(r.packets[2].latency().unwrap());
        }
        assert!(
            latencies[0] >= latencies[1] && latencies[1] >= latencies[2],
            "{latencies:?}"
        );
    }

    #[test]
    fn watchdog_cycle_report_names_real_channels() {
        use mdx_core::NaiveBroadcast;
        let net = fig2();
        let scheme = Arc::new(NaiveBroadcast::new(net.clone()));
        let mut sim = Simulator::new(
            net.graph().clone(),
            scheme,
            SimConfig {
                watchdog: 64,
                arb_seed: 3,
                ..SimConfig::default()
            },
        );
        let shape = net.shape();
        for src in [0usize, 4] {
            let c = shape.coord_of(src);
            sim.schedule(InjectSpec {
                src_pe: src,
                header: Header {
                    rc: mdx_core::RouteChange::Broadcast,
                    dest: c,
                    src: c,
                },
                flits: 16,
                inject_at: 0,
            });
        }
        match sim.run().outcome {
            SimOutcome::Deadlock(info) => {
                assert!(!info.cycle.is_empty());
                for e in &info.cycle {
                    assert!(e.channel.contains("->"), "{}", e.channel);
                    assert_ne!(e.waiter, e.holder);
                }
                // The cycle is closed: each holder is the next waiter.
                for w in info.cycle.windows(2) {
                    assert_eq!(w[0].holder, w[1].waiter);
                }
                assert_eq!(
                    info.cycle.last().unwrap().holder,
                    info.cycle.first().unwrap().waiter
                );
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn latency_includes_injection_delay() {
        let net = fig2();
        let mut a = sim_with(&net, SimConfig::default());
        a.schedule(spec(&net, 0, 3, 5, 0));
        let la = a.run().packets[0].latency().unwrap();
        let mut b = sim_with(&net, SimConfig::default());
        b.schedule(spec(&net, 0, 3, 5, 100));
        let rb = b.run();
        // Same latency relative to its own injection time.
        assert_eq!(rb.packets[0].latency().unwrap(), la);
        assert_eq!(rb.packets[0].injected_at, 100);
    }

    #[test]
    fn broadcast_finish_time_is_last_delivery() {
        let net = fig2();
        let shape = net.shape().clone();
        let mut sim = sim_with(&net, SimConfig::default());
        sim.schedule(InjectSpec {
            src_pe: 5,
            header: Header::broadcast_request(shape.coord_of(5)),
            flits: 6,
            inject_at: 0,
        });
        let r = sim.run();
        let p = &r.packets[0];
        assert_eq!(p.deliveries.len(), 12);
        let last_delivery = p.deliveries.iter().map(|&(_, t)| t).max().unwrap();
        // finished_at is when the last flit leaves the last buffer — at or
        // just after the last PE delivery.
        assert!(p.finished_at.unwrap() >= last_delivery);
    }

    #[test]
    fn self_send_latency_is_minimal() {
        let net = fig2();
        let mut sim = sim_with(&net, SimConfig::default());
        sim.schedule(spec(&net, 4, 4, 3, 0));
        let r = sim.run();
        // PE -> router -> PE: two channels plus sink drain.
        let lat = r.packets[0].latency().unwrap();
        assert!(lat <= 12, "self-send latency {lat}");
    }

    #[test]
    fn arb_hash_spreads_winners_across_ports() {
        // The per-port tie-break must not systematically favor one packet:
        // over many channels, both packets win some.
        let mut wins = [0usize; 2];
        for ch in 0..64u32 {
            let a = arb_hash(1, ch, 0);
            let b = arb_hash(1, ch, 1);
            wins[if a < b { 0 } else { 1 }] += 1;
        }
        assert!(wins[0] >= 16 && wins[1] >= 16, "{wins:?}");
    }

    #[test]
    fn recorded_route_matches_static_trace() {
        let net = fig2();
        let mut sim = sim_with(
            &net,
            SimConfig {
                record_routes: true,
                ..SimConfig::default()
            },
        );
        sim.schedule(spec(&net, 0, 11, 4, 0));
        let r = sim.run();
        let named = r.route_of(PacketId(0));
        let route: Vec<&str> = named.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            route,
            vec!["PE0", "R0", "X0-XB", "R3", "Y3-XB", "R11", "PE11"]
        );
        // The name table holds each switch once.
        assert_eq!(r.route_names.len(), 7);
        // Arrival cycles strictly increase along the path.
        let cycles: Vec<u64> = r.packets[0].route.iter().map(|&(_, c)| c).collect();
        assert!(cycles.windows(2).all(|w| w[0] < w[1]), "{cycles:?}");
        // Off by default: no allocation.
        let mut sim = sim_with(&net, SimConfig::default());
        sim.schedule(spec(&net, 0, 11, 4, 0));
        let r = sim.run();
        assert!(r.packets[0].route.is_empty());
    }

    #[test]
    fn store_and_forward_costs_hops_times_serialization() {
        let net = fig2();
        let run = |saf: bool| {
            let mut sim = sim_with(
                &net,
                SimConfig {
                    store_and_forward: saf,
                    buffer_flits: 64,
                    ..SimConfig::default()
                },
            );
            sim.schedule(spec(&net, 0, 11, 16, 0));
            let r = sim.run();
            assert_eq!(r.outcome, SimOutcome::Completed);
            r.packets[0].latency().unwrap()
        };
        let ct = run(false);
        let saf = run(true);
        // Cut-through pipelines (~hops + flits); SAF pays ~hops x flits.
        assert!(saf > 2 * ct, "saf {saf} !>> cut-through {ct}");
        assert!(saf >= 6 * 16, "saf {saf} below the serialization bound");
    }

    #[test]
    fn faulty_coord_placeholder() {
        // Keep Coord in scope for the helper imports above.
        let _ = Coord::ORIGIN;
    }
}
