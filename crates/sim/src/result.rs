//! Injection specifications, per-packet outcomes and run-level statistics.

use mdx_core::{DropReason, Header, RouteChange};
use serde::value::Value;
use serde::{de, Deserialize, Serialize};

/// Dense id of a packet within one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PacketId(pub u32);

impl PacketId {
    /// The id as a table index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PacketId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pkt{}", self.0)
    }
}

/// One packet to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectSpec {
    /// Source PE index.
    pub src_pe: usize,
    /// Initial header (RC=0 unicast, RC=1 broadcast request under the
    /// SR2201 scheme, RC=2 for the naive broadcast strawman).
    pub header: Header,
    /// Packet length in flits (>= 1; the header flit counts).
    pub flits: usize,
    /// Cycle at which the NIA presents the packet.
    pub inject_at: u64,
}

impl InjectSpec {
    /// Channels a fault-free dimension-order route would traverse for this
    /// packet, or `None` for broadcasts (whose cost is a tree, not a path).
    ///
    /// Dimension-order unicast on the multi-dimensional crossbar crosses
    /// `PE -> router` (1), then `router -> XB -> router` (2) per dimension
    /// in which source and destination differ, then `router -> PE` (1):
    /// `2 + 2 * hamming(src, dest)` channels in total. This is the
    /// yardstick the attribution layer measures RC=3 detour overhead
    /// against — a detoured packet's extra hops are
    /// `hops - fault_free_channel_hops`.
    pub fn fault_free_channel_hops(&self) -> Option<u64> {
        match self.header.rc {
            RouteChange::Normal => Some(2 + 2 * self.header.src.hamming(&self.header.dest) as u64),
            _ => None,
        }
    }
}

/// How a packet's life ended.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PacketOutcome {
    /// Fully delivered; for broadcasts, to every reachable PE.
    Delivered,
    /// Dropped by the routing scheme.
    Dropped(DropReason),
    /// Still in flight when the run ended (deadlock or cycle limit).
    Unfinished,
}

/// Per-packet accounting.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketResult {
    /// The packet.
    pub id: PacketId,
    /// Injection cycle (as scheduled).
    pub injected_at: u64,
    /// Cycle the last flit reached its last sink, if the packet finished.
    pub finished_at: Option<u64>,
    /// Every (PE index, cycle the tail arrived) delivery.
    pub deliveries: Vec<(usize, u64)>,
    /// Outcome classification.
    pub outcome: PacketOutcome,
    /// Per-switch route as (name-table id, header-arrival cycle) pairs —
    /// populated only when [`crate::SimConfig::record_routes`] is set (BFS
    /// order for broadcast trees). The ids index
    /// [`SimResult::route_names`]; resolve them with
    /// [`PacketResult::named_route`] or [`SimResult::route_of`].
    pub route: Vec<(u32, u64)>,
}

impl PacketResult {
    /// End-to-end latency in cycles (injection to final sink), if finished.
    pub fn latency(&self) -> Option<u64> {
        self.finished_at.map(|f| f - self.injected_at)
    }

    /// Resolves [`PacketResult::route`] against a run's name table
    /// ([`SimResult::route_names`]) — the pre-interning `(name, cycle)`
    /// shape, allocated on demand instead of per hop during the run.
    pub fn named_route(&self, names: &[String]) -> Vec<(String, u64)> {
        self.route
            .iter()
            .map(|&(n, t)| (names[n as usize].clone(), t))
            .collect()
    }
}

/// A non-fatal engine bookkeeping anomaly, recorded instead of panicking
/// so an abnormal run still reaches its post-mortem intact.
///
/// The engine's internal invariants are checked at a few arbitration
/// points; a violation is a simulator bug, but aborting mid-run would cut
/// the forensic trail short. Diagnostics carry enough context — the sim
/// tick, the packet, the contended channel — to reconstruct what the
/// engine was doing when the invariant broke.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineDiagnostic {
    /// Simulation cycle at which the anomaly was observed.
    pub at: u64,
    /// The packet involved.
    pub packet: PacketId,
    /// Human-readable description of the channel (port) involved.
    pub channel: String,
    /// What went wrong.
    pub note: String,
}

impl std::fmt::Display for EngineDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cycle {}: {} at {}: {}",
            self.at, self.packet, self.channel, self.note
        )
    }
}

/// One blocked-on relationship in a deadlock cycle.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WaitEdge {
    /// The blocked packet.
    pub waiter: PacketId,
    /// The packet holding the port.
    pub holder: PacketId,
    /// Human-readable channel description (e.g. `R3 -> Y1-XB`).
    pub channel: String,
}

/// A detected deadlock: the cyclic wait, in order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeadlockInfo {
    /// Cycle at which the watchdog fired.
    pub detected_at: u64,
    /// The cyclic chain of waits (waiter of edge *i* is the holder of edge
    /// *i-1*, wrapping around).
    pub cycle: Vec<WaitEdge>,
}

impl std::fmt::Display for DeadlockInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "deadlock detected at cycle {}:", self.detected_at)?;
        for e in &self.cycle {
            writeln!(
                f,
                "  {} waits for {} held by {}",
                e.waiter, e.channel, e.holder
            )?;
        }
        Ok(())
    }
}

/// How a run ended.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimOutcome {
    /// Every packet reached a terminal state (delivered or dropped).
    Completed,
    /// The watchdog found a cyclic wait.
    Deadlock(DeadlockInfo),
    /// The watchdog found no progress but also no ownership cycle (a
    /// scheme/livelock pathology — always a bug worth inspecting).
    Stalled,
    /// `max_cycles` elapsed with work remaining.
    CycleLimit,
}

impl SimOutcome {
    /// Whether the run ended with a detected deadlock.
    pub fn is_deadlock(&self) -> bool {
        matches!(self, SimOutcome::Deadlock(_))
    }
}

/// Aggregate statistics of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Total flit-hops (one flit crossing one channel).
    pub flit_hops: u64,
    /// Packets fully delivered.
    pub delivered: usize,
    /// Packets dropped by the scheme.
    pub dropped: usize,
    /// Packets unfinished at the end.
    pub unfinished: usize,
    /// Sum and count of end-to-end latencies (finished packets).
    pub latency_sum: u64,
    /// Maximum end-to-end latency among finished packets.
    pub latency_max: u64,
}

impl SimStats {
    /// Mean end-to-end packet latency in cycles.
    pub fn mean_latency(&self) -> f64 {
        if self.delivered == 0 {
            f64::NAN
        } else {
            self.latency_sum as f64 / self.delivered as f64
        }
    }

    /// Delivered flit-hops per cycle — the throughput proxy used in the
    /// load sweeps.
    pub fn flit_hops_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.flit_hops as f64 / self.cycles as f64
        }
    }
}

/// Number of active-packet occupancy buckets in an [`EngineProfile`]
/// (the last bucket is the `> 128` overflow).
pub const OCCUPANCY_BUCKETS: usize = 10;

/// Upper bounds of the first `OCCUPANCY_BUCKETS - 1` occupancy buckets
/// (inclusive); counts above the last bound land in the overflow bucket.
pub const OCCUPANCY_BOUNDS: [u64; OCCUPANCY_BUCKETS - 1] = [0, 1, 2, 4, 8, 16, 32, 64, 128];

/// Wall-clock split of the engine loop by phase, in seconds. Populated
/// only when phase timing is enabled via
/// [`crate::Simulator::set_phase_timing`] — the per-section `Instant`
/// reads are cheap but not free, so they are off by default.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseSplit {
    /// Pulling scheduled injections from the traffic source into the NIA.
    pub source_s: f64,
    /// The per-cycle packet step loop (arbitration, flit movement).
    pub step_s: f64,
    /// Watchdog / stall-probe / progress checks after each step.
    pub probe_s: f64,
}

impl PhaseSplit {
    /// The three phases as `(name, seconds)` pairs, in loop order — the
    /// iteration seam span exporters and metric feeders share, so a
    /// renamed or added phase shows up everywhere at once.
    pub fn named(&self) -> [(&'static str, f64); 3] {
        [
            ("source", self.source_s),
            ("step", self.step_s),
            ("probe", self.probe_s),
        ]
    }
}

/// The engine's self-profile of one run: where wall-clock time went and
/// how busy the simulated cycles actually were.
///
/// This is a **measurement, not a result**: it varies run-to-run with
/// machine load, so it is deliberately *excluded* from the canonical
/// [`SimResult`] serialization that campaign replay digests are computed
/// over (a replayed token must hash identically regardless of how fast
/// the replaying host is). Deserialized results therefore always carry
/// `profile: None`.
///
/// The idle-tick numbers are the sizing instrument for the event-driven
/// engine refactor (ROADMAP item 1): `idle_tick_fraction()` is exactly
/// the share of engine work an event queue would skip.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineProfile {
    /// Wall-clock seconds spent inside the engine's run loop (excludes
    /// result collection).
    pub wall_s: f64,
    /// Simulated cycles (same as `SimStats::cycles`, duplicated so the
    /// profile is self-contained for metric export).
    pub cycles: u64,
    /// Engine loop iterations actually executed (each one touches every
    /// in-flight packet).
    pub steps: u64,
    /// Executed steps in which no flit moved and no packet was injected
    /// or retired — pure overhead a calendar queue would skip.
    pub idle_steps: u64,
    /// Cycles skipped wholesale by the idle fast-forward (quiet gaps
    /// before the next scheduled injection). Counted as idle ticks: the
    /// cycle-driven loop only avoids them thanks to a special case.
    pub jumped_cycles: u64,
    /// Discrete events processed: injections + flit-hops + deliveries +
    /// retirements.
    pub events: u64,
    /// Histogram of in-flight packet count per executed step, bucketed by
    /// [`OCCUPANCY_BOUNDS`] (jumped cycles count into bucket 0 — nothing
    /// was in flight).
    pub occupancy: [u64; OCCUPANCY_BUCKETS],
    /// Optional per-phase wall-clock split (see
    /// [`crate::Simulator::set_phase_timing`]).
    pub phases: Option<PhaseSplit>,
}

impl EngineProfile {
    /// Total engine ticks: executed steps plus fast-forwarded cycles.
    pub fn ticks(&self) -> u64 {
        self.steps + self.jumped_cycles
    }

    /// Ticks in which nothing moved: idle executed steps plus
    /// fast-forwarded cycles.
    pub fn idle_ticks(&self) -> u64 {
        self.idle_steps + self.jumped_cycles
    }

    /// Fraction of ticks in which nothing moved — the headroom an
    /// event-driven engine core would reclaim. 0.0 for an empty run.
    pub fn idle_tick_fraction(&self) -> f64 {
        let t = self.ticks();
        if t == 0 {
            0.0
        } else {
            self.idle_ticks() as f64 / t as f64
        }
    }

    /// Simulated cycles per wall-clock second. 0.0 when no time elapsed.
    pub fn cycles_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.cycles as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// Discrete events processed per simulated cycle.
    pub fn events_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.events as f64 / self.cycles as f64
        }
    }

    /// The occupancy bucket index a given in-flight packet count falls in.
    pub fn occupancy_bucket(active: usize) -> usize {
        OCCUPANCY_BOUNDS
            .iter()
            .position(|&b| active as u64 <= b)
            .unwrap_or(OCCUPANCY_BUCKETS - 1)
    }
}

/// The full result of one run.
///
/// Equality (like serialization) covers only the five deterministic
/// fields — two runs of the same token compare equal even though their
/// wall-clock [`SimResult::profile`]s differ.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Terminal condition.
    pub outcome: SimOutcome,
    /// Aggregates.
    pub stats: SimStats,
    /// Per-packet details, indexed by [`PacketId`].
    pub packets: Vec<PacketResult>,
    /// Interned switch names for [`PacketResult::route`] entries (empty
    /// unless [`crate::SimConfig::record_routes`] was set).
    pub route_names: Vec<String>,
    /// Engine bookkeeping anomalies recorded during the run (empty on a
    /// healthy run — any entry is a simulator bug worth a report).
    pub diagnostics: Vec<EngineDiagnostic>,
    /// The engine's self-profile (wall-clock, idle ticks, occupancy).
    /// Always populated by [`crate::Simulator`] runs; **excluded from
    /// serialization** so replay digests stay machine-independent, hence
    /// `None` after a deserialization round-trip. See [`EngineProfile`].
    pub profile: Option<EngineProfile>,
}

// Equality deliberately ignores the machine-dependent `profile`: it exists
// so determinism tests can assert two runs of the same scenario are
// bit-identical *as simulations* regardless of how fast each ran.
impl PartialEq for SimResult {
    fn eq(&self, other: &SimResult) -> bool {
        self.outcome == other.outcome
            && self.stats == other.stats
            && self.packets == other.packets
            && self.route_names == other.route_names
            && self.diagnostics == other.diagnostics
    }
}

// Serialization is hand-written (not derived) to pin the canonical wire
// shape to exactly the five deterministic fields: campaign replay digests
// are FNV hashes of this serialization, and the machine-dependent
// `profile` must never perturb them. The field order and shapes below are
// byte-identical to what the pre-profile derive emitted.
impl Serialize for SimResult {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            (String::from("outcome"), self.outcome.to_value()),
            (String::from("stats"), self.stats.to_value()),
            (String::from("packets"), self.packets.to_value()),
            (String::from("route_names"), self.route_names.to_value()),
            (String::from("diagnostics"), self.diagnostics.to_value()),
        ])
    }
}

impl Deserialize for SimResult {
    fn from_value(v: &Value) -> Result<SimResult, de::Error> {
        let entries = v
            .as_map()
            .ok_or_else(|| de::Error::expected("SimResult map"))?;
        Ok(SimResult {
            outcome: Deserialize::from_value(de::field(entries, "outcome")?)?,
            stats: Deserialize::from_value(de::field(entries, "stats")?)?,
            packets: Deserialize::from_value(de::field(entries, "packets")?)?,
            route_names: Deserialize::from_value(de::field(entries, "route_names")?)?,
            diagnostics: Deserialize::from_value(de::field(entries, "diagnostics")?)?,
            profile: None,
        })
    }
}

/// Latencies of a run's delivered packets, collected and sorted **once** —
/// query as many percentiles as needed without re-sorting (see
/// [`SimResult::sorted_latencies`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortedLatencies(Vec<u64>);

impl SortedLatencies {
    /// Builds the collection from an unsorted pool of latencies (sorted
    /// once here). Lets sweep-level reducers pool delivered latencies
    /// across many runs and take true pooled percentiles, instead of
    /// averaging tiny per-run percentiles (which collapses p95 into p50
    /// when individual runs deliver only a handful of packets).
    pub fn from_unsorted(mut latencies: Vec<u64>) -> SortedLatencies {
        latencies.sort_unstable();
        SortedLatencies(latencies)
    }

    /// The p-th percentile (p in 0..=100), `None` when nothing was
    /// delivered.
    pub fn percentile(&self, p: usize) -> Option<u64> {
        if self.0.is_empty() {
            return None;
        }
        let idx = (p.min(100) * (self.0.len() - 1)) / 100;
        Some(self.0[idx])
    }

    /// The sorted latencies, ascending.
    pub fn as_slice(&self) -> &[u64] {
        &self.0
    }
}

impl SimResult {
    /// Latencies of all delivered packets, sorted ascending. Collect once
    /// and reuse via [`SortedLatencies::percentile`] — the p50/p95/p99
    /// triple of a campaign row costs one sort, not three.
    pub fn sorted_latencies(&self) -> SortedLatencies {
        let mut v: Vec<u64> = self
            .packets
            .iter()
            .filter(|p| p.outcome == PacketOutcome::Delivered)
            .filter_map(|p| p.latency())
            .collect();
        v.sort_unstable();
        SortedLatencies(v)
    }

    /// The p-th latency percentile (p in 0..=100) of delivered packets.
    /// One-shot convenience; for several percentiles of the same run use
    /// [`SimResult::sorted_latencies`] once instead.
    pub fn latency_percentile(&self, p: usize) -> Option<u64> {
        self.sorted_latencies().percentile(p)
    }

    /// The resolved `(switch name, header-arrival cycle)` route of packet
    /// `id` — the compatibility accessor for the pre-interning
    /// [`PacketResult::route`] shape.
    pub fn route_of(&self, id: PacketId) -> Vec<(String, u64)> {
        self.packets[id.idx()].named_route(&self.route_names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdx_topology::Coord;

    #[test]
    fn latency_accessors() {
        let r = PacketResult {
            id: PacketId(0),
            injected_at: 10,
            finished_at: Some(25),
            deliveries: vec![(3, 25)],
            outcome: PacketOutcome::Delivered,
            route: Vec::new(),
        };
        assert_eq!(r.latency(), Some(15));
    }

    #[test]
    fn stats_aggregates() {
        let s = SimStats {
            cycles: 100,
            flit_hops: 500,
            delivered: 2,
            dropped: 0,
            unfinished: 0,
            latency_sum: 30,
            latency_max: 20,
        };
        assert_eq!(s.mean_latency(), 15.0);
        assert_eq!(s.flit_hops_per_cycle(), 5.0);
    }

    #[test]
    fn deadlock_display_lists_cycle() {
        let d = DeadlockInfo {
            detected_at: 42,
            cycle: vec![WaitEdge {
                waiter: PacketId(0),
                holder: PacketId(1),
                channel: "R3 -> Y1-XB".into(),
            }],
        };
        let s = d.to_string();
        assert!(s.contains("cycle 42"));
        assert!(s.contains("pkt0 waits for R3 -> Y1-XB held by pkt1"));
    }

    #[test]
    fn percentiles() {
        let mk = |id: u32, lat: u64| PacketResult {
            id: PacketId(id),
            injected_at: 0,
            finished_at: Some(lat),
            deliveries: vec![],
            outcome: PacketOutcome::Delivered,
            route: Vec::new(),
        };
        let r = SimResult {
            outcome: SimOutcome::Completed,
            stats: SimStats {
                cycles: 0,
                flit_hops: 0,
                delivered: 3,
                dropped: 0,
                unfinished: 0,
                latency_sum: 0,
                latency_max: 0,
            },
            packets: vec![mk(0, 30), mk(1, 10), mk(2, 20)],
            route_names: Vec::new(),
            diagnostics: Vec::new(),
            profile: None,
        };
        assert_eq!(r.latency_percentile(0), Some(10));
        assert_eq!(r.latency_percentile(50), Some(20));
        assert_eq!(r.latency_percentile(100), Some(30));
        // One collection serves every percentile.
        let lats = r.sorted_latencies();
        assert_eq!(lats.as_slice(), &[10, 20, 30]);
        assert_eq!(lats.percentile(0), Some(10));
        assert_eq!(lats.percentile(95), Some(20));
        assert_eq!(lats.percentile(100), Some(30));
        let _ = Header::unicast(Coord::ORIGIN, Coord::ORIGIN); // keep import honest
    }

    #[test]
    fn from_unsorted_pools_and_sorts() {
        let lats = SortedLatencies::from_unsorted(vec![30, 10, 20, 10]);
        assert_eq!(lats.as_slice(), &[10, 10, 20, 30]);
        assert_eq!(lats.percentile(0), Some(10));
        assert_eq!(lats.percentile(100), Some(30));
        assert!(SortedLatencies::from_unsorted(Vec::new())
            .percentile(50)
            .is_none());
    }

    #[test]
    fn profile_is_excluded_from_canonical_serialization() {
        let mut r = SimResult {
            outcome: SimOutcome::Completed,
            stats: SimStats {
                cycles: 7,
                flit_hops: 3,
                delivered: 1,
                dropped: 0,
                unfinished: 0,
                latency_sum: 4,
                latency_max: 4,
            },
            packets: Vec::new(),
            route_names: Vec::new(),
            diagnostics: Vec::new(),
            profile: None,
        };
        let without = r.to_value();
        r.profile = Some(EngineProfile {
            wall_s: 1.25,
            cycles: 7,
            steps: 7,
            idle_steps: 2,
            jumped_cycles: 3,
            events: 5,
            occupancy: [0; OCCUPANCY_BUCKETS],
            phases: Some(PhaseSplit::default()),
        });
        // The machine-dependent profile must not perturb replay digests.
        assert_eq!(r.to_value(), without);
        let keys: Vec<&str> = without
            .as_map()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(
            keys,
            ["outcome", "stats", "packets", "route_names", "diagnostics"]
        );
        // Round-trip: the profile does not survive, everything else does.
        let back = SimResult::from_value(&r.to_value()).unwrap();
        assert!(back.profile.is_none());
        assert_eq!(back.stats, r.stats);
        assert_eq!(back.outcome, r.outcome);
    }

    #[test]
    fn engine_profile_derived_rates() {
        let p = EngineProfile {
            wall_s: 2.0,
            cycles: 1000,
            steps: 400,
            idle_steps: 100,
            jumped_cycles: 600,
            events: 1500,
            occupancy: [0; OCCUPANCY_BUCKETS],
            phases: None,
        };
        assert_eq!(p.ticks(), 1000);
        assert_eq!(p.idle_ticks(), 700);
        assert!((p.idle_tick_fraction() - 0.7).abs() < 1e-12);
        assert!((p.cycles_per_sec() - 500.0).abs() < 1e-9);
        assert!((p.events_per_cycle() - 1.5).abs() < 1e-12);
        assert_eq!(EngineProfile::occupancy_bucket(0), 0);
        assert_eq!(EngineProfile::occupancy_bucket(1), 1);
        assert_eq!(EngineProfile::occupancy_bucket(3), 3);
        assert_eq!(EngineProfile::occupancy_bucket(128), 8);
        assert_eq!(EngineProfile::occupancy_bucket(129), 9);
        let empty = EngineProfile {
            wall_s: 0.0,
            cycles: 0,
            steps: 0,
            idle_steps: 0,
            jumped_cycles: 0,
            events: 0,
            occupancy: [0; OCCUPANCY_BUCKETS],
            phases: None,
        };
        assert_eq!(empty.idle_tick_fraction(), 0.0);
        assert_eq!(empty.cycles_per_sec(), 0.0);
        assert_eq!(empty.events_per_cycle(), 0.0);
    }

    #[test]
    fn fault_free_channel_hops_counts_dimension_order_path() {
        let spec = |header| InjectSpec {
            src_pe: 0,
            header,
            flits: 4,
            inject_at: 0,
        };
        // Fig. 2's PE0 -> PE11: two differing dimensions, six channels
        // (PE0 -> R0 -> X0-XB -> R3 -> Y3-XB -> R11 -> PE11).
        let u = spec(Header::unicast(Coord::new(&[0, 0]), Coord::new(&[3, 2])));
        assert_eq!(u.fault_free_channel_hops(), Some(6));
        // One differing dimension: four channels.
        let u = spec(Header::unicast(Coord::new(&[0, 0]), Coord::new(&[2, 0])));
        assert_eq!(u.fault_free_channel_hops(), Some(4));
        // Self-send: PE -> router -> PE.
        let u = spec(Header::unicast(Coord::ORIGIN, Coord::ORIGIN));
        assert_eq!(u.fault_free_channel_hops(), Some(2));
        // Broadcasts have no single fault-free path length.
        let b = spec(Header::broadcast_request(Coord::ORIGIN));
        assert_eq!(b.fault_free_channel_hops(), None);
    }

    #[test]
    fn route_interning_roundtrip() {
        let r = SimResult {
            outcome: SimOutcome::Completed,
            stats: SimStats {
                cycles: 0,
                flit_hops: 0,
                delivered: 1,
                dropped: 0,
                unfinished: 0,
                latency_sum: 0,
                latency_max: 0,
            },
            packets: vec![PacketResult {
                id: PacketId(0),
                injected_at: 0,
                finished_at: Some(9),
                deliveries: vec![(1, 9)],
                outcome: PacketOutcome::Delivered,
                route: vec![(0, 0), (1, 2), (0, 4)],
            }],
            route_names: vec!["PE0".to_string(), "R0".to_string()],
            diagnostics: Vec::new(),
            profile: None,
        };
        assert_eq!(
            r.route_of(PacketId(0)),
            vec![
                ("PE0".to_string(), 0),
                ("R0".to_string(), 2),
                ("PE0".to_string(), 4)
            ]
        );
    }
}
