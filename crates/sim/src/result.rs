//! Injection specifications, per-packet outcomes and run-level statistics.

use mdx_core::{DropReason, Header, RouteChange};
use serde::{Deserialize, Serialize};

/// Dense id of a packet within one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PacketId(pub u32);

impl PacketId {
    /// The id as a table index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PacketId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pkt{}", self.0)
    }
}

/// One packet to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectSpec {
    /// Source PE index.
    pub src_pe: usize,
    /// Initial header (RC=0 unicast, RC=1 broadcast request under the
    /// SR2201 scheme, RC=2 for the naive broadcast strawman).
    pub header: Header,
    /// Packet length in flits (>= 1; the header flit counts).
    pub flits: usize,
    /// Cycle at which the NIA presents the packet.
    pub inject_at: u64,
}

impl InjectSpec {
    /// Channels a fault-free dimension-order route would traverse for this
    /// packet, or `None` for broadcasts (whose cost is a tree, not a path).
    ///
    /// Dimension-order unicast on the multi-dimensional crossbar crosses
    /// `PE -> router` (1), then `router -> XB -> router` (2) per dimension
    /// in which source and destination differ, then `router -> PE` (1):
    /// `2 + 2 * hamming(src, dest)` channels in total. This is the
    /// yardstick the attribution layer measures RC=3 detour overhead
    /// against — a detoured packet's extra hops are
    /// `hops - fault_free_channel_hops`.
    pub fn fault_free_channel_hops(&self) -> Option<u64> {
        match self.header.rc {
            RouteChange::Normal => Some(2 + 2 * self.header.src.hamming(&self.header.dest) as u64),
            _ => None,
        }
    }
}

/// How a packet's life ended.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PacketOutcome {
    /// Fully delivered; for broadcasts, to every reachable PE.
    Delivered,
    /// Dropped by the routing scheme.
    Dropped(DropReason),
    /// Still in flight when the run ended (deadlock or cycle limit).
    Unfinished,
}

/// Per-packet accounting.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketResult {
    /// The packet.
    pub id: PacketId,
    /// Injection cycle (as scheduled).
    pub injected_at: u64,
    /// Cycle the last flit reached its last sink, if the packet finished.
    pub finished_at: Option<u64>,
    /// Every (PE index, cycle the tail arrived) delivery.
    pub deliveries: Vec<(usize, u64)>,
    /// Outcome classification.
    pub outcome: PacketOutcome,
    /// Per-switch route as (name-table id, header-arrival cycle) pairs —
    /// populated only when [`crate::SimConfig::record_routes`] is set (BFS
    /// order for broadcast trees). The ids index
    /// [`SimResult::route_names`]; resolve them with
    /// [`PacketResult::named_route`] or [`SimResult::route_of`].
    pub route: Vec<(u32, u64)>,
}

impl PacketResult {
    /// End-to-end latency in cycles (injection to final sink), if finished.
    pub fn latency(&self) -> Option<u64> {
        self.finished_at.map(|f| f - self.injected_at)
    }

    /// Resolves [`PacketResult::route`] against a run's name table
    /// ([`SimResult::route_names`]) — the pre-interning `(name, cycle)`
    /// shape, allocated on demand instead of per hop during the run.
    pub fn named_route(&self, names: &[String]) -> Vec<(String, u64)> {
        self.route
            .iter()
            .map(|&(n, t)| (names[n as usize].clone(), t))
            .collect()
    }
}

/// A non-fatal engine bookkeeping anomaly, recorded instead of panicking
/// so an abnormal run still reaches its post-mortem intact.
///
/// The engine's internal invariants are checked at a few arbitration
/// points; a violation is a simulator bug, but aborting mid-run would cut
/// the forensic trail short. Diagnostics carry enough context — the sim
/// tick, the packet, the contended channel — to reconstruct what the
/// engine was doing when the invariant broke.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineDiagnostic {
    /// Simulation cycle at which the anomaly was observed.
    pub at: u64,
    /// The packet involved.
    pub packet: PacketId,
    /// Human-readable description of the channel (port) involved.
    pub channel: String,
    /// What went wrong.
    pub note: String,
}

impl std::fmt::Display for EngineDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cycle {}: {} at {}: {}",
            self.at, self.packet, self.channel, self.note
        )
    }
}

/// One blocked-on relationship in a deadlock cycle.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WaitEdge {
    /// The blocked packet.
    pub waiter: PacketId,
    /// The packet holding the port.
    pub holder: PacketId,
    /// Human-readable channel description (e.g. `R3 -> Y1-XB`).
    pub channel: String,
}

/// A detected deadlock: the cyclic wait, in order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeadlockInfo {
    /// Cycle at which the watchdog fired.
    pub detected_at: u64,
    /// The cyclic chain of waits (waiter of edge *i* is the holder of edge
    /// *i-1*, wrapping around).
    pub cycle: Vec<WaitEdge>,
}

impl std::fmt::Display for DeadlockInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "deadlock detected at cycle {}:", self.detected_at)?;
        for e in &self.cycle {
            writeln!(
                f,
                "  {} waits for {} held by {}",
                e.waiter, e.channel, e.holder
            )?;
        }
        Ok(())
    }
}

/// How a run ended.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimOutcome {
    /// Every packet reached a terminal state (delivered or dropped).
    Completed,
    /// The watchdog found a cyclic wait.
    Deadlock(DeadlockInfo),
    /// The watchdog found no progress but also no ownership cycle (a
    /// scheme/livelock pathology — always a bug worth inspecting).
    Stalled,
    /// `max_cycles` elapsed with work remaining.
    CycleLimit,
}

impl SimOutcome {
    /// Whether the run ended with a detected deadlock.
    pub fn is_deadlock(&self) -> bool {
        matches!(self, SimOutcome::Deadlock(_))
    }
}

/// Aggregate statistics of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Total flit-hops (one flit crossing one channel).
    pub flit_hops: u64,
    /// Packets fully delivered.
    pub delivered: usize,
    /// Packets dropped by the scheme.
    pub dropped: usize,
    /// Packets unfinished at the end.
    pub unfinished: usize,
    /// Sum and count of end-to-end latencies (finished packets).
    pub latency_sum: u64,
    /// Maximum end-to-end latency among finished packets.
    pub latency_max: u64,
}

impl SimStats {
    /// Mean end-to-end packet latency in cycles.
    pub fn mean_latency(&self) -> f64 {
        if self.delivered == 0 {
            f64::NAN
        } else {
            self.latency_sum as f64 / self.delivered as f64
        }
    }

    /// Delivered flit-hops per cycle — the throughput proxy used in the
    /// load sweeps.
    pub fn flit_hops_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.flit_hops as f64 / self.cycles as f64
        }
    }
}

/// The full result of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Terminal condition.
    pub outcome: SimOutcome,
    /// Aggregates.
    pub stats: SimStats,
    /// Per-packet details, indexed by [`PacketId`].
    pub packets: Vec<PacketResult>,
    /// Interned switch names for [`PacketResult::route`] entries (empty
    /// unless [`crate::SimConfig::record_routes`] was set).
    pub route_names: Vec<String>,
    /// Engine bookkeeping anomalies recorded during the run (empty on a
    /// healthy run — any entry is a simulator bug worth a report).
    pub diagnostics: Vec<EngineDiagnostic>,
}

/// Latencies of a run's delivered packets, collected and sorted **once** —
/// query as many percentiles as needed without re-sorting (see
/// [`SimResult::sorted_latencies`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortedLatencies(Vec<u64>);

impl SortedLatencies {
    /// Builds the collection from an unsorted pool of latencies (sorted
    /// once here). Lets sweep-level reducers pool delivered latencies
    /// across many runs and take true pooled percentiles, instead of
    /// averaging tiny per-run percentiles (which collapses p95 into p50
    /// when individual runs deliver only a handful of packets).
    pub fn from_unsorted(mut latencies: Vec<u64>) -> SortedLatencies {
        latencies.sort_unstable();
        SortedLatencies(latencies)
    }

    /// The p-th percentile (p in 0..=100), `None` when nothing was
    /// delivered.
    pub fn percentile(&self, p: usize) -> Option<u64> {
        if self.0.is_empty() {
            return None;
        }
        let idx = (p.min(100) * (self.0.len() - 1)) / 100;
        Some(self.0[idx])
    }

    /// The sorted latencies, ascending.
    pub fn as_slice(&self) -> &[u64] {
        &self.0
    }
}

impl SimResult {
    /// Latencies of all delivered packets, sorted ascending. Collect once
    /// and reuse via [`SortedLatencies::percentile`] — the p50/p95/p99
    /// triple of a campaign row costs one sort, not three.
    pub fn sorted_latencies(&self) -> SortedLatencies {
        let mut v: Vec<u64> = self
            .packets
            .iter()
            .filter(|p| p.outcome == PacketOutcome::Delivered)
            .filter_map(|p| p.latency())
            .collect();
        v.sort_unstable();
        SortedLatencies(v)
    }

    /// The p-th latency percentile (p in 0..=100) of delivered packets.
    /// One-shot convenience; for several percentiles of the same run use
    /// [`SimResult::sorted_latencies`] once instead.
    pub fn latency_percentile(&self, p: usize) -> Option<u64> {
        self.sorted_latencies().percentile(p)
    }

    /// The resolved `(switch name, header-arrival cycle)` route of packet
    /// `id` — the compatibility accessor for the pre-interning
    /// [`PacketResult::route`] shape.
    pub fn route_of(&self, id: PacketId) -> Vec<(String, u64)> {
        self.packets[id.idx()].named_route(&self.route_names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdx_topology::Coord;

    #[test]
    fn latency_accessors() {
        let r = PacketResult {
            id: PacketId(0),
            injected_at: 10,
            finished_at: Some(25),
            deliveries: vec![(3, 25)],
            outcome: PacketOutcome::Delivered,
            route: Vec::new(),
        };
        assert_eq!(r.latency(), Some(15));
    }

    #[test]
    fn stats_aggregates() {
        let s = SimStats {
            cycles: 100,
            flit_hops: 500,
            delivered: 2,
            dropped: 0,
            unfinished: 0,
            latency_sum: 30,
            latency_max: 20,
        };
        assert_eq!(s.mean_latency(), 15.0);
        assert_eq!(s.flit_hops_per_cycle(), 5.0);
    }

    #[test]
    fn deadlock_display_lists_cycle() {
        let d = DeadlockInfo {
            detected_at: 42,
            cycle: vec![WaitEdge {
                waiter: PacketId(0),
                holder: PacketId(1),
                channel: "R3 -> Y1-XB".into(),
            }],
        };
        let s = d.to_string();
        assert!(s.contains("cycle 42"));
        assert!(s.contains("pkt0 waits for R3 -> Y1-XB held by pkt1"));
    }

    #[test]
    fn percentiles() {
        let mk = |id: u32, lat: u64| PacketResult {
            id: PacketId(id),
            injected_at: 0,
            finished_at: Some(lat),
            deliveries: vec![],
            outcome: PacketOutcome::Delivered,
            route: Vec::new(),
        };
        let r = SimResult {
            outcome: SimOutcome::Completed,
            stats: SimStats {
                cycles: 0,
                flit_hops: 0,
                delivered: 3,
                dropped: 0,
                unfinished: 0,
                latency_sum: 0,
                latency_max: 0,
            },
            packets: vec![mk(0, 30), mk(1, 10), mk(2, 20)],
            route_names: Vec::new(),
            diagnostics: Vec::new(),
        };
        assert_eq!(r.latency_percentile(0), Some(10));
        assert_eq!(r.latency_percentile(50), Some(20));
        assert_eq!(r.latency_percentile(100), Some(30));
        // One collection serves every percentile.
        let lats = r.sorted_latencies();
        assert_eq!(lats.as_slice(), &[10, 20, 30]);
        assert_eq!(lats.percentile(0), Some(10));
        assert_eq!(lats.percentile(95), Some(20));
        assert_eq!(lats.percentile(100), Some(30));
        let _ = Header::unicast(Coord::ORIGIN, Coord::ORIGIN); // keep import honest
    }

    #[test]
    fn from_unsorted_pools_and_sorts() {
        let lats = SortedLatencies::from_unsorted(vec![30, 10, 20, 10]);
        assert_eq!(lats.as_slice(), &[10, 10, 20, 30]);
        assert_eq!(lats.percentile(0), Some(10));
        assert_eq!(lats.percentile(100), Some(30));
        assert!(SortedLatencies::from_unsorted(Vec::new())
            .percentile(50)
            .is_none());
    }

    #[test]
    fn fault_free_channel_hops_counts_dimension_order_path() {
        let spec = |header| InjectSpec {
            src_pe: 0,
            header,
            flits: 4,
            inject_at: 0,
        };
        // Fig. 2's PE0 -> PE11: two differing dimensions, six channels
        // (PE0 -> R0 -> X0-XB -> R3 -> Y3-XB -> R11 -> PE11).
        let u = spec(Header::unicast(Coord::new(&[0, 0]), Coord::new(&[3, 2])));
        assert_eq!(u.fault_free_channel_hops(), Some(6));
        // One differing dimension: four channels.
        let u = spec(Header::unicast(Coord::new(&[0, 0]), Coord::new(&[2, 0])));
        assert_eq!(u.fault_free_channel_hops(), Some(4));
        // Self-send: PE -> router -> PE.
        let u = spec(Header::unicast(Coord::ORIGIN, Coord::ORIGIN));
        assert_eq!(u.fault_free_channel_hops(), Some(2));
        // Broadcasts have no single fault-free path length.
        let b = spec(Header::broadcast_request(Coord::ORIGIN));
        assert_eq!(b.fault_free_channel_hops(), None);
    }

    #[test]
    fn route_interning_roundtrip() {
        let r = SimResult {
            outcome: SimOutcome::Completed,
            stats: SimStats {
                cycles: 0,
                flit_hops: 0,
                delivered: 1,
                dropped: 0,
                unfinished: 0,
                latency_sum: 0,
                latency_max: 0,
            },
            packets: vec![PacketResult {
                id: PacketId(0),
                injected_at: 0,
                finished_at: Some(9),
                deliveries: vec![(1, 9)],
                outcome: PacketOutcome::Delivered,
                route: vec![(0, 0), (1, 2), (0, 4)],
            }],
            route_names: vec!["PE0".to_string(), "R0".to_string()],
            diagnostics: Vec::new(),
        };
        assert_eq!(
            r.route_of(PacketId(0)),
            vec![
                ("PE0".to_string(), 0),
                ("R0".to_string(), 2),
                ("PE0".to_string(), 4)
            ]
        );
    }
}
