//! Lightweight event hooks into the engine.
//!
//! A [`SimObserver`] lets instrumentation (campaign runners, trace
//! collectors, live dashboards) watch a run without the engine allocating
//! anything on their behalf: every method defaults to a no-op and the
//! engine calls them only at the four packet-lifecycle transitions.

use crate::result::{DeadlockInfo, InjectSpec, PacketId};

/// Callbacks fired by [`crate::Simulator`] as packets move through their
/// lifecycle. All methods have empty defaults; implement only what you
/// need. Attach with [`crate::Simulator::set_observer`].
pub trait SimObserver {
    /// A packet entered the network (its header left the source NIA).
    fn on_inject(&mut self, _id: PacketId, _spec: &InjectSpec, _now: u64) {}

    /// A packet's tail reached the destination PE `pe` (fires once per
    /// leaf for broadcasts).
    fn on_delivery(&mut self, _id: PacketId, _pe: usize, _now: u64) {}

    /// A packet reached a terminal state: every visit closed and all
    /// resources released.
    fn on_packet_finished(&mut self, _id: PacketId, _now: u64) {}

    /// The watchdog extracted a cyclic wait; the run is about to end as
    /// [`crate::SimOutcome::Deadlock`].
    fn on_deadlock(&mut self, _info: &DeadlockInfo) {}
}

/// An observer that counts lifecycle events — handy as a smoke-test of the
/// hook wiring and as a cheap progress probe.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct EventCounts {
    /// Packets injected.
    pub injected: usize,
    /// Deliveries (per-leaf for broadcasts).
    pub deliveries: usize,
    /// Packets that reached a terminal state.
    pub finished: usize,
    /// Deadlock reports (0 or 1 per run).
    pub deadlocks: usize,
}

impl SimObserver for EventCounts {
    fn on_inject(&mut self, _id: PacketId, _spec: &InjectSpec, _now: u64) {
        self.injected += 1;
    }

    fn on_delivery(&mut self, _id: PacketId, _pe: usize, _now: u64) {
        self.deliveries += 1;
    }

    fn on_packet_finished(&mut self, _id: PacketId, _now: u64) {
        self.finished += 1;
    }

    fn on_deadlock(&mut self, _info: &DeadlockInfo) {
        self.deadlocks += 1;
    }
}
