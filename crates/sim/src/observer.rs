//! Lightweight event hooks into the engine.
//!
//! A [`SimObserver`] lets instrumentation (campaign runners, trace
//! collectors, live dashboards) watch a run without the engine allocating
//! anything on their behalf: every method defaults to a no-op, every call
//! site in the engine is guarded by a single branch on `Option::is_some`,
//! and nothing below the packet-lifecycle/hop granularity is materialized
//! unless an observer is attached.
//!
//! ## Hook firing order
//!
//! Within one simulated cycle the engine fires hooks in this fixed order
//! (each bullet only when its event happens that cycle):
//!
//! 1. [`SimObserver::on_inject`] — a scheduled packet's injection cycle
//!    arrived; immediately followed by that packet's first
//!    [`SimObserver::on_hop`] at its source PE.
//! 2. [`SimObserver::on_hop`] — a header reached the front of a channel
//!    buffer and the downstream switch made its routing decision; fired
//!    *before* any of that hop's port requests are arbitrated. When the
//!    decision rewrites the RC field, [`SimObserver::on_rc_change`] fires
//!    directly after the hop.
//! 3. [`SimObserver::on_emission`] — the S-XB dequeued a gathered
//!    broadcast request and began emitting it (one at a time, Fig. 6);
//!    followed by its `on_hop`/`on_rc_change` at the S-XB.
//! 4. [`SimObserver::on_blocked`] / [`SimObserver::on_unblocked`] — port
//!    arbitration ran: a request that could not be granted this cycle
//!    transitions to *blocked* (fired once per blocked episode, not per
//!    cycle); a granted request that had been blocked fires `on_unblocked`
//!    with the episode length.
//! 5. [`SimObserver::on_flit`] — one flit crossed one channel (at most one
//!    per lane per physical link per cycle).
//! 6. [`SimObserver::on_delivery`] — a packet's tail drained into a
//!    destination PE. [`SimObserver::on_gather`] fires here instead when
//!    the sink is the S-XB gather queue.
//! 7. [`SimObserver::on_packet_finished`] — the packet's last open element
//!    closed (all visits complete and all buffers drained).
//! 8. [`SimObserver::on_probe`] — end of cycle, only on multiples of
//!    [`SimObserver::probe_interval`]: a snapshot of every ungranted port
//!    want, for wait-chain analysis.
//!
//! Two hooks fire once, outside the cycle loop, when a run ends abnormally
//! (deadlock, stall, or the cycle limit): first
//! [`SimObserver::on_final_waits`] with the terminal wait snapshot — the
//! drain point for post-mortem instruments such as a flight recorder —
//! then, for deadlocks only, [`SimObserver::on_deadlock`] with the
//! extracted cyclic wait; `on_deadlock` is the last hook of such a run.
//!
//! ## Blocked/unblocked pairing contract
//!
//! Instruments that *integrate* blocked time (latency attribution, blame
//! profiles) rely on a stricter shape than "blocked happened":
//!
//! 1. **One open episode per key.** For a given `(packet, channel, vc)`
//!    key, [`SimObserver::on_blocked`] opens at most one episode at a
//!    time: it fires once when the port request loses arbitration, *not*
//!    once per blocked cycle. A broadcast packet may hold several episodes
//!    open simultaneously — one per branch — but always on distinct
//!    `(channel, vc)` keys.
//! 2. **Matched close, exact span.** Every episode that ends in a grant
//!    fires exactly one [`SimObserver::on_unblocked`] with the *same*
//!    `(packet, channel, vc)` key, at the grant cycle `now`, with
//!    `waited == now - blocked_now`. The blocked interval is therefore
//!    `[now - waited, now)`, half-open, and never overlaps the next
//!    episode on the same key.
//! 3. **Holder is pre-arbitration.** The `holder` passed to `on_blocked`
//!    is the packet owning the port *when the episode opened*; it may
//!    release the port (and a different packet may take it) before the
//!    waiter's grant. Classifiers should sample holder state at open time
//!    and treat it as the cause of the episode.
//! 4. **Abnormal ends leave episodes open.** Deadlocked, stalled, or
//!    cycle-limited runs end with episodes that never see `on_unblocked`
//!    (they surface in [`SimObserver::on_final_waits`] instead). A packet
//!    that reaches [`SimObserver::on_packet_finished`] has no open
//!    episodes: all of its grants happened before it finished.
//! 5. **Re-injection resets the key space.** When live reconfiguration
//!    reschedules a victim (`reinject`/`reroute` recovery), the packet's
//!    second [`SimObserver::on_inject`] starts a fresh lifecycle; episodes
//!    from its aborted first flight were already closed (or the packet was
//!    reset while *holding*, never waiting) and must not be carried over.
//!
//! The contract is checkable per run — this observer asserts it on a live
//! simulation:
//!
//! ```
//! use std::collections::HashMap;
//! use std::sync::Arc;
//! use mdx_core::{Header, NaiveBroadcast};
//! use mdx_sim::{InjectSpec, PacketId, SimConfig, SimObserver, Simulator};
//! use mdx_topology::{ChannelId, MdCrossbar, Shape};
//!
//! #[derive(Default)]
//! struct PairingCheck {
//!     open: HashMap<(PacketId, ChannelId, u8), u64>,
//!     episodes: usize,
//! }
//!
//! impl SimObserver for PairingCheck {
//!     fn on_blocked(
//!         &mut self,
//!         id: PacketId,
//!         channel: ChannelId,
//!         vc: u8,
//!         _holder: Option<PacketId>,
//!         now: u64,
//!     ) {
//!         // (1) at most one open episode per (packet, channel, vc) key.
//!         assert!(self.open.insert((id, channel, vc), now).is_none());
//!     }
//!     fn on_unblocked(&mut self, id: PacketId, channel: ChannelId, vc: u8, waited: u64, now: u64) {
//!         // (2) every grant closes a matching open episode, exactly.
//!         let since = self.open.remove(&(id, channel, vc)).expect("episode was open");
//!         assert_eq!(waited, now - since);
//!         self.episodes += 1;
//!     }
//! }
//!
//! // Two simultaneous broadcasts contend hard enough to block.
//! let net = Arc::new(MdCrossbar::build(Shape::fig2()));
//! let shape = net.shape().clone();
//! let scheme = Arc::new(NaiveBroadcast::new(net.clone()));
//! let mut sim = Simulator::new(net.graph().clone(), scheme, SimConfig::default());
//! sim.set_observer(Box::new(PairingCheck::default()));
//! for src in [0usize, 7] {
//!     sim.schedule(InjectSpec {
//!         src_pe: src,
//!         header: Header::broadcast_request(shape.coord_of(src)),
//!         flits: 8,
//!         inject_at: 0,
//!     });
//! }
//! let result = sim.run();
//! // (4) a completed run leaves nothing open — asserted inside the hooks
//! // above for every episode along the way.
//! assert!(matches!(result.outcome, mdx_sim::SimOutcome::Completed));
//! ```

use crate::result::{DeadlockInfo, InjectSpec, PacketId};
use mdx_core::RouteChange;
use mdx_topology::{ChannelId, Node};

/// One ungranted port want, as seen by a periodic [`SimObserver::on_probe`]
/// snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitSnapshot {
    /// The blocked packet.
    pub waiter: PacketId,
    /// The packet currently owning the wanted port (`None` when the port is
    /// free but the grant has not happened yet this cycle).
    pub holder: Option<PacketId>,
    /// The wanted channel.
    pub channel: ChannelId,
    /// The wanted virtual-channel lane.
    pub vc: u8,
    /// Cycle at which this want became blocked.
    pub since: u64,
    /// Reconfiguration epoch of the routing decision that created this
    /// want (0 until the first reprogram). A wait whose `epoch` differs
    /// from its holder's was decided under a *different* routing function
    /// — the raw material of transition-deadlock analysis.
    pub epoch: u32,
    /// Epoch of the routing decision that put the holder on the port.
    pub holder_epoch: Option<u32>,
}

/// Phases of one reconfiguration epoch, in protocol order. Mirrors the
/// SR2201 service processor's role: notice the fault, stop accepting new
/// traffic, let in-flight traffic drain or evacuate, rewrite the fault
/// registers and detour configuration, reopen the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EpochPhase {
    /// The controller noticed the fault event (after its detect latency).
    Detected,
    /// Injection closed; no new packets enter.
    Quiesced,
    /// In-flight traffic drained or was evacuated.
    Drained,
    /// Fault registers re-derived, the routing function replaced.
    Reprogrammed,
    /// Injection reopened; victims re-enter per the recovery policy.
    Resumed,
}

impl std::fmt::Display for EpochPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EpochPhase::Detected => "detected",
            EpochPhase::Quiesced => "quiesced",
            EpochPhase::Drained => "drained",
            EpochPhase::Reprogrammed => "reprogrammed",
            EpochPhase::Resumed => "resumed",
        };
        write!(f, "{s}")
    }
}

/// Callbacks fired by [`crate::Simulator`] as packets move through their
/// lifecycle and across individual channels. All methods have empty
/// defaults; implement only what you need. Attach with
/// [`crate::Simulator::set_observer`]. See the [module docs](self) for the
/// exact per-cycle firing order.
pub trait SimObserver {
    /// A packet entered the network (its header left the source NIA).
    fn on_inject(&mut self, _id: PacketId, _spec: &InjectSpec, _now: u64) {}

    /// A packet's header arrived at switch `at` and the routing decision
    /// for this hop was made. `in_channel` is the channel it arrived on
    /// (`None` for injection at the source PE and for S-XB emission, which
    /// read from local memory).
    fn on_hop(&mut self, _id: PacketId, _at: Node, _in_channel: Option<ChannelId>, _now: u64) {}

    /// The routing decision at `at` rewrote the header's RC field — a
    /// broadcast request entering the S-XB pipeline, the S-XB emission
    /// (RC=1 → RC=2), a detour initiation (RC=0 → RC=3), or the detour
    /// completion at the D-XB (RC=3 → RC=0).
    fn on_rc_change(
        &mut self,
        _id: PacketId,
        _at: Node,
        _from: RouteChange,
        _to: RouteChange,
        _now: u64,
    ) {
    }

    /// A packet's port request lost arbitration and transitioned to
    /// *blocked* (fired once per blocked episode). `holder` is the packet
    /// owning the port, if any.
    fn on_blocked(
        &mut self,
        _id: PacketId,
        _channel: ChannelId,
        _vc: u8,
        _holder: Option<PacketId>,
        _now: u64,
    ) {
    }

    /// A previously blocked port request was granted after `waited` cycles.
    fn on_unblocked(
        &mut self,
        _id: PacketId,
        _channel: ChannelId,
        _vc: u8,
        _waited: u64,
        _now: u64,
    ) {
    }

    /// One flit crossed `channel` on lane `vc`. `occupancy` is the number
    /// of flits in the channel's downstream buffer *after* this crossing.
    fn on_flit(&mut self, _channel: ChannelId, _vc: u8, _occupancy: usize, _now: u64) {}

    /// A gathered broadcast request joined the S-XB serialization queue;
    /// `depth` is the queue length after the enqueue.
    fn on_gather(&mut self, _id: PacketId, _depth: usize, _now: u64) {}

    /// The S-XB dequeued a gathered request and began its emission fan;
    /// `depth` is the queue length after the dequeue.
    fn on_emission(&mut self, _id: PacketId, _depth: usize, _now: u64) {}

    /// A packet's tail reached the destination PE `pe` (fires once per
    /// leaf for broadcasts).
    fn on_delivery(&mut self, _id: PacketId, _pe: usize, _now: u64) {}

    /// A packet reached a terminal state: every visit closed and all
    /// resources released.
    fn on_packet_finished(&mut self, _id: PacketId, _now: u64) {}

    /// Cycle period at which the engine should take [`WaitSnapshot`]s and
    /// call [`SimObserver::on_probe`]. `None` (the default) disables
    /// probing entirely — the engine then never materializes snapshots.
    fn probe_interval(&self) -> Option<u64> {
        None
    }

    /// A periodic snapshot of every ungranted port want (see
    /// [`SimObserver::probe_interval`]). `waits` is unordered.
    fn on_probe(&mut self, _now: u64, _waits: &[WaitSnapshot]) {}

    /// The run is about to end abnormally (deadlock, stall, or cycle
    /// limit): `waits` is the terminal snapshot of every ungranted port
    /// want, in the engine's stable visit order — the same edges the
    /// watchdog's deadlock analysis walks. Fired once, after the cycle
    /// loop and before [`SimObserver::on_deadlock`]; never fired for
    /// completed runs. This is the drain point for post-mortem
    /// instruments.
    fn on_final_waits(&mut self, _now: u64, _waits: &[WaitSnapshot]) {}

    /// The watchdog extracted a cyclic wait; the run is about to end as
    /// [`crate::SimOutcome::Deadlock`].
    fn on_deadlock(&mut self, _info: &DeadlockInfo) {}

    /// A fault event took effect mid-run: components died (or were
    /// repaired) and `victims` are the in-flight packets wounded by the
    /// change. Fired by [`crate::Simulator::activate_faults`] at the event
    /// cycle, before the reconfiguration controller reacts.
    fn on_fault_activated(&mut self, _now: u64, _victims: &[PacketId]) {}

    /// The reconfiguration controller crossed an epoch-phase boundary
    /// (detect → quiesce → drain → reprogram → resume). `epoch` counts
    /// reprogramming events from 0 (the pre-fault routing function).
    fn on_epoch_phase(&mut self, _epoch: u32, _phase: EpochPhase, _now: u64) {}
}

/// An observer that counts lifecycle events — handy as a smoke-test of the
/// hook wiring and as a cheap progress probe.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct EventCounts {
    /// Packets injected.
    pub injected: usize,
    /// Header arrivals at switches (including injection and emission).
    pub hops: usize,
    /// RC-field rewrites observed.
    pub rc_changes: usize,
    /// Blocked episodes started.
    pub blocked: usize,
    /// Blocked episodes ended in a grant.
    pub unblocked: usize,
    /// Flit channel crossings.
    pub flits: u64,
    /// Requests gathered into the S-XB queue.
    pub gathered: usize,
    /// S-XB emissions started.
    pub emissions: usize,
    /// Deliveries (per-leaf for broadcasts).
    pub deliveries: usize,
    /// Packets that reached a terminal state.
    pub finished: usize,
    /// Deadlock reports (0 or 1 per run).
    pub deadlocks: usize,
    /// Mid-run fault activations.
    pub fault_activations: usize,
    /// In-flight packets victimized by fault activations.
    pub fault_victims: usize,
    /// Epoch-phase transitions observed.
    pub epoch_phases: usize,
}

impl SimObserver for EventCounts {
    fn on_inject(&mut self, _id: PacketId, _spec: &InjectSpec, _now: u64) {
        self.injected += 1;
    }

    fn on_hop(&mut self, _id: PacketId, _at: Node, _in_channel: Option<ChannelId>, _now: u64) {
        self.hops += 1;
    }

    fn on_rc_change(
        &mut self,
        _id: PacketId,
        _at: Node,
        _from: RouteChange,
        _to: RouteChange,
        _now: u64,
    ) {
        self.rc_changes += 1;
    }

    fn on_blocked(
        &mut self,
        _id: PacketId,
        _channel: ChannelId,
        _vc: u8,
        _holder: Option<PacketId>,
        _now: u64,
    ) {
        self.blocked += 1;
    }

    fn on_unblocked(
        &mut self,
        _id: PacketId,
        _channel: ChannelId,
        _vc: u8,
        _waited: u64,
        _now: u64,
    ) {
        self.unblocked += 1;
    }

    fn on_flit(&mut self, _channel: ChannelId, _vc: u8, _occupancy: usize, _now: u64) {
        self.flits += 1;
    }

    fn on_gather(&mut self, _id: PacketId, _depth: usize, _now: u64) {
        self.gathered += 1;
    }

    fn on_emission(&mut self, _id: PacketId, _depth: usize, _now: u64) {
        self.emissions += 1;
    }

    fn on_delivery(&mut self, _id: PacketId, _pe: usize, _now: u64) {
        self.deliveries += 1;
    }

    fn on_packet_finished(&mut self, _id: PacketId, _now: u64) {
        self.finished += 1;
    }

    fn on_deadlock(&mut self, _info: &DeadlockInfo) {
        self.deadlocks += 1;
    }

    fn on_fault_activated(&mut self, _now: u64, victims: &[PacketId]) {
        self.fault_activations += 1;
        self.fault_victims += victims.len();
    }

    fn on_epoch_phase(&mut self, _epoch: u32, _phase: EpochPhase, _now: u64) {
        self.epoch_phases += 1;
    }
}
