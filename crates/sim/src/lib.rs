//! # mdx-sim
//!
//! A deterministic, cycle-level flit simulator for cut-through routing on
//! the SR2201 multi-dimensional crossbar (and on any other topology that
//! speaks the `mdx-core` [`Scheme`](mdx_core::Scheme) interface).
//!
//! ## Model
//!
//! * Time advances in cycles; a flit crosses at most one channel per cycle.
//! * Every directed channel doubles as the *output port* of its source
//!   switch. A packet's header requests its output ports; ports are granted
//!   one packet at a time (FIFO arbitration) and held until the packet's
//!   tail flit has crossed **and** the downstream buffer has drained — the
//!   cut-through channel holding that all three deadlock scenarios of the
//!   paper rest on.
//! * Each channel's downstream input buffer holds `buffer_flits` flits.
//!   Small values give wormhole behavior (a blocked packet strings across
//!   switches, holding every acquired port); values at least the packet
//!   length give virtual cut-through (blocked packets are absorbed).
//! * A multi-branch forward (broadcast fan-out) acquires its output ports
//!   *incrementally* as they free, but streams flits only when **all** are
//!   held — the acquisition pattern that produces the Fig. 5 broadcast
//!   deadlock.
//! * The scheme's serializing crossbar (the S-XB) *gathers* broadcast
//!   requests into a FIFO and re-emits them strictly one at a time (Fig. 6).
//! * A progress watchdog detects global stalls and extracts the cyclic wait
//!   from the packet wait-for graph, so experiments can *observe* the
//!   deadlocks of Figs. 5 and 9 and certify their absence under the paper's
//!   scheme (Fig. 10).
//!
//! Everything is deterministic: identical (schedule, config) inputs produce
//! identical traces; arbitration is FIFO with seeded same-cycle
//! tie-breaking and no other randomness lives inside the engine.
//!
//! ```
//! use mdx_core::{Header, Sr2201Routing};
//! use mdx_fault::FaultSet;
//! use mdx_sim::{InjectSpec, SimConfig, SimOutcome, Simulator};
//! use mdx_topology::{MdCrossbar, Shape};
//! use std::sync::Arc;
//!
//! let net = Arc::new(MdCrossbar::build(Shape::fig2()));
//! let shape = net.shape().clone();
//! let scheme = Arc::new(Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap());
//! let mut sim = Simulator::new(net.graph().clone(), scheme, SimConfig::default());
//! sim.schedule(InjectSpec {
//!     src_pe: 0,
//!     header: Header::unicast(shape.coord_of(0), shape.coord_of(11)),
//!     flits: 8,
//!     inject_at: 0,
//! });
//! let result = sim.run();
//! assert_eq!(result.outcome, SimOutcome::Completed);
//! assert_eq!(result.packets[0].deliveries[0].0, 11);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod observer;
pub mod result;
pub mod source;

pub use engine::{PhaseEnd, SimConfig, Simulator, VictimMode};
pub use observer::{EpochPhase, EventCounts, SimObserver, WaitSnapshot};
pub use result::{
    DeadlockInfo, EngineDiagnostic, EngineProfile, InjectSpec, PacketId, PacketOutcome,
    PacketResult, PhaseSplit, SimOutcome, SimResult, SimStats, SortedLatencies, WaitEdge,
    OCCUPANCY_BOUNDS, OCCUPANCY_BUCKETS,
};
pub use source::{ScheduleSource, TrafficSource};
