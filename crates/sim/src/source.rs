//! Incremental traffic sources: the open-loop injection seam.
//!
//! A batch run hands the engine its whole schedule up front
//! ([`crate::Simulator::schedule`] + [`crate::Simulator::run`]). A
//! *streaming* run instead attaches a [`TrafficSource`] — the engine pulls
//! packets from it cycle by cycle as their injection instants arrive, so an
//! unbounded offered-load curve never has to be materialized as one giant
//! packet list. Sources are plain deterministic iterators over
//! [`InjectSpec`]s in nondecreasing `inject_at` order; all engine
//! guarantees (FIFO arbitration, seeded tie-breaks, bit-identical replay)
//! hold unchanged, because a pulled packet enters the very same scheduling
//! path an up-front packet does.
//!
//! [`ScheduleSource`] adapts the existing fixed packet lists to the trait,
//! and is bit-for-bit equivalent to scheduling the same (time-sorted) list
//! up front — pinned by a test in this module.

use crate::result::InjectSpec;

/// A pull-based packet generator the engine consumes incrementally (attach
/// with [`crate::Simulator::set_traffic_source`]).
///
/// ## Contract
///
/// * [`TrafficSource::pull`] returns every remaining packet whose
///   `inject_at` is `<= now`, in nondecreasing `inject_at` order; packets
///   already handed out are never handed out again.
/// * After `pull(now)`, [`TrafficSource::next_arrival`] is either `None`
///   (exhausted — it must stay `None` forever) or `Some(t)` with
///   `t > now`, and the next `pull(t)` yields at least one packet.
/// * Everything is deterministic: a source rebuilt from the same
///   parameters replays the same packets at the same cycles.
pub trait TrafficSource {
    /// Removes and returns every packet due at or before `now`.
    fn pull(&mut self, now: u64) -> Vec<InjectSpec>;

    /// The exact cycle of the next pending packet, or `None` when the
    /// source is exhausted.
    fn next_arrival(&mut self) -> Option<u64>;

    /// Packets handed out so far (offered-load accounting).
    fn offered(&self) -> usize;
}

/// A fixed packet list as a [`TrafficSource`] — the batch schedule becomes
/// one impl of the streaming interface. The list is sorted by
/// `(inject_at, original position)`, exactly the order
/// [`crate::Simulator::prepare`] sorts an up-front schedule into.
#[derive(Debug, Clone)]
pub struct ScheduleSource {
    specs: Vec<InjectSpec>,
    cursor: usize,
}

impl ScheduleSource {
    /// Wraps a packet list (any order; sorted internally).
    pub fn new(mut specs: Vec<InjectSpec>) -> ScheduleSource {
        specs.sort_by_key(|s| s.inject_at);
        ScheduleSource { specs, cursor: 0 }
    }

    /// Packets not yet pulled.
    pub fn remaining(&self) -> usize {
        self.specs.len() - self.cursor
    }
}

impl TrafficSource for ScheduleSource {
    fn pull(&mut self, now: u64) -> Vec<InjectSpec> {
        let start = self.cursor;
        while self.cursor < self.specs.len() && self.specs[self.cursor].inject_at <= now {
            self.cursor += 1;
        }
        self.specs[start..self.cursor].to_vec()
    }

    fn next_arrival(&mut self) -> Option<u64> {
        self.specs.get(self.cursor).map(|s| s.inject_at)
    }

    fn offered(&self) -> usize {
        self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(src: usize, at: u64) -> InjectSpec {
        use mdx_core::Header;
        use mdx_topology::Coord;
        InjectSpec {
            src_pe: src,
            header: Header::unicast(Coord::ORIGIN, Coord::ORIGIN.with(0, 1)),
            flits: 4,
            inject_at: at,
        }
    }

    #[test]
    fn schedule_source_pulls_in_time_order() {
        let mut s = ScheduleSource::new(vec![spec(0, 5), spec(1, 0), spec(2, 5), spec(3, 9)]);
        assert_eq!(s.next_arrival(), Some(0));
        let batch = s.pull(0);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].src_pe, 1);
        assert_eq!(s.next_arrival(), Some(5));
        // Nothing due between arrivals.
        assert!(s.pull(4).is_empty());
        // Same-cycle packets keep their original relative order.
        let batch = s.pull(5);
        assert_eq!(batch.iter().map(|p| p.src_pe).collect::<Vec<_>>(), [0, 2]);
        assert_eq!(s.offered(), 3);
        let batch = s.pull(100);
        assert_eq!(batch.len(), 1);
        assert_eq!(s.next_arrival(), None);
        assert_eq!(s.remaining(), 0);
    }
}
