//! # mdx-nia
//!
//! The network interface adapter (NIA) model. Paper Sec. 2: *"The NIA is
//! connected to the network and it generates packets according to the
//! instructions issued by the microprocessor and controls all data
//! transmission between the network and the local memory. Thus, the network
//! and the microprocessors operate independently."*
//!
//! This crate models the NIA's job above the flit level:
//!
//! * [`Message`] — what the microprocessor asks to send (a byte count to a
//!   destination);
//! * [`segment`] — carving messages into maximum-size packets and producing
//!   the injection schedule (packets of one message are presented
//!   back-to-back; the NIA sends one packet at a time per PE);
//! * [`reassemble`] — matching the simulator's per-packet deliveries back
//!   to messages, with completion times and in-order verification.
//!
//! Deterministic wormhole routing delivers the packets of one (source,
//! destination) pair in injection order — same path, FIFO channels — which
//! is what lets the real NIA reassemble without sequence numbers. The
//! property tests pin that invariant against the simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mdx_core::packet::FLIT_BYTES;
use mdx_core::Header;
use mdx_sim::{InjectSpec, PacketOutcome, SimResult};
use mdx_topology::Shape;
use serde::{Deserialize, Serialize};

/// One send request from the microprocessor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Source PE.
    pub src: usize,
    /// Destination PE.
    pub dst: usize,
    /// Payload size in bytes.
    pub bytes: usize,
    /// Cycle the request is issued.
    pub at: u64,
}

/// NIA parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NiaConfig {
    /// Maximum packet length in flits, header flit included. The SR2201
    /// used fixed-size transfers on its remote-DMA path; 16 is this model's
    /// default.
    pub max_packet_flits: usize,
}

impl Default for NiaConfig {
    fn default() -> Self {
        NiaConfig {
            max_packet_flits: 16,
        }
    }
}

/// Which message each scheduled packet belongs to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMap {
    /// `packet_message[i]` = index (into the message list) of the i-th
    /// scheduled packet.
    pub packet_message: Vec<usize>,
    /// Packets per message.
    pub packets_of: Vec<Vec<usize>>,
}

/// Segments `messages` into packets and builds the injection schedule.
///
/// Packets of one message are presented at consecutive cycles; the NIA's
/// single injection port serializes them on the wire anyway (the PE→router
/// channel), so presentation order equals wire order.
///
/// # Panics
/// Panics if `max_packet_flits < 2` (a packet must fit the header flit plus
/// at least one payload flit to make progress).
pub fn segment(
    shape: &Shape,
    messages: &[Message],
    cfg: NiaConfig,
) -> (Vec<InjectSpec>, SegmentMap) {
    assert!(cfg.max_packet_flits >= 2, "packets need header + payload");
    let payload_per_packet = (cfg.max_packet_flits - 1) * FLIT_BYTES;
    let mut specs = Vec::new();
    let mut packet_message = Vec::new();
    let mut packets_of = vec![Vec::new(); messages.len()];
    for (mi, m) in messages.iter().enumerate() {
        let header = Header::unicast(shape.coord_of(m.src), shape.coord_of(m.dst));
        let mut remaining = m.bytes.max(1);
        let mut offset = 0u64;
        while remaining > 0 {
            let chunk = remaining.min(payload_per_packet);
            remaining -= chunk;
            let flits = 1 + chunk.div_ceil(FLIT_BYTES);
            packets_of[mi].push(specs.len());
            packet_message.push(mi);
            specs.push(InjectSpec {
                src_pe: m.src,
                header,
                flits,
                inject_at: m.at + offset,
            });
            offset += 1;
        }
    }
    (
        specs,
        SegmentMap {
            packet_message,
            packets_of,
        },
    )
}

/// Per-message outcome after a simulation run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageResult {
    /// Index into the original message list.
    pub message: usize,
    /// Number of packets the message was carved into.
    pub packets: usize,
    /// Cycle the first packet arrived, if any arrived.
    pub first_arrival: Option<u64>,
    /// Cycle the last packet arrived — the message completion time.
    pub completed_at: Option<u64>,
    /// Whether every packet was delivered *in injection order* (the NIA's
    /// reassembly precondition).
    pub complete_in_order: bool,
}

/// Matches a run's packet deliveries back to messages.
///
/// # Panics
/// Panics if `result` does not correspond to the schedule that produced
/// `map` (packet count mismatch).
pub fn reassemble(result: &SimResult, map: &SegmentMap) -> Vec<MessageResult> {
    assert_eq!(
        result.packets.len(),
        map.packet_message.len(),
        "result does not match the segment map"
    );
    map.packets_of
        .iter()
        .enumerate()
        .map(|(mi, packet_ids)| {
            let mut arrivals = Vec::with_capacity(packet_ids.len());
            let mut all_delivered = true;
            for &pi in packet_ids {
                let p = &result.packets[pi];
                if p.outcome == PacketOutcome::Delivered {
                    arrivals.push(p.deliveries[0].1);
                } else {
                    all_delivered = false;
                }
            }
            let in_order = arrivals.windows(2).all(|w| w[0] <= w[1]);
            MessageResult {
                message: mi,
                packets: packet_ids.len(),
                first_arrival: arrivals.first().copied(),
                completed_at: if all_delivered {
                    arrivals.last().copied()
                } else {
                    None
                },
                complete_in_order: all_delivered && in_order,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdx_core::Sr2201Routing;
    use mdx_fault::FaultSet;
    use mdx_sim::{SimConfig, SimOutcome, Simulator};
    use mdx_topology::MdCrossbar;
    use proptest::prelude::*;
    use std::sync::Arc;

    #[test]
    fn segmentation_math() {
        let shape = Shape::fig2();
        // 16-flit packets carry 15 * FLIT_BYTES payload.
        let per = 15 * FLIT_BYTES;
        let msgs = [
            Message {
                src: 0,
                dst: 5,
                bytes: 1,
                at: 0,
            },
            Message {
                src: 0,
                dst: 5,
                bytes: per,
                at: 0,
            },
            Message {
                src: 0,
                dst: 5,
                bytes: per + 1,
                at: 0,
            },
            Message {
                src: 0,
                dst: 5,
                bytes: 3 * per + 7,
                at: 9,
            },
        ];
        let (specs, map) = segment(&shape, &msgs, NiaConfig::default());
        assert_eq!(map.packets_of[0].len(), 1);
        assert_eq!(map.packets_of[1].len(), 1);
        assert_eq!(map.packets_of[2].len(), 2);
        assert_eq!(map.packets_of[3].len(), 4);
        assert_eq!(specs.len(), 8);
        // Full packets are max-size; the runt carries the remainder.
        assert_eq!(specs[map.packets_of[2][0]].flits, 16);
        assert_eq!(specs[map.packets_of[2][1]].flits, 2);
        // Message 3's packets are presented back to back starting at 9.
        let at: Vec<u64> = map.packets_of[3]
            .iter()
            .map(|&i| specs[i].inject_at)
            .collect();
        assert_eq!(at, vec![9, 10, 11, 12]);
    }

    #[test]
    #[should_panic(expected = "header + payload")]
    fn tiny_packets_rejected() {
        segment(
            &Shape::fig2(),
            &[],
            NiaConfig {
                max_packet_flits: 1,
            },
        );
    }

    #[test]
    fn end_to_end_message_transfer() {
        let shape = Shape::fig2();
        let net = Arc::new(MdCrossbar::build(shape.clone()));
        let msgs = [
            Message {
                src: 0,
                dst: 11,
                bytes: 1000,
                at: 0,
            },
            Message {
                src: 3,
                dst: 8,
                bytes: 500,
                at: 2,
            },
        ];
        let (specs, map) = segment(&shape, &msgs, NiaConfig::default());
        let scheme = Arc::new(Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap());
        let mut sim = Simulator::new(net.graph().clone(), scheme, SimConfig::default());
        for &s in &specs {
            sim.schedule(s);
        }
        let r = sim.run();
        assert_eq!(r.outcome, SimOutcome::Completed);
        let results = reassemble(&r, &map);
        for m in &results {
            assert!(m.complete_in_order, "{m:?}");
            assert!(m.completed_at.unwrap() >= m.first_arrival.unwrap());
        }
        // The larger message takes longer end to end.
        assert!(results[0].completed_at.unwrap() > results[1].completed_at.unwrap());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The NIA's reassembly precondition: under deterministic routing,
        /// a (src, dst) pair's packets arrive in injection order even with
        /// cross traffic and faults.
        #[test]
        fn prop_in_order_delivery(seed in any::<u64>(), bytes in 1usize..2000,
                                  n_msgs in 1usize..5) {
            let shape = Shape::fig2();
            let net = Arc::new(MdCrossbar::build(shape.clone()));
            let mut msgs = Vec::new();
            for i in 0..n_msgs {
                let src = (seed as usize + i * 5) % 12;
                let mut dst = (seed as usize / 7 + i * 3 + 1) % 12;
                if dst == src {
                    dst = (dst + 1) % 12;
                }
                msgs.push(Message { src, dst, bytes, at: (i % 3) as u64 });
            }
            let (specs, map) = segment(&shape, &msgs, NiaConfig { max_packet_flits: 4 });
            let scheme = Arc::new(Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap());
            let mut sim = Simulator::new(net.graph().clone(), scheme, SimConfig {
                arb_seed: seed,
                ..SimConfig::default()
            });
            for &s in &specs {
                sim.schedule(s);
            }
            let r = sim.run();
            prop_assert_eq!(&r.outcome, &SimOutcome::Completed);
            for m in reassemble(&r, &map) {
                prop_assert!(m.complete_in_order, "{:?}", m);
            }
        }
    }
}
