//! Runtime wait-graph analysis over live blocked-on snapshots.
//!
//! The static analysis in [`crate::waitgraph`] certifies schemes ahead of
//! time; this module serves the *observability* side: given a snapshot of
//! who-waits-on-whom taken from a running simulation (see
//! `mdx_sim::SimObserver::on_probe`), it measures how deep the wait chains
//! currently are and whether they already close a cycle. A chain that keeps
//! growing probe after probe is the near-deadlock early warning the SR2201
//! watchdog only reports *after* the fact.

use std::collections::HashMap;

/// One blocked-on edge of a runtime wait snapshot: `waiter` wants a
/// resource currently held by `holder` (or by nobody, when the port is
/// merely contended but free — such edges terminate a chain).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitFor {
    /// The blocked packet (dense run-local id).
    pub waiter: u32,
    /// The packet holding the wanted resource, if any.
    pub holder: Option<u32>,
}

/// Summary of one wait-graph snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChainReport {
    /// Number of packets in the longest simple waiter→holder chain
    /// (0 when nothing waits; a lone blocked packet whose holder is not
    /// itself blocked counts 2).
    pub longest_chain: usize,
    /// Whether the snapshot already contains a cyclic wait — the condition
    /// the engine's watchdog will eventually certify as deadlock.
    pub has_cycle: bool,
}

/// Analyzes a snapshot of blocked-on edges: longest waiter→holder chain and
/// cycle presence.
///
/// Chains follow `waiter -> holder` links: if the holder is itself blocked,
/// the chain extends through it. A cycle (the holder set leads back to a
/// packet already on the path) both sets [`ChainReport::has_cycle`] and
/// bounds that chain at the number of distinct packets involved.
pub fn analyze_waits(edges: &[WaitFor]) -> ChainReport {
    // waiter -> holders adjacency.
    let mut adj: HashMap<u32, Vec<u32>> = HashMap::new();
    let mut nodes: Vec<u32> = Vec::new();
    for e in edges {
        nodes.push(e.waiter);
        let holders = adj.entry(e.waiter).or_default();
        if let Some(h) = e.holder {
            nodes.push(h);
            if !holders.contains(&h) {
                holders.push(h);
            }
        }
    }
    nodes.sort_unstable();
    nodes.dedup();

    // Depth of the longest chain starting at each node, memoized; GRAY
    // nodes on the current DFS path signal a cycle.
    const GRAY: i64 = -1;
    let mut depth: HashMap<u32, i64> = HashMap::new();
    let mut has_cycle = false;
    let mut longest = 0usize;
    for &start in &nodes {
        longest = longest.max(chain_depth(start, &adj, &mut depth, &mut has_cycle) as usize);
    }
    return ChainReport {
        longest_chain: longest,
        has_cycle,
    };

    fn chain_depth(
        u: u32,
        adj: &HashMap<u32, Vec<u32>>,
        depth: &mut HashMap<u32, i64>,
        has_cycle: &mut bool,
    ) -> i64 {
        match depth.get(&u) {
            Some(&GRAY) => {
                *has_cycle = true;
                return 0; // cycle: stop extending, count the nodes on the path
            }
            Some(&d) => return d,
            None => {}
        }
        depth.insert(u, GRAY);
        let mut best = 0i64;
        if let Some(holders) = adj.get(&u) {
            for &h in holders {
                best = best.max(chain_depth(h, adj, depth, has_cycle));
            }
        }
        let d = best + 1;
        depth.insert(u, d);
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(waiter: u32, holder: u32) -> WaitFor {
        WaitFor {
            waiter,
            holder: Some(holder),
        }
    }

    #[test]
    fn empty_snapshot_is_quiet() {
        let r = analyze_waits(&[]);
        assert_eq!(r.longest_chain, 0);
        assert!(!r.has_cycle);
    }

    #[test]
    fn single_wait_is_a_two_chain() {
        let r = analyze_waits(&[w(0, 1)]);
        assert_eq!(r.longest_chain, 2);
        assert!(!r.has_cycle);
    }

    #[test]
    fn holderless_wait_counts_alone() {
        let r = analyze_waits(&[WaitFor {
            waiter: 3,
            holder: None,
        }]);
        assert_eq!(r.longest_chain, 1);
        assert!(!r.has_cycle);
    }

    #[test]
    fn chains_extend_through_blocked_holders() {
        // 0 -> 1 -> 2 -> 3 plus an unrelated 7 -> 8.
        let r = analyze_waits(&[w(0, 1), w(1, 2), w(2, 3), w(7, 8)]);
        assert_eq!(r.longest_chain, 4);
        assert!(!r.has_cycle);
    }

    #[test]
    fn branching_takes_the_deepest_arm() {
        // 0 waits on both 1 (chain of 2 more) and 9 (leaf).
        let r = analyze_waits(&[w(0, 1), w(0, 9), w(1, 2)]);
        assert_eq!(r.longest_chain, 3);
    }

    #[test]
    fn cycle_is_flagged_and_bounded() {
        let r = analyze_waits(&[w(0, 1), w(1, 2), w(2, 0)]);
        assert!(r.has_cycle);
        assert_eq!(r.longest_chain, 3);
    }

    #[test]
    fn tail_into_cycle_counts_the_tail() {
        // 5 -> 0 -> 1 -> 0 (two-cycle with a tail).
        let r = analyze_waits(&[w(5, 0), w(0, 1), w(1, 0)]);
        assert!(r.has_cycle);
        assert_eq!(r.longest_chain, 3);
    }
}
