//! The union hold→wait graph and the acyclicity criterion.

use crate::claims::{broadcast_claims, unicast_claims, ClaimTree};
use mdx_core::{Header, Scheme};
use mdx_fault::FaultSet;
use mdx_topology::{ChannelId, MdCrossbar, NetworkGraph};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Result of a wait-graph analysis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CdgReport {
    /// Channels that appear in at least one claim.
    pub channels_used: usize,
    /// Distinct hold→wait edges in the union graph.
    pub edges: usize,
    /// A cyclic hold-wait, as human-readable channel descriptions, if one
    /// exists; `None` certifies deadlock freedom for the analyzed workload
    /// family.
    pub cycle: Option<Vec<String>>,
}

impl CdgReport {
    /// Whether the analyzed scheme is certified deadlock-free.
    pub fn deadlock_free(&self) -> bool {
        self.cycle.is_none()
    }
}

/// Analyzes the claim trees for a realizable cyclic hold-wait.
///
/// **Reduction.** Any deadlocked configuration contains a cycle of
/// *distinct* instances `I_1 -> I_2 -> ... -> I_m -> I_1`, where each `I_k`
/// holds a channel `h_k` (which its predecessor waits for) and waits for
/// `h_{k+1}`. A single (hold `h`, wait `w`) pair of one instance is
/// feasible iff `w` is not a prerequisite of `h` (and not `h` itself);
/// a cycle of such single pairs over distinct instances is always jointly
/// feasible. Cycles that reuse an instance reduce to shorter ones, so
/// searching distinct-instance cycles is sound *and* complete at the
/// instance level.
///
/// **Algorithm.** Chain instances (unicasts, broadcast-request legs) have
/// totally ordered claims, so chain-only cycles appear as cycles in the
/// classical channel dependency graph (consecutive-claim edges), and chain
/// *segments* between tree instances appear as CDG reachability. Tree
/// instances (broadcast fans) are searched explicitly as states
/// `(tree, held channel)` with distinct trees along the cycle, up to
/// [`MAX_TREES_IN_CYCLE`] trees. With at most one concurrent tree instance
/// (the serialized S-XB emission) the analysis is exact; with many
/// concurrent trees (the naive broadcast) patterns beyond the bound would
/// be missed, but the minimal Fig. 5 pattern needs only two.
///
/// Mutual exclusion is the caller's responsibility: pass only instances
/// that can be in flight concurrently (one S-XB emission, in particular).
pub fn analyze_trees(g: &NetworkGraph, trees: &[ClaimTree]) -> CdgReport {
    let mut used: HashSet<u32> = HashSet::new();
    for t in trees {
        for i in 0..t.len() {
            used.insert(t.resource(i));
        }
    }
    // Split instances: chains (every fan has exactly one branch) vs trees.
    let is_chain = |t: &ClaimTree| {
        let mut fan_sizes: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        for &f in &t.fan {
            *fan_sizes.entry(f).or_insert(0) += 1;
        }
        fan_sizes.values().all(|&n| n == 1)
    };
    let (chains, fans): (Vec<&ClaimTree>, Vec<&ClaimTree>) =
        trees.iter().partition(|t| is_chain(t));

    // Chain CDG over lane-granular resources: consecutive-claim edges.
    let mut cdg: Vec<HashSet<u32>> =
        vec![HashSet::new(); g.num_channels() * crate::claims::MAX_VCS_KEY as usize];
    let mut edges = 0usize;
    for c in &chains {
        for i in 1..c.len() {
            if cdg[c.resource(i - 1) as usize].insert(c.resource(i)) {
                edges += 1;
            }
        }
    }
    let describe = |res: u32| {
        let ch = ChannelId(res / crate::claims::MAX_VCS_KEY);
        let vc = res % crate::claims::MAX_VCS_KEY;
        if vc == 0 {
            g.describe_channel(ch)
        } else {
            format!("{} (vc{vc})", g.describe_channel(ch))
        }
    };
    if let Some(cyc) = cdg_cycle(&cdg) {
        return CdgReport {
            channels_used: used.len(),
            edges,
            cycle: Some(
                cyc.into_iter()
                    .map(|c| format!("[chain] {}", describe(c)))
                    .collect(),
            ),
        };
    }

    // Reachability over the chain CDG, cached per source channel.
    let mut reach_cache: std::collections::HashMap<u32, HashSet<u32>> =
        std::collections::HashMap::new();
    let mut reach = |from: u32| -> HashSet<u32> {
        if let Some(r) = reach_cache.get(&from) {
            return r.clone();
        }
        let mut seen = HashSet::new();
        let mut stack = vec![from];
        while let Some(u) = stack.pop() {
            for &v in &cdg[u as usize] {
                if seen.insert(v) {
                    stack.push(v);
                }
            }
        }
        reach_cache.insert(from, seen.clone());
        seen
    };

    // Per-fan-instance feasible (hold, wait) pairs.
    let pairs: Vec<Vec<(u32, u32)>> = fans
        .iter()
        .map(|t| {
            let mut out = Vec::new();
            for i in 0..t.len() {
                let mut prereq: HashSet<usize> = t.prerequisites(i).into_iter().collect();
                prereq.insert(i);
                for j in 0..t.len() {
                    if !prereq.contains(&j) && t.resource(i) != t.resource(j) {
                        out.push((t.resource(i), t.resource(j)));
                    }
                }
            }
            out
        })
        .collect();

    // Single-tree cycles: the tree holds h and waits w, and chains carry the
    // dependency from w back to h.
    for (ti, ps) in pairs.iter().enumerate() {
        for &(h, w) in ps {
            if reach(w).contains(&h) {
                return CdgReport {
                    channels_used: used.len(),
                    edges,
                    cycle: Some(vec![
                        format!("[fan {ti}] holds {} waits {}", describe(h), describe(w)),
                        format!("[chains] {} ->* {}", describe(w), describe(h)),
                    ]),
                };
            }
        }
    }

    // Multi-tree cycles up to MAX_TREES_IN_CYCLE distinct trees. Edge
    // (T, h) -> (T', h') iff T has a pair (h, w) with w == h' or w ->* h'
    // through chains, and T' != T claims h'.
    if fans.len() >= 2 {
        // claimants of each channel among fans
        let mut fan_claims: std::collections::HashMap<u32, Vec<usize>> =
            std::collections::HashMap::new();
        for (ti, t) in fans.iter().enumerate() {
            for i in 0..t.len() {
                fan_claims.entry(t.resource(i)).or_default().push(ti);
            }
        }
        // DFS over (tree, hold) with distinct trees, bounded depth.
        let mut found: Option<Vec<String>> = None;
        'search: for (t0, ps0) in pairs.iter().enumerate() {
            let holds0: HashSet<u32> = ps0.iter().map(|&(h, _)| h).collect();
            for &start_h in &holds0 {
                let mut path: Vec<(usize, u32)> = vec![(t0, start_h)];
                let mut on_path: HashSet<usize> = [t0].into_iter().collect();
                if dfs_trees(
                    &pairs,
                    &fan_claims,
                    &mut reach,
                    &mut path,
                    &mut on_path,
                    (t0, start_h),
                ) {
                    found = Some(
                        path.iter()
                            .map(|&(ti, h)| format!("[fan {ti}] holds {}", describe(h)))
                            .collect(),
                    );
                    break 'search;
                }
            }
        }
        if let Some(cycle) = found {
            return CdgReport {
                channels_used: used.len(),
                edges,
                cycle: Some(cycle),
            };
        }
    }

    CdgReport {
        channels_used: used.len(),
        edges,
        cycle: None,
    }
}

/// Bound on distinct tree (multicast) instances searched per cycle.
pub const MAX_TREES_IN_CYCLE: usize = 4;

/// DFS helper: extend `path` (last element is the current (tree, hold)
/// state) looking for a way back to `path[0]`.
fn dfs_trees(
    pairs: &[Vec<(u32, u32)>],
    fan_claims: &std::collections::HashMap<u32, Vec<usize>>,
    reach: &mut dyn FnMut(u32) -> HashSet<u32>,
    path: &mut Vec<(usize, u32)>,
    on_path: &mut HashSet<usize>,
    start: (usize, u32),
) -> bool {
    let (cur_t, cur_h) = *path.last().expect("path non-empty");
    // Waits of the current tree from hold cur_h.
    let waits: Vec<u32> = pairs[cur_t]
        .iter()
        .filter(|&&(h, _)| h == cur_h)
        .map(|&(_, w)| w)
        .collect();
    for w in waits {
        let mut targets: Vec<u32> = reach(w).into_iter().collect();
        targets.push(w);
        targets.sort_unstable();
        targets.dedup();
        // Close the cycle back to the start state?
        if path.len() >= 2 && targets.binary_search(&start.1).is_ok() {
            // The start tree must be waited on via its held channel.
            return true;
        }
        if path.len() >= MAX_TREES_IN_CYCLE {
            continue;
        }
        for &h2 in &targets {
            if let Some(claimants) = fan_claims.get(&h2) {
                for &t2 in claimants {
                    if on_path.contains(&t2) {
                        continue;
                    }
                    path.push((t2, h2));
                    on_path.insert(t2);
                    if dfs_trees(pairs, fan_claims, reach, path, on_path, start) {
                        return true;
                    }
                    on_path.remove(&t2);
                    path.pop();
                }
            }
        }
    }
    false
}

/// Cycle search on the chain CDG; returns one cycle's channels.
fn cdg_cycle(adj: &[HashSet<u32>]) -> Option<Vec<u32>> {
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let n = adj.len();
    let mut color = vec![WHITE; n];
    for start in 0..n {
        if color[start] != WHITE || adj[start].is_empty() {
            continue;
        }
        let mut sorted: Vec<u32> = adj[start].iter().copied().collect();
        sorted.sort_unstable();
        color[start] = GRAY;
        let mut stack: Vec<(u32, Vec<u32>, usize)> = vec![(start as u32, sorted, 0)];
        while let Some((u, neigh, pos)) = stack.last_mut() {
            if *pos >= neigh.len() {
                color[*u as usize] = BLACK;
                stack.pop();
                continue;
            }
            let v = neigh[*pos];
            *pos += 1;
            match color[v as usize] {
                WHITE => {
                    color[v as usize] = GRAY;
                    let mut s: Vec<u32> = adj[v as usize].iter().copied().collect();
                    s.sort_unstable();
                    stack.push((v, s, 0));
                }
                GRAY => {
                    let at = stack.iter().position(|&(w, _, _)| w == v).unwrap_or(0);
                    return Some(stack[at..].iter().map(|&(w, _, _)| w).collect());
                }
                _ => {}
            }
        }
    }
    None
}

/// What traffic to include when verifying a scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficFamily {
    /// Include every (src, dst) unicast pair.
    pub unicast: bool,
    /// Include a broadcast from every source.
    pub broadcast: bool,
}

impl TrafficFamily {
    /// Everything the SR2201 hardware can generate.
    pub fn all() -> Self {
        TrafficFamily {
            unicast: true,
            broadcast: true,
        }
    }
}

/// Verdict of [`verify_scheme`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemeVerdict {
    /// Scheme name.
    pub scheme: String,
    /// Number of claim trees analyzed.
    pub instances: usize,
    /// The wait-graph report.
    pub report: CdgReport,
}

/// Enumerates every unicast pair and every broadcast source that is usable
/// under `faults`, extracts their claims under `scheme`, and analyzes the
/// union wait graph.
///
/// # Panics
/// Panics if claim extraction fails for a pair the fault set says is usable
/// (that is a scheme bug the analysis must not paper over).
pub fn verify_scheme(
    net: &MdCrossbar,
    scheme: &dyn Scheme,
    faults: &FaultSet,
    family: TrafficFamily,
) -> SchemeVerdict {
    let g = net.graph();
    let shape = net.shape();
    let n = shape.num_pes();
    let mut trees = Vec::new();
    if family.unicast {
        for src in 0..n {
            for dst in 0..n {
                if src == dst || !faults.pe_usable(src) || !faults.pe_usable(dst) {
                    continue;
                }
                let h = Header::unicast(shape.coord_of(src), shape.coord_of(dst));
                let t = unicast_claims(scheme, g, h, src)
                    .unwrap_or_else(|e| panic!("unicast {src}->{dst}: {e}"));
                trees.push(t);
            }
        }
    }
    if family.broadcast {
        let serialized = scheme.serializing_node().is_some();
        let mut emission_included = false;
        for src in 0..n {
            if !faults.pe_usable(src) {
                continue;
            }
            let mut ts = broadcast_claims(scheme, g, src, shape.coord_of(src))
                .unwrap_or_else(|e| panic!("broadcast from {src}: {e}"));
            if serialized {
                // Emissions are strictly serialized (one in flight), and
                // their claim tree is source-independent: include a single
                // emission instance; requests are concurrent and all stay.
                if emission_included {
                    ts.truncate(1);
                } else {
                    emission_included = true;
                }
            }
            trees.extend(ts);
        }
    }
    let instances = trees.len();
    SchemeVerdict {
        scheme: scheme.name(),
        instances,
        report: analyze_trees(g, &trees),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdx_core::{NaiveBroadcast, RoutingConfig, Sr2201Routing};
    use mdx_fault::{enumerate_single_faults, FaultSet, FaultSite};
    use mdx_topology::Shape;
    use std::sync::Arc;

    fn net() -> Arc<MdCrossbar> {
        Arc::new(MdCrossbar::build(Shape::fig2()))
    }

    #[test]
    fn pure_dimension_order_unicast_is_acyclic() {
        let n = net();
        let s = Sr2201Routing::new(n.clone(), &FaultSet::none()).unwrap();
        let v = verify_scheme(
            &n,
            &s,
            &FaultSet::none(),
            TrafficFamily {
                unicast: true,
                broadcast: false,
            },
        );
        assert!(v.report.deadlock_free(), "{:?}", v.report.cycle);
        assert_eq!(v.instances, 12 * 11);
    }

    #[test]
    fn sxb_broadcast_plus_unicast_is_acyclic() {
        // The fault-free SR2201: serialized broadcast coexists with
        // dimension-order unicast without any cyclic hold-wait.
        let n = net();
        let s = Sr2201Routing::new(n.clone(), &FaultSet::none()).unwrap();
        let v = verify_scheme(&n, &s, &FaultSet::none(), TrafficFamily::all());
        assert!(v.report.deadlock_free(), "{:?}", v.report.cycle);
    }

    #[test]
    fn naive_broadcast_is_cyclic() {
        // Fig. 5 statically: two unserialized broadcasts can close a cyclic
        // hold-wait over the Y-dimension crossbar ports.
        let n = net();
        let s = NaiveBroadcast::new(n.clone());
        let v = verify_scheme(
            &n,
            &s,
            &FaultSet::none(),
            TrafficFamily {
                unicast: false,
                broadcast: true,
            },
        );
        let cycle = v.report.cycle.expect("naive broadcast must be cyclic");
        // The minimal pattern found can sit on either crossbar family: two
        // same-row broadcasts split the row crossbar's ports, two
        // different-row broadcasts split the Y crossbars' (the paper's
        // picture). Either way it is a crossbar-port cycle.
        assert!(cycle.iter().any(|c| c.contains("-XB")), "{cycle:?}");
    }

    #[test]
    fn paper_scheme_acyclic_under_every_single_fault() {
        // Fig. 10 statically: D-XB = S-XB keeps the wait graph acyclic for
        // every single fault, with full unicast + broadcast traffic.
        let n = net();
        for site in enumerate_single_faults(&n) {
            let faults = FaultSet::single(site);
            let s = Sr2201Routing::new(n.clone(), &faults).unwrap();
            let v = verify_scheme(&n, &s, &faults, TrafficFamily::all());
            assert!(
                v.report.deadlock_free(),
                "{site}: cycle {:?}",
                v.report.cycle
            );
        }
    }

    #[test]
    fn separate_dxb_is_cyclic_under_a_router_fault() {
        // Fig. 9 statically: moving the D-XB away from the S-XB creates a
        // cyclic hold-wait between detoured unicasts and broadcasts.
        let n = net();
        let shape = n.shape().clone();
        let faulty = shape.index_of(mdx_topology::Coord::new(&[1, 0]));
        let faults = FaultSet::single(FaultSite::Router(faulty));
        let cfg = RoutingConfig::for_faults(&shape, &faults)
            .unwrap()
            .with_separate_dxb(&faults);
        let s = Sr2201Routing::with_config(n.clone(), cfg, &faults);
        let v = verify_scheme(&n, &s, &faults, TrafficFamily::all());
        assert!(!v.report.deadlock_free(), "fig9 variant must be cyclic");
    }

    #[test]
    fn o1turn_extension_is_acyclic_at_lane_granularity() {
        // The two-order extension: each order's sub-network is
        // dimension-ordered on its own lane, so the union is acyclic —
        // but only when resources are (channel, lane) pairs.
        let n = Arc::new(MdCrossbar::build(Shape::new(&[4, 4]).unwrap()));
        let s = mdx_core::O1TurnRouting::new(n.clone(), 7);
        let v = verify_scheme(
            &n,
            &s,
            &FaultSet::none(),
            TrafficFamily {
                unicast: true,
                broadcast: false,
            },
        );
        assert!(v.report.deadlock_free(), "{:?}", v.report.cycle);
    }

    #[test]
    fn torus_dateline_vcs_certified_by_chain_cdg() {
        // The dateline torus baseline: plain shortest-way DOR has ring
        // cycles; splitting at the dateline onto lane 1 breaks them.
        use mdx_baselines_shim::*;
        let shape = Shape::new(&[5, 5]).unwrap();
        let torus = Arc::new(mdx_topology::mesh::DirectNetwork::build(
            shape.clone(),
            mdx_topology::mesh::Wrap::Torus,
        ));
        let analyze = |scheme: &dyn mdx_core::Scheme| {
            let mut trees = Vec::new();
            for src in 0..shape.num_pes() {
                for dst in 0..shape.num_pes() {
                    if src == dst {
                        continue;
                    }
                    let h = mdx_core::Header::unicast(shape.coord_of(src), shape.coord_of(dst));
                    trees.push(
                        crate::claims::unicast_claims(scheme, torus.graph(), h, src).unwrap(),
                    );
                }
            }
            analyze_trees(torus.graph(), &trees)
        };
        let plain = analyze(&dor_plain(torus.clone()));
        assert!(!plain.deadlock_free(), "plain torus DOR must have a cycle");
        let dateline = analyze(&dor_dateline(torus.clone()));
        assert!(
            dateline.deadlock_free(),
            "dateline torus cycle: {:?}",
            dateline.cycle
        );
    }

    /// Tiny local reimplementation of the baseline torus schemes so this
    /// crate does not depend on `mdx-baselines` (which depends on the
    /// simulator). Mirrors `mdx_baselines::DirectDor` exactly.
    mod mdx_baselines_shim {
        use mdx_core::{Action, Branch, DropReason, Header, RouteChange, Scheme};
        use mdx_topology::mesh::{DirectNetwork, Wrap};
        use mdx_topology::{Coord, Node};
        use std::sync::Arc;

        pub struct TorusDor {
            net: Arc<DirectNetwork>,
            dateline: bool,
        }

        pub fn dor_plain(net: Arc<DirectNetwork>) -> TorusDor {
            TorusDor {
                net,
                dateline: false,
            }
        }

        pub fn dor_dateline(net: Arc<DirectNetwork>) -> TorusDor {
            TorusDor {
                net,
                dateline: true,
            }
        }

        impl TorusDor {
            fn next_hop(&self, c: Coord, src: Coord, dest: Coord) -> Option<(Coord, u8)> {
                let shape = self.net.shape();
                for dim in 0..shape.d() {
                    if c.get(dim) == dest.get(dim) {
                        continue;
                    }
                    let e = shape.extent(dim) as i32;
                    let fwd = (dest.get(dim) as i32 - c.get(dim) as i32).rem_euclid(e);
                    let positive = match self.net.wrap() {
                        Wrap::Mesh => dest.get(dim) > c.get(dim),
                        Wrap::Torus => fwd <= e - fwd,
                    };
                    let next = self.net.neighbor(c, dim, positive)?;
                    let vc = if !self.dateline {
                        0
                    } else {
                        let entry = src.get(dim);
                        let p = c.get(dim);
                        let crossed = if positive {
                            p < entry || next.get(dim) < p
                        } else {
                            p > entry || next.get(dim) > p
                        };
                        u8::from(crossed)
                    };
                    return Some((next, vc));
                }
                None
            }
        }

        impl Scheme for TorusDor {
            fn name(&self) -> String {
                "torus shim".into()
            }
            fn max_vcs(&self) -> u8 {
                if self.dateline {
                    2
                } else {
                    1
                }
            }
            fn decide(&self, at: Node, came_from: Option<Node>, header: &Header) -> Action {
                if header.rc != RouteChange::Normal {
                    return Action::Drop(DropReason::ProtocolViolation);
                }
                match at {
                    Node::Pe(p) => match came_from {
                        None => Action::Forward(vec![Branch::new(Node::Router(p), *header)]),
                        Some(Node::Router(_)) => Action::Deliver,
                        Some(_) => Action::Drop(DropReason::ProtocolViolation),
                    },
                    Node::Router(r) => {
                        let c = self.net.shape().coord_of(r);
                        match self.next_hop(c, header.src, header.dest) {
                            None => Action::Forward(vec![Branch::new(Node::Pe(r), *header)]),
                            Some((nc, vc)) => Action::Forward(vec![Branch::on_vc(
                                Node::Router(self.net.shape().index_of(nc)),
                                *header,
                                vc,
                            )]),
                        }
                    }
                    Node::Xbar(_) => Action::Drop(DropReason::ProtocolViolation),
                }
            }
        }
    }

    #[test]
    fn three_dimensional_scheme_acyclic() {
        let n = Arc::new(MdCrossbar::build(Shape::new(&[3, 3, 2]).unwrap()));
        for site in [
            None,
            Some(FaultSite::Router(4)),
            Some(FaultSite::Xbar(mdx_topology::XbarRef { dim: 1, line: 1 })),
        ] {
            let faults = site.map(FaultSet::single).unwrap_or_default();
            let s = Sr2201Routing::new(n.clone(), &faults).unwrap();
            let v = verify_scheme(&n, &s, &faults, TrafficFamily::all());
            assert!(
                v.report.deadlock_free(),
                "{site:?}: cycle {:?}",
                v.report.cycle
            );
        }
    }
}
