//! Transition safety: deadlock analysis *across* a live reprogram.
//!
//! The static criterion in [`crate::waitgraph`] certifies one routing
//! function at a time. During live reconfiguration two functions coexist:
//! packets decided under the old epoch still hold channels while packets
//! decided under the new epoch (re-routed pauses, reinjected victims,
//! post-resume traffic) acquire theirs. Each function may be deadlock-free
//! on its own, yet a wait cycle can close through the *mixture* — e.g. the
//! fault-adapted function legally reverses the dimension order
//! (a Y-crossbar fault makes the scheme route Y-first), so an old-epoch
//! X-then-Y packet and a new-epoch Y-then-X packet can each hold what the
//! other wants, the classic reconfiguration hazard the SR2201 service
//! processor avoids by draining before it reprograms.
//!
//! The checker consumes runtime wait-graph snapshots whose edges carry the
//! routing **epoch** that made each decision (see
//! `mdx_sim::WaitSnapshot::epoch`) and flags any cycle whose edges span
//! more than one epoch.
//!
//! The check is deliberately **per-snapshot**, not a union over time: since
//! dimension order may flip between epochs, a temporal union contains
//! hold→wait pairs that never coexist and would report false cycles. Only
//! simultaneously-held resources can deadlock.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One epoch-tagged blocked-on edge of a runtime wait snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochWait {
    /// The blocked packet (dense run-local id).
    pub waiter: u32,
    /// The packet holding the wanted channel, if any (a holderless edge is
    /// mere contention and cannot be part of a cycle).
    pub holder: Option<u32>,
    /// Routing epoch of the decision that created the waiter's request.
    pub epoch: u32,
    /// Routing epoch of the holder's decision, when there is a holder.
    pub holder_epoch: Option<u32>,
}

/// A wait cycle found in one snapshot, with the routing epochs of the
/// edges that close it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransitionCycle {
    /// The packets on the cycle, in wait order.
    pub packets: Vec<u32>,
    /// Distinct routing epochs among the cycle's edges, ascending. More
    /// than one epoch means the cycle crosses a reprogram boundary.
    pub epochs: Vec<u32>,
}

impl TransitionCycle {
    /// Whether the cycle's edges span more than one routing epoch.
    pub fn is_mixed(&self) -> bool {
        self.epochs.len() > 1
    }
}

/// A mixed-epoch wait cycle: old-function and new-function packets close a
/// hold-wait loop together. This is the condition the epoch protocol's
/// drain phase exists to prevent.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransitionViolation {
    /// Cycle at which the snapshot was taken.
    pub at: u64,
    /// The offending cycle.
    pub cycle: TransitionCycle,
}

/// Accumulated transition-safety evidence over a run.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TransitionReport {
    /// Wait-graph snapshots examined.
    pub snapshots: u64,
    /// Edges whose waiter and holder were decided in different epochs —
    /// transient old/new holds. Nonzero is normal while packets paused
    /// across a reprogram drain out; only *cycles* are violations.
    pub mixed_edges: u64,
    /// Largest number of distinct routing epochs seen coexisting in one
    /// snapshot.
    pub max_epochs_coexisting: usize,
    /// Cycles confined to a single epoch (an ordinary deadlock forming;
    /// the engine watchdog owns those, they are not transition hazards).
    pub single_epoch_cycles: u64,
    /// Mixed-epoch cycles — transition-safety violations.
    pub violations: Vec<TransitionViolation>,
}

impl TransitionReport {
    /// True when no mixed-epoch cycle was ever observed.
    pub fn transition_safe(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Finds every wait cycle in one snapshot, tagged with the epochs of its
/// edges. Deterministic: DFS roots in ascending packet order, adjacency in
/// edge order.
pub fn find_cycles(waits: &[EpochWait]) -> Vec<TransitionCycle> {
    // waiter -> [(holder, epoch of the waiting edge)]
    let mut adj: HashMap<u32, Vec<(u32, u32)>> = HashMap::new();
    let mut nodes: Vec<u32> = Vec::new();
    for e in waits {
        nodes.push(e.waiter);
        if let Some(h) = e.holder {
            nodes.push(h);
            adj.entry(e.waiter).or_default().push((h, e.epoch));
        }
    }
    nodes.sort_unstable();
    nodes.dedup();

    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color: HashMap<u32, u8> = HashMap::new();
    let mut path: Vec<(u32, u32)> = Vec::new();
    let mut cycles: Vec<TransitionCycle> = Vec::new();
    for &start in &nodes {
        if color.get(&start).copied().unwrap_or(WHITE) == WHITE {
            dfs(start, &adj, &mut color, &mut path, &mut cycles);
        }
    }
    return cycles;

    fn dfs(
        u: u32,
        adj: &HashMap<u32, Vec<(u32, u32)>>,
        color: &mut HashMap<u32, u8>,
        path: &mut Vec<(u32, u32)>,
        cycles: &mut Vec<TransitionCycle>,
    ) {
        color.insert(u, GRAY);
        if let Some(ns) = adj.get(&u) {
            for &(h, ep) in ns {
                match color.get(&h).copied().unwrap_or(WHITE) {
                    GRAY => {
                        // Back edge: the cycle is the path suffix from h,
                        // plus u and the closing edge u -> h.
                        let start = path.iter().position(|&(n, _)| n == h);
                        let suffix = match start {
                            Some(s) => &path[s..],
                            None => &[], // h == u: a self-wait
                        };
                        let mut packets: Vec<u32> = suffix.iter().map(|&(n, _)| n).collect();
                        let mut epochs: Vec<u32> = suffix.iter().map(|&(_, e)| e).collect();
                        packets.push(u);
                        epochs.push(ep);
                        epochs.sort_unstable();
                        epochs.dedup();
                        cycles.push(TransitionCycle { packets, epochs });
                    }
                    WHITE => {
                        path.push((u, ep));
                        dfs(h, adj, color, path, cycles);
                        path.pop();
                    }
                    _ => {} // BLACK: fully explored, no new cycle this way
                }
            }
        }
        color.insert(u, BLACK);
    }
}

/// Streaming transition-safety checker: feed it every wait snapshot taken
/// around a reconfiguration and read the verdict afterwards.
#[derive(Debug, Default)]
pub struct TransitionChecker {
    report: TransitionReport,
}

impl TransitionChecker {
    /// A fresh checker.
    pub fn new() -> TransitionChecker {
        TransitionChecker::default()
    }

    /// Examines one snapshot taken at cycle `now`.
    pub fn observe(&mut self, now: u64, waits: &[EpochWait]) {
        self.report.snapshots += 1;
        let mut epochs: Vec<u32> = Vec::new();
        for e in waits {
            epochs.push(e.epoch);
            if let Some(he) = e.holder_epoch {
                epochs.push(he);
                if he != e.epoch {
                    self.report.mixed_edges += 1;
                }
            }
        }
        epochs.sort_unstable();
        epochs.dedup();
        self.report.max_epochs_coexisting = self.report.max_epochs_coexisting.max(epochs.len());
        for cycle in find_cycles(waits) {
            if cycle.is_mixed() {
                self.report
                    .violations
                    .push(TransitionViolation { at: now, cycle });
            } else {
                self.report.single_epoch_cycles += 1;
            }
        }
    }

    /// The evidence accumulated so far.
    pub fn report(&self) -> &TransitionReport {
        &self.report
    }

    /// Consumes the checker, yielding the final report.
    pub fn into_report(self) -> TransitionReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(waiter: u32, holder: u32, epoch: u32, holder_epoch: u32) -> EpochWait {
        EpochWait {
            waiter,
            holder: Some(holder),
            epoch,
            holder_epoch: Some(holder_epoch),
        }
    }

    #[test]
    fn no_cycle_no_violation() {
        let mut c = TransitionChecker::new();
        c.observe(10, &[w(0, 1, 0, 1), w(1, 2, 1, 1)]);
        let r = c.into_report();
        assert!(r.transition_safe());
        assert_eq!(r.mixed_edges, 1);
        assert_eq!(r.max_epochs_coexisting, 2);
        assert_eq!(r.snapshots, 1);
    }

    #[test]
    fn single_epoch_cycle_is_not_a_transition_violation() {
        let mut c = TransitionChecker::new();
        c.observe(5, &[w(0, 1, 0, 0), w(1, 0, 0, 0)]);
        let r = c.into_report();
        assert!(r.transition_safe());
        assert_eq!(r.single_epoch_cycles, 1);
    }

    #[test]
    fn mixed_epoch_cycle_is_flagged() {
        let mut c = TransitionChecker::new();
        c.observe(42, &[w(0, 1, 0, 1), w(1, 0, 1, 0)]);
        let r = c.into_report();
        assert!(!r.transition_safe());
        assert_eq!(r.violations.len(), 1);
        let v = &r.violations[0];
        assert_eq!(v.at, 42);
        assert!(v.cycle.is_mixed());
        assert_eq!(v.cycle.epochs, vec![0, 1]);
        let mut ps = v.cycle.packets.clone();
        ps.sort_unstable();
        assert_eq!(ps, vec![0, 1]);
    }

    #[test]
    fn cycles_that_never_coexist_are_not_reported() {
        // The union of these two snapshots contains the cycle 0 -> 1 -> 0,
        // but no single snapshot does: per-snapshot checking stays quiet.
        let mut c = TransitionChecker::new();
        c.observe(1, &[w(0, 1, 0, 0)]);
        c.observe(2, &[w(1, 0, 1, 1)]);
        let r = c.into_report();
        assert!(r.transition_safe());
        assert_eq!(r.single_epoch_cycles, 0);
    }

    #[test]
    fn finds_cycle_with_tail_and_reports_members() {
        // 5 -> 0 -> 1 -> 2 -> 0: cycle is {0, 1, 2}, tail 5 excluded.
        let cycles = find_cycles(&[w(5, 0, 0, 0), w(0, 1, 0, 1), w(1, 2, 1, 2), w(2, 0, 2, 0)]);
        assert_eq!(cycles.len(), 1);
        let mut ps = cycles[0].packets.clone();
        ps.sort_unstable();
        assert_eq!(ps, vec![0, 1, 2]);
        assert_eq!(cycles[0].epochs, vec![0, 1, 2]);
    }

    #[test]
    fn self_wait_is_a_one_cycle() {
        let cycles = find_cycles(&[w(3, 3, 1, 1)]);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].packets, vec![3]);
        assert!(!cycles[0].is_mixed());
    }

    #[test]
    fn holderless_edges_cannot_cycle() {
        let cycles = find_cycles(&[EpochWait {
            waiter: 0,
            holder: None,
            epoch: 0,
            holder_epoch: None,
        }]);
        assert!(cycles.is_empty());
    }

    #[test]
    fn report_roundtrips_through_json() {
        let mut c = TransitionChecker::new();
        c.observe(42, &[w(0, 1, 0, 1), w(1, 0, 1, 0)]);
        let r = c.into_report();
        let json = serde_json::to_string(&r).unwrap();
        let back: TransitionReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
