//! Extraction of the channel claim trees of communication instances.

use mdx_core::{Action, DropReason, Header, Scheme};

/// Lane multiplier for packing (channel, vc) resource keys.
pub const MAX_VCS_KEY: u32 = 8;
use mdx_topology::{ChannelId, Coord, NetworkGraph, Node};
use std::collections::VecDeque;

/// The rooted tree of channels one communication instance acquires.
///
/// `parent[i]` is the index (into `channels`) of the channel whose buffer
/// feeds channel `i`'s source switch, or `None` for root channels (fed by
/// the source PE's memory, or by the S-XB's serialization queue for an
/// emission). `fan[i]` groups channels granted by the same switch visit:
/// channels with equal `fan` values are siblings of one multi-port forward.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClaimTree {
    /// Claimed channels, in acquisition-BFS order.
    pub channels: Vec<ChannelId>,
    /// Virtual lane per claimed channel (a lane is its own resource: the
    /// O1TURN extension and the torus dateline baseline are acyclic only
    /// at lane granularity).
    pub vcs: Vec<u8>,
    /// Parent channel index per channel.
    pub parent: Vec<Option<usize>>,
    /// Fan (visit) id per channel; siblings share it.
    pub fan: Vec<usize>,
}

impl ClaimTree {
    /// Number of claimed channels.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// Whether the instance claims no channels (never happens for legal
    /// traffic, present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// Resource key of claim `i`: lane-granular (channel, vc) packed into
    /// one integer.
    pub fn resource(&self, i: usize) -> u32 {
        self.channels[i].0 * MAX_VCS_KEY + self.vcs[i] as u32
    }

    /// The prerequisite set of channel `i`: every channel that is fully
    /// acquired before `i` can be granted — `i`'s ancestors and all their
    /// siblings (each fan on the root path streams, and therefore holds all
    /// its ports, before the next level's header can exist).
    pub fn prerequisites(&self, i: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut cur = self.parent[i];
        while let Some(p) = cur {
            let fan = self.fan[p];
            for (j, &f) in self.fan.iter().enumerate() {
                if f == fan {
                    out.push(j);
                }
            }
            cur = self.parent[p];
        }
        out
    }
}

/// Errors while walking a scheme to extract claims.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClaimError {
    /// The scheme dropped the packet (e.g. destination out of service).
    Dropped(DropReason),
    /// A branch pointed at a non-neighbor (scheme bug).
    NotAdjacent,
    /// A unicast decision fanned out.
    NotUnicast,
    /// Hop budget exceeded.
    Livelock,
    /// A gather occurred where none was expected (or vice versa).
    Protocol,
}

impl std::fmt::Display for ClaimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClaimError::Dropped(r) => write!(f, "dropped: {r}"),
            ClaimError::NotAdjacent => write!(f, "non-adjacent forward"),
            ClaimError::NotUnicast => write!(f, "unexpected fan-out on unicast"),
            ClaimError::Livelock => write!(f, "hop budget exceeded"),
            ClaimError::Protocol => write!(f, "protocol violation"),
        }
    }
}

fn channel_between(g: &NetworkGraph, from: Node, to: Node) -> Result<ChannelId, ClaimError> {
    let (Some(a), Some(b)) = (g.id_of(from), g.id_of(to)) else {
        return Err(ClaimError::NotAdjacent);
    };
    g.channel_between(a, b).ok_or(ClaimError::NotAdjacent)
}

/// Claims of one point-to-point packet (a degenerate single-branch tree).
///
/// Follows the scheme from injection to delivery; RC rewrites (detour) are
/// followed transparently, so the claims include any detour legs.
pub fn unicast_claims(
    scheme: &dyn Scheme,
    g: &NetworkGraph,
    header: Header,
    src_pe: usize,
) -> Result<ClaimTree, ClaimError> {
    let mut tree = ClaimTree {
        channels: Vec::new(),
        vcs: Vec::new(),
        parent: Vec::new(),
        fan: Vec::new(),
    };
    let mut at = Node::Pe(src_pe);
    let mut came: Option<Node> = None;
    let mut h = header;
    let budget = 16 + 2 * g.num_nodes();
    for _ in 0..budget {
        match scheme.decide(at, came, &h) {
            Action::Deliver => return Ok(tree),
            Action::Drop(r) => return Err(ClaimError::Dropped(r)),
            Action::Gather => return Err(ClaimError::Protocol),
            Action::Forward(branches) => {
                if branches.len() != 1 {
                    return Err(ClaimError::NotUnicast);
                }
                let b = branches[0];
                let ch = channel_between(g, at, b.to)?;
                let idx = tree.channels.len();
                tree.channels.push(ch);
                tree.vcs.push(b.vc);
                tree.parent.push(idx.checked_sub(1));
                tree.fan.push(idx);
                came = Some(at);
                at = b.to;
                h = b.header;
            }
        }
    }
    Err(ClaimError::Livelock)
}

/// Claims of one broadcast from `src_pe`.
///
/// For a serialized scheme this returns **two** instances: the RC=1 request
/// leg (up to the S-XB, where the queue decouples it) and the emission fan.
/// For a direct scheme (naive broadcast) it returns the single source-rooted
/// tree.
pub fn broadcast_claims(
    scheme: &dyn Scheme,
    g: &NetworkGraph,
    src_pe: usize,
    src_coord: Coord,
) -> Result<Vec<ClaimTree>, ClaimError> {
    if scheme.serializing_node().is_some() {
        let request = request_leg(scheme, g, src_pe, src_coord)?;
        let emission = emission_fan(scheme, g, src_coord)?;
        Ok(vec![request, emission])
    } else {
        let h = Header {
            rc: mdx_core::RouteChange::Broadcast,
            dest: src_coord,
            src: src_coord,
        };
        Ok(vec![tree_walk(
            scheme,
            g,
            vec![(Node::Pe(src_pe), None, h, None)],
        )?])
    }
}

/// Walks the RC=1 request from the source to the S-XB's gather.
fn request_leg(
    scheme: &dyn Scheme,
    g: &NetworkGraph,
    src_pe: usize,
    src_coord: Coord,
) -> Result<ClaimTree, ClaimError> {
    let mut tree = ClaimTree {
        channels: Vec::new(),
        vcs: Vec::new(),
        parent: Vec::new(),
        fan: Vec::new(),
    };
    let mut at = Node::Pe(src_pe);
    let mut came: Option<Node> = None;
    let mut h = Header::broadcast_request(src_coord);
    let budget = 16 + 2 * g.num_nodes();
    for _ in 0..budget {
        match scheme.decide(at, came, &h) {
            Action::Gather => return Ok(tree),
            Action::Drop(r) => return Err(ClaimError::Dropped(r)),
            Action::Deliver => return Err(ClaimError::Protocol),
            Action::Forward(branches) => {
                if branches.len() != 1 {
                    return Err(ClaimError::NotUnicast);
                }
                let b = branches[0];
                let ch = channel_between(g, at, b.to)?;
                let idx = tree.channels.len();
                tree.channels.push(ch);
                tree.vcs.push(b.vc);
                tree.parent.push(idx.checked_sub(1));
                tree.fan.push(idx);
                came = Some(at);
                at = b.to;
                h = b.header;
            }
        }
    }
    Err(ClaimError::Livelock)
}

/// Builds the emission fan tree rooted at the S-XB.
fn emission_fan(
    scheme: &dyn Scheme,
    g: &NetworkGraph,
    src_coord: Coord,
) -> Result<ClaimTree, ClaimError> {
    let serial = scheme.serializing_node().ok_or(ClaimError::Protocol)?;
    let h = Header::broadcast_request(src_coord);
    let mut frontier = Vec::new();
    for b in scheme.emission(&h) {
        frontier.push((b.to, Some(serial), b.header, None));
    }
    if frontier.is_empty() {
        return Err(ClaimError::Protocol);
    }
    // The emission's root fan: all branches share fan id 0, parent None; the
    // generic walker handles the rest.
    tree_walk_with_roots(scheme, g, serial, frontier)
}

/// BFS claim-tree construction starting from injection points.
///
/// `starts`: (node, came_from, header, parent channel idx).
type Start = (Node, Option<Node>, Header, Option<usize>);

fn tree_walk(
    scheme: &dyn Scheme,
    g: &NetworkGraph,
    starts: Vec<Start>,
) -> Result<ClaimTree, ClaimError> {
    let mut tree = ClaimTree {
        channels: Vec::new(),
        vcs: Vec::new(),
        parent: Vec::new(),
        fan: Vec::new(),
    };
    let mut fan_counter = 0usize;
    let mut queue: VecDeque<Start> = starts.into();
    let budget = 8 * g.num_channels() + 64;
    let mut visits = 0usize;
    while let Some((at, came, h, parent)) = queue.pop_front() {
        visits += 1;
        if visits > budget {
            return Err(ClaimError::Livelock);
        }
        match scheme.decide(at, came, &h) {
            Action::Deliver => {}
            // Skipped faulty leaves are silent non-claims.
            Action::Drop(DropReason::DestinationFaulty) => {}
            Action::Drop(r) => return Err(ClaimError::Dropped(r)),
            Action::Gather => return Err(ClaimError::Protocol),
            Action::Forward(branches) => {
                let fan = fan_counter;
                fan_counter += 1;
                for b in branches {
                    let ch = channel_between(g, at, b.to)?;
                    let idx = tree.channels.len();
                    tree.channels.push(ch);
                    tree.vcs.push(b.vc);
                    tree.parent.push(parent);
                    tree.fan.push(fan);
                    queue.push_back((b.to, Some(at), b.header, Some(idx)));
                }
            }
        }
    }
    Ok(tree)
}

/// Like [`tree_walk`] but seeds the tree with an explicit root fan emitted
/// by `root` (the S-XB emission, which claims its ports without an upstream
/// channel).
fn tree_walk_with_roots(
    scheme: &dyn Scheme,
    g: &NetworkGraph,
    root: Node,
    roots: Vec<Start>,
) -> Result<ClaimTree, ClaimError> {
    let mut tree = ClaimTree {
        channels: Vec::new(),
        vcs: Vec::new(),
        parent: Vec::new(),
        fan: Vec::new(),
    };
    let mut queue: VecDeque<Start> = VecDeque::new();
    for (to, _, h, _) in &roots {
        let ch = channel_between(g, root, *to)?;
        let idx = tree.channels.len();
        tree.channels.push(ch);
        tree.vcs.push(0);
        tree.parent.push(None);
        tree.fan.push(0);
        queue.push_back((*to, Some(root), *h, Some(idx)));
    }
    let mut fan_counter = 1usize;
    let budget = 8 * g.num_channels() + 64;
    let mut visits = 0usize;
    while let Some((at, came, h, parent)) = queue.pop_front() {
        visits += 1;
        if visits > budget {
            return Err(ClaimError::Livelock);
        }
        match scheme.decide(at, came, &h) {
            Action::Deliver => {}
            Action::Drop(DropReason::DestinationFaulty) => {}
            Action::Drop(r) => return Err(ClaimError::Dropped(r)),
            Action::Gather => return Err(ClaimError::Protocol),
            Action::Forward(branches) => {
                let fan = fan_counter;
                fan_counter += 1;
                for b in branches {
                    let ch = channel_between(g, at, b.to)?;
                    let idx = tree.channels.len();
                    tree.channels.push(ch);
                    tree.vcs.push(b.vc);
                    tree.parent.push(parent);
                    tree.fan.push(fan);
                    queue.push_back((b.to, Some(at), b.header, Some(idx)));
                }
            }
        }
    }
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdx_core::{NaiveBroadcast, Sr2201Routing};
    use mdx_fault::FaultSet;
    use mdx_topology::{MdCrossbar, Shape};
    use std::sync::Arc;

    fn net() -> Arc<MdCrossbar> {
        Arc::new(MdCrossbar::build(Shape::fig2()))
    }

    #[test]
    fn unicast_claims_are_a_chain() {
        let n = net();
        let s = Sr2201Routing::new(n.clone(), &FaultSet::none()).unwrap();
        let shape = n.shape();
        let h = Header::unicast(shape.coord_of(0), shape.coord_of(11));
        let t = unicast_claims(&s, n.graph(), h, 0).unwrap();
        // PE->R, R->X, X->R, R->Y, Y->R, R->PE.
        assert_eq!(t.len(), 6);
        for i in 1..t.len() {
            assert_eq!(t.parent[i], Some(i - 1));
        }
        // Prerequisites of the last channel: everything before it.
        assert_eq!(t.prerequisites(5).len(), 5);
        assert_eq!(t.prerequisites(0).len(), 0);
    }

    #[test]
    fn sxb_broadcast_claims_split_in_two() {
        let n = net();
        let s = Sr2201Routing::new(n.clone(), &FaultSet::none()).unwrap();
        let trees = broadcast_claims(&s, n.graph(), 11, n.shape().coord_of(11)).unwrap();
        assert_eq!(trees.len(), 2);
        let (request, emission) = (&trees[0], &trees[1]);
        // Request from (3,2): PE->R, R->Y3, Y3->R(3,0), R->S-XB: 4 channels.
        assert_eq!(request.len(), 4);
        // Emission: 4 root ports + per-column router fans (PE + Y-XB) and
        // leaf deliveries. Root fan shares fan id and has no parent.
        assert_eq!(emission.parent.iter().filter(|p| p.is_none()).count(), 4);
        let root_fan = emission.fan[0];
        assert_eq!(emission.fan.iter().filter(|&&f| f == root_fan).count(), 4);
        // Every PE link is claimed exactly once: 12 deliveries.
        let pe_links = emission
            .channels
            .iter()
            .filter(|&&c| {
                let info = n.graph().channel(c);
                matches!(n.graph().node(info.dst), Node::Pe(_))
            })
            .count();
        assert_eq!(pe_links, 12);
    }

    #[test]
    fn naive_broadcast_single_tree() {
        let n = net();
        let s = NaiveBroadcast::new(n.clone());
        let trees = broadcast_claims(&s, n.graph(), 0, n.shape().coord_of(0)).unwrap();
        assert_eq!(trees.len(), 1);
        let t = &trees[0];
        // Covers all 12 PE delivery links.
        let pe_links = t
            .channels
            .iter()
            .filter(|&&c| {
                let info = n.graph().channel(c);
                matches!(n.graph().node(info.dst), Node::Pe(_))
            })
            .count();
        assert_eq!(pe_links, 12);
    }

    #[test]
    fn prerequisites_include_ancestor_siblings() {
        let n = net();
        let s = Sr2201Routing::new(n.clone(), &FaultSet::none()).unwrap();
        let trees = broadcast_claims(&s, n.graph(), 0, n.shape().coord_of(0)).unwrap();
        let emission = &trees[1];
        // Take any leaf (a PE delivery in a column): its prerequisites must
        // include all 4 root ports of the S-XB.
        let leaf = emission.len() - 1;
        let prereqs = emission.prerequisites(leaf);
        let root_fan = emission.fan[0];
        let roots: Vec<usize> = (0..emission.len())
            .filter(|&i| emission.fan[i] == root_fan)
            .collect();
        for r in roots {
            assert!(prereqs.contains(&r), "root port {r} missing from prereqs");
        }
    }
}
