//! # mdx-deadlock
//!
//! Static deadlock analysis for routing schemes on the multi-dimensional
//! crossbar, in the tradition of Dally & Seitz's channel-dependency-graph
//! criterion, extended for the *AND-acquisition* of hardware multicast
//! (cf. Boppana, Chalasani & Ni, *Resource Deadlocks and Performance of
//! Wormhole Multicast Routing Algorithms*, IEEE TPDS 1998 — the theory the
//! paper's reference list draws on).
//!
//! ## Model
//!
//! Every *communication instance* (one unicast, one broadcast-request leg,
//! one broadcast emission fan) claims a rooted **tree of channels**: the
//! channels a cut-through packet acquires, holding each from grant to tail
//! passage. From each tree we derive the possible **hold → wait** pairs:
//!
//! * a channel `a` can be held while waiting for channel `b` unless `b` is
//!   one of `a`'s *prerequisites* — an ancestor of `a`, or a sibling of an
//!   ancestor (those are all fully acquired before `a` can be granted,
//!   because a multi-port fan streams only after acquiring every port);
//! * `a`'s own siblings are **not** prerequisites: ports of one fan are
//!   acquired incrementally, which is exactly the Fig. 5 mechanism.
//!
//! The union of these hold→wait relations over every instance a workload
//! can create is the **wait graph**. If it is acyclic, no cyclic hold-wait
//! can form and the scheme is deadlock-free for that workload family
//! (conservative in the safe direction). A cycle is a *potential* deadlock,
//! which the experiments then confirm or refute in the cycle-level
//! simulator.
//!
//! The S-XB's serialization queue decouples the request leg from the
//! emission fan: a gathered request releases all its channels before the
//! emission claims any, so they are independent instances.

//! ```
//! use mdx_core::Sr2201Routing;
//! use mdx_deadlock::{verify_scheme, waitgraph::TrafficFamily};
//! use mdx_fault::FaultSet;
//! use mdx_topology::{MdCrossbar, Shape};
//! use std::sync::Arc;
//!
//! let net = Arc::new(MdCrossbar::build(Shape::fig2()));
//! let scheme = Sr2201Routing::new(net.clone(), &FaultSet::none()).unwrap();
//! let verdict = verify_scheme(&net, &scheme, &FaultSet::none(), TrafficFamily::all());
//! assert!(verdict.report.deadlock_free());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod claims;
pub mod runtime;
pub mod transition;
pub mod waitgraph;

pub use claims::{broadcast_claims, unicast_claims, ClaimError, ClaimTree};
pub use runtime::{analyze_waits, ChainReport, WaitFor};
pub use transition::{
    find_cycles, EpochWait, TransitionChecker, TransitionCycle, TransitionReport,
    TransitionViolation,
};
pub use waitgraph::{analyze_trees, verify_scheme, CdgReport, SchemeVerdict};
