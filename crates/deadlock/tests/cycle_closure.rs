//! Property: every wait-for-graph cycle the simulator reports is a real
//! cycle — non-empty, and *closed*: each edge's holding packet is the next
//! edge's waiting packet (wrapping around).
//!
//! The generators are the paper's two deadlock recipes: simultaneous naive
//! broadcasts (Fig. 5) and the broadcast + detoured unicast race on the
//! D-XB != S-XB variant (Fig. 9), randomized over sources, seeds, offsets,
//! and packet lengths.

use mdx_core::{Header, NaiveBroadcast, RouteChange, RoutingConfig, Sr2201Routing};
use mdx_fault::{FaultSet, FaultSite};
use mdx_sim::{DeadlockInfo, InjectSpec, SimConfig, SimOutcome, Simulator};
use mdx_topology::{Coord, MdCrossbar, Shape};
use proptest::prelude::*;
use std::sync::Arc;

/// The closure property itself.
fn assert_cycle_closed(info: &DeadlockInfo) -> Result<(), TestCaseError> {
    prop_assert!(!info.cycle.is_empty(), "reported cycle is empty");
    for (i, edge) in info.cycle.iter().enumerate() {
        let next = &info.cycle[(i + 1) % info.cycle.len()];
        prop_assert!(
            edge.holder == next.waiter,
            "cycle not closed at edge {}: {} holds {} but next waiter is {}",
            i,
            edge.holder,
            edge.channel,
            next.waiter
        );
    }
    Ok(())
}

fn naive_bc(shape: &Shape, src: usize, flits: usize) -> InjectSpec {
    let c = shape.coord_of(src);
    InjectSpec {
        src_pe: src,
        header: Header {
            rc: RouteChange::Broadcast,
            dest: c,
            src: c,
        },
        flits,
        inject_at: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fig. 5: simultaneous unserialized broadcasts. Whenever the run
    /// deadlocks, the reported cycle is closed.
    #[test]
    fn naive_broadcast_cycles_are_closed(
        picks in proptest::collection::vec(any::<u64>(), 2..=6),
        flits in 4usize..24,
        seed in any::<u64>(),
    ) {
        let net = Arc::new(MdCrossbar::build(Shape::fig2()));
        let shape = net.shape().clone();
        let n = shape.num_pes();
        let mut sources: Vec<usize> = picks.iter().map(|&p| (p as usize) % n).collect();
        sources.sort_unstable();
        sources.dedup();
        prop_assume!(sources.len() >= 2);

        let scheme = Arc::new(NaiveBroadcast::new(net.clone()));
        let mut sim = Simulator::new(
            net.graph().clone(),
            scheme,
            SimConfig { arb_seed: seed, ..SimConfig::default() },
        );
        for &src in &sources {
            sim.schedule(naive_bc(&shape, src, flits));
        }
        if let SimOutcome::Deadlock(info) = sim.run().outcome {
            assert_cycle_closed(&info)?;
        }
    }

    /// Fig. 9: broadcast + detoured unicast on the D-XB != S-XB variant
    /// with a faulty router at (1,0). Whenever the run deadlocks, the
    /// reported cycle is closed.
    #[test]
    fn separate_dxb_cycles_are_closed(
        offset in 0u64..48,
        flits in 8usize..32,
        seed in any::<u64>(),
    ) {
        let net = Arc::new(MdCrossbar::build(Shape::fig2()));
        let shape = net.shape().clone();
        let faults = FaultSet::single(FaultSite::Router(
            shape.index_of(Coord::new(&[1, 0])),
        ));
        let cfg = RoutingConfig::for_faults(&shape, &faults)
            .unwrap()
            .with_separate_dxb(&faults);
        let scheme = Arc::new(Sr2201Routing::with_config(net.clone(), cfg, &faults));

        let mut sim = Simulator::new(
            net.graph().clone(),
            scheme,
            SimConfig { arb_seed: seed, ..SimConfig::default() },
        );
        sim.schedule(InjectSpec {
            src_pe: 9,
            header: Header::broadcast_request(shape.coord_of(9)),
            flits,
            inject_at: 0,
        });
        sim.schedule(InjectSpec {
            src_pe: 0,
            header: Header::unicast(shape.coord_of(0), shape.coord_of(5)),
            flits,
            inject_at: offset,
        });
        if let SimOutcome::Deadlock(info) = sim.run().outcome {
            assert_cycle_closed(&info)?;
        }
    }
}

/// The property holds vacuously if a generator never deadlocks; this pins
/// that both recipes really do produce cycles to check.
#[test]
fn both_recipes_produce_deadlocks() {
    let net = Arc::new(MdCrossbar::build(Shape::fig2()));
    let shape = net.shape().clone();

    let naive = Arc::new(NaiveBroadcast::new(net.clone()));
    let mut sim = Simulator::new(net.graph().clone(), naive, SimConfig::default());
    for &src in &[0usize, 4, 8, 3, 7, 11] {
        sim.schedule(naive_bc(&shape, src, 16));
    }
    assert!(
        sim.run().outcome.is_deadlock(),
        "fig5 recipe lost its deadlock"
    );

    let faults = FaultSet::single(FaultSite::Router(shape.index_of(Coord::new(&[1, 0]))));
    let cfg = RoutingConfig::for_faults(&shape, &faults)
        .unwrap()
        .with_separate_dxb(&faults);
    let scheme = Arc::new(Sr2201Routing::with_config(net.clone(), cfg, &faults));
    let mut deadlocked = false;
    'outer: for offset in 10..38u64 {
        for seed in 0..8u64 {
            let mut sim = Simulator::new(
                net.graph().clone(),
                scheme.clone(),
                SimConfig {
                    arb_seed: seed,
                    ..SimConfig::default()
                },
            );
            sim.schedule(InjectSpec {
                src_pe: 9,
                header: Header::broadcast_request(shape.coord_of(9)),
                flits: 24,
                inject_at: 0,
            });
            sim.schedule(InjectSpec {
                src_pe: 0,
                header: Header::unicast(shape.coord_of(0), shape.coord_of(5)),
                flits: 24,
                inject_at: offset,
            });
            if sim.run().outcome.is_deadlock() {
                deadlocked = true;
                break 'outer;
            }
        }
    }
    assert!(deadlocked, "fig9 recipe lost its deadlock");
}
