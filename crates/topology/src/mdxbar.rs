//! Construction of the SR2201 multi-dimensional crossbar network.

use crate::coord::{Coord, Shape};
use crate::graph::{ChannelId, GraphBuilder, NetworkGraph, Node, NodeId, XbarRef};
use serde::{Deserialize, Serialize};

/// The multi-dimensional crossbar network of the SR2201 (paper Sec. 3.1).
///
/// For a shape `n1 x n2 x ... x nd`:
///
/// * each PE owns a router (relay switch), wired PE <-> router;
/// * each of the `d` dimensions contributes `n / n_i` crossbars, one per
///   lattice line, and each router is wired to the `d` crossbars of the lines
///   through its coordinate;
/// * a crossbar of dimension `i` therefore has `n_i` bidirectional ports, one
///   per router on its line, and routers have `d + 1` ports (the paper's
///   `(d+1) x (d+1)` relay switch: `d` crossbars plus the PE itself).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MdCrossbar {
    shape: Shape,
    graph: NetworkGraph,
}

impl MdCrossbar {
    /// Builds the network for `shape`.
    pub fn build(shape: Shape) -> MdCrossbar {
        let mut b = GraphBuilder::new();
        // PEs and routers first, in PE-index order so that NodeId arithmetic
        // is never needed — lookups go through the node index.
        for i in 0..shape.num_pes() {
            let c = shape.coord_of(i);
            b.add_node(Node::Pe(i), Some(c));
            b.add_node(Node::Router(i), Some(c));
        }
        for dim in 0..shape.d() {
            for line in 0..shape.lines_in_dim(dim) {
                b.add_node(
                    Node::Xbar(XbarRef {
                        dim: dim as u8,
                        line: line as u32,
                    }),
                    None,
                );
            }
        }
        // PE <-> router links.
        for i in 0..shape.num_pes() {
            let pe = Node::Pe(i);
            let r = Node::Router(i);
            let (pe_id, r_id) = (
                b.add_node(pe, Some(shape.coord_of(i))),
                b.add_node(r, Some(shape.coord_of(i))),
            );
            b.add_link(pe_id, r_id);
        }
        // Router <-> crossbar links.
        for i in 0..shape.num_pes() {
            let c = shape.coord_of(i);
            let r_id = b.add_node(Node::Router(i), Some(c));
            for dim in 0..shape.d() {
                let xb = Node::Xbar(XbarRef {
                    dim: dim as u8,
                    line: shape.line_of(c, dim) as u32,
                });
                let xb_id = b.add_node(xb, None);
                b.add_link(r_id, xb_id);
            }
        }
        MdCrossbar {
            shape,
            graph: b.build(),
        }
    }

    /// The lattice shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The underlying channel graph.
    #[inline]
    pub fn graph(&self) -> &NetworkGraph {
        &self.graph
    }

    /// Node id of PE `i`.
    pub fn pe(&self, i: usize) -> NodeId {
        self.graph.expect_id(Node::Pe(i))
    }

    /// Node id of the PE at coordinate `c`.
    pub fn pe_at(&self, c: Coord) -> NodeId {
        self.pe(self.shape.index_of(c))
    }

    /// Node id of router `i`.
    pub fn router(&self, i: usize) -> NodeId {
        self.graph.expect_id(Node::Router(i))
    }

    /// Node id of the router at coordinate `c`.
    pub fn router_at(&self, c: Coord) -> NodeId {
        self.router(self.shape.index_of(c))
    }

    /// Node id of a crossbar.
    pub fn xbar(&self, xb: XbarRef) -> NodeId {
        self.graph.expect_id(Node::Xbar(xb))
    }

    /// The crossbar of dimension `dim` whose line passes through `c`.
    pub fn xbar_through(&self, c: Coord, dim: usize) -> XbarRef {
        XbarRef {
            dim: dim as u8,
            line: self.shape.line_of(c, dim) as u32,
        }
    }

    /// All crossbars, ordered by dimension then line.
    pub fn xbars(&self) -> Vec<XbarRef> {
        let mut v = Vec::new();
        for dim in 0..self.shape.d() {
            for line in 0..self.shape.lines_in_dim(dim) {
                v.push(XbarRef {
                    dim: dim as u8,
                    line: line as u32,
                });
            }
        }
        v
    }

    /// Total number of crossbars across all dimensions.
    pub fn num_xbars(&self) -> usize {
        (0..self.shape.d())
            .map(|d| self.shape.lines_in_dim(d))
            .sum()
    }

    /// The routers attached to a crossbar, in line-position order.
    pub fn routers_on_xbar(&self, xb: XbarRef) -> Vec<NodeId> {
        self.shape
            .line_coords(xb.dim as usize, xb.line as usize)
            .map(|c| self.router_at(c))
            .collect()
    }

    /// The channel from router at `c` into the dimension-`dim` crossbar.
    pub fn router_to_xbar(&self, c: Coord, dim: usize) -> ChannelId {
        let r = self.router_at(c);
        let x = self.xbar(self.xbar_through(c, dim));
        self.graph
            .channel_between(r, x)
            .expect("router is wired to its crossbars")
    }

    /// The channel from the dimension-`dim` crossbar down to the router at `c`.
    pub fn xbar_to_router(&self, c: Coord, dim: usize) -> ChannelId {
        let r = self.router_at(c);
        let x = self.xbar(self.xbar_through(c, dim));
        self.graph
            .channel_between(x, r)
            .expect("router is wired to its crossbars")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_network_counts() {
        // Fig. 2: 4x3 2D crossbar — 12 PEs, 12 routers, 3 X-XBs (4 ports
        // each) and 4 Y-XBs (3 ports each).
        let net = MdCrossbar::build(Shape::fig2());
        assert_eq!(net.num_xbars(), 7);
        assert_eq!(net.graph().num_nodes(), 12 + 12 + 7);
        // Channels: 12 PE links + 12*2 router-XB links, each full duplex.
        assert_eq!(net.graph().num_channels(), 2 * (12 + 24));
    }

    #[test]
    fn router_degree_is_d_plus_one() {
        // Sec. 3.1: "The number of ports needed by a router of an MD crossbar
        // is equal to one plus the number of dimensions."
        for dims in [&[4u16, 3][..], &[2, 2, 2], &[5]] {
            let net = MdCrossbar::build(Shape::new(dims).unwrap());
            let d = dims.len();
            for i in 0..net.shape().num_pes() {
                let r = net.router(i);
                assert_eq!(net.graph().outgoing(r).len(), d + 1);
                assert_eq!(net.graph().incoming(r).len(), d + 1);
            }
        }
    }

    #[test]
    fn xbar_degree_is_line_extent() {
        let net = MdCrossbar::build(Shape::fig2());
        for xb in net.xbars() {
            let id = net.xbar(xb);
            let expect = net.shape().extent(xb.dim as usize) as usize;
            assert_eq!(net.graph().outgoing(id).len(), expect);
            assert_eq!(net.graph().incoming(id).len(), expect);
        }
    }

    #[test]
    fn one_dim_crossbar_is_a_single_switch() {
        // Sec. 3.1: "For the case of d=1, the MD crossbar network is
        // equivalent to a conventional crossbar network."
        let net = MdCrossbar::build(Shape::new(&[8]).unwrap());
        assert_eq!(net.num_xbars(), 1);
        let xb = net.xbar(XbarRef { dim: 0, line: 0 });
        assert_eq!(net.graph().outgoing(xb).len(), 8);
    }

    #[test]
    fn hypercube_limit_case() {
        // Sec. 3.1: when d = log2(n) every extent is 2 and the router count
        // per crossbar is 2 — the hypercube limit.
        let net = MdCrossbar::build(Shape::new(&[2, 2, 2]).unwrap());
        assert_eq!(net.num_xbars(), 3 * 4);
        for xb in net.xbars() {
            assert_eq!(net.routers_on_xbar(xb).len(), 2);
        }
    }

    #[test]
    fn routers_on_xbar_share_the_line() {
        let net = MdCrossbar::build(Shape::new(&[4, 3, 2]).unwrap());
        for xb in net.xbars() {
            let routers = net.routers_on_xbar(xb);
            assert_eq!(routers.len(), net.shape().extent(xb.dim as usize) as usize);
            // All routers on the crossbar agree on every non-dim coordinate.
            let c0 = net.graph().coord(routers[0]).unwrap();
            for &r in &routers[1..] {
                let c = net.graph().coord(r).unwrap();
                for d in 0..net.shape().d() {
                    if d != xb.dim as usize {
                        assert_eq!(c.get(d), c0.get(d));
                    }
                }
            }
        }
    }

    #[test]
    fn channel_helpers_agree_with_graph() {
        let net = MdCrossbar::build(Shape::fig2());
        let c = Coord::new(&[2, 1]);
        let up = net.router_to_xbar(c, 0);
        let info = net.graph().channel(up);
        assert_eq!(info.src, net.router_at(c));
        assert_eq!(info.dst, net.xbar(net.xbar_through(c, 0)));
        let down = net.xbar_to_router(c, 0);
        let info = net.graph().channel(down);
        assert_eq!(info.dst, net.router_at(c));
    }

    #[test]
    fn full_scale_sr2201_builds() {
        let net = MdCrossbar::build(Shape::sr2201_full());
        assert_eq!(net.shape().num_pes(), 2048);
        // 3D 16x16x8: 128 X-XBs + 128 Y-XBs + 256 Z-XBs.
        assert_eq!(net.num_xbars(), 128 + 128 + 256);
        // Every node reachable: routers have 4 ports, PEs 1.
        let g = net.graph();
        assert_eq!(g.num_channels(), 2 * (2048 + 3 * 2048));
    }
}
