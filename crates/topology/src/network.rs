//! Topology-id dispatch: one handle over every substrate the scheme zoo
//! routes on.
//!
//! Campaign scenarios and tournament cells name their substrate by a stable
//! string id (the `topology` scenario field); [`Network::build`] turns the
//! id plus a [`Shape`] into the concrete network. The MD crossbar stays the
//! default (`"mdx"`), so pre-existing scenario tokens — which omit the
//! field — are untouched.

use crate::coord::Shape;
use crate::graph::NetworkGraph;
use crate::hyperx::HyperX;
use crate::mdxbar::MdCrossbar;
use crate::mesh::{DirectNetwork, Wrap};
use crate::TopologyError;
use std::sync::Arc;

/// Every topology id [`Network::build`] accepts, in display order.
///
/// * `"mdx"` — the SR2201 multi-dimensional crossbar (the default);
/// * `"hyperx"` — per-dimension router cliques (arXiv 2404.04315);
/// * `"fullmesh"` — one global router clique (arXiv 2510.14730);
/// * `"hypercube"` — binary hypercube (every extent 2) as a direct mesh.
pub const TOPOLOGY_IDS: &[&str] = &["mdx", "hyperx", "fullmesh", "hypercube"];

/// The default topology id (the paper's network).
pub const DEFAULT_TOPOLOGY: &str = "mdx";

/// A constructed network of any supported topology.
///
/// Holds `Arc`s so schemes can share the substrate without re-building it;
/// cloning a `Network` is cheap.
#[derive(Debug, Clone)]
pub enum Network {
    /// The SR2201 multi-dimensional crossbar.
    Mdx(Arc<MdCrossbar>),
    /// HyperX or full mesh (both are clique networks over the routers).
    HyperX(Arc<HyperX>),
    /// A direct lattice network (used for the binary hypercube).
    Direct(Arc<DirectNetwork>),
}

impl Network {
    /// Builds the network named by `kind` over `shape`.
    ///
    /// Unknown ids map to [`TopologyError::UnknownTopology`]; a hypercube
    /// with any extent other than 2 maps to [`TopologyError::BadSize`].
    pub fn build(kind: &str, shape: Shape) -> Result<Network, TopologyError> {
        match kind {
            "mdx" => Ok(Network::Mdx(Arc::new(MdCrossbar::build(shape)))),
            "hyperx" => Ok(Network::HyperX(Arc::new(HyperX::build(shape)))),
            "fullmesh" => Ok(Network::HyperX(Arc::new(HyperX::full_mesh(shape)))),
            "hypercube" => {
                if shape.extents().iter().any(|&e| e != 2) {
                    return Err(TopologyError::BadSize(shape.num_pes()));
                }
                Ok(Network::Direct(Arc::new(DirectNetwork::build(
                    shape,
                    Wrap::Mesh,
                ))))
            }
            _ => Err(TopologyError::UnknownTopology(kind.to_string())),
        }
    }

    /// The topology id this network was built from.
    pub fn kind(&self) -> &'static str {
        match self {
            Network::Mdx(_) => "mdx",
            Network::HyperX(h) if h.is_full_mesh() => "fullmesh",
            Network::HyperX(_) => "hyperx",
            Network::Direct(_) => "hypercube",
        }
    }

    /// The lattice shape.
    pub fn shape(&self) -> &Shape {
        match self {
            Network::Mdx(n) => n.shape(),
            Network::HyperX(n) => n.shape(),
            Network::Direct(n) => n.shape(),
        }
    }

    /// The underlying channel graph.
    pub fn graph(&self) -> &NetworkGraph {
        match self {
            Network::Mdx(n) => n.graph(),
            Network::HyperX(n) => n.graph(),
            Network::Direct(n) => n.graph(),
        }
    }

    /// Whether this topology has crossbar switches (only the MD crossbar
    /// does; `FaultSite::Xbar` faults are meaningless elsewhere).
    pub fn has_xbars(&self) -> bool {
        matches!(self, Network::Mdx(_))
    }

    /// The MD crossbar, if that is what this network is.
    pub fn as_mdx(&self) -> Option<&Arc<MdCrossbar>> {
        match self {
            Network::Mdx(n) => Some(n),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_id_builds() {
        for &id in TOPOLOGY_IDS {
            let shape = if id == "hypercube" {
                Shape::new(&[2, 2, 2]).unwrap()
            } else {
                Shape::new(&[3, 3]).unwrap()
            };
            let net = Network::build(id, shape).unwrap();
            assert_eq!(net.kind(), id);
            assert!(net.graph().num_nodes() > 0);
        }
    }

    #[test]
    fn unknown_id_is_an_error() {
        let err = Network::build("donut", Shape::fig2()).unwrap_err();
        assert_eq!(err, TopologyError::UnknownTopology("donut".to_string()));
        assert!(err.to_string().contains("donut"));
    }

    #[test]
    fn hypercube_requires_all_extents_two() {
        assert!(Network::build("hypercube", Shape::new(&[2, 2]).unwrap()).is_ok());
        let err = Network::build("hypercube", Shape::new(&[4, 2]).unwrap()).unwrap_err();
        assert_eq!(err, TopologyError::BadSize(8));
    }

    #[test]
    fn only_mdx_has_xbars() {
        let shape = Shape::new(&[2, 2]).unwrap();
        for &id in TOPOLOGY_IDS {
            let net = Network::build(id, shape.clone()).unwrap();
            assert_eq!(net.has_xbars(), id == "mdx");
            assert_eq!(net.as_mdx().is_some(), id == "mdx");
        }
    }

    #[test]
    fn default_id_is_listed_first() {
        assert_eq!(TOPOLOGY_IDS[0], DEFAULT_TOPOLOGY);
    }
}
