//! HyperX and full-mesh direct networks (comparison topologies).
//!
//! A **HyperX** (Ahn et al., SC'09; fault-tolerant routing per arXiv
//! 2404.04315) places one router per lattice point and fully connects every
//! axis-aligned line: two routers are adjacent iff their coordinates differ
//! in exactly one dimension. Each dimension therefore contributes a clique
//! over every line, giving a diameter of `d` hops with one hop per
//! dimension — the same "one crossbar traversal per differing dimension"
//! path structure as the MD crossbar, but with the crossbar switch replaced
//! by direct point-to-point links (router degree grows as
//! `sum(n_i - 1) + 1` instead of the constant `d + 1`).
//!
//! The **full mesh** is the degenerate single-clique case: every pair of
//! routers is adjacent regardless of shape. It is the substrate for the
//! VC-free shortest-path routing comparison (arXiv 2510.14730), where
//! deadlock freedom comes from an acyclic ordering of the direct links
//! rather than from virtual channels or central serialization.

use crate::coord::{Coord, Shape};
use crate::graph::{GraphBuilder, NetworkGraph, Node, NodeId};
use serde::{Deserialize, Serialize};

/// A HyperX (per-dimension cliques) or full-mesh (one global clique) direct
/// network: one router per PE, PE <-> router links, and direct router <->
/// router links per the clique rule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HyperX {
    shape: Shape,
    /// Global clique (full mesh) instead of per-dimension cliques.
    full: bool,
    graph: NetworkGraph,
}

impl HyperX {
    /// Builds the HyperX for `shape`: routers `a` and `b` are linked iff
    /// their coordinates differ in exactly one dimension.
    pub fn build(shape: Shape) -> HyperX {
        HyperX::construct(shape, false)
    }

    /// Builds the full mesh over `shape`: every pair of routers is linked.
    pub fn full_mesh(shape: Shape) -> HyperX {
        HyperX::construct(shape, true)
    }

    fn construct(shape: Shape, full: bool) -> HyperX {
        let mut b = GraphBuilder::new();
        // PEs and routers in PE-index order, then the PE <-> router links —
        // the same ordering discipline as `MdCrossbar::build`.
        for i in 0..shape.num_pes() {
            let c = shape.coord_of(i);
            b.add_node(Node::Pe(i), Some(c));
            b.add_node(Node::Router(i), Some(c));
        }
        for i in 0..shape.num_pes() {
            let c = shape.coord_of(i);
            let pe = b.add_node(Node::Pe(i), Some(c));
            let r = b.add_node(Node::Router(i), Some(c));
            b.add_link(pe, r);
        }
        // Router cliques. Each undirected pair is wired exactly once
        // (`add_link` emits both directed channels; the builder panics on
        // duplicates), hence the `i < j` guard.
        for i in 0..shape.num_pes() {
            let ci = shape.coord_of(i);
            let ri = b.add_node(Node::Router(i), Some(ci));
            for j in (i + 1)..shape.num_pes() {
                let cj = shape.coord_of(j);
                if full || ci.hamming(&cj) == 1 {
                    let rj = b.add_node(Node::Router(j), Some(cj));
                    b.add_link(ri, rj);
                }
            }
        }
        HyperX {
            shape,
            full,
            graph: b.build(),
        }
    }

    /// The lattice shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Whether this is the full-mesh (single global clique) variant.
    #[inline]
    pub fn is_full_mesh(&self) -> bool {
        self.full
    }

    /// The underlying channel graph.
    #[inline]
    pub fn graph(&self) -> &NetworkGraph {
        &self.graph
    }

    /// Node id of PE `i`.
    pub fn pe(&self, i: usize) -> NodeId {
        self.graph.expect_id(Node::Pe(i))
    }

    /// Node id of router `i`.
    pub fn router(&self, i: usize) -> NodeId {
        self.graph.expect_id(Node::Router(i))
    }

    /// Node id of the router at coordinate `c`.
    pub fn router_at(&self, c: Coord) -> NodeId {
        self.router(self.shape.index_of(c))
    }

    /// Whether routers `a` and `b` are directly linked.
    pub fn adjacent(&self, a: Coord, b: Coord) -> bool {
        if a == b {
            return false;
        }
        self.full || a.hamming(&b) == 1
    }

    /// Minimal router-hop distance between two PEs: the number of differing
    /// dimensions for a HyperX, at most one direct hop for the full mesh.
    pub fn distance(&self, a: Coord, b: Coord) -> usize {
        if self.full {
            usize::from(a != b)
        } else {
            a.hamming(&b)
        }
    }

    /// Number of undirected router <-> router links.
    pub fn num_router_links(&self) -> usize {
        // Every channel is one direction of a duplex link; subtract the PE
        // attachment links.
        self.graph.num_channels() / 2 - self.shape.num_pes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hyperx_links_per_dimension_cliques() {
        // 3x4 HyperX: rows of 3 contribute 4 * C(3,2) = 12 links, columns
        // of 4 contribute 3 * C(4,2) = 18 links.
        let net = HyperX::build(Shape::new(&[3, 4]).unwrap());
        assert_eq!(net.num_router_links(), 12 + 18);
        assert_eq!(net.graph().num_nodes(), 2 * 12);
    }

    #[test]
    fn hyperx_router_degree() {
        // Degree = sum over dims of (n_i - 1), plus the PE port.
        let net = HyperX::build(Shape::new(&[3, 4]).unwrap());
        for i in 0..net.shape().num_pes() {
            let r = net.router(i);
            assert_eq!(net.graph().outgoing(r).len(), (3 - 1) + (4 - 1) + 1);
        }
    }

    #[test]
    fn hyperx_adjacency_is_one_differing_dim() {
        let net = HyperX::build(Shape::new(&[3, 3]).unwrap());
        let a = Coord::new(&[0, 0]);
        assert!(net.adjacent(a, Coord::new(&[2, 0])));
        assert!(net.adjacent(a, Coord::new(&[0, 1])));
        assert!(!net.adjacent(a, Coord::new(&[1, 1])));
        assert!(!net.adjacent(a, a));
        assert_eq!(net.distance(a, Coord::new(&[1, 2])), 2);
    }

    #[test]
    fn full_mesh_links_all_pairs() {
        let net = HyperX::full_mesh(Shape::new(&[6]).unwrap());
        assert!(net.is_full_mesh());
        assert_eq!(net.num_router_links(), 6 * 5 / 2);
        for i in 0..6 {
            assert_eq!(net.graph().outgoing(net.router(i)).len(), 5 + 1);
        }
    }

    #[test]
    fn full_mesh_ignores_lattice_structure() {
        // Any shape with the same PE count gives the same clique.
        let net = HyperX::full_mesh(Shape::new(&[2, 3]).unwrap());
        assert_eq!(net.num_router_links(), 6 * 5 / 2);
        assert_eq!(net.distance(Coord::new(&[0, 0]), Coord::new(&[1, 2])), 1);
    }

    #[test]
    fn one_dim_hyperx_is_a_full_mesh() {
        let hx = HyperX::build(Shape::new(&[5]).unwrap());
        let fm = HyperX::full_mesh(Shape::new(&[5]).unwrap());
        assert_eq!(hx.num_router_links(), fm.num_router_links());
    }
}
