//! Conflict analysis for remapping workload topologies onto the MD crossbar.
//!
//! Paper Sec. 3.1: *"The high number of interconnections in an MD crossbar
//! network allows many important topologies used in large-scale numerical
//! applications to be efficiently mapped onto it. ... A program that
//! generates no conflicts in these topologies will not generate conflicts
//! when re-mapped onto the MD crossbar."*
//!
//! This module provides the classic conflict-free communication schedules of
//! ring, mesh, hypercube and tree programs as sets of *phases* (pairs that
//! communicate simultaneously), computes the static dimension-order channel
//! path of every pair on the MD crossbar (and on a mesh/torus for
//! comparison), and counts channel conflicts.

use crate::coord::Shape;
use crate::graph::ChannelId;
use crate::mdxbar::MdCrossbar;
use crate::mesh::DirectNetwork;
use std::collections::HashMap;

/// One communication phase: the (source PE, destination PE) pairs that are
/// simultaneously in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phase {
    /// Human-readable phase label.
    pub label: String,
    /// Simultaneous source/destination PE index pairs.
    pub pairs: Vec<(usize, usize)>,
}

/// The static dimension-order channel path of a point-to-point packet on the
/// MD crossbar: PE -> router, then for each dimension (in `order`) where the
/// coordinates differ: router -> crossbar -> router, finally router -> PE.
///
/// This is the *geometric* path used for conflict analysis; the distributed,
/// header-driven routing logic lives in `mdx-core`.
pub fn dor_path(net: &MdCrossbar, src: usize, dst: usize, order: &[usize]) -> Vec<ChannelId> {
    let g = net.graph();
    let shape = net.shape();
    let (sc, dc) = (shape.coord_of(src), shape.coord_of(dst));
    let mut path = Vec::new();
    let mut cur = sc;
    path.push(
        g.channel_between(net.pe(src), net.router(src))
            .expect("PE wired to router"),
    );
    for &dim in order {
        if cur.get(dim) == dc.get(dim) {
            continue;
        }
        let next = cur.with(dim, dc.get(dim));
        path.push(net.router_to_xbar(cur, dim));
        path.push(net.xbar_to_router(next, dim));
        cur = next;
    }
    debug_assert_eq!(cur, dc, "dimension order must cover all dims");
    path.push(
        g.channel_between(net.router(dst), net.pe(dst))
            .expect("router wired to PE"),
    );
    path
}

/// The static dimension-order path on a direct (mesh/torus) network, taking
/// the shorter way around in each dimension for a torus.
pub fn direct_dor_path(
    net: &DirectNetwork,
    src: usize,
    dst: usize,
    order: &[usize],
) -> Vec<ChannelId> {
    let g = net.graph();
    let shape = net.shape();
    let dc = shape.coord_of(dst);
    let mut cur = shape.coord_of(src);
    let mut path = vec![g
        .channel_between(net.pe(src), net.router(src))
        .expect("PE wired to router")];
    for &dim in order {
        while cur.get(dim) != dc.get(dim) {
            let e = shape.extent(dim) as i32;
            let fwd = (dc.get(dim) as i32 - cur.get(dim) as i32).rem_euclid(e);
            let positive = match net.wrap() {
                crate::mesh::Wrap::Mesh => dc.get(dim) > cur.get(dim),
                crate::mesh::Wrap::Torus => fwd <= e - fwd,
            };
            let next = net
                .neighbor(cur, dim, positive)
                .expect("mesh step stays in bounds");
            path.push(
                g.channel_between(net.router_at(cur), net.router_at(next))
                    .expect("neighbors are linked"),
            );
            cur = next;
        }
    }
    path.push(
        g.channel_between(net.router(dst), net.pe(dst))
            .expect("router wired to PE"),
    );
    path
}

/// Conflict count of a set of simultaneous paths: the number of (channel,
/// extra user) collisions, i.e. `sum over channels of max(users - 1, 0)`.
///
/// Zero means every channel carries at most one packet — the phase is
/// conflict-free under cut-through.
pub fn conflicts(paths: &[Vec<ChannelId>]) -> usize {
    let mut users: HashMap<ChannelId, usize> = HashMap::new();
    for p in paths {
        for &c in p {
            *users.entry(c).or_insert(0) += 1;
        }
    }
    users.values().map(|&u| u.saturating_sub(1)).sum()
}

/// Conflicts of one phase on the MD crossbar under X-Y dimension order.
pub fn phase_conflicts_mdx(net: &MdCrossbar, phase: &Phase) -> usize {
    let order: Vec<usize> = (0..net.shape().d()).collect();
    let paths: Vec<Vec<ChannelId>> = phase
        .pairs
        .iter()
        .map(|&(s, d)| dor_path(net, s, d, &order))
        .collect();
    conflicts(&paths)
}

/// Conflicts of one phase on a direct network under X-Y dimension order.
pub fn phase_conflicts_direct(net: &DirectNetwork, phase: &Phase) -> usize {
    let order: Vec<usize> = (0..net.shape().d()).collect();
    let paths: Vec<Vec<ChannelId>> = phase
        .pairs
        .iter()
        .map(|&(s, d)| direct_dor_path(net, s, d, &order))
        .collect();
    conflicts(&paths)
}

/// Ring program schedule: every node sends to its successor simultaneously
/// (a rotation permutation — conflict-free on a native ring).
pub fn ring_phases(n: usize) -> Vec<Phase> {
    vec![
        Phase {
            label: "ring shift +1".into(),
            pairs: (0..n).map(|i| (i, (i + 1) % n)).collect(),
        },
        Phase {
            label: "ring shift -1".into(),
            pairs: (0..n).map(|i| (i, (i + n - 1) % n)).collect(),
        },
    ]
}

/// Mesh program schedule: the four nearest-neighbor exchange phases of a
/// `w x h` logical mesh mapped identically onto the PEs.
pub fn mesh_phases(shape: &Shape) -> Vec<Phase> {
    let mut phases = Vec::new();
    for dim in 0..shape.d() {
        for (dirn, label) in [(1i32, "+"), (-1, "-")] {
            let mut pairs = Vec::new();
            for i in 0..shape.num_pes() {
                let c = shape.coord_of(i);
                let t = c.get(dim) as i32 + dirn;
                if t >= 0 && (t as u16) < shape.extent(dim) {
                    pairs.push((i, shape.index_of(c.with(dim, t as u16))));
                }
            }
            phases.push(Phase {
                label: format!("mesh exchange dim{dim}{label}"),
                pairs,
            });
        }
    }
    phases
}

/// Hypercube program schedule: one phase per hypercube dimension, with every
/// node exchanging with its partner across that bit (cube dimension order,
/// as in Johnsson-Ho style algorithms).
///
/// The logical hypercube node id is interpreted directly as the PE index, so
/// the shape's extents must be powers of two for the bit partition to align
/// with lattice digits.
pub fn hypercube_phases(shape: &Shape) -> Vec<Phase> {
    assert!(
        shape.extents().iter().all(|e| e.is_power_of_two()),
        "hypercube embedding needs power-of-two extents"
    );
    let n = shape.num_pes();
    let bits = n.trailing_zeros() as usize;
    (0..bits)
        .map(|b| Phase {
            label: format!("hypercube exchange bit {b}"),
            pairs: (0..n).map(|i| (i, i ^ (1 << b))).collect(),
        })
        .collect()
}

/// Tree program schedule: a complete binary tree with `levels` levels mapped
/// breadth-first onto PEs `0..2^levels - 1`; phases are per-level,
/// per-child-side parent-to-child sends (the schedule a native tree network
/// executes without conflicts).
pub fn tree_phases(levels: usize) -> Vec<Phase> {
    let mut phases = Vec::new();
    for level in 0..levels.saturating_sub(1) {
        let start = (1usize << level) - 1;
        let end = (1usize << (level + 1)) - 1;
        for (side, off) in [("left", 1usize), ("right", 2usize)] {
            phases.push(Phase {
                label: format!("tree level {level} -> {side} children"),
                pairs: (start..end).map(|p| (p, 2 * p + off)).collect(),
            });
        }
    }
    phases
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::Wrap;

    fn mdx(dims: &[u16]) -> MdCrossbar {
        MdCrossbar::build(Shape::new(dims).unwrap())
    }

    #[test]
    fn dor_path_shape() {
        let net = mdx(&[4, 3]);
        // Same-row transfer: PE link, router->XB, XB->router, PE link.
        let p = dor_path(&net, 0, 3, &[0, 1]);
        assert_eq!(p.len(), 4);
        // Two-dimension transfer adds one more XB traversal.
        let p = dor_path(&net, 0, 11, &[0, 1]);
        assert_eq!(p.len(), 6);
        // Self-send: PE -> router -> PE.
        let p = dor_path(&net, 5, 5, &[0, 1]);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn ring_remaps_conflict_free() {
        let net = mdx(&[4, 3]);
        for phase in ring_phases(12) {
            assert_eq!(phase_conflicts_mdx(&net, &phase), 0, "{}", phase.label);
        }
    }

    #[test]
    fn mesh_remaps_conflict_free() {
        let net = mdx(&[4, 4]);
        for phase in mesh_phases(net.shape()) {
            assert_eq!(phase_conflicts_mdx(&net, &phase), 0, "{}", phase.label);
        }
    }

    #[test]
    fn hypercube_remaps_conflict_free() {
        let net = mdx(&[4, 4]);
        for phase in hypercube_phases(net.shape()) {
            assert_eq!(phase_conflicts_mdx(&net, &phase), 0, "{}", phase.label);
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn hypercube_embedding_rejects_non_pow2() {
        hypercube_phases(&Shape::new(&[3, 4]).unwrap());
    }

    #[test]
    fn tree_remap_not_worse_than_mesh() {
        // The paper claims efficient tree mapping; in aggregate over the full
        // per-level schedule the MD crossbar sees no more conflicts than a
        // mesh of the same size (individual phases can tip either way by one
        // on a 4x4 because of where the BFS layout folds).
        let shape = Shape::new(&[4, 4]).unwrap();
        let net = mdx(&[4, 4]);
        let mesh = DirectNetwork::build(shape, Wrap::Mesh);
        let (mut total_mdx, mut total_mesh) = (0, 0);
        for phase in tree_phases(4) {
            total_mdx += phase_conflicts_mdx(&net, &phase);
            total_mesh += phase_conflicts_direct(&mesh, &phase);
        }
        assert!(
            total_mdx <= total_mesh,
            "mdx {total_mdx} > mesh {total_mesh}"
        );
    }

    #[test]
    fn transpose_conflicts_fewer_on_mdx_than_mesh() {
        // Sec. 3.1 "few network conflicts": a matrix-transpose permutation
        // conflicts heavily on a mesh but far less on the MD crossbar
        // (measured 96 vs 224 channel collisions on 8x8).
        let shape = Shape::new(&[8, 8]).unwrap();
        let net = mdx(&[8, 8]);
        let mesh = DirectNetwork::build(shape.clone(), Wrap::Mesh);
        let pairs: Vec<(usize, usize)> = (0..shape.num_pes())
            .map(|i| {
                let c = shape.coord_of(i);
                let t = crate::coord::Coord::new(&[c.get(1), c.get(0)]);
                (i, shape.index_of(t))
            })
            .collect();
        let phase = Phase {
            label: "transpose".into(),
            pairs,
        };
        let on_mdx = phase_conflicts_mdx(&net, &phase);
        let on_mesh = phase_conflicts_direct(&mesh, &phase);
        assert!(on_mdx < on_mesh, "mdx {on_mdx} !< mesh {on_mesh}");
    }

    #[test]
    fn direct_dor_path_torus_takes_short_way() {
        let torus = DirectNetwork::build(Shape::new(&[4, 3]).unwrap(), Wrap::Torus);
        // 0 -> 3 along X: one wrap hop instead of three forward hops.
        let p = direct_dor_path(&torus, 0, 3, &[0, 1]);
        assert_eq!(p.len(), 3); // PE link + 1 hop + PE link
        let mesh = DirectNetwork::build(Shape::new(&[4, 3]).unwrap(), Wrap::Mesh);
        let p = direct_dor_path(&mesh, 0, 3, &[0, 1]);
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn dor_paths_never_repeat_a_channel() {
        // A dimension-order path is simple: each channel at most once.
        let net = mdx(&[4, 3]);
        for src in 0..12 {
            for dst in 0..12 {
                for order in [&[0usize, 1][..], &[1, 0]] {
                    let p = dor_path(&net, src, dst, order);
                    let set: std::collections::HashSet<_> = p.iter().collect();
                    assert_eq!(set.len(), p.len(), "{src}->{dst} {order:?}");
                }
            }
        }
    }

    #[test]
    fn reversed_order_uses_same_hop_count() {
        let net = mdx(&[4, 4]);
        for src in 0..16 {
            for dst in 0..16 {
                let a = dor_path(&net, src, dst, &[0, 1]).len();
                let b = dor_path(&net, src, dst, &[1, 0]).len();
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn conflicts_counts_excess_users() {
        let a = ChannelId(1);
        let b = ChannelId(2);
        assert_eq!(conflicts(&[vec![a, b], vec![a], vec![a]]), 2);
        assert_eq!(conflicts(&[vec![a], vec![b]]), 0);
        assert_eq!(conflicts(&[]), 0);
    }
}
