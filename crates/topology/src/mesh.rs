//! Direct (router-to-router) comparison topologies: k-ary d-dimensional mesh
//! and torus, and the hypercube.
//!
//! The paper's Sec. 3.1 compares the MD crossbar against mesh-connected and
//! torus networks (CRAY T3D style) and against the hypercube; these builders
//! provide those baselines over the same [`NetworkGraph`] vocabulary so the
//! same simulator runs all of them.

use crate::coord::{Coord, Shape};
use crate::graph::{GraphBuilder, NetworkGraph, Node, NodeId};
use crate::TopologyError;
use serde::{Deserialize, Serialize};

/// Whether a direct network wraps around at the edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Wrap {
    /// Mesh: no wrap-around links.
    Mesh,
    /// Torus: wrap-around links in every dimension.
    Torus,
}

/// A k-ary d-dimensional direct network: each PE's router connects to the
/// routers of the lattice neighbors (plus wrap-around links for a torus).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DirectNetwork {
    shape: Shape,
    wrap: Wrap,
    graph: NetworkGraph,
}

impl DirectNetwork {
    /// Builds a mesh or torus over `shape`.
    pub fn build(shape: Shape, wrap: Wrap) -> DirectNetwork {
        let mut b = GraphBuilder::new();
        for i in 0..shape.num_pes() {
            let c = shape.coord_of(i);
            let pe = b.add_node(Node::Pe(i), Some(c));
            let r = b.add_node(Node::Router(i), Some(c));
            b.add_link(pe, r);
        }
        // Wire +1 neighbors in every dimension (each undirected link once).
        for i in 0..shape.num_pes() {
            let c = shape.coord_of(i);
            let r = b.add_node(Node::Router(i), Some(c));
            for dim in 0..shape.d() {
                let e = shape.extent(dim);
                if e == 1 {
                    continue;
                }
                let next = match (c.get(dim) + 1 < e, wrap) {
                    (true, _) => Some(c.with(dim, c.get(dim) + 1)),
                    (false, Wrap::Torus) if e > 2 => Some(c.with(dim, 0)),
                    // e == 2 wrap would duplicate the +1 link.
                    (false, _) => None,
                };
                if let Some(nc) = next {
                    let nr = b.add_node(Node::Router(shape.index_of(nc)), Some(nc));
                    b.add_link(r, nr);
                }
            }
        }
        DirectNetwork {
            shape,
            wrap,
            graph: b.build(),
        }
    }

    /// Builds a hypercube on `n = 2^k` nodes (a k-dimensional 2-ary mesh).
    pub fn hypercube(n: usize) -> Result<DirectNetwork, TopologyError> {
        if n == 0 || !n.is_power_of_two() {
            return Err(TopologyError::BadSize(n));
        }
        let k = n.trailing_zeros() as usize;
        if k == 0 {
            return Err(TopologyError::BadSize(n));
        }
        let dims = vec![2u16; k];
        Ok(DirectNetwork::build(Shape::new(&dims)?, Wrap::Mesh))
    }

    /// The lattice shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Mesh or torus.
    #[inline]
    pub fn wrap(&self) -> Wrap {
        self.wrap
    }

    /// The underlying channel graph.
    #[inline]
    pub fn graph(&self) -> &NetworkGraph {
        &self.graph
    }

    /// Node id of PE `i`.
    pub fn pe(&self, i: usize) -> NodeId {
        self.graph.expect_id(Node::Pe(i))
    }

    /// Node id of router `i`.
    pub fn router(&self, i: usize) -> NodeId {
        self.graph.expect_id(Node::Router(i))
    }

    /// Node id of the router at `c`.
    pub fn router_at(&self, c: Coord) -> NodeId {
        self.router(self.shape.index_of(c))
    }

    /// The neighbor coordinate one step along `dim` in direction `positive`,
    /// respecting wrap-around; `None` at a mesh edge.
    pub fn neighbor(&self, c: Coord, dim: usize, positive: bool) -> Option<Coord> {
        let e = self.shape.extent(dim);
        let cur = c.get(dim);
        match (positive, self.wrap) {
            (true, _) if cur + 1 < e => Some(c.with(dim, cur + 1)),
            (true, Wrap::Torus) if e > 1 => Some(c.with(dim, 0)),
            (false, _) if cur > 0 => Some(c.with(dim, cur - 1)),
            (false, Wrap::Torus) if e > 1 => Some(c.with(dim, e - 1)),
            _ => None,
        }
    }

    /// Shortest hop distance between two coordinates under this wrap rule.
    pub fn distance(&self, a: Coord, b: Coord) -> usize {
        (0..self.shape.d())
            .map(|d| {
                let e = self.shape.extent(d) as isize;
                let diff = (a.get(d) as isize - b.get(d) as isize).abs();
                match self.wrap {
                    Wrap::Mesh => diff as usize,
                    Wrap::Torus => diff.min(e - diff) as usize,
                }
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_link_counts() {
        // 4x3 mesh: horizontal links 3*3=9, vertical 4*2=8, PE links 12.
        let net = DirectNetwork::build(Shape::new(&[4, 3]).unwrap(), Wrap::Mesh);
        assert_eq!(net.graph().num_channels(), 2 * (12 + 9 + 8));
    }

    #[test]
    fn torus_link_counts() {
        // 4x3 torus: every node has a +1 link in both dims: 12+12, plus PEs.
        let net = DirectNetwork::build(Shape::new(&[4, 3]).unwrap(), Wrap::Torus);
        assert_eq!(net.graph().num_channels(), 2 * (12 + 12 + 12));
    }

    #[test]
    fn width_two_torus_does_not_duplicate_links() {
        let net = DirectNetwork::build(Shape::new(&[2, 2]).unwrap(), Wrap::Torus);
        // 2x2 torus degenerates to a 2x2 mesh: 4 PE links + 4 router links.
        assert_eq!(net.graph().num_channels(), 2 * (4 + 4));
    }

    #[test]
    fn hypercube_degree_is_log2n() {
        let net = DirectNetwork::hypercube(16).unwrap();
        for i in 0..16 {
            let r = net.router(i);
            // log2(16)=4 router-router links + 1 PE link.
            assert_eq!(net.graph().outgoing(r).len(), 5);
        }
        assert!(DirectNetwork::hypercube(12).is_err());
        assert!(DirectNetwork::hypercube(0).is_err());
        assert!(DirectNetwork::hypercube(1).is_err());
    }

    #[test]
    fn neighbor_and_distance_agree() {
        let mesh = DirectNetwork::build(Shape::new(&[4, 3]).unwrap(), Wrap::Mesh);
        let torus = DirectNetwork::build(Shape::new(&[4, 3]).unwrap(), Wrap::Torus);
        let a = Coord::new(&[0, 0]);
        let b = Coord::new(&[3, 0]);
        assert_eq!(mesh.distance(a, b), 3);
        assert_eq!(torus.distance(a, b), 1);
        assert_eq!(mesh.neighbor(a, 0, false), None);
        assert_eq!(torus.neighbor(a, 0, false), Some(b));
        assert_eq!(mesh.neighbor(a, 0, true), Some(Coord::new(&[1, 0])));
    }

    #[test]
    fn torus_neighbors_exist_in_graph() {
        let net = DirectNetwork::build(Shape::new(&[4, 3]).unwrap(), Wrap::Torus);
        for i in 0..net.shape().num_pes() {
            let c = net.shape().coord_of(i);
            for dim in 0..2 {
                for dirn in [true, false] {
                    let nc = net.neighbor(c, dim, dirn).unwrap();
                    let ch = net
                        .graph()
                        .channel_between(net.router_at(c), net.router_at(nc));
                    assert!(ch.is_some(), "missing {c}->{nc} link");
                }
            }
        }
    }
}
