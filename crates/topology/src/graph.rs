//! The switch-level network graph: nodes (PEs, routers, crossbars) and
//! directed channels between them.
//!
//! Both the SR2201 multi-dimensional crossbar and the comparison topologies
//! (mesh, torus, hypercube) are instances of [`NetworkGraph`]; routing crates
//! see only this vocabulary.

use crate::coord::Coord;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Reference to one crossbar switch: the `line`-th crossbar of dimension
/// `dim`.
///
/// In the paper's Fig. 2 vocabulary, `XbarRef { dim: 0, line: y }` is the
/// X-dimension crossbar serving row `y`, and `XbarRef { dim: 1, line: x }` is
/// the Y-dimension crossbar serving column `x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct XbarRef {
    /// Dimension this crossbar routes along.
    pub dim: u8,
    /// Which line of that dimension (flattened remaining coordinates).
    pub line: u32,
}

impl std::fmt::Display for XbarRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let dim_name = match self.dim {
            0 => "X".to_string(),
            1 => "Y".to_string(),
            2 => "Z".to_string(),
            d => format!("D{d}"),
        };
        write!(f, "{}{}-XB", dim_name, self.line)
    }
}

/// A switch-level network node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Node {
    /// A processing element (its network interface adapter endpoint).
    Pe(usize),
    /// The relay switch (router) private to PE `usize`; a `(d+1) x (d+1)`
    /// crossbar in the SR2201.
    Router(usize),
    /// A shared crossbar switch of one lattice line.
    Xbar(XbarRef),
}

impl std::fmt::Display for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Node::Pe(p) => write!(f, "PE{p}"),
            Node::Router(p) => write!(f, "R{p}"),
            Node::Xbar(x) => write!(f, "{x}"),
        }
    }
}

/// Dense index of a node within one [`NetworkGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Dense index of a directed channel within one [`NetworkGraph`].
///
/// A channel is a one-way physical link between two switches. In the
/// simulator each channel doubles as the *output port* of its source switch:
/// cut-through packets own channels from header grant until tail passage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ChannelId(pub u32);

impl ChannelId {
    /// The channel index as a usize (for indexing per-channel state tables).
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Metadata of one directed channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelInfo {
    /// Source switch.
    pub src: NodeId,
    /// Destination switch.
    pub dst: NodeId,
}

/// A directed graph of switches and channels.
///
/// Construction is append-only (via [`GraphBuilder`]); all queries are O(1)
/// or O(degree). Node payloads ([`Node`]) and the optional lattice coordinate
/// of PE/router nodes are stored densely.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkGraph {
    nodes: Vec<Node>,
    coords: Vec<Option<Coord>>,
    channels: Vec<ChannelInfo>,
    out: Vec<Vec<ChannelId>>,
    inp: Vec<Vec<ChannelId>>,
    node_index: HashMap<Node, NodeId>,
    chan_index: HashMap<(NodeId, NodeId), ChannelId>,
}

impl NetworkGraph {
    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed channels.
    #[inline]
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Node payload of `id`.
    #[inline]
    pub fn node(&self, id: NodeId) -> Node {
        self.nodes[id.0 as usize]
    }

    /// Lattice coordinate of a PE or router node, if it has one.
    #[inline]
    pub fn coord(&self, id: NodeId) -> Option<Coord> {
        self.coords[id.0 as usize]
    }

    /// Dense id of a node payload.
    pub fn id_of(&self, node: Node) -> Option<NodeId> {
        self.node_index.get(&node).copied()
    }

    /// Dense id of a node payload, panicking if absent.
    ///
    /// # Panics
    /// Panics when the node does not exist in this graph; use only for nodes
    /// the caller constructed from the same shape.
    pub fn expect_id(&self, node: Node) -> NodeId {
        self.id_of(node)
            .unwrap_or_else(|| panic!("node {node} not present in graph"))
    }

    /// Channel metadata.
    #[inline]
    pub fn channel(&self, id: ChannelId) -> ChannelInfo {
        self.channels[id.0 as usize]
    }

    /// The unique channel from `src` to `dst`, if the switches are adjacent.
    pub fn channel_between(&self, src: NodeId, dst: NodeId) -> Option<ChannelId> {
        self.chan_index.get(&(src, dst)).copied()
    }

    /// Outgoing channels of a node.
    #[inline]
    pub fn outgoing(&self, id: NodeId) -> &[ChannelId] {
        &self.out[id.0 as usize]
    }

    /// Incoming channels of a node.
    #[inline]
    pub fn incoming(&self, id: NodeId) -> &[ChannelId] {
        &self.inp[id.0 as usize]
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterates over all channel ids.
    pub fn channel_ids(&self) -> impl Iterator<Item = ChannelId> {
        (0..self.channels.len() as u32).map(ChannelId)
    }

    /// All PE node ids, in PE-index order.
    pub fn pe_ids(&self) -> Vec<NodeId> {
        let mut pes: Vec<(usize, NodeId)> = self
            .node_ids()
            .filter_map(|id| match self.node(id) {
                Node::Pe(p) => Some((p, id)),
                _ => None,
            })
            .collect();
        pes.sort_unstable();
        pes.into_iter().map(|(_, id)| id).collect()
    }

    /// Human-readable description of a channel (e.g. `R3 -> Y1-XB`).
    pub fn describe_channel(&self, id: ChannelId) -> String {
        let info = self.channel(id);
        format!("{} -> {}", self.node(info.src), self.node(info.dst))
    }
}

/// Incremental builder for [`NetworkGraph`].
#[derive(Debug, Default)]
pub struct GraphBuilder {
    nodes: Vec<Node>,
    coords: Vec<Option<Coord>>,
    channels: Vec<ChannelInfo>,
    node_index: HashMap<Node, NodeId>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node (idempotent: re-adding returns the existing id).
    pub fn add_node(&mut self, node: Node, coord: Option<Coord>) -> NodeId {
        if let Some(&id) = self.node_index.get(&node) {
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.coords.push(coord);
        self.node_index.insert(node, id);
        id
    }

    /// Adds a directed channel. Duplicate channels between the same pair are
    /// rejected to keep `channel_between` unambiguous.
    ///
    /// # Panics
    /// Panics on duplicate (src, dst) pairs — topology builders are expected
    /// to wire each physical link exactly once.
    pub fn add_channel(&mut self, src: NodeId, dst: NodeId) -> ChannelId {
        let id = ChannelId(self.channels.len() as u32);
        self.channels.push(ChannelInfo { src, dst });
        id
    }

    /// Adds a pair of opposite channels (full-duplex link).
    pub fn add_link(&mut self, a: NodeId, b: NodeId) -> (ChannelId, ChannelId) {
        (self.add_channel(a, b), self.add_channel(b, a))
    }

    /// Finalizes the graph.
    ///
    /// # Panics
    /// Panics if two channels connect the same ordered pair of nodes.
    pub fn build(self) -> NetworkGraph {
        let mut out = vec![Vec::new(); self.nodes.len()];
        let mut inp = vec![Vec::new(); self.nodes.len()];
        let mut chan_index = HashMap::with_capacity(self.channels.len());
        for (i, info) in self.channels.iter().enumerate() {
            let id = ChannelId(i as u32);
            out[info.src.0 as usize].push(id);
            inp[info.dst.0 as usize].push(id);
            let prev = chan_index.insert((info.src, info.dst), id);
            assert!(
                prev.is_none(),
                "duplicate channel between {:?} and {:?}",
                self.nodes[info.src.0 as usize],
                self.nodes[info.dst.0 as usize]
            );
        }
        NetworkGraph {
            nodes: self.nodes,
            coords: self.coords,
            channels: self.channels,
            out,
            inp,
            node_index: self.node_index,
            chan_index,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let mut b = GraphBuilder::new();
        let pe = b.add_node(Node::Pe(0), Some(Coord::ORIGIN));
        let r = b.add_node(Node::Router(0), Some(Coord::ORIGIN));
        let (up, down) = b.add_link(pe, r);
        let g = b.build();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_channels(), 2);
        assert_eq!(g.channel(up).src, pe);
        assert_eq!(g.channel(down).dst, pe);
        assert_eq!(g.channel_between(pe, r), Some(up));
        assert_eq!(g.channel_between(r, pe), Some(down));
        assert_eq!(g.outgoing(pe), &[up]);
        assert_eq!(g.incoming(pe), &[down]);
        assert_eq!(g.id_of(Node::Pe(0)), Some(pe));
        assert_eq!(g.id_of(Node::Pe(1)), None);
    }

    #[test]
    fn add_node_is_idempotent() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(Node::Pe(3), None);
        let a2 = b.add_node(Node::Pe(3), None);
        assert_eq!(a, a2);
        assert_eq!(b.build().num_nodes(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate channel")]
    fn duplicate_channel_panics() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(Node::Pe(0), None);
        let c = b.add_node(Node::Pe(1), None);
        b.add_channel(a, c);
        b.add_channel(a, c);
        b.build();
    }

    #[test]
    fn xbar_ref_display_uses_paper_names() {
        assert_eq!(XbarRef { dim: 0, line: 1 }.to_string(), "X1-XB");
        assert_eq!(XbarRef { dim: 1, line: 2 }.to_string(), "Y2-XB");
        assert_eq!(XbarRef { dim: 2, line: 0 }.to_string(), "Z0-XB");
    }

    #[test]
    fn describe_channel_is_readable() {
        let mut b = GraphBuilder::new();
        let r = b.add_node(Node::Router(3), None);
        let x = b.add_node(Node::Xbar(XbarRef { dim: 1, line: 1 }), None);
        let (c, _) = b.add_link(r, x);
        let g = b.build();
        assert_eq!(g.describe_channel(c), "R3 -> Y1-XB");
    }
}
