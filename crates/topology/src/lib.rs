//! # mdx-topology
//!
//! Network topology substrate for the Hitachi SR2201 reproduction.
//!
//! The central object is the **multi-dimensional crossbar network** (Yasuda et
//! al., IPPS'97, Sec. 3): `n = n1 * n2 * ... * nd` processing elements (PEs)
//! arranged on a d-dimensional lattice, where every axis-aligned line of PEs
//! shares one full crossbar switch (XB), and each PE attaches to its `d`
//! crossbars through a private `(d+1) x (d+1)` relay switch (router).
//!
//! The crate provides:
//!
//! * [`Shape`] / [`Coord`] — lattice geometry and PE addressing;
//! * [`Node`] / [`NodeId`] / [`ChannelId`] — the switch-level network graph
//!   vocabulary shared by the routing and simulation crates;
//! * [`NetworkGraph`] — a generic directed channel graph over switches;
//! * [`MdCrossbar`] — construction of the SR2201 network proper;
//! * [`mesh`] — 2D mesh / torus / hypercube comparison topologies;
//! * [`hyperx`] — HyperX (per-dimension cliques) and full-mesh direct
//!   networks for the scheme-zoo comparators;
//! * [`network`] — topology-id dispatch ([`Network::build`]) over every
//!   supported substrate;
//! * [`metrics`] — the structural properties claimed in Sec. 3.1 of the paper
//!   (diameter, router port counts, channel counts, bisection);
//! * [`embed`] — conflict-free remapping of ring / mesh / hypercube / tree
//!   workload topologies onto the MD crossbar.
//!
//! Everything here is pure data and geometry; routing decisions live in
//! `mdx-core` and dynamics live in `mdx-sim`.
//!
//! ```
//! use mdx_topology::{Coord, MdCrossbar, Shape};
//!
//! // The paper's Fig. 2 network: 12 PEs, 3 X-crossbars, 4 Y-crossbars.
//! let net = MdCrossbar::build(Shape::fig2());
//! assert_eq!(net.num_xbars(), 7);
//!
//! // Any two PEs are at most d = 2 crossbar hops apart.
//! let shape = net.shape();
//! assert_eq!(shape.xbar_hops(Coord::new(&[0, 0]), Coord::new(&[3, 2])), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coord;
pub mod embed;
pub mod graph;
pub mod hyperx;
pub mod mdxbar;
pub mod mesh;
pub mod metrics;
pub mod network;

pub use coord::{Coord, Shape, MAX_DIMS};
pub use graph::{ChannelId, ChannelInfo, NetworkGraph, Node, NodeId, XbarRef};
pub use hyperx::HyperX;
pub use mdxbar::MdCrossbar;
pub use network::{Network, DEFAULT_TOPOLOGY, TOPOLOGY_IDS};

/// Errors produced when constructing or querying topologies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A shape had zero dimensions or more than [`MAX_DIMS`].
    BadDimensionCount(usize),
    /// A dimension extent was zero or exceeded `u16::MAX`.
    BadExtent(usize),
    /// A coordinate lay outside the shape.
    OutOfBounds,
    /// A total PE count was not expressible in the requested topology
    /// (e.g. a hypercube needs a power of two).
    BadSize(usize),
    /// A topology id was not one of [`TOPOLOGY_IDS`].
    UnknownTopology(String),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::BadDimensionCount(d) => {
                write!(f, "dimension count {d} outside 1..={MAX_DIMS}")
            }
            TopologyError::BadExtent(e) => write!(f, "dimension extent {e} invalid"),
            TopologyError::OutOfBounds => write!(f, "coordinate out of bounds"),
            TopologyError::BadSize(n) => write!(f, "size {n} not valid for this topology"),
            TopologyError::UnknownTopology(k) => {
                write!(
                    f,
                    "unknown topology '{k}' (known: {})",
                    TOPOLOGY_IDS.join(", ")
                )
            }
        }
    }
}

impl std::error::Error for TopologyError {}
