//! Lattice geometry: shapes and coordinates of the d-dimensional crossbar.

use crate::TopologyError;
use serde::{Deserialize, Serialize};

/// Maximum number of lattice dimensions supported.
///
/// The SR2201 shipped 2D and 3D configurations (up to 2048 PEs as 16x16x8);
/// eight dimensions is comfortably beyond anything the hardware built while
/// keeping [`Coord`] a small, `Copy`, stack-only value.
pub const MAX_DIMS: usize = 8;

/// A lattice coordinate: the position of a PE along each dimension.
///
/// Coordinates are compact `Copy` values so route computation never allocates.
/// Components beyond the shape's dimensionality are always zero, which makes
/// `==` and hashing well-defined without consulting the shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Coord {
    c: [u16; MAX_DIMS],
}

impl Coord {
    /// Builds a coordinate from components (missing components are zero).
    ///
    /// # Panics
    /// Panics if more than [`MAX_DIMS`] components are given.
    pub fn new(components: &[u16]) -> Self {
        assert!(components.len() <= MAX_DIMS, "too many components");
        let mut c = [0u16; MAX_DIMS];
        c[..components.len()].copy_from_slice(components);
        Coord { c }
    }

    /// The origin coordinate `(0, 0, ..., 0)`.
    pub const ORIGIN: Coord = Coord { c: [0; MAX_DIMS] };

    /// Component along `dim`.
    #[inline]
    pub fn get(&self, dim: usize) -> u16 {
        self.c[dim]
    }

    /// Returns a copy with the component along `dim` replaced by `v`.
    #[inline]
    #[must_use]
    pub fn with(&self, dim: usize, v: u16) -> Coord {
        let mut c = self.c;
        c[dim] = v;
        Coord { c }
    }

    /// All components as a slice (length [`MAX_DIMS`], trailing zeros).
    #[inline]
    pub fn raw(&self) -> &[u16; MAX_DIMS] {
        &self.c
    }

    /// Number of dimensions in which `self` and `other` differ.
    pub fn hamming(&self, other: &Coord) -> usize {
        self.c
            .iter()
            .zip(other.c.iter())
            .filter(|(a, b)| a != b)
            .count()
    }

    /// First dimension (in `order`) where `self` differs from `other`.
    pub fn first_diff(&self, other: &Coord, order: &[usize]) -> Option<usize> {
        order.iter().copied().find(|&d| self.c[d] != other.c[d])
    }
}

impl std::fmt::Display for Coord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.c.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// The extents of the d-dimensional lattice: `n = n1 * n2 * ... * nd`.
///
/// Dimension 0 is the paper's X dimension, dimension 1 is Y, and so on; the
/// default dimension-order route resolves dimension 0 first ("X-Y routing").
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<u16>,
    /// Stride of each dimension in the flattened PE index (row-major,
    /// dimension 0 fastest).
    strides: Vec<usize>,
    num_pes: usize,
}

impl Shape {
    /// Creates a shape from per-dimension extents.
    pub fn new(dims: &[u16]) -> Result<Self, TopologyError> {
        if dims.is_empty() || dims.len() > MAX_DIMS {
            return Err(TopologyError::BadDimensionCount(dims.len()));
        }
        if let Some(&bad) = dims.iter().find(|&&e| e == 0) {
            return Err(TopologyError::BadExtent(bad as usize));
        }
        let mut strides = Vec::with_capacity(dims.len());
        let mut acc: usize = 1;
        for &e in dims {
            strides.push(acc);
            acc = acc
                .checked_mul(e as usize)
                .ok_or(TopologyError::BadSize(usize::MAX))?;
        }
        Ok(Shape {
            dims: dims.to_vec(),
            strides,
            num_pes: acc,
        })
    }

    /// Convenience constructor for the paper's running example, a 4x3 2D
    /// crossbar (Fig. 2).
    pub fn fig2() -> Shape {
        Shape::new(&[4, 3]).expect("static shape")
    }

    /// The full-scale SR2201 configuration: 2048 PEs as a 16x16x8 3D crossbar.
    pub fn sr2201_full() -> Shape {
        Shape::new(&[16, 16, 8]).expect("static shape")
    }

    /// Number of dimensions `d`.
    #[inline]
    pub fn d(&self) -> usize {
        self.dims.len()
    }

    /// Extent of dimension `dim` (the paper's `n_i`).
    #[inline]
    pub fn extent(&self, dim: usize) -> u16 {
        self.dims[dim]
    }

    /// All extents.
    #[inline]
    pub fn extents(&self) -> &[u16] {
        &self.dims
    }

    /// Total PE count `n`.
    #[inline]
    pub fn num_pes(&self) -> usize {
        self.num_pes
    }

    /// Whether `c` lies inside the lattice.
    pub fn contains(&self, c: Coord) -> bool {
        (0..MAX_DIMS).all(|d| {
            if d < self.dims.len() {
                c.get(d) < self.dims[d]
            } else {
                c.get(d) == 0
            }
        })
    }

    /// Flattens a coordinate to a PE index (row-major, dim 0 fastest).
    #[inline]
    pub fn index_of(&self, c: Coord) -> usize {
        debug_assert!(self.contains(c), "coordinate {c} outside shape");
        self.dims
            .iter()
            .enumerate()
            .map(|(d, _)| c.get(d) as usize * self.strides[d])
            .sum()
    }

    /// Inverse of [`Shape::index_of`].
    #[inline]
    pub fn coord_of(&self, index: usize) -> Coord {
        debug_assert!(index < self.num_pes, "PE index out of range");
        let mut c = Coord::ORIGIN;
        let mut rem = index;
        for (d, &e) in self.dims.iter().enumerate() {
            c = c.with(d, (rem % e as usize) as u16);
            rem /= e as usize;
        }
        c
    }

    /// Iterates over all coordinates in index order.
    pub fn coords(&self) -> impl Iterator<Item = Coord> + '_ {
        (0..self.num_pes).map(move |i| self.coord_of(i))
    }

    /// Number of crossbar lines in `dim`: the product of all other extents.
    pub fn lines_in_dim(&self, dim: usize) -> usize {
        self.num_pes / self.dims[dim] as usize
    }

    /// The line index (which crossbar in `dim`) a coordinate belongs to.
    ///
    /// Two coordinates share the crossbar of dimension `dim` iff they agree on
    /// every component except possibly `dim`; the line index flattens the
    /// remaining components row-major.
    pub fn line_of(&self, c: Coord, dim: usize) -> usize {
        debug_assert!(dim < self.d());
        let mut idx = 0usize;
        let mut stride = 1usize;
        for (d, &e) in self.dims.iter().enumerate() {
            if d == dim {
                continue;
            }
            idx += c.get(d) as usize * stride;
            stride *= e as usize;
        }
        idx
    }

    /// Inverse of [`Shape::line_of`]: the coordinate sitting at `pos` along
    /// crossbar `line` of dimension `dim`.
    pub fn coord_on_line(&self, dim: usize, line: usize, pos: u16) -> Coord {
        debug_assert!(dim < self.d());
        debug_assert!(pos < self.dims[dim]);
        let mut c = Coord::ORIGIN;
        let mut rem = line;
        for (d, &e) in self.dims.iter().enumerate() {
            if d == dim {
                continue;
            }
            c = c.with(d, (rem % e as usize) as u16);
            rem /= e as usize;
        }
        debug_assert_eq!(rem, 0, "line index out of range");
        c.with(dim, pos)
    }

    /// Iterates over the PE coordinates along one crossbar line.
    pub fn line_coords(&self, dim: usize, line: usize) -> impl Iterator<Item = Coord> + '_ {
        (0..self.dims[dim]).map(move |p| self.coord_on_line(dim, line, p))
    }

    /// Minimal switch-hop distance between two PEs: one crossbar traversal per
    /// differing dimension (the paper's "maximum of d hops on d crossbars").
    pub fn xbar_hops(&self, a: Coord, b: Coord) -> usize {
        (0..self.d()).filter(|&d| a.get(d) != b.get(d)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn shape_rejects_bad_inputs() {
        assert_eq!(Shape::new(&[]), Err(TopologyError::BadDimensionCount(0)));
        assert_eq!(Shape::new(&[4, 0]), Err(TopologyError::BadExtent(0)));
        let too_many = [2u16; MAX_DIMS + 1];
        assert!(matches!(
            Shape::new(&too_many),
            Err(TopologyError::BadDimensionCount(_))
        ));
    }

    #[test]
    fn fig2_shape_matches_paper() {
        let s = Shape::fig2();
        assert_eq!(s.d(), 2);
        assert_eq!(s.num_pes(), 12);
        assert_eq!(s.extent(0), 4);
        assert_eq!(s.extent(1), 3);
        // 3 X-dimension crossbars (one per row), 4 Y-dimension crossbars.
        assert_eq!(s.lines_in_dim(0), 3);
        assert_eq!(s.lines_in_dim(1), 4);
    }

    #[test]
    fn sr2201_full_scale() {
        let s = Shape::sr2201_full();
        assert_eq!(s.num_pes(), 2048);
        assert_eq!(s.d(), 3);
    }

    #[test]
    fn index_coord_roundtrip_small() {
        let s = Shape::new(&[4, 3, 2]).unwrap();
        for i in 0..s.num_pes() {
            assert_eq!(s.index_of(s.coord_of(i)), i);
        }
    }

    #[test]
    fn line_membership_is_consistent() {
        let s = Shape::new(&[4, 3]).unwrap();
        // All coords on the same X line share every non-X component.
        for line in 0..s.lines_in_dim(0) {
            let coords: Vec<Coord> = s.line_coords(0, line).collect();
            assert_eq!(coords.len(), 4);
            for c in &coords {
                assert_eq!(s.line_of(*c, 0), line);
                assert_eq!(c.get(1), coords[0].get(1));
            }
        }
    }

    #[test]
    fn coord_with_and_get() {
        let c = Coord::new(&[1, 2, 3]);
        assert_eq!(c.get(0), 1);
        assert_eq!(c.with(0, 7).get(0), 7);
        assert_eq!(c.with(0, 7).get(1), 2);
        assert_eq!(c.hamming(&c.with(2, 9)), 1);
    }

    #[test]
    fn first_diff_respects_order() {
        let a = Coord::new(&[0, 0]);
        let b = Coord::new(&[1, 1]);
        assert_eq!(a.first_diff(&b, &[0, 1]), Some(0));
        assert_eq!(a.first_diff(&b, &[1, 0]), Some(1));
        assert_eq!(a.first_diff(&a, &[0, 1]), None);
    }

    #[test]
    fn xbar_hops_matches_hamming() {
        let s = Shape::new(&[4, 3, 2]).unwrap();
        let a = Coord::new(&[0, 0, 0]);
        let b = Coord::new(&[3, 2, 1]);
        assert_eq!(s.xbar_hops(a, b), 3);
        assert_eq!(s.xbar_hops(a, a), 0);
        assert_eq!(s.xbar_hops(a, a.with(1, 2)), 1);
    }

    proptest! {
        #[test]
        fn prop_index_roundtrip(dims in proptest::collection::vec(1u16..6, 1..=4), idx in 0usize..10_000) {
            let s = Shape::new(&dims).unwrap();
            let idx = idx % s.num_pes();
            prop_assert_eq!(s.index_of(s.coord_of(idx)), idx);
        }

        #[test]
        fn prop_line_roundtrip(dims in proptest::collection::vec(1u16..6, 2..=4),
                               idx in 0usize..10_000, dim in 0usize..4) {
            let s = Shape::new(&dims).unwrap();
            let dim = dim % s.d();
            let c = s.coord_of(idx % s.num_pes());
            let line = s.line_of(c, dim);
            prop_assert!(line < s.lines_in_dim(dim));
            let back = s.coord_on_line(dim, line, c.get(dim));
            prop_assert_eq!(back, c);
        }

        #[test]
        fn prop_same_line_iff_agree_elsewhere(dims in proptest::collection::vec(1u16..5, 2..=3),
                                              i in 0usize..10_000, j in 0usize..10_000) {
            let s = Shape::new(&dims).unwrap();
            let a = s.coord_of(i % s.num_pes());
            let b = s.coord_of(j % s.num_pes());
            for dim in 0..s.d() {
                let same_line = s.line_of(a, dim) == s.line_of(b, dim);
                let agree = (0..s.d()).all(|d| d == dim || a.get(d) == b.get(d));
                prop_assert_eq!(same_line, agree);
            }
        }
    }
}
