//! Structural metrics backing the paper's Sec. 3.1 claims: short
//! communication distances, wide channels (router port counts), and network
//! cost (switch/channel counts).

use crate::coord::Shape;
use crate::graph::{NetworkGraph, Node, NodeId};
use crate::mdxbar::MdCrossbar;
use crate::mesh::{DirectNetwork, Wrap};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Structural summary of one topology, in comparable units.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologyMetrics {
    /// Human-readable topology name.
    pub name: String,
    /// PE count.
    pub num_pes: usize,
    /// Ports per PE router (pin-bandwidth proxy; the paper's "wide
    /// communication channels" argument: d+1 for the MD crossbar vs
    /// log2(n)+1 for the hypercube).
    pub router_ports: usize,
    /// Total switch count (routers + shared crossbars where present).
    pub num_switches: usize,
    /// Total directed channel count.
    pub num_channels: usize,
    /// Maximum crossbar-traversal distance between any PE pair
    /// (the paper's "maximum of d hops on d crossbars").
    pub diameter_xbar_hops: usize,
    /// Maximum switch-to-switch channel traversals between any PE pair
    /// (counting every channel on the path, PE links included).
    pub diameter_channel_hops: usize,
    /// Directed channels crossing the mid-plane of the widest dimension —
    /// the classic bisection-bandwidth proxy.
    pub bisection_channels: usize,
}

/// Computes graph-level metrics by BFS over the channel graph.
fn graph_diameter_from_pes(g: &NetworkGraph) -> usize {
    let pes = g.pe_ids();
    let mut diameter = 0;
    let mut dist: Vec<u32> = Vec::new();
    for &src in &pes {
        dist.clear();
        dist.resize(g.num_nodes(), u32::MAX);
        let mut q = VecDeque::new();
        dist[src.0 as usize] = 0;
        q.push_back(src);
        while let Some(u) = q.pop_front() {
            let du = dist[u.0 as usize];
            for &ch in g.outgoing(u) {
                let v = g.channel(ch).dst;
                if dist[v.0 as usize] == u32::MAX {
                    dist[v.0 as usize] = du + 1;
                    q.push_back(v);
                }
            }
        }
        for &dst in &pes {
            let d = dist[dst.0 as usize];
            assert_ne!(d, u32::MAX, "disconnected PE pair");
            diameter = diameter.max(d as usize);
        }
    }
    diameter
}

fn count_switches(g: &NetworkGraph) -> usize {
    g.node_ids()
        .filter(|&id| !matches!(g.node(id), Node::Pe(_)))
        .count()
}

fn router_ports(g: &NetworkGraph) -> usize {
    g.node_ids()
        .filter(|&id| matches!(g.node(id), Node::Router(_)))
        .map(|id| g.outgoing(id).len())
        .max()
        .unwrap_or(0)
}

/// Directed channels whose endpoints straddle the mid-plane of the widest
/// dimension (PE/router nodes are placed by coordinate; a crossbar node
/// belongs to both halves of the dimension it spans, so each of its
/// cross-plane router links counts).
fn bisection_channels(g: &NetworkGraph, split_dim: usize, split_at: u16) -> usize {
    let side = |id: NodeId| -> Option<bool> { g.coord(id).map(|c| c.get(split_dim) >= split_at) };
    let mut count = 0;
    for ch in g.channel_ids() {
        let info = g.channel(ch);
        match (g.node(info.src), g.node(info.dst)) {
            // Router-to-router links (direct networks).
            (Node::Router(_), Node::Router(_)) => {
                if let (Some(a), Some(b)) = (side(info.src), side(info.dst)) {
                    if a != b {
                        count += 1;
                    }
                }
            }
            // A crossbar spans the cut only if it runs along the split
            // dimension; its capacity across the cut is its links into the
            // far half (one per far-half router on the line).
            (Node::Xbar(x), Node::Router(_))
                if x.dim as usize == split_dim && side(info.dst) == Some(true) =>
            {
                count += 1;
            }
            _ => {}
        }
    }
    count
}

/// Metrics of an MD crossbar network.
pub fn md_crossbar_metrics(net: &MdCrossbar) -> TopologyMetrics {
    let g = net.graph();
    let extents: Vec<String> = net
        .shape()
        .extents()
        .iter()
        .map(|e| e.to_string())
        .collect();
    let split_dim = (0..net.shape().d())
        .max_by_key(|&d| net.shape().extent(d))
        .unwrap_or(0);
    TopologyMetrics {
        name: format!("md-crossbar {}", extents.join("x")),
        num_pes: net.shape().num_pes(),
        router_ports: router_ports(g),
        num_switches: count_switches(g),
        num_channels: g.num_channels(),
        diameter_xbar_hops: net.shape().d(),
        diameter_channel_hops: graph_diameter_from_pes(g),
        bisection_channels: bisection_channels(g, split_dim, net.shape().extent(split_dim) / 2),
    }
}

/// Metrics of a mesh/torus/hypercube network.
pub fn direct_network_metrics(net: &DirectNetwork) -> TopologyMetrics {
    let g = net.graph();
    let extents: Vec<String> = net
        .shape()
        .extents()
        .iter()
        .map(|e| e.to_string())
        .collect();
    let kind = match net.wrap() {
        Wrap::Mesh => "mesh",
        Wrap::Torus => "torus",
    };
    // Worst-case router-to-router hop distance plus the two PE links.
    let mut max_dist = 0;
    for i in 0..net.shape().num_pes() {
        for j in 0..net.shape().num_pes() {
            max_dist = max_dist.max(net.distance(net.shape().coord_of(i), net.shape().coord_of(j)));
        }
    }
    let split_dim = (0..net.shape().d())
        .max_by_key(|&d| net.shape().extent(d))
        .unwrap_or(0);
    TopologyMetrics {
        name: format!("{kind} {}", extents.join("x")),
        num_pes: net.shape().num_pes(),
        router_ports: router_ports(g),
        num_switches: count_switches(g),
        num_channels: g.num_channels(),
        diameter_xbar_hops: max_dist,
        diameter_channel_hops: graph_diameter_from_pes(g),
        bisection_channels: bisection_channels(g, split_dim, net.shape().extent(split_dim) / 2),
    }
}

/// The hypercube router port count the paper cites (`log2(n) + 1`) for a
/// given PE count, without building the network.
pub fn hypercube_router_ports(n: usize) -> usize {
    assert!(n.is_power_of_two() && n > 1);
    (n.trailing_zeros() as usize) + 1
}

/// The MD crossbar router port count the paper cites (`d + 1`).
pub fn md_crossbar_router_ports(shape: &Shape) -> usize {
    shape.d() + 1
}

/// BFS shortest channel-hop distance between two specific nodes.
pub fn channel_distance(g: &NetworkGraph, src: NodeId, dst: NodeId) -> Option<usize> {
    let mut dist: Vec<u32> = vec![u32::MAX; g.num_nodes()];
    let mut q = VecDeque::new();
    dist[src.0 as usize] = 0;
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        if u == dst {
            return Some(dist[u.0 as usize] as usize);
        }
        for &ch in g.outgoing(u) {
            let v = g.channel(ch).dst;
            if dist[v.0 as usize] == u32::MAX {
                dist[v.0 as usize] = dist[u.0 as usize] + 1;
                q.push_back(v);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coord::Coord;

    #[test]
    fn md_crossbar_diameter_is_channel_hops() {
        // PE -> R -> XB -> R -> XB -> R -> PE for a 2D far pair: 6 channels.
        let net = MdCrossbar::build(Shape::fig2());
        let m = md_crossbar_metrics(&net);
        assert_eq!(m.diameter_xbar_hops, 2);
        assert_eq!(m.diameter_channel_hops, 6);
        assert_eq!(m.router_ports, 3); // d + 1
        assert_eq!(m.num_switches, 12 + 7);
    }

    #[test]
    fn port_count_claims() {
        // Sec. 3.1: MD crossbar needs d+1 router ports; a hypercube of the
        // same size needs log2(n)+1.
        let shape = Shape::new(&[16, 16, 8]).unwrap(); // 2048 PEs
        assert_eq!(md_crossbar_router_ports(&shape), 4);
        assert_eq!(hypercube_router_ports(2048), 12);
    }

    #[test]
    fn mesh_diameter_exceeds_md_crossbar() {
        let shape = Shape::new(&[8, 8]).unwrap();
        let mdx = md_crossbar_metrics(&MdCrossbar::build(shape.clone()));
        let mesh = direct_network_metrics(&DirectNetwork::build(shape.clone(), Wrap::Mesh));
        let torus = direct_network_metrics(&DirectNetwork::build(shape, Wrap::Torus));
        assert!(mesh.diameter_channel_hops > mdx.diameter_channel_hops);
        assert!(torus.diameter_channel_hops > mdx.diameter_channel_hops);
        assert!(torus.diameter_channel_hops <= mesh.diameter_channel_hops);
    }

    #[test]
    fn channel_distance_examples() {
        let net = MdCrossbar::build(Shape::fig2());
        let g = net.graph();
        let a = net.pe_at(Coord::new(&[0, 0]));
        let b = net.pe_at(Coord::new(&[3, 2]));
        assert_eq!(channel_distance(g, a, b), Some(6));
        assert_eq!(channel_distance(g, a, a), Some(0));
        // Same row: one crossbar, 4 channels.
        let c = net.pe_at(Coord::new(&[3, 0]));
        assert_eq!(channel_distance(g, a, c), Some(4));
    }

    #[test]
    fn bisection_counts() {
        // 8x8 mesh: 8 rows x 1 link x 2 directions across the vertical cut.
        let mesh = direct_network_metrics(&DirectNetwork::build(
            Shape::new(&[8, 8]).unwrap(),
            Wrap::Mesh,
        ));
        assert_eq!(mesh.bisection_channels, 16);
        // Torus adds the wrap links: 8 more rows x 2 directions.
        let torus = direct_network_metrics(&DirectNetwork::build(
            Shape::new(&[8, 8]).unwrap(),
            Wrap::Torus,
        ));
        assert_eq!(torus.bisection_channels, 32);
        // MD crossbar: every row crossbar spans the cut and feeds 4 routers
        // in the far half: 8 rows x 4 = 32 crossing XB->router links.
        let mdx = md_crossbar_metrics(&MdCrossbar::build(Shape::new(&[8, 8]).unwrap()));
        assert_eq!(mdx.bisection_channels, 32);
    }

    #[test]
    fn hypercube_metrics() {
        let hc = DirectNetwork::hypercube(8).unwrap();
        let m = direct_network_metrics(&hc);
        assert_eq!(m.router_ports, 4); // log2(8) + 1
        assert_eq!(m.diameter_xbar_hops, 3);
    }
}
